// fuzz_safety — randomized protocol-safety sweep under an adversarial
// control network.
//
// Each episode draws a complete installation at random — lease periods,
// epsilon, per-node clock rates, workload pattern, a random failure plan,
// and adversarial network parameters (duplication, FIFO-violating reorder
// spikes, Gilbert–Elliott burst loss) — runs it end to end, and feeds the
// omniscient history to verify::ConsistencyChecker. Under paper-valid
// configurations (tau_c == tau_s, clocks inside the rate bound) the checker
// must find NOTHING, whatever the network does; any violation is a protocol
// bug.
//
// On a violation the driver writes a self-contained replay file (every
// sampled parameter, fully materialized) and greedily shrinks the failure
// plan to the minimal event subset that still violates, so the repro a
// developer picks up is already small.
//
// --negative-control proves the harness has teeth: it deliberately breaks
// the theorem's premises (tau_c >= tau_s(1+eps), or client clocks beyond the
// rate-synchronization band) and asserts the checker DOES report violations.
// A fuzzer whose negative control passes silently is not testing anything.
//
// --byzantine adds the adversary dimension (DESIGN.md §13): 1..n-1 clients
// get a random composition of misbehaviors (timestamp lies, defied quiesce,
// rogue SAN writes after expiry, swallowed demands, replayed datagrams,
// forged lock claims), the server's demand timeout is shortened so stalls
// escalate within the run, and server->disk SAN cuts stress the fence-retry
// path. The verdict is gated on the checker's HONEST bucket: byzantine
// clients may corrupt their own reads/writes (reported as diagnostics), but
// any violation whose victim is an honest client is a protocol bug. Combined
// with --negative-control it disables fencing (RecoveryMode::kLeaseOnly) for
// one rogue writer and asserts honest clients DO get hurt — proving the
// fence list, not luck, is what contains the attack in the valid runs.
//
// Exit codes: 0 = expected outcome, 1 = safety violation in valid mode (or
// a toothless negative control), 2 = usage/replay-file error.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rt/parallel.hpp"
#include "sim/rng.hpp"
#include "workload/scenario.hpp"

using namespace stank;

namespace {

// ---------------------------------------------------------------------------
// Episode configuration

struct Episode {
  std::uint64_t seed{0};  // master-derived; identifies the episode
  bool negative{false};
  bool byzantine{false};
  workload::ScenarioConfig cfg;
};

struct EpisodeResult {
  verify::ViolationSummary violations;
  std::vector<verify::Violation> details;
  // The split verdict (DESIGN.md §13). With no byzantine clients configured
  // `honest` equals `violations`; with them, `honest` is the pass/fail gate
  // and `byz_violations` counts the self-inflicted diagnostics.
  verify::ViolationSummary honest;
  std::vector<verify::Violation> honest_details;
  std::size_t byz_violations{0};
  // SAN commands the fence lists rejected, attributed to byzantine
  // initiators: total and per misbehavior bit (index = bit position in
  // client::ByzantineSpec's mask). Nonzero means the trusted base actually
  // absorbed attacks rather than never seeing any.
  std::uint64_t byz_fence_rejects{0};
  std::array<std::uint64_t, 6> fence_rejects_by_bit{};
  std::uint64_t ops{0};
  net::NetStats net;
  std::uint64_t lock_steals{0};
  std::uint64_t nacks{0};
};

// Everything the episode samples, drawn from one forked RNG stream so a
// (master seed, index) pair regenerates the identical episode.
Episode generate(std::uint64_t master_seed, std::uint64_t index, bool negative, bool byzantine) {
  sim::Rng root(master_seed);
  sim::Rng rng = root.fork(index + 1);

  Episode ep;
  ep.seed = master_seed ^ (index + 1);
  ep.negative = negative;
  ep.byzantine = byzantine;
  workload::ScenarioConfig& cfg = ep.cfg;

  // Workload: small and contended — contention is what makes stale caches
  // observable.
  cfg.workload.pattern = static_cast<workload::Pattern>(rng.uniform_int(0, 3));
  cfg.workload.num_clients = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
  cfg.workload.num_files = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
  cfg.workload.file_blocks = 4;
  cfg.workload.read_fraction = 0.3 + 0.5 * rng.uniform();
  cfg.workload.mean_interarrival_s = 0.02 + 0.06 * rng.uniform();
  cfg.workload.run_seconds = 8.0 + 6.0 * rng.uniform();
  cfg.workload.seed = rng.next_u64();

  // Lease timing: tau_s on the server; epsilon across the installation.
  const double tau_s = 1.5 + 2.5 * rng.uniform();
  cfg.lease.tau = sim::local_seconds_d(tau_s);
  const double epsilons[] = {1e-6, 1e-4, 1e-2, 5e-2};
  cfg.lease.epsilon = epsilons[rng.uniform_int(0, 3)];
  const int skew_modes[] = {0, 0, -1, +1};  // random twice as likely
  cfg.clock_skew_mode = skew_modes[rng.uniform_int(0, 3)];

  // Adversarial network. Latency/jitter modest; the damage comes from dup,
  // reorder spikes (up to ~2 retransmit timeouts, so stale replies overtake
  // live ones), and loss bursts long enough to out-last retry budgets.
  cfg.control_net.latency = sim::micros(100 + rng.uniform_int(0, 1900));
  cfg.control_net.jitter = sim::Duration{cfg.control_net.latency.ns / 2};
  // Exact-time delivery: bucket rounding would shift arrival instants and
  // make replay schedules depend on the bucket width. 1ns coalesces only
  // datagrams with identical sampled arrival times, which is the schedule
  // the unbatched fabric produced — replays stay verdict-identical across
  // the batching change while still exercising the queued-drain path.
  cfg.control_net.delivery_bucket = sim::Duration{1};
  cfg.control_net.drop_probability = 0.10 * rng.uniform();
  cfg.control_net.dup_probability = 0.25 * rng.uniform();
  cfg.control_net.reorder_probability = 0.40 * rng.uniform();
  cfg.control_net.reorder_spike = sim::millis(1 + rng.uniform_int(0, 999));
  if (rng.bernoulli(0.5)) {
    cfg.control_net.ge_good_to_bad = 0.02 * rng.uniform();
    cfg.control_net.ge_bad_to_good = 0.05 + 0.45 * rng.uniform();
    cfg.control_net.burst_loss = 0.8 + 0.2 * rng.uniform();
  }

  // Failure plan: client partitions (symmetric + asymmetric), crashes, and
  // occasionally a server crash/restart, all over the adversarial net.
  workload::FailurePlan::RandomMix mix;
  mix.server_restarts = rng.bernoulli(0.25);

  if (byzantine && !negative) {
    // Adversary dimension: 1..n-1 misbehaving clients (at least one honest
    // client must remain — it is the party whose safety we are asserting).
    // Drawn BEFORE the failure plan so the shrinker's byz dimension and the
    // plan dimension are independent in the replay file.
    const std::uint32_t n = cfg.workload.num_clients;
    const auto nbyz = static_cast<std::uint32_t>(
        rng.uniform_int(1, std::max<std::int64_t>(1, static_cast<std::int64_t>(n) - 1)));
    const auto start = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
    bool any_forge = false;
    for (std::uint32_t k = 0; k < nbyz; ++k) {
      const std::size_t idx = (start + k) % n;
      const auto behavior_mask = static_cast<std::uint32_t>(rng.uniform_int(1, 63));
      const double skew = (2.0 * rng.uniform() - 1.0) * tau_s;
      cfg.byzantine[idx] = client::ByzantineSpec::from_mask(behavior_mask, skew);
      any_forge = any_forge || cfg.byzantine[idx].forge_lock_claims;
    }
    // A forged ReassertLockReq during the post-restart grace window is
    // unfixable by design (DESIGN.md §13: reassertion trusts clients), so
    // forgers and server restarts don't mix in the valid sweep.
    if (any_forge) mix.server_restarts = false;
    // Server->disk SAN cuts make fence admin commands fail while held,
    // forcing the fence-retry / held-steal path under attack.
    mix.server_san_partitions = rng.bernoulli(0.35);
    // Short demand timeout: an ack-without-release stall must escalate to
    // suspect -> fence+steal within the run, not outlast it.
    cfg.demand_timeout = sim::local_seconds_d(0.8 + 1.2 * rng.uniform());
  }

  const std::size_t failures = static_cast<std::size_t>(rng.uniform_int(0, 4));
  cfg.failures = workload::FailurePlan::random(rng, cfg.workload, failures, mix);

  if (byzantine && negative) {
    // Byzantine negative control: same attacker, fencing OFF. One client
    // withholds its phase-4 flush and rogue-writes its stale snapshot after
    // expiry; with RecoveryMode::kLeaseOnly nothing stops the stale data
    // landing on top of the new holder's writes. The checker must report
    // HONEST-victim violations — proving the fence list is the load-bearing
    // defense in the valid sweep, not generator weakness.
    cfg.recovery = server::RecoveryMode::kLeaseOnly;
    cfg.demand_timeout = sim::local_seconds_d(1.5);
    const auto attacker =
        static_cast<std::uint32_t>(rng.uniform_int(0, cfg.workload.num_clients - 1));
    client::ByzantineSpec spec;
    spec.write_after_expiry = true;
    spec.defy_quiesce = rng.bernoulli(0.5);
    cfg.byzantine[attacker] = spec;
    // Partition the attacker so its lease provably expires and the locks are
    // stolen while its rogue flusher is still pumping the stale snapshot.
    cfg.failures.add(0.3 * cfg.workload.run_seconds, workload::FailureKind::kCtrlIsolate,
                     attacker);
    cfg.failures.add(0.9 * cfg.workload.run_seconds, workload::FailureKind::kCtrlHeal, attacker);
    // Write-heavy: honest clients must produce the newer versions the rogue
    // writes then clobber.
    cfg.workload.read_fraction = 0.3;
    return ep;
  }

  if (negative) {
    // Break exactly one premise of Theorem 3.1, chosen at random; both must
    // independently defeat the protocol for the checker to have teeth.
    if (rng.bernoulli(0.5)) {
      // tau_c >= tau_s(1+eps): the client believes in a longer lease than
      // the server's provable-expiry wait covers.
      const double factor = (1.0 + cfg.lease.epsilon) * (1.5 + 1.5 * rng.uniform());
      cfg.client_tau = sim::local_seconds_d(tau_s * factor);
    } else {
      // Client clocks slower than rate synchronization permits: tau_c
      // stretches in real time beyond tau_s(1+eps).
      cfg.client_rate_scale = 1.0 / ((1.0 + cfg.lease.epsilon) * (1.8 + 1.2 * rng.uniform()));
    }
    // Guarantee the triggering scenario: one client partitioned long enough
    // to be stolen from while it still trusts its (over-long) lease, with
    // enough run left for other clients to rewrite its cached blocks.
    const double at = 0.25 * cfg.workload.run_seconds;
    const auto victim =
        static_cast<std::uint32_t>(rng.uniform_int(0, cfg.workload.num_clients - 1));
    cfg.failures.add(at, workload::FailureKind::kCtrlIsolate, victim);
    cfg.failures.add(0.9 * cfg.workload.run_seconds, workload::FailureKind::kCtrlHeal, victim);
    // Reads dominate so the stale cache actually gets consulted.
    cfg.workload.read_fraction = 0.7;
  }
  return ep;
}

EpisodeResult run_episode(const workload::ScenarioConfig& cfg, std::ostream* trace_to = nullptr,
                          const std::string& trace_save = {}) {
  workload::Scenario sc(cfg);
  auto r = sc.run();
  if (!trace_save.empty()) {
    std::ofstream f(trace_save, std::ios::binary);
    sc.recorder().save(f);
    // A violating replay whose ring wrapped may have silently lost the
    // events that explain the violation — say so next to the artifact
    // instead of letting someone triage a truncated timeline.
    if (const std::uint64_t lost = sc.recorder().dropped_events(); lost > 0) {
      std::printf(
          "WARNING: trace ring overwrote %llu event(s) during this replay; the retained\n"
          "         window may start after the root cause. Re-run with a larger\n"
          "         RecorderConfig::ring_capacity before trusting the timeline.\n",
          static_cast<unsigned long long>(lost));
    }
    if (r.watchdog_trips > 0) {
      std::printf("note: invariant watchdog tripped %llu time(s) during the replay\n",
                  static_cast<unsigned long long>(r.watchdog_trips));
    }
  }
  if (trace_to != nullptr) {
    sc.trace().print(*trace_to);
    // Raw history: lets a developer line the trace up against what the disk
    // and caches actually saw.
    for (const auto& w : sc.history().buffered_writes()) {
      *trace_to << w.at.seconds() << "s  n" << w.client.value() << "  [buffered] f"
                << w.stamp.file.value() << ":b" << w.stamp.block << " v" << w.stamp.version
                << "\n";
    }
    for (const auto& w : sc.history().disk_writes()) {
      *trace_to << w.at.seconds() << "s  n" << w.initiator.value() << "  [disk-write] f"
                << w.stamp.file.value() << ":b" << w.stamp.block << " v" << w.stamp.version
                << "\n";
    }
  }
  EpisodeResult out;
  out.violations = r.violations;
  out.details = std::move(r.violation_list);
  out.honest = verify::ConsistencyChecker::summarize(r.honest_violations);
  out.honest_details = std::move(r.honest_violations);
  out.byz_violations = r.byzantine_violations.size();
  for (const auto& [idx, spec] : cfg.byzantine) {
    const auto it = r.fence_rejects_by_initiator.find(sc.client_node(idx));
    if (it == r.fence_rejects_by_initiator.end()) continue;
    out.byz_fence_rejects += it->second;
    const std::uint32_t m = spec.mask();
    for (std::size_t b = 0; b < out.fence_rejects_by_bit.size(); ++b) {
      if ((m & (1u << b)) != 0) out.fence_rejects_by_bit[b] += it->second;
    }
  }
  out.ops = r.reads_ok + r.writes_ok;
  out.net = r.net;
  out.lock_steals = r.server.lock_steals;
  out.nacks = r.server.nacks_sent;
  return out;
}

// The pass/fail gate. With byzantine clients configured only honest-victim
// violations count — the adversary corrupting its own view is expected.
bool gate_violates(const EpisodeResult& r, const workload::ScenarioConfig& cfg) {
  return (cfg.byzantine.empty() ? r.violations : r.honest).total() > 0;
}

bool violates(const workload::ScenarioConfig& cfg) {
  return gate_violates(run_episode(cfg), cfg);
}

// Re-runs a (deterministic) episode with the flight recorder attached and
// saves the binary trace next to the replay file, so a developer picking the
// repro up can open the timeline without reconstructing anything.
void dump_trace(workload::ScenarioConfig cfg, const std::string& path) {
  cfg.enable_trace = true;
  (void)run_episode(cfg, nullptr, path);
  std::printf("flight trace written to %s (inspect with tools/trace_dump)\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Replay files: every sampled parameter, fully materialized, so the file is
// self-contained (no re-derivation from the RNG needed — which is what lets
// the shrinker persist a minimized plan).

void write_replay(const std::string& path, const Episode& ep,
                  const verify::ViolationSummary& v, const net::NetStats& net) {
  std::ofstream f(path);
  const workload::ScenarioConfig& c = ep.cfg;
  f << "# stank fuzz_safety replay v1\n";
  f << "# violations: write_order=" << v.write_order << " stale_reads=" << v.stale_reads
    << " lost_updates=" << v.lost_updates << "\n";
  f << "# net: " << net.summary() << "\n";
  f << "episode_seed=" << ep.seed << "\n";
  f << "mode=" << (ep.negative ? "negative" : "valid") << "\n";
  f << "pattern=" << static_cast<int>(c.workload.pattern) << "\n";
  f << "num_clients=" << c.workload.num_clients << "\n";
  f << "num_files=" << c.workload.num_files << "\n";
  f << "file_blocks=" << c.workload.file_blocks << "\n";
  f << "read_fraction=" << c.workload.read_fraction << "\n";
  f << "mean_interarrival_s=" << c.workload.mean_interarrival_s << "\n";
  f << "zipf_s=" << c.workload.zipf_s << "\n";
  f << "run_seconds=" << c.workload.run_seconds << "\n";
  f << "workload_seed=" << c.workload.seed << "\n";
  f << "tau_s_ns=" << c.lease.tau.ns << "\n";
  f << "epsilon=" << c.lease.epsilon << "\n";
  f << "clock_skew_mode=" << c.clock_skew_mode << "\n";
  f << "tau_c_ns=" << c.client_tau.ns << "\n";
  f << "client_rate_scale=" << c.client_rate_scale << "\n";
  f << "net_latency_ns=" << c.control_net.latency.ns << "\n";
  f << "net_jitter_ns=" << c.control_net.jitter.ns << "\n";
  f << "net_drop=" << c.control_net.drop_probability << "\n";
  f << "net_dup=" << c.control_net.dup_probability << "\n";
  f << "net_reorder_prob=" << c.control_net.reorder_probability << "\n";
  f << "net_reorder_spike_ns=" << c.control_net.reorder_spike.ns << "\n";
  f << "net_ge_good_to_bad=" << c.control_net.ge_good_to_bad << "\n";
  f << "net_ge_bad_to_good=" << c.control_net.ge_bad_to_good << "\n";
  f << "net_burst_loss=" << c.control_net.burst_loss << "\n";
  f << "recovery=" << static_cast<int>(c.recovery) << "\n";
  f << "demand_timeout_ns=" << c.demand_timeout.ns << "\n";
  for (const auto& [idx, spec] : c.byzantine) {
    f << "byzantine=" << idx << " " << spec.mask() << " " << spec.send_time_skew_s << "\n";
  }
  for (const auto& ev : c.failures.events) {
    f << "failure=" << ev.at_s << " " << static_cast<int>(ev.kind) << " " << ev.client_idx
      << " " << ev.param_s << "\n";
  }
}

std::optional<Episode> read_replay(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  Episode ep;
  workload::ScenarioConfig& c = ep.cfg;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    std::istringstream in(val);
    if (key == "episode_seed") in >> ep.seed;
    else if (key == "mode") ep.negative = val == "negative";
    else if (key == "pattern") { int p; in >> p; c.workload.pattern = static_cast<workload::Pattern>(p); }
    else if (key == "num_clients") in >> c.workload.num_clients;
    else if (key == "num_files") in >> c.workload.num_files;
    else if (key == "file_blocks") in >> c.workload.file_blocks;
    else if (key == "read_fraction") in >> c.workload.read_fraction;
    else if (key == "mean_interarrival_s") in >> c.workload.mean_interarrival_s;
    else if (key == "zipf_s") in >> c.workload.zipf_s;
    else if (key == "run_seconds") in >> c.workload.run_seconds;
    else if (key == "workload_seed") in >> c.workload.seed;
    else if (key == "tau_s_ns") in >> c.lease.tau.ns;
    else if (key == "epsilon") in >> c.lease.epsilon;
    else if (key == "clock_skew_mode") in >> c.clock_skew_mode;
    else if (key == "tau_c_ns") in >> c.client_tau.ns;
    else if (key == "client_rate_scale") in >> c.client_rate_scale;
    else if (key == "net_latency_ns") in >> c.control_net.latency.ns;
    else if (key == "net_jitter_ns") in >> c.control_net.jitter.ns;
    else if (key == "net_drop") in >> c.control_net.drop_probability;
    else if (key == "net_dup") in >> c.control_net.dup_probability;
    else if (key == "net_reorder_prob") in >> c.control_net.reorder_probability;
    else if (key == "net_reorder_spike_ns") in >> c.control_net.reorder_spike.ns;
    else if (key == "net_ge_good_to_bad") in >> c.control_net.ge_good_to_bad;
    else if (key == "net_ge_bad_to_good") in >> c.control_net.ge_bad_to_good;
    else if (key == "net_burst_loss") in >> c.control_net.burst_loss;
    else if (key == "recovery") { int m; in >> m; c.recovery = static_cast<server::RecoveryMode>(m); }
    else if (key == "demand_timeout_ns") in >> c.demand_timeout.ns;
    else if (key == "byzantine") {
      std::size_t idx = 0;
      std::uint32_t behavior_mask = 0;
      double skew = 0.0;
      in >> idx >> behavior_mask >> skew;
      c.byzantine[idx] = client::ByzantineSpec::from_mask(behavior_mask, skew);
      ep.byzantine = true;
    }
    else if (key == "failure") {
      workload::FailureEvent ev;
      int kind = 0;
      in >> ev.at_s >> kind >> ev.client_idx >> ev.param_s;
      ev.kind = static_cast<workload::FailureKind>(kind);
      c.failures.events.push_back(ev);
    } else {
      std::fprintf(stderr, "replay: unknown key '%s'\n", key.c_str());
      return std::nullopt;
    }
  }
  return ep;
}

// ---------------------------------------------------------------------------
// Greedy shrinker over three dimensions: drop a failure event, drop a whole
// byzantine client, or clear one behavior bit on one byzantine client —
// whichever single removal keeps the episode violating, until none does. The
// repro a developer picks up names the one misbehavior that matters.

workload::ScenarioConfig shrink(workload::ScenarioConfig cfg, int* runs_out) {
  int runs = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < cfg.failures.events.size(); ++i) {
      workload::ScenarioConfig trial = cfg;
      trial.failures.events.erase(trial.failures.events.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      ++runs;
      if (violates(trial)) {
        cfg = std::move(trial);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (const auto& [idx, spec] : cfg.byzantine) {
      workload::ScenarioConfig trial = cfg;
      trial.byzantine.erase(idx);
      ++runs;
      if (violates(trial)) {
        cfg = std::move(trial);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (const auto& [idx, spec] : cfg.byzantine) {
      const std::uint32_t m = spec.mask();
      if ((m & (m - 1)) == 0) continue;  // single bit: the erase pass covers it
      for (std::uint32_t b = 0; b < 6 && !progress; ++b) {
        if ((m & (1u << b)) == 0) continue;
        workload::ScenarioConfig trial = cfg;
        trial.byzantine[idx] =
            client::ByzantineSpec::from_mask(m & ~(1u << b), spec.send_time_skew_s);
        ++runs;
        if (violates(trial)) {
          cfg = std::move(trial);
          progress = true;
        }
      }
      if (progress) break;
    }
  }
  if (runs_out != nullptr) *runs_out = runs;
  return cfg;
}

void print_violations(const verify::ViolationSummary& v) {
  std::printf("  write-order races: %zu\n  stale reads:       %zu\n  lost updates:      %zu\n",
              v.write_order, v.stale_reads, v.lost_updates);
}

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_safety [--episodes N] [--seed S] [--out FILE]\n"
               "                   [--byzantine] [--negative-control] [--quick] [--jobs N]\n"
               "       fuzz_safety --replay FILE [--trace]\n");
  return 2;
}

const char* kBehaviorNames[6] = {"lie-send-time", "defy-quiesce",       "write-after-expiry",
                                 "ack-no-release", "replay-old-session", "forge-lock-claims"};

}  // namespace

int main(int argc, char** argv) {
  std::size_t episodes = 1000;
  std::uint64_t seed = 1;
  bool negative = false;
  bool byzantine = false;
  bool trace = false;
  unsigned jobs = 0;
  std::string out_path = "fuzz_replay.txt";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--episodes") {
      const char* v = next();
      if (!v) return usage();
      episodes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return usage();
      seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--jobs") {
      const char* v = next();
      if (!v) return usage();
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_path = v;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return usage();
      replay_path = v;
    } else if (a == "--negative-control") {
      negative = true;
    } else if (a == "--byzantine") {
      byzantine = true;
    } else if (a == "--trace") {
      trace = true;
    } else if (a == "--quick") {
      episodes = 150;
    } else {
      return usage();
    }
  }

  // --- Replay mode ---------------------------------------------------------
  if (!replay_path.empty()) {
    auto ep = read_replay(replay_path);
    if (!ep) {
      std::fprintf(stderr, "fuzz_safety: cannot read replay file %s\n", replay_path.c_str());
      return 2;
    }
    std::printf("replaying %s (episode seed %llu, %s mode, %zu failure events, "
                "%zu byzantine clients)\n",
                replay_path.c_str(), static_cast<unsigned long long>(ep->seed),
                ep->negative ? "negative" : "valid", ep->cfg.failures.events.size(),
                ep->cfg.byzantine.size());
    ep->cfg.enable_trace = trace;
    auto r = run_episode(ep->cfg, trace ? &std::cout : nullptr,
                         trace ? replay_path + ".trace" : std::string{});
    std::printf("ops completed: %llu; net %s; checker result:\n",
                static_cast<unsigned long long>(r.ops), r.net.summary().c_str());
    print_violations(r.violations);
    for (const auto& v : r.details) {
      std::printf("  [%s] t=%.4fs %s\n", verify::to_string(v.kind), v.at.seconds(),
                  v.detail.c_str());
    }
    if (!ep->cfg.byzantine.empty()) {
      std::printf("  honest-victim violations (the gate): %zu; byzantine-victim "
                  "diagnostics: %zu; fence rejects absorbed: %llu\n",
                  r.honest.total(), r.byz_violations,
                  static_cast<unsigned long long>(r.byz_fence_rejects));
    }
    return gate_violates(r, ep->cfg) ? 1 : 0;
  }

  // --- Sweep mode ----------------------------------------------------------
  std::printf("fuzz_safety: %zu %s%s episodes, master seed %llu\n", episodes,
              byzantine ? "BYZANTINE " : "",
              negative ? "NEGATIVE-CONTROL" : "paper-valid",
              static_cast<unsigned long long>(seed));

  std::vector<EpisodeResult> results(episodes);
  rt::parallel_for(
      episodes,
      [&](std::size_t i) {
        const Episode dbg = generate(seed, i, negative, byzantine);
        if (std::getenv("STANK_FUZZ_DEBUG") != nullptr) {
          std::fprintf(stderr, "episode %zu: clients=%u run=%.2fs", i, dbg.cfg.workload.num_clients,
                       dbg.cfg.workload.run_seconds);
          for (const auto& [idx, spec] : dbg.cfg.byzantine) {
            std::fprintf(stderr, " byz[%zu]=mask%u skew=%.3f", idx, spec.mask(),
                         spec.send_time_skew_s);
          }
          std::fprintf(stderr, "\n");
        }
        results[i] = run_episode(dbg.cfg);
      },
      jobs);

  verify::ViolationSummary total;
  std::size_t violating = 0, byz_diag = 0;
  std::uint64_t ops = 0, dup = 0, reordered = 0, burst = 0, steals = 0, nacks = 0;
  std::uint64_t byz_rejects = 0;
  std::array<std::uint64_t, 6> rejects_by_bit{};
  std::size_t first_violating = episodes;
  for (std::size_t i = 0; i < episodes; ++i) {
    const auto& r = results[i];
    // In byzantine mode the verdict tallies the HONEST bucket only; the
    // adversary's self-inflicted damage is summarized separately below.
    const auto& gate = byzantine ? r.honest : r.violations;
    total.write_order += gate.write_order;
    total.stale_reads += gate.stale_reads;
    total.lost_updates += gate.lost_updates;
    if (gate.total() > 0) {
      ++violating;
      if (first_violating == episodes) first_violating = i;
    }
    byz_diag += r.byz_violations;
    byz_rejects += r.byz_fence_rejects;
    for (std::size_t b = 0; b < rejects_by_bit.size(); ++b) {
      rejects_by_bit[b] += r.fence_rejects_by_bit[b];
    }
    ops += r.ops;
    dup += r.net.duplicated;
    reordered += r.net.reordered;
    burst += r.net.dropped_burst;
    steals += r.lock_steals;
    nacks += r.nacks;
  }

  std::printf("episodes: %zu  violating: %zu  ops: %llu\n", episodes, violating,
              static_cast<unsigned long long>(ops));
  std::printf("adversity exercised: %llu dups, %llu reorder spikes, %llu burst drops, "
              "%llu lock steals, %llu NACKs\n",
              static_cast<unsigned long long>(dup), static_cast<unsigned long long>(reordered),
              static_cast<unsigned long long>(burst), static_cast<unsigned long long>(steals),
              static_cast<unsigned long long>(nacks));
  print_violations(total);
  if (byzantine) {
    std::printf("byzantine-victim diagnostics (self-inflicted, not gated): %zu\n", byz_diag);
    std::printf("attacks absorbed by the fence lists: %llu rejected SAN commands\n",
                static_cast<unsigned long long>(byz_rejects));
    for (std::size_t b = 0; b < rejects_by_bit.size(); ++b) {
      if (rejects_by_bit[b] > 0) {
        std::printf("  with %-20s active: %llu\n", kBehaviorNames[b],
                    static_cast<unsigned long long>(rejects_by_bit[b]));
      }
    }
  }

  if (negative) {
    // The checker must have teeth: broken premises => observed violations.
    if (violating == 0) {
      std::printf("NEGATIVE CONTROL FAILED: no violations despite %s —\n"
                  "the checker (or the fuzzer's reach) is toothless.\n",
                  byzantine ? "a rogue writer and fencing disabled"
                            : "broken timing premises");
      return 1;
    }
    const Episode ep = generate(seed, first_violating, negative, byzantine);
    write_replay(out_path, ep, results[first_violating].violations,
                 results[first_violating].net);
    dump_trace(ep.cfg, out_path + ".trace");
    std::printf("negative control OK: %zu/%zu episodes violated as expected.\n"
                "replayable example: seed %llu -> %s\n",
                violating, episodes, static_cast<unsigned long long>(ep.seed),
                out_path.c_str());
    return 0;
  }

  if (violating > 0) {
    Episode ep = generate(seed, first_violating, negative, byzantine);
    std::printf("\nSAFETY VIOLATION at episode %zu (seed %llu). Shrinking "
                "(%zu failure events, %zu byzantine clients)...\n",
                first_violating, static_cast<unsigned long long>(ep.seed),
                ep.cfg.failures.events.size(), ep.cfg.byzantine.size());
    int shrink_runs = 0;
    ep.cfg = shrink(ep.cfg, &shrink_runs);
    std::printf("shrunk to %zu events + %zu byzantine clients in %d runs; "
                "replay written to %s\n",
                ep.cfg.failures.events.size(), ep.cfg.byzantine.size(), shrink_runs,
                out_path.c_str());
    write_replay(out_path, ep, results[first_violating].violations,
                 results[first_violating].net);
    dump_trace(ep.cfg, out_path + ".trace");
    return 1;
  }

  std::printf("all clear: no %sviolations in %zu %s episodes.\n",
              byzantine ? "honest-victim " : "", episodes,
              byzantine ? "byzantine" : "paper-valid");
  return 0;
}
