// fuzz_safety — randomized protocol-safety sweep under an adversarial
// control network.
//
// Each episode draws a complete installation at random — lease periods,
// epsilon, per-node clock rates, workload pattern, a random failure plan,
// and adversarial network parameters (duplication, FIFO-violating reorder
// spikes, Gilbert–Elliott burst loss) — runs it end to end, and feeds the
// omniscient history to verify::ConsistencyChecker. Under paper-valid
// configurations (tau_c == tau_s, clocks inside the rate bound) the checker
// must find NOTHING, whatever the network does; any violation is a protocol
// bug.
//
// On a violation the driver writes a self-contained replay file (every
// sampled parameter, fully materialized) and greedily shrinks the failure
// plan to the minimal event subset that still violates, so the repro a
// developer picks up is already small.
//
// --negative-control proves the harness has teeth: it deliberately breaks
// the theorem's premises (tau_c >= tau_s(1+eps), or client clocks beyond the
// rate-synchronization band) and asserts the checker DOES report violations.
// A fuzzer whose negative control passes silently is not testing anything.
//
// Exit codes: 0 = expected outcome, 1 = safety violation in valid mode (or
// a toothless negative control), 2 = usage/replay-file error.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rt/parallel.hpp"
#include "sim/rng.hpp"
#include "workload/scenario.hpp"

using namespace stank;

namespace {

// ---------------------------------------------------------------------------
// Episode configuration

struct Episode {
  std::uint64_t seed{0};  // master-derived; identifies the episode
  bool negative{false};
  workload::ScenarioConfig cfg;
};

struct EpisodeResult {
  verify::ViolationSummary violations;
  std::vector<verify::Violation> details;
  std::uint64_t ops{0};
  net::NetStats net;
  std::uint64_t lock_steals{0};
  std::uint64_t nacks{0};
};

// Everything the episode samples, drawn from one forked RNG stream so a
// (master seed, index) pair regenerates the identical episode.
Episode generate(std::uint64_t master_seed, std::uint64_t index, bool negative) {
  sim::Rng root(master_seed);
  sim::Rng rng = root.fork(index + 1);

  Episode ep;
  ep.seed = master_seed ^ (index + 1);
  ep.negative = negative;
  workload::ScenarioConfig& cfg = ep.cfg;

  // Workload: small and contended — contention is what makes stale caches
  // observable.
  cfg.workload.pattern = static_cast<workload::Pattern>(rng.uniform_int(0, 3));
  cfg.workload.num_clients = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
  cfg.workload.num_files = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
  cfg.workload.file_blocks = 4;
  cfg.workload.read_fraction = 0.3 + 0.5 * rng.uniform();
  cfg.workload.mean_interarrival_s = 0.02 + 0.06 * rng.uniform();
  cfg.workload.run_seconds = 8.0 + 6.0 * rng.uniform();
  cfg.workload.seed = rng.next_u64();

  // Lease timing: tau_s on the server; epsilon across the installation.
  const double tau_s = 1.5 + 2.5 * rng.uniform();
  cfg.lease.tau = sim::local_seconds_d(tau_s);
  const double epsilons[] = {1e-6, 1e-4, 1e-2, 5e-2};
  cfg.lease.epsilon = epsilons[rng.uniform_int(0, 3)];
  const int skew_modes[] = {0, 0, -1, +1};  // random twice as likely
  cfg.clock_skew_mode = skew_modes[rng.uniform_int(0, 3)];

  // Adversarial network. Latency/jitter modest; the damage comes from dup,
  // reorder spikes (up to ~2 retransmit timeouts, so stale replies overtake
  // live ones), and loss bursts long enough to out-last retry budgets.
  cfg.control_net.latency = sim::micros(100 + rng.uniform_int(0, 1900));
  cfg.control_net.jitter = sim::Duration{cfg.control_net.latency.ns / 2};
  // Exact-time delivery: bucket rounding would shift arrival instants and
  // make replay schedules depend on the bucket width. 1ns coalesces only
  // datagrams with identical sampled arrival times, which is the schedule
  // the unbatched fabric produced — replays stay verdict-identical across
  // the batching change while still exercising the queued-drain path.
  cfg.control_net.delivery_bucket = sim::Duration{1};
  cfg.control_net.drop_probability = 0.10 * rng.uniform();
  cfg.control_net.dup_probability = 0.25 * rng.uniform();
  cfg.control_net.reorder_probability = 0.40 * rng.uniform();
  cfg.control_net.reorder_spike = sim::millis(1 + rng.uniform_int(0, 999));
  if (rng.bernoulli(0.5)) {
    cfg.control_net.ge_good_to_bad = 0.02 * rng.uniform();
    cfg.control_net.ge_bad_to_good = 0.05 + 0.45 * rng.uniform();
    cfg.control_net.burst_loss = 0.8 + 0.2 * rng.uniform();
  }

  // Failure plan: client partitions (symmetric + asymmetric), crashes, and
  // occasionally a server crash/restart, all over the adversarial net.
  workload::FailurePlan::RandomMix mix;
  mix.server_restarts = rng.bernoulli(0.25);
  const std::size_t failures = static_cast<std::size_t>(rng.uniform_int(0, 4));
  cfg.failures = workload::FailurePlan::random(rng, cfg.workload, failures, mix);

  if (negative) {
    // Break exactly one premise of Theorem 3.1, chosen at random; both must
    // independently defeat the protocol for the checker to have teeth.
    if (rng.bernoulli(0.5)) {
      // tau_c >= tau_s(1+eps): the client believes in a longer lease than
      // the server's provable-expiry wait covers.
      const double factor = (1.0 + cfg.lease.epsilon) * (1.5 + 1.5 * rng.uniform());
      cfg.client_tau = sim::local_seconds_d(tau_s * factor);
    } else {
      // Client clocks slower than rate synchronization permits: tau_c
      // stretches in real time beyond tau_s(1+eps).
      cfg.client_rate_scale = 1.0 / ((1.0 + cfg.lease.epsilon) * (1.8 + 1.2 * rng.uniform()));
    }
    // Guarantee the triggering scenario: one client partitioned long enough
    // to be stolen from while it still trusts its (over-long) lease, with
    // enough run left for other clients to rewrite its cached blocks.
    const double at = 0.25 * cfg.workload.run_seconds;
    const auto victim =
        static_cast<std::uint32_t>(rng.uniform_int(0, cfg.workload.num_clients - 1));
    cfg.failures.add(at, workload::FailureKind::kCtrlIsolate, victim);
    cfg.failures.add(0.9 * cfg.workload.run_seconds, workload::FailureKind::kCtrlHeal, victim);
    // Reads dominate so the stale cache actually gets consulted.
    cfg.workload.read_fraction = 0.7;
  }
  return ep;
}

EpisodeResult run_episode(const workload::ScenarioConfig& cfg, std::ostream* trace_to = nullptr,
                          const std::string& trace_save = {}) {
  workload::Scenario sc(cfg);
  auto r = sc.run();
  if (!trace_save.empty()) {
    std::ofstream f(trace_save, std::ios::binary);
    sc.recorder().save(f);
  }
  if (trace_to != nullptr) {
    sc.trace().print(*trace_to);
    // Raw history: lets a developer line the trace up against what the disk
    // and caches actually saw.
    for (const auto& w : sc.history().buffered_writes()) {
      *trace_to << w.at.seconds() << "s  n" << w.client.value() << "  [buffered] f"
                << w.stamp.file.value() << ":b" << w.stamp.block << " v" << w.stamp.version
                << "\n";
    }
    for (const auto& w : sc.history().disk_writes()) {
      *trace_to << w.at.seconds() << "s  n" << w.initiator.value() << "  [disk-write] f"
                << w.stamp.file.value() << ":b" << w.stamp.block << " v" << w.stamp.version
                << "\n";
    }
  }
  EpisodeResult out;
  out.violations = r.violations;
  out.details = std::move(r.violation_list);
  out.ops = r.reads_ok + r.writes_ok;
  out.net = r.net;
  out.lock_steals = r.server.lock_steals;
  out.nacks = r.server.nacks_sent;
  return out;
}

bool violates(const workload::ScenarioConfig& cfg) {
  return run_episode(cfg).violations.total() > 0;
}

// Re-runs a (deterministic) episode with the flight recorder attached and
// saves the binary trace next to the replay file, so a developer picking the
// repro up can open the timeline without reconstructing anything.
void dump_trace(workload::ScenarioConfig cfg, const std::string& path) {
  cfg.enable_trace = true;
  (void)run_episode(cfg, nullptr, path);
  std::printf("flight trace written to %s (inspect with tools/trace_dump)\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Replay files: every sampled parameter, fully materialized, so the file is
// self-contained (no re-derivation from the RNG needed — which is what lets
// the shrinker persist a minimized plan).

void write_replay(const std::string& path, const Episode& ep,
                  const verify::ViolationSummary& v, const net::NetStats& net) {
  std::ofstream f(path);
  const workload::ScenarioConfig& c = ep.cfg;
  f << "# stank fuzz_safety replay v1\n";
  f << "# violations: write_order=" << v.write_order << " stale_reads=" << v.stale_reads
    << " lost_updates=" << v.lost_updates << "\n";
  f << "# net: " << net.summary() << "\n";
  f << "episode_seed=" << ep.seed << "\n";
  f << "mode=" << (ep.negative ? "negative" : "valid") << "\n";
  f << "pattern=" << static_cast<int>(c.workload.pattern) << "\n";
  f << "num_clients=" << c.workload.num_clients << "\n";
  f << "num_files=" << c.workload.num_files << "\n";
  f << "file_blocks=" << c.workload.file_blocks << "\n";
  f << "read_fraction=" << c.workload.read_fraction << "\n";
  f << "mean_interarrival_s=" << c.workload.mean_interarrival_s << "\n";
  f << "zipf_s=" << c.workload.zipf_s << "\n";
  f << "run_seconds=" << c.workload.run_seconds << "\n";
  f << "workload_seed=" << c.workload.seed << "\n";
  f << "tau_s_ns=" << c.lease.tau.ns << "\n";
  f << "epsilon=" << c.lease.epsilon << "\n";
  f << "clock_skew_mode=" << c.clock_skew_mode << "\n";
  f << "tau_c_ns=" << c.client_tau.ns << "\n";
  f << "client_rate_scale=" << c.client_rate_scale << "\n";
  f << "net_latency_ns=" << c.control_net.latency.ns << "\n";
  f << "net_jitter_ns=" << c.control_net.jitter.ns << "\n";
  f << "net_drop=" << c.control_net.drop_probability << "\n";
  f << "net_dup=" << c.control_net.dup_probability << "\n";
  f << "net_reorder_prob=" << c.control_net.reorder_probability << "\n";
  f << "net_reorder_spike_ns=" << c.control_net.reorder_spike.ns << "\n";
  f << "net_ge_good_to_bad=" << c.control_net.ge_good_to_bad << "\n";
  f << "net_ge_bad_to_good=" << c.control_net.ge_bad_to_good << "\n";
  f << "net_burst_loss=" << c.control_net.burst_loss << "\n";
  for (const auto& ev : c.failures.events) {
    f << "failure=" << ev.at_s << " " << static_cast<int>(ev.kind) << " " << ev.client_idx
      << " " << ev.param_s << "\n";
  }
}

std::optional<Episode> read_replay(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  Episode ep;
  workload::ScenarioConfig& c = ep.cfg;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    std::istringstream in(val);
    if (key == "episode_seed") in >> ep.seed;
    else if (key == "mode") ep.negative = val == "negative";
    else if (key == "pattern") { int p; in >> p; c.workload.pattern = static_cast<workload::Pattern>(p); }
    else if (key == "num_clients") in >> c.workload.num_clients;
    else if (key == "num_files") in >> c.workload.num_files;
    else if (key == "file_blocks") in >> c.workload.file_blocks;
    else if (key == "read_fraction") in >> c.workload.read_fraction;
    else if (key == "mean_interarrival_s") in >> c.workload.mean_interarrival_s;
    else if (key == "zipf_s") in >> c.workload.zipf_s;
    else if (key == "run_seconds") in >> c.workload.run_seconds;
    else if (key == "workload_seed") in >> c.workload.seed;
    else if (key == "tau_s_ns") in >> c.lease.tau.ns;
    else if (key == "epsilon") in >> c.lease.epsilon;
    else if (key == "clock_skew_mode") in >> c.clock_skew_mode;
    else if (key == "tau_c_ns") in >> c.client_tau.ns;
    else if (key == "client_rate_scale") in >> c.client_rate_scale;
    else if (key == "net_latency_ns") in >> c.control_net.latency.ns;
    else if (key == "net_jitter_ns") in >> c.control_net.jitter.ns;
    else if (key == "net_drop") in >> c.control_net.drop_probability;
    else if (key == "net_dup") in >> c.control_net.dup_probability;
    else if (key == "net_reorder_prob") in >> c.control_net.reorder_probability;
    else if (key == "net_reorder_spike_ns") in >> c.control_net.reorder_spike.ns;
    else if (key == "net_ge_good_to_bad") in >> c.control_net.ge_good_to_bad;
    else if (key == "net_ge_bad_to_good") in >> c.control_net.ge_bad_to_good;
    else if (key == "net_burst_loss") in >> c.control_net.burst_loss;
    else if (key == "failure") {
      workload::FailureEvent ev;
      int kind = 0;
      in >> ev.at_s >> kind >> ev.client_idx >> ev.param_s;
      ev.kind = static_cast<workload::FailureKind>(kind);
      c.failures.events.push_back(ev);
    } else {
      std::fprintf(stderr, "replay: unknown key '%s'\n", key.c_str());
      return std::nullopt;
    }
  }
  return ep;
}

// ---------------------------------------------------------------------------
// Greedy failure-plan shrinker: repeatedly drop the first event whose
// removal keeps the episode violating, until no single removal does.

workload::ScenarioConfig shrink(workload::ScenarioConfig cfg, int* runs_out) {
  int runs = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < cfg.failures.events.size(); ++i) {
      workload::ScenarioConfig trial = cfg;
      trial.failures.events.erase(trial.failures.events.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      ++runs;
      if (violates(trial)) {
        cfg = std::move(trial);
        progress = true;
        break;
      }
    }
  }
  if (runs_out != nullptr) *runs_out = runs;
  return cfg;
}

void print_violations(const verify::ViolationSummary& v) {
  std::printf("  write-order races: %zu\n  stale reads:       %zu\n  lost updates:      %zu\n",
              v.write_order, v.stale_reads, v.lost_updates);
}

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_safety [--episodes N] [--seed S] [--out FILE]\n"
               "                   [--negative-control] [--quick] [--jobs N]\n"
               "       fuzz_safety --replay FILE [--trace]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t episodes = 1000;
  std::uint64_t seed = 1;
  bool negative = false;
  bool trace = false;
  unsigned jobs = 0;
  std::string out_path = "fuzz_replay.txt";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--episodes") {
      const char* v = next();
      if (!v) return usage();
      episodes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return usage();
      seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--jobs") {
      const char* v = next();
      if (!v) return usage();
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_path = v;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return usage();
      replay_path = v;
    } else if (a == "--negative-control") {
      negative = true;
    } else if (a == "--trace") {
      trace = true;
    } else if (a == "--quick") {
      episodes = 150;
    } else {
      return usage();
    }
  }

  // --- Replay mode ---------------------------------------------------------
  if (!replay_path.empty()) {
    auto ep = read_replay(replay_path);
    if (!ep) {
      std::fprintf(stderr, "fuzz_safety: cannot read replay file %s\n", replay_path.c_str());
      return 2;
    }
    std::printf("replaying %s (episode seed %llu, %s mode, %zu failure events)\n",
                replay_path.c_str(), static_cast<unsigned long long>(ep->seed),
                ep->negative ? "negative" : "valid", ep->cfg.failures.events.size());
    ep->cfg.enable_trace = trace;
    auto r = run_episode(ep->cfg, trace ? &std::cout : nullptr,
                         trace ? replay_path + ".trace" : std::string{});
    std::printf("ops completed: %llu; net %s; checker result:\n",
                static_cast<unsigned long long>(r.ops), r.net.summary().c_str());
    print_violations(r.violations);
    for (const auto& v : r.details) {
      std::printf("  [%s] t=%.4fs %s\n", verify::to_string(v.kind), v.at.seconds(),
                  v.detail.c_str());
    }
    return r.violations.total() > 0 ? 1 : 0;
  }

  // --- Sweep mode ----------------------------------------------------------
  std::printf("fuzz_safety: %zu %s episodes, master seed %llu\n", episodes,
              negative ? "NEGATIVE-CONTROL" : "paper-valid",
              static_cast<unsigned long long>(seed));

  std::vector<EpisodeResult> results(episodes);
  rt::parallel_for(
      episodes,
      [&](std::size_t i) { results[i] = run_episode(generate(seed, i, negative).cfg); },
      jobs);

  verify::ViolationSummary total;
  std::size_t violating = 0;
  std::uint64_t ops = 0, dup = 0, reordered = 0, burst = 0, steals = 0, nacks = 0;
  std::size_t first_violating = episodes;
  for (std::size_t i = 0; i < episodes; ++i) {
    const auto& r = results[i];
    total.write_order += r.violations.write_order;
    total.stale_reads += r.violations.stale_reads;
    total.lost_updates += r.violations.lost_updates;
    if (r.violations.total() > 0) {
      ++violating;
      if (first_violating == episodes) first_violating = i;
    }
    ops += r.ops;
    dup += r.net.duplicated;
    reordered += r.net.reordered;
    burst += r.net.dropped_burst;
    steals += r.lock_steals;
    nacks += r.nacks;
  }

  std::printf("episodes: %zu  violating: %zu  ops: %llu\n", episodes, violating,
              static_cast<unsigned long long>(ops));
  std::printf("adversity exercised: %llu dups, %llu reorder spikes, %llu burst drops, "
              "%llu lock steals, %llu NACKs\n",
              static_cast<unsigned long long>(dup), static_cast<unsigned long long>(reordered),
              static_cast<unsigned long long>(burst), static_cast<unsigned long long>(steals),
              static_cast<unsigned long long>(nacks));
  print_violations(total);

  if (negative) {
    // The checker must have teeth: broken premises => observed violations.
    if (violating == 0) {
      std::printf("NEGATIVE CONTROL FAILED: no violations despite broken timing premises —\n"
                  "the checker (or the fuzzer's reach) is toothless.\n");
      return 1;
    }
    const Episode ep = generate(seed, first_violating, negative);
    write_replay(out_path, ep, results[first_violating].violations,
                 results[first_violating].net);
    dump_trace(ep.cfg, out_path + ".trace");
    std::printf("negative control OK: %zu/%zu episodes violated as expected.\n"
                "replayable example: seed %llu -> %s\n",
                violating, episodes, static_cast<unsigned long long>(ep.seed),
                out_path.c_str());
    return 0;
  }

  if (violating > 0) {
    Episode ep = generate(seed, first_violating, negative);
    std::printf("\nSAFETY VIOLATION at episode %zu (seed %llu). Shrinking failure plan "
                "(%zu events)...\n",
                first_violating, static_cast<unsigned long long>(ep.seed),
                ep.cfg.failures.events.size());
    int shrink_runs = 0;
    ep.cfg = shrink(ep.cfg, &shrink_runs);
    std::printf("shrunk to %zu events in %d runs; replay written to %s\n",
                ep.cfg.failures.events.size(), shrink_runs, out_path.c_str());
    write_replay(out_path, ep, results[first_violating].violations,
                 results[first_violating].net);
    dump_trace(ep.cfg, out_path + ".trace");
    return 1;
  }

  std::printf("all clear: no violations in %zu paper-valid episodes.\n", episodes);
  return 0;
}
