// trace_dump: render a binary flight-recorder trace (.trace, written by
// obs::Recorder::save — e.g. the artifact fuzz_safety leaves next to a
// replay file) as a human-readable timeline, span-latency percentiles,
// Chrome/Perfetto trace-event JSON, or a machine-readable metrics dump.
//
// Usage:
//   trace_dump <file.trace>                 merged timeline to stdout
//   trace_dump <file.trace> --node N        timeline of node N only
//   trace_dump <file.trace> --spans         span histograms (p50/p95/p99),
//                                           global then per node in
//                                           ascending node-id order
//   trace_dump <file.trace> --series        sampled time series
//   trace_dump <file.trace> --metrics       JSON: spans, series, counters,
//                                           per-node event totals, watchdog
//   trace_dump <file.trace> --chrome [out]  trace-event JSON (default
//                                           <file>.json; "-" = stdout)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/histogram.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"

using namespace stank;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <file.trace> [--node N | --spans | --series | --metrics | --chrome [out]]\n",
      argv0);
  return 2;
}

void print_spans(const obs::Recorder& rec) {
  std::printf("%-16s %8s %10s %10s %10s %10s\n", "span", "count", "p50(ms)", "p95(ms)",
              "p99(ms)", "max(ms)");
  for (std::size_t k = 0; k < obs::kSpanKindCount; ++k) {
    const auto kind = static_cast<obs::SpanKind>(k);
    const metrics::Histogram& h = rec.span_hist(kind);
    if (h.count() == 0) continue;
    std::printf("%-16s %8zu %10.3f %10.3f %10.3f %10.3f\n", obs::to_string(kind), h.count(),
                h.quantile(0.5), h.quantile(0.95), h.quantile(0.99), h.max());
  }
  // Per-node event-kind histograms. Recorder::nodes() returns ascending
  // node ids and kinds iterate in enum order, so this block is stable
  // across runs and platforms — diffable triage output.
  for (NodeId node : rec.nodes()) {
    std::size_t counts[obs::kEventKindCount] = {};
    std::size_t total = 0;
    rec.visit_node(node, [&](const obs::Event& e) {
      counts[static_cast<std::size_t>(e.kind)] += 1;
      ++total;
    });
    std::printf("\nnode n%u (%zu retained events)\n", node.value(), total);
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
      if (counts[k] == 0) continue;
      std::printf("  %-22s %8zu\n", obs::to_string(static_cast<obs::EventKind>(k)),
                  counts[k]);
    }
  }
}

void print_series(const obs::Recorder& rec) {
  for (const obs::Series& s : rec.series()) {
    std::printf("# %s (%zu points)\n", s.name.c_str(), s.points.size());
    for (const obs::SeriesPoint& p : s.points) {
      std::printf("%.3f %.3f\n", p.t_s, p.value);
    }
  }
}

void json_string(const std::string& s) {
  std::putchar('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      std::putchar('\\');
      std::putchar(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::printf("\\u%04x", static_cast<int>(c));
    } else {
      std::putchar(c);
    }
  }
  std::putchar('"');
}

// Machine-readable summary of everything quantitative in the trace: span
// quantiles, series (counter registry snapshots land here as "ctr/..."
// series), per-node retained/event totals, and watchdog activity. Keys are
// emitted in deterministic order (enum order, ascending node id, series
// registration order) so two runs diff cleanly.
void print_metrics(const obs::Recorder& rec) {
  std::printf("{\n  \"events\": %zu,\n  \"dropped\": %llu,\n", rec.total_events(),
              static_cast<unsigned long long>(rec.dropped_events()));

  std::printf("  \"spans\": {");
  bool first = true;
  for (std::size_t k = 0; k < obs::kSpanKindCount; ++k) {
    const metrics::Histogram& h = rec.span_hist(static_cast<obs::SpanKind>(k));
    if (h.count() == 0) continue;
    std::printf("%s\n    ", first ? "" : ",");
    first = false;
    json_string(obs::to_string(static_cast<obs::SpanKind>(k)));
    std::printf(
        ": {\"count\": %zu, \"p50_ms\": %.6f, \"p95_ms\": %.6f, \"p99_ms\": %.6f, "
        "\"max_ms\": %.6f}",
        h.count(), h.quantile(0.5), h.quantile(0.95), h.quantile(0.99), h.max());
  }
  std::printf("\n  },\n");

  std::printf("  \"series\": {");
  first = true;
  for (const obs::Series& s : rec.series()) {
    double mn = 0.0;
    double mx = 0.0;
    double last = 0.0;
    if (!s.points.empty()) {
      mn = mx = last = s.points.front().value;
      for (const obs::SeriesPoint& p : s.points) {
        mn = p.value < mn ? p.value : mn;
        mx = p.value > mx ? p.value : mx;
        last = p.value;
      }
    }
    std::printf("%s\n    ", first ? "" : ",");
    first = false;
    json_string(s.name);
    std::printf(": {\"points\": %zu, \"min\": %g, \"max\": %g, \"last\": %g}",
                s.points.size(), mn, mx, last);
  }
  std::printf("\n  },\n");

  std::printf("  \"nodes\": {");
  first = true;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t watchdog_clears = 0;
  for (NodeId node : rec.nodes()) {
    std::size_t total = 0;
    rec.visit_node(node, [&](const obs::Event& e) {
      ++total;
      if (e.kind == obs::EventKind::kWatchdogTrip) ++watchdog_trips;
      if (e.kind == obs::EventKind::kWatchdogClear) ++watchdog_clears;
    });
    std::printf("%s\n    \"n%u\": %zu", first ? "" : ",", node.value(), total);
    first = false;
  }
  std::printf("\n  },\n");

  std::printf("  \"watchdog\": {\"trips\": %llu, \"clears\": %llu}\n}\n",
              static_cast<unsigned long long>(watchdog_trips),
              static_cast<unsigned long long>(watchdog_clears));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];

  obs::Recorder rec;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
      return 1;
    }
    if (!rec.load(in)) {
      std::fprintf(stderr, "trace_dump: %s is not a valid trace file\n", path.c_str());
      return 1;
    }
  }

  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode.empty()) {
    obs::write_timeline(rec, std::cout);
  } else if (mode == "--node") {
    if (argc < 4) return usage(argv[0]);
    const auto id = static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10));
    obs::write_timeline(rec, std::cout, /*filter_node=*/true, NodeId{id});
  } else if (mode == "--spans") {
    print_spans(rec);
  } else if (mode == "--series") {
    print_series(rec);
  } else if (mode == "--metrics") {
    print_metrics(rec);
  } else if (mode == "--chrome") {
    const std::string out = argc > 3 ? argv[3] : path + ".json";
    if (out == "-") {
      obs::write_chrome_trace(rec, std::cout);
    } else {
      std::ofstream os(out);
      if (!os) {
        std::fprintf(stderr, "trace_dump: cannot write %s\n", out.c_str());
        return 1;
      }
      obs::write_chrome_trace(rec, os);
      std::fprintf(stderr, "wrote %s\n", out.c_str());
    }
  } else {
    return usage(argv[0]);
  }

  std::fprintf(stderr, "%zu events across %zu nodes, %llu dropped (ring overflow)\n",
               rec.total_events(), rec.nodes().size(),
               static_cast<unsigned long long>(rec.dropped_events()));
  return 0;
}
