// trace_dump: render a binary flight-recorder trace (.trace, written by
// obs::Recorder::save — e.g. the artifact fuzz_safety leaves next to a
// replay file) as a human-readable timeline, span-latency percentiles, or
// Chrome/Perfetto trace-event JSON.
//
// Usage:
//   trace_dump <file.trace>                 merged timeline to stdout
//   trace_dump <file.trace> --node N        timeline of node N only
//   trace_dump <file.trace> --spans         span histograms (p50/p95/p99)
//   trace_dump <file.trace> --series        sampled time series
//   trace_dump <file.trace> --chrome [out]  trace-event JSON (default
//                                           <file>.json; "-" = stdout)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "metrics/histogram.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"

using namespace stank;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file.trace> [--node N | --spans | --series | --chrome [out]]\n",
               argv0);
  return 2;
}

void print_spans(const obs::Recorder& rec) {
  std::printf("%-16s %8s %10s %10s %10s %10s\n", "span", "count", "p50(ms)", "p95(ms)",
              "p99(ms)", "max(ms)");
  for (std::size_t k = 0; k < obs::kSpanKindCount; ++k) {
    const auto kind = static_cast<obs::SpanKind>(k);
    const metrics::Histogram& h = rec.span_hist(kind);
    if (h.count() == 0) continue;
    std::printf("%-16s %8zu %10.3f %10.3f %10.3f %10.3f\n", obs::to_string(kind), h.count(),
                h.quantile(0.5), h.quantile(0.95), h.quantile(0.99), h.max());
  }
}

void print_series(const obs::Recorder& rec) {
  for (const obs::Series& s : rec.series()) {
    std::printf("# %s (%zu points)\n", s.name.c_str(), s.points.size());
    for (const obs::SeriesPoint& p : s.points) {
      std::printf("%.3f %.3f\n", p.t_s, p.value);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];

  obs::Recorder rec;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
      return 1;
    }
    if (!rec.load(in)) {
      std::fprintf(stderr, "trace_dump: %s is not a valid trace file\n", path.c_str());
      return 1;
    }
  }

  const std::string mode = argc > 2 ? argv[2] : "";
  if (mode.empty()) {
    obs::write_timeline(rec, std::cout);
  } else if (mode == "--node") {
    if (argc < 4) return usage(argv[0]);
    const auto id = static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10));
    obs::write_timeline(rec, std::cout, /*filter_node=*/true, NodeId{id});
  } else if (mode == "--spans") {
    print_spans(rec);
  } else if (mode == "--series") {
    print_series(rec);
  } else if (mode == "--chrome") {
    const std::string out = argc > 3 ? argv[3] : path + ".json";
    if (out == "-") {
      obs::write_chrome_trace(rec, std::cout);
    } else {
      std::ofstream os(out);
      if (!os) {
        std::fprintf(stderr, "trace_dump: cannot write %s\n", out.c_str());
        return 1;
      }
      obs::write_chrome_trace(rec, os);
      std::fprintf(stderr, "wrote %s\n", out.c_str());
    }
  } else {
    return usage(argv[0]);
  }

  std::fprintf(stderr, "%zu events across %zu nodes, %llu dropped (ring overflow)\n",
               rec.total_events(), rec.nodes().size(),
               static_cast<unsigned long long>(rec.dropped_events()));
  return 0;
}
