// Per-node hardware clocks with bounded rate skew.
//
// The paper's only timing assumption (section 3) is *rate* synchronization:
// an interval of length t on one clock measures within (t/(1+eps), t(1+eps))
// on another. We model each node's clock as running at a fixed rate rho in
// [1/(1+eps), 1+eps] relative to true (global) time. There is no absolute
// synchronization: nodes cannot see global time at all.
#pragma once

#include <cmath>

#include "common/assert.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace stank::sim {

// Pure mapping between the global frame and one node's local frame.
class LocalClock {
 public:
  // rate = local seconds elapsed per global second; offset shifts the local
  // epoch (nodes do not share an epoch).
  explicit LocalClock(double rate = 1.0, LocalTime epoch = LocalTime{0})
      : rate_(rate), epoch_(epoch) {
    STANK_ASSERT_MSG(rate > 0.0, "clock must advance");
  }

  [[nodiscard]] double rate() const { return rate_; }

  [[nodiscard]] LocalTime local_now(SimTime global) const {
    return epoch_ + LocalDuration{llround_ns(static_cast<double>(global.ns) * rate_)};
  }

  // Converts a local duration into the global duration that elapses while
  // this clock counts it off.
  [[nodiscard]] Duration to_global(LocalDuration d) const {
    return Duration{llround_ns(static_cast<double>(d.ns) / rate_)};
  }

  [[nodiscard]] LocalDuration to_local(Duration d) const {
    return LocalDuration{llround_ns(static_cast<double>(d.ns) * rate_)};
  }

  // True if this clock's rate is within the paper's bound of another's:
  // an interval t on one clock measures within (t/(1+eps), t(1+eps)) on the
  // other.
  [[nodiscard]] bool rate_synchronized_with(const LocalClock& other, double eps) const {
    const double ratio = rate_ / other.rate_;
    return ratio < (1.0 + eps) && ratio > 1.0 / (1.0 + eps);
  }

 private:
  static std::int64_t llround_ns(double v) { return static_cast<std::int64_t>(std::llround(v)); }

  double rate_;
  LocalTime epoch_;
};

// A node's view of time: read the local clock, set timers in local units.
// This is the ONLY time interface node code (client/server) may use; the
// global frame is reserved for the fabric models and the verifier.
class NodeClock {
 public:
  NodeClock(Engine& engine, LocalClock clock) : engine_(&engine), clock_(clock) {}

  [[nodiscard]] LocalTime now() const { return clock_.local_now(engine_->now()); }

  // Schedules fn after a delay measured on THIS node's clock.
  TimerId schedule_after(LocalDuration d, EventFn fn) {
    return engine_->schedule_after(clock_.to_global(d), std::move(fn));
  }

  bool cancel(TimerId id) { return engine_->cancel(id); }
  [[nodiscard]] bool pending(TimerId id) const { return engine_->pending(id); }

  [[nodiscard]] const LocalClock& local_clock() const { return clock_; }
  [[nodiscard]] Engine& engine() const { return *engine_; }

 private:
  Engine* engine_;
  LocalClock clock_;
};

// Builds a clock rate drawn uniformly from the legal band [1/(1+eps), 1+eps].
// With adversarial = +1/-1, returns the extreme fast/slow rate — used by the
// Theorem 3.1 boundary tests.
inline double skewed_rate(double eps, double unit_draw, int adversarial = 0) {
  const double lo = 1.0 / (1.0 + eps);
  const double hi = 1.0 + eps;
  if (adversarial > 0) return hi;
  if (adversarial < 0) return lo;
  return lo + (hi - lo) * unit_draw;
}

}  // namespace stank::sim
