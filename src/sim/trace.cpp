#include "sim/trace.hpp"

#include <iomanip>

namespace stank::sim {

void TraceLog::record(SimTime at, NodeId node, std::string category, std::string detail) {
  events_.push_back(TraceEvent{at, node, std::move(category), std::move(detail)});
}

std::vector<TraceEvent> TraceLog::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceLog::by_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.node == node) {
      out.push_back(e);
    }
  }
  return out;
}

const TraceEvent* TraceLog::find(const std::string& category, const std::string& needle) const {
  for (const auto& e : events_) {
    if (e.category == category && e.detail.find(needle) != std::string::npos) {
      return &e;
    }
  }
  return nullptr;
}

std::size_t TraceLog::count(const std::string& category, const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category && e.detail.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

void TraceLog::print(std::ostream& os) const {
  for (const auto& e : events_) {
    os << std::fixed << std::setprecision(6) << e.at.seconds() << "s  " << e.node << "  ["
       << e.category << "] " << e.detail << "\n";
  }
}

}  // namespace stank::sim
