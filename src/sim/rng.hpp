// Deterministic pseudo-random number generation.
//
// We implement the generator and the distributions ourselves (xoshiro256++
// seeded via splitmix64) so that a given seed produces the identical event
// schedule on every platform and standard library. std::*_distribution output
// is implementation-defined and would break cross-machine reproducibility of
// the experiment tables.
#pragma once

#include <cstdint>
#include <vector>

namespace stank::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent stream; used to give each node its own RNG so the
  // order in which nodes draw numbers cannot perturb one another.
  [[nodiscard]] Rng fork(std::uint64_t stream);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  bool bernoulli(double p);
  // Zipf-distributed rank in [0, n), exponent s >= 0 (0 = uniform).
  std::size_t zipf(std::size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  // Cached Zipf normalization: recomputed only when (n, s) changes.
  std::size_t zipf_n_{0};
  double zipf_s_{-1.0};
  std::vector<double> zipf_cdf_;
};

// Shared Zipf CDF: build once, draw with any Rng via pick(rng.uniform()).
// Rng::zipf caches its table per instance, which is fine for a handful of
// generators but costs n doubles *per Rng* — a million per-member Rngs
// drawing from a 10k-entry pool would duplicate the table into tens of
// gigabytes. pick() consumes exactly one uniform draw, the same as
// Rng::zipf, so swapping between them preserves the RNG stream.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double s);
  // Rank in [0, n) for a uniform u in [0, 1).
  [[nodiscard]] std::size_t pick(double u) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace stank::sim
