#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/assert.hpp"

namespace stank::sim {

namespace {
std::atomic<std::uint64_t> g_events_executed{0};

// Bounds on the per-thread storage pools: 256 chunks is 64k slots (~4MB),
// far above any tier-1 scenario's live-timer peak; overflow simply frees.
constexpr std::size_t kMaxPooledChunks = 256;
constexpr std::size_t kMaxPooledHeaps = 2;
}  // namespace

std::vector<std::unique_ptr<Engine::Slot[]>>& Engine::chunk_pool() {
  thread_local std::vector<std::unique_ptr<Slot[]>> pool;
  return pool;
}

std::vector<std::vector<Engine::Entry>>& Engine::heap_pool() {
  thread_local std::vector<std::vector<Entry>> pool;
  return pool;
}

Engine::Engine() {
  auto& hpool = heap_pool();
  if (!hpool.empty()) {
    heap_ = std::move(hpool.back());
    hpool.pop_back();
  }
}

Engine::~Engine() {
  g_events_executed.fetch_add(executed_, std::memory_order_relaxed);
  auto& cpool = chunk_pool();
  for (auto& chunk : chunks_) {
    if (cpool.size() >= kMaxPooledChunks) break;
    for (std::uint32_t i = 0; i < kChunkSize; ++i) {
      chunk[i].fn.reset();
      chunk[i].gen = 1;
      chunk[i].next_free = kNoSlot;
    }
    cpool.push_back(std::move(chunk));
  }
  auto& hpool = heap_pool();
  if (hpool.size() < kMaxPooledHeaps && heap_.capacity() > 0) {
    heap_.clear();
    hpool.push_back(std::move(heap_));
  }
}

std::uint64_t Engine::global_events_executed() {
  return g_events_executed.load(std::memory_order_relaxed);
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot(idx).next_free;
    return idx;
  }
  STANK_ASSERT_MSG(num_slots_ < kNoSlot, "timer slot pool exhausted");
  if ((num_slots_ & (kChunkSize - 1)) == 0) {
    auto& cpool = chunk_pool();
    if (!cpool.empty()) {
      chunks_.push_back(std::move(cpool.back()));
      cpool.pop_back();
    } else {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
  }
  return num_slots_++;
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.fn.reset();
  ++s.gen;  // invalidates every outstanding TimerId / heap entry for the slot
  s.next_free = free_head_;
  free_head_ = idx;
  --live_;
}

void Engine::heap_push(const Entry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_sift_down(std::size_t hole, const Entry& e) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], e)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = e;
}

void Engine::heap_pop_top() {
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_sift_down(0, last);
  }
}

TimerId Engine::schedule_at(SimTime t, EventFn fn) {
  STANK_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  STANK_ASSERT(fn != nullptr);
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  s.fn = std::move(fn);
  ++live_;
  heap_push(Entry{t, next_seq_++, idx, s.gen});
  return make_id(idx, s.gen);
}

bool Engine::cancel(TimerId id) {
  const std::uint32_t idx = slot_of(id);
  if (idx >= num_slots_ || slot(idx).gen != gen_of(id)) {
    return false;  // already ran, already cancelled, or never existed
  }
  release_slot(idx);
  ++tombstones_;  // its heap entry is now dead; discarded lazily
  if (tombstones_ * 2 > heap_.size() && heap_.size() > 64) {
    compact();
  }
  return true;
}

void Engine::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  // Heapify bottom-up: O(n), and correct because every subtree below the
  // last parent is already a heap of one.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      const Entry e = heap_[i];
      heap_sift_down(i, e);
    }
  }
  tombstones_ = 0;
}

void Engine::discard_dead_top() {
  if (tombstones_ == 0) {
    return;  // nothing cancelled since the last compact: top must be live
  }
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_pop_top();
    --tombstones_;
  }
}

SimTime Engine::next_event_time() {
  discard_dead_top();
  if (heap_.empty()) {
    return kNever;
  }
  return heap_.front().at;
}

bool Engine::step() {
  discard_dead_top();
  if (heap_.empty()) {
    return false;
  }
  const Entry e = heap_.front();
  heap_pop_top();
  STANK_ASSERT(e.at >= now_);
  now_ = e.at;
  Slot& s = slot(e.slot);
  // Invalidate the id before invoking so a self-cancel inside the callback is
  // a no-op, then run the callback IN PLACE: chunked slot storage is
  // pointer-stable, so events scheduled by the callback cannot move it. The
  // slot only joins the free list afterwards, so it cannot be reused from
  // under the running closure either.
  ++s.gen;
  --live_;
  ++executed_;
  STANK_ASSERT_MSG(executed_ <= event_limit_, "event limit exceeded: runaway simulation?");
  s.fn.consume();
  s.next_free = free_head_;
  free_head_ = e.slot;
  return true;
}

void Engine::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!stop_requested_) {
    discard_dead_top();
    if (heap_.empty() || heap_.front().at > horizon) {
      break;
    }
    step();
  }
  // An idle engine advances to the horizon; a stopped one stays at the time
  // of the last executed event.
  if (!stop_requested_ && now_ < horizon) {
    now_ = horizon;
  }
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

}  // namespace stank::sim
