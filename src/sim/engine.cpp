#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace stank::sim {

TimerId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  STANK_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  STANK_ASSERT(fn != nullptr);
  const TimerId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(TimerId id) { return callbacks_.erase(id) > 0; }

bool Engine::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled; discard tombstone
      continue;
    }
    queue_.pop();
    STANK_ASSERT(e.at >= now_);
    now_ = e.at;
    // Move the callback out before invoking: the callback may schedule new
    // events, which can rehash callbacks_.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    STANK_ASSERT_MSG(executed_ <= event_limit_, "event limit exceeded: runaway simulation?");
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!stop_requested_) {
    // Peek past tombstones to find the next live event time.
    while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > horizon) {
      break;
    }
    step();
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

}  // namespace stank::sim
