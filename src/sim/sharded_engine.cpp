#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "rt/barrier.hpp"
#include "rt/parallel.hpp"

namespace stank::sim {

ShardedEngine::ShardedEngine(Config cfg) : cfg_(cfg) {
  STANK_ASSERT_MSG(cfg.shards >= 1, "need at least one shard");
  STANK_ASSERT_MSG(cfg.window.ns > 0, "window must be positive");
  shards_.reserve(cfg.shards);
  for (unsigned s = 0; s < cfg.shards; ++s) {
    shards_.push_back(std::make_unique<Engine>());
  }
  next_event_ns_.assign(cfg.shards, Engine::kNever.ns);
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& e : shards_) total += e->events_executed();
  return total;
}

std::size_t ShardedEngine::events_pending() const {
  std::size_t total = 0;
  for (const auto& e : shards_) total += e->events_pending();
  return total;
}

void ShardedEngine::set_telemetry(Telemetry tel) {
  tel_ = std::move(tel);
  if (tel_.counters == nullptr) return;
  obs::Counters& c = *tel_.counters;
  STANK_ASSERT_MSG(!c.frozen(), "set_telemetry registers counters; call before freeze()");
  tel_ids_.events = c.add("engine.events");
  tel_ids_.windows = c.add("engine.windows", obs::Counters::Merge::kMax);
  tel_ids_.idle_windows = c.add("engine.idle_windows");
  tel_ids_.idle_ns = c.add("engine.idle_ns");
  tel_ids_.imbalance = c.add("engine.imbalance_permille", obs::Counters::Merge::kMax);
  tel_ids_.barrier_waits = c.add("barrier.waits");
  tel_ids_.barrier_last = c.add("barrier.last_arrivals");
  tel_ids_.barrier_spins = c.add("barrier.spin_rounds");
  tel_ids_.barrier_yields = c.add("barrier.yields");
  tel_ids_.barrier_wait_ns = c.add("barrier.wait_ns_total");
  tel_ids_.barrier_wait_hist = c.add_hist("barrier.wait_ns");
  tel_prev_events_.resize(shard_count());
  tel_snap_events_.resize(shard_count());
  for (unsigned s = 0; s < shard_count(); ++s) {
    tel_prev_events_[s] = shards_[s]->events_executed();
    tel_snap_events_[s] = tel_prev_events_[s];
  }
  tel_wait_.assign(shard_count(), rt::Barrier::WaitStats{});
}

void ShardedEngine::run_until(SimTime horizon) {
  if (horizon <= frontier_) return;
  if (shards_.size() == 1) {
    // Serial fast path: no windows, no barriers — byte-identical to the
    // pre-sharding engine (the determinism tests pin this).
    shards_[0]->run_until(horizon);
    frontier_ = horizon;
    if (tel_.counters != nullptr) {
      const std::uint64_t ex = shards_[0]->events_executed();
      tel_.counters->add_to(0, tel_ids_.events, ex - tel_prev_events_[0]);
      tel_prev_events_[0] = ex;
    }
    return;
  }
  unsigned workers = cfg_.threads != 0 ? cfg_.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min<unsigned>(workers, shard_count());
  run_windows(horizon, workers);
  frontier_ = horizon;
}

void ShardedEngine::run_windows(SimTime horizon, unsigned workers) {
  const unsigned k = shard_count();
  const std::int64_t w = cfg_.window.ns;
  obs::Counters* const ctr = tel_.counters;
  const std::uint64_t snap_every = ctr != nullptr ? tel_.snapshot_every_windows : 0;
  rt::Barrier barrier(workers);
  // Every worker executes the identical window loop over its own shard
  // subset (s ≡ worker mod workers, a fixed assignment); all control-flow
  // decisions below are functions of barrier-synchronized shared state, so
  // every worker takes the same branches in lockstep.
  rt::parallel_for(
      workers,
      [&](std::size_t worker) {
        // Null when dark: every barrier crossing below stays the original
        // untimed path, and every counter site is one untaken branch.
        rt::Barrier::WaitStats* const ws =
            ctr != nullptr ? &tel_wait_[worker] : nullptr;
        std::uint64_t windows_run = 0;
        SimTime base = frontier_;
        while (base < horizon) {
          const SimTime wend{std::min(base.ns + w, horizon.ns)};
          // Phase 1: run the window. Shard-local by construction, so the
          // events/window accounting (a delta of the shard-private
          // events_executed counter into the shard's own bank) is too.
          for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
            shards_[s]->run_until(wend);
            if (ctr != nullptr) {
              const std::uint64_t ex = shards_[s]->events_executed();
              ctr->add_to(s, tel_ids_.events, ex - tel_prev_events_[s]);
              tel_prev_events_[s] = ex;
              ctr->add_to(s, tel_ids_.windows, 1);
            }
          }
          barrier.arrive_and_wait(ws);
          // Phase 2: exchange. Each worker injects the cross-shard traffic
          // destined for its own shards (SPSC mailbox drain), then publishes
          // the shard's next pending-event time for the skip decision.
          for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
            if (exchange_ != nullptr) exchange_->deliver(s, wend);
            next_event_ns_[s] = shards_[s]->next_event_time().ns;
          }
          barrier.arrive_and_wait(ws);
          // Phase 3: all workers compute the same skip from the same array.
          std::int64_t earliest = Engine::kNever.ns;
          for (unsigned s = 0; s < k; ++s) earliest = std::min(earliest, next_event_ns_[s]);
          if (earliest > wend.ns) {
            // No shard has work before `earliest`: jump the base over the
            // idle gap, landing on the window-grid edge at or before the
            // earlier of next-event and horizon (the clamp keeps kNever
            // finite and the grid aligned).
            const std::int64_t target = std::min(earliest, horizon.ns);
            const std::int64_t skip = (target - wend.ns) / w;
            base = SimTime{wend.ns + skip * w};
            // Worker 0 owns shard 0's bank here; no other worker touches it
            // between the phase-2 barrier and the next phase-1 barrier.
            if (ctr != nullptr && worker == 0 && skip > 0) {
              ctr->add_to(0, tel_ids_.idle_windows, static_cast<std::uint64_t>(skip));
              ctr->add_to(0, tel_ids_.idle_ns, static_cast<std::uint64_t>(skip * w));
            }
          } else {
            base = wend;
          }
          ++windows_run;
          // Snapshot windows: one extra rendezvous pair, identical decision
          // on every worker (windows_run advances in lockstep). Worker 0
          // reads all banks between the barriers; everyone else is parked.
          if (snap_every != 0 && windows_run % snap_every == 0) {
            barrier.arrive_and_wait(ws);
            if (worker == 0) snapshot_tick(wend);
            barrier.arrive_and_wait(ws);
          }
        }
        // The loop can exit with shard clocks short of the horizon (drained
        // queues, or a skip that landed exactly on it). A serial run_until
        // advances an idle engine's clock to the horizon — and runs events
        // scheduled exactly at it — so do the same per shard. Anything these
        // events send cross-shard arrives past the horizon and waits in its
        // mailbox for the next run.
        for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
          shards_[s]->run_until(horizon);
          if (ctr != nullptr) {
            const std::uint64_t ex = shards_[s]->events_executed();
            ctr->add_to(s, tel_ids_.events, ex - tel_prev_events_[s]);
            tel_prev_events_[s] = ex;
          }
        }
      },
      workers);
  if (ctr != nullptr) fold_wait_stats(workers);
}

// Worker 0 only, between the snapshot barriers: every other worker is
// parked, so cross-bank reads are race-free (the barrier's acq_rel
// rendezvous published their writes).
void ShardedEngine::snapshot_tick(SimTime window_end) {
  obs::Counters& c = *tel_.counters;
  const unsigned k = shard_count();
  std::uint64_t max_d = 0;
  std::uint64_t total = 0;
  for (unsigned s = 0; s < k; ++s) {
    const std::uint64_t cur = c.value(s, tel_ids_.events);
    const std::uint64_t d = cur - tel_snap_events_[s];
    tel_snap_events_[s] = cur;
    max_d = std::max(max_d, d);
    total += d;
  }
  if (total > 0) {
    const double mean = static_cast<double>(total) / static_cast<double>(k);
    c.gauge_max(0, tel_ids_.imbalance,
                static_cast<std::uint64_t>(1000.0 * static_cast<double>(max_d) / mean));
  }
  if (tel_.on_snapshot) tel_.on_snapshot(window_end);
}

// After the parallel_for join: the workers are gone, their WaitStats are
// plain memory owned by this (the caller's) thread.
void ShardedEngine::fold_wait_stats(unsigned workers) {
  obs::Counters& c = *tel_.counters;
  for (unsigned wk = 0; wk < workers; ++wk) {
    rt::Barrier::WaitStats& ws = tel_wait_[wk];
    c.add_to(wk, tel_ids_.barrier_waits, ws.waits);
    c.add_to(wk, tel_ids_.barrier_last, ws.last_arrivals);
    c.add_to(wk, tel_ids_.barrier_spins, ws.spin_rounds);
    c.add_to(wk, tel_ids_.barrier_yields, ws.yields);
    c.add_to(wk, tel_ids_.barrier_wait_ns, ws.wait_ns);
    for (unsigned b = 0; b < ws.wait_ns_buckets.size(); ++b) {
      if (ws.wait_ns_buckets[b] != 0) {
        c.add_hist_count(wk, tel_ids_.barrier_wait_hist, b, ws.wait_ns_buckets[b]);
      }
    }
    ws.reset();
  }
}

}  // namespace stank::sim
