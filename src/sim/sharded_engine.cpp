#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <thread>

#include "common/assert.hpp"
#include "rt/barrier.hpp"
#include "rt/parallel.hpp"

namespace stank::sim {

ShardedEngine::ShardedEngine(Config cfg) : cfg_(cfg) {
  STANK_ASSERT_MSG(cfg.shards >= 1, "need at least one shard");
  STANK_ASSERT_MSG(cfg.window.ns > 0, "window must be positive");
  shards_.reserve(cfg.shards);
  for (unsigned s = 0; s < cfg.shards; ++s) {
    shards_.push_back(std::make_unique<Engine>());
  }
  next_event_ns_.assign(cfg.shards, Engine::kNever.ns);
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& e : shards_) total += e->events_executed();
  return total;
}

std::size_t ShardedEngine::events_pending() const {
  std::size_t total = 0;
  for (const auto& e : shards_) total += e->events_pending();
  return total;
}

void ShardedEngine::run_until(SimTime horizon) {
  if (horizon <= frontier_) return;
  if (shards_.size() == 1) {
    // Serial fast path: no windows, no barriers — byte-identical to the
    // pre-sharding engine (the determinism tests pin this).
    shards_[0]->run_until(horizon);
    frontier_ = horizon;
    return;
  }
  unsigned workers = cfg_.threads != 0 ? cfg_.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min<unsigned>(workers, shard_count());
  run_windows(horizon, workers);
  frontier_ = horizon;
}

void ShardedEngine::run_windows(SimTime horizon, unsigned workers) {
  const unsigned k = shard_count();
  const std::int64_t w = cfg_.window.ns;
  rt::Barrier barrier(workers);
  // Every worker executes the identical window loop over its own shard
  // subset (s ≡ worker mod workers, a fixed assignment); all control-flow
  // decisions below are functions of barrier-synchronized shared state, so
  // every worker takes the same branches in lockstep.
  rt::parallel_for(
      workers,
      [&](std::size_t worker) {
        SimTime base = frontier_;
        while (base < horizon) {
          const SimTime wend{std::min(base.ns + w, horizon.ns)};
          // Phase 1: run the window. Shard-local by construction.
          for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
            shards_[s]->run_until(wend);
          }
          barrier.arrive_and_wait();
          // Phase 2: exchange. Each worker injects the cross-shard traffic
          // destined for its own shards (SPSC mailbox drain), then publishes
          // the shard's next pending-event time for the skip decision.
          for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
            if (exchange_ != nullptr) exchange_->deliver(s, wend);
            next_event_ns_[s] = shards_[s]->next_event_time().ns;
          }
          barrier.arrive_and_wait();
          // Phase 3: all workers compute the same skip from the same array.
          std::int64_t earliest = Engine::kNever.ns;
          for (unsigned s = 0; s < k; ++s) earliest = std::min(earliest, next_event_ns_[s]);
          if (earliest > wend.ns) {
            // No shard has work before `earliest`: jump the base over the
            // idle gap, landing on the window-grid edge at or before the
            // earlier of next-event and horizon (the clamp keeps kNever
            // finite and the grid aligned).
            const std::int64_t target = std::min(earliest, horizon.ns);
            const std::int64_t skip = (target - wend.ns) / w;
            base = SimTime{wend.ns + skip * w};
          } else {
            base = wend;
          }
        }
        // The loop can exit with shard clocks short of the horizon (drained
        // queues, or a skip that landed exactly on it). A serial run_until
        // advances an idle engine's clock to the horizon — and runs events
        // scheduled exactly at it — so do the same per shard. Anything these
        // events send cross-shard arrives past the horizon and waits in its
        // mailbox for the next run.
        for (unsigned s = static_cast<unsigned>(worker); s < k; s += workers) {
          shards_[s]->run_until(horizon);
        }
      },
      workers);
}

}  // namespace stank::sim
