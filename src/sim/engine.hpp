// Discrete-event simulation engine.
//
// A single priority queue of (global time, sequence) ordered events. All node
// behaviour — message delivery, disk service, lease timers — runs inside
// events. Ties are broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace stank::sim {

using TimerId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules fn at absolute global time t (>= now). Returns an id usable
  // with cancel().
  TimerId schedule_at(SimTime t, std::function<void()> fn);
  TimerId schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  // Returns true if the event was still pending.
  bool cancel(TimerId id);

  [[nodiscard]] bool pending(TimerId id) const { return callbacks_.contains(id); }

  // Executes the next event. Returns false if the queue is empty.
  bool step();

  // Runs events until the queue is empty, the horizon is passed, or stop()
  // is called. Events scheduled exactly at the horizon still run.
  void run_until(SimTime horizon);

  // Runs until the queue drains or the safety limit on executed events trips
  // (which aborts: a drained queue is the only legitimate way to finish).
  void run();

  // Requests that the current run_until()/run() return after the current
  // event completes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return callbacks_.size(); }

  // Safety valve against runaway event loops; default is generous.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    TimerId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{};
  std::uint64_t next_seq_{0};
  TimerId next_id_{1};
  std::uint64_t executed_{0};
  std::uint64_t event_limit_{500'000'000};
  bool stop_requested_{false};

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<TimerId, std::function<void()>> callbacks_;
};

}  // namespace stank::sim
