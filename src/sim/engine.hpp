// Discrete-event simulation engine.
//
// A single binary heap of (global time, sequence) ordered events. All node
// behaviour — message delivery, disk service, lease timers — runs inside
// events. Ties are broken by insertion order so runs are fully deterministic.
//
// Hot-path design: callbacks live in a generation-checked slot pool and are
// stored as small-buffer EventFn (no heap allocation for typical closures,
// no hashing anywhere). A TimerId encodes {slot, generation}, so cancel() is
// two array accesses. Cancelled heap entries become tombstones that are
// discarded lazily; when they outnumber the live entries the heap is
// compacted, which keeps queue memory O(live timers) under the
// schedule/cancel-heavy lease-renewal workload.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace stank::sim {

using TimerId = std::uint64_t;

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules fn at absolute global time t (>= now). Returns an id usable
  // with cancel().
  TimerId schedule_at(SimTime t, EventFn fn);
  TimerId schedule_after(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  // Returns true if the event was still pending.
  bool cancel(TimerId id);

  [[nodiscard]] bool pending(TimerId id) const {
    const std::uint32_t s = slot_of(id);
    return s < num_slots_ && slot(s).gen == gen_of(id);
  }

  // Executes the next event. Returns false if the queue is empty.
  bool step();

  // Runs events until the queue is empty, the horizon is passed, or stop()
  // is called. Events scheduled exactly at the horizon still run. An idle or
  // drained engine advances its clock to the horizon; a stopped one stays at
  // the time of the last executed event.
  void run_until(SimTime horizon);

  // Runs until the queue drains or the safety limit on executed events trips
  // (which aborts: a drained queue is the only legitimate way to finish).
  void run();

  // Requests that the current run_until()/run() return after the current
  // event completes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return live_; }

  // Sentinel for "no pending event".
  static constexpr SimTime kNever{INT64_MAX};

  // Time of the earliest live pending event, or kNever when the queue is
  // empty. Non-const: discards dead heap tops on the way, amortized by the
  // same tombstone accounting step() relies on. The sharded engine uses this
  // to skip idle windows deterministically.
  [[nodiscard]] SimTime next_event_time();

  // Heap entries currently held, live + tombstones. Compaction keeps this
  // O(live timers); exposed so tests can assert the bound.
  [[nodiscard]] std::size_t queue_depth() const { return heap_.size(); }

  // Safety valve against runaway event loops; default is generous.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  // Process-wide total of events executed by engines that have been
  // destroyed — the bench reporter's cross-scenario throughput counter.
  // Accumulated only in ~Engine, so it costs the hot path nothing.
  [[nodiscard]] static std::uint64_t global_events_executed();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  // A registered callback. `gen` changes whenever the slot is vacated, so a
  // stale TimerId or heap entry can never touch a reused slot.
  struct Slot {
    EventFn fn;
    std::uint32_t gen{1};
    std::uint32_t next_free{kNoSlot};
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  // Slots live in fixed-size chunks so their addresses are stable while the
  // pool grows — step() runs callbacks in place, and a callback scheduling
  // new events must not invalidate the slot it is running from.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  static TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<TimerId>(gen) << 32) | slot;
  }
  static std::uint32_t slot_of(TimerId id) { return static_cast<std::uint32_t>(id); }
  static std::uint32_t gen_of(TimerId id) { return static_cast<std::uint32_t>(id >> 32); }

  static bool entry_before(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] Slot& slot(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }
  [[nodiscard]] bool entry_live(const Entry& e) const { return slot(e.slot).gen == e.gen; }

  // Thread-local recycling of the two bulk allocations — slot chunks and the
  // heap array — so back-to-back engines (fuzz episodes, bench sweeps) reuse
  // the previous engine's memory instead of re-growing from empty. Donated
  // chunks are scrubbed (callbacks destroyed, generations reset) in ~Engine,
  // off every hot path.
  static std::vector<std::unique_ptr<Slot[]>>& chunk_pool();
  static std::vector<std::vector<Entry>>& heap_pool();

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void discard_dead_top();  // pops tombstones off the heap top
  void compact();

  // 4-ary min-heap over heap_: half the depth of a binary heap and each
  // sibling scan stays within two cache lines, which is what the pop path is
  // bounded by at queue sizes the sweeps reach.
  void heap_push(const Entry& e);
  void heap_pop_top();
  void heap_sift_down(std::size_t hole, const Entry& e);

  SimTime now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t event_limit_{500'000'000};
  bool stop_requested_{false};

  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t num_slots_{0};
  std::uint32_t free_head_{kNoSlot};
  std::size_t live_{0};
  std::size_t tombstones_{0};
};

}  // namespace stank::sim
