// Simulated time.
//
// Two distinct time frames exist in this system and the whole point of the
// paper's clock model is that they must never be confused:
//
//  * Global time (SimTime/Duration)  — the simulator's omniscient frame, in
//    nanoseconds. Real nodes do not have access to it.
//  * Local time (LocalTime/LocalDuration) — what a node's own hardware clock
//    reads. Each node's clock runs at a fixed rate within the paper's
//    rate-synchronization bound epsilon of true time.
//
// The types are distinct so that passing a local duration where a global one
// is expected fails to compile.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace stank::sim {

namespace time_detail {

template <typename Tag>
struct DurationT {
  std::int64_t ns{0};

  friend constexpr auto operator<=>(DurationT, DurationT) = default;
  friend constexpr DurationT operator+(DurationT a, DurationT b) { return {a.ns + b.ns}; }
  friend constexpr DurationT operator-(DurationT a, DurationT b) { return {a.ns - b.ns}; }
  friend constexpr DurationT operator*(DurationT a, std::int64_t k) { return {a.ns * k}; }
  friend constexpr DurationT operator/(DurationT a, std::int64_t k) { return {a.ns / k}; }
  friend DurationT operator*(DurationT a, double k) {
    return {static_cast<std::int64_t>(std::llround(static_cast<double>(a.ns) * k))};
  }
  friend DurationT operator/(DurationT a, double k) {
    return {static_cast<std::int64_t>(std::llround(static_cast<double>(a.ns) / k))};
  }
  constexpr DurationT& operator+=(DurationT b) {
    ns += b.ns;
    return *this;
  }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns) / 1e6; }
};

template <typename Tag>
struct TimePointT {
  std::int64_t ns{0};

  friend constexpr auto operator<=>(TimePointT, TimePointT) = default;
  friend constexpr TimePointT operator+(TimePointT t, DurationT<Tag> d) { return {t.ns + d.ns}; }
  friend constexpr TimePointT operator-(TimePointT t, DurationT<Tag> d) { return {t.ns - d.ns}; }
  friend constexpr DurationT<Tag> operator-(TimePointT a, TimePointT b) { return {a.ns - b.ns}; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, DurationT<Tag> d) {
  return os << d.seconds() << "s";
}
template <typename Tag>
std::ostream& operator<<(std::ostream& os, TimePointT<Tag> t) {
  return os << "@" << t.seconds() << "s";
}

struct GlobalTag {};
struct LocalTag {};

}  // namespace time_detail

// The simulator's true frame.
using Duration = time_detail::DurationT<time_detail::GlobalTag>;
using SimTime = time_detail::TimePointT<time_detail::GlobalTag>;

// A node's own hardware-clock frame.
using LocalDuration = time_detail::DurationT<time_detail::LocalTag>;
using LocalTime = time_detail::TimePointT<time_detail::LocalTag>;

// Duration literal helpers (usable for either frame via the templated tag).
constexpr Duration nanos(std::int64_t n) { return {n}; }
constexpr Duration micros(std::int64_t n) { return {n * 1'000}; }
constexpr Duration millis(std::int64_t n) { return {n * 1'000'000}; }
constexpr Duration seconds(std::int64_t n) { return {n * 1'000'000'000}; }
constexpr Duration seconds_d(double s) {
  return {static_cast<std::int64_t>(s * 1e9)};
}

constexpr LocalDuration local_nanos(std::int64_t n) { return {n}; }
constexpr LocalDuration local_micros(std::int64_t n) { return {n * 1'000}; }
constexpr LocalDuration local_millis(std::int64_t n) { return {n * 1'000'000}; }
constexpr LocalDuration local_seconds(std::int64_t n) { return {n * 1'000'000'000}; }
constexpr LocalDuration local_seconds_d(double s) {
  return {static_cast<std::int64_t>(s * 1e9)};
}

}  // namespace stank::sim
