// Sharded parallel discrete-event engine.
//
// Partitions the simulated node population across K shards, each owning a
// full serial Engine (its own event queue, clock and — by construction of
// the fabrics above it — its own RNG streams). Shards advance concurrently
// under conservative time-window synchronization: simulated time is cut into
// fixed windows of length `window` (by default the ControlNet delivery
// bucket, 10us), every shard runs its own events for the window with no
// cross-shard interaction, and at the window barrier cross-shard traffic is
// exchanged through the registered ShardExchange (per-(src,dst) SPSC
// mailboxes in net::ShardedNet). The scheme is safe iff no event on one
// shard can affect another shard within the same window — i.e. the minimum
// cross-shard propagation delay (the ControlNet base latency, 200us by
// default) is at least `window`. The exchange asserts that contract per
// datagram.
//
// Determinism contract:
//  * A fixed (seed, K) run is bit-identical regardless of worker-thread
//    count: shard execution within a window touches only shard-local state,
//    mailboxes are single-producer/single-consumer with the barrier
//    providing the ordering, and co-timed cross-shard arrivals are merged in
//    (arrival time, source shard, source sequence) order at the barrier.
//    Worker count only changes which OS thread runs a shard, never what the
//    shard computes.
//  * K = 1 bypasses the window loop entirely — one run_until() straight on
//    the serial engine — so a single-shard run reproduces the pre-sharding
//    engine byte for byte and the consistency checker, replay corpus and
//    serial tests stay valid.
//
// Idle windows are skipped deterministically: at each barrier every worker
// computes the same global earliest-pending-event time (from a plain array
// each worker partially filled before the barrier) and jumps the window base
// forward over gaps where no shard has work. Sparse phases therefore cost
// O(events), not O(simulated time / window).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/counters.hpp"
#include "rt/barrier.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace stank::sim {

// Cross-shard input source, implemented by the sharded fabrics (ShardedNet).
// deliver() runs once per (shard, window barrier), on the worker thread that
// owns dst_shard, strictly after every shard finished running the window and
// strictly before any shard starts the next one.
class ShardExchange {
 public:
  virtual ~ShardExchange() = default;
  // Must schedule all pending cross-shard input destined for dst_shard onto
  // that shard's engine. Everything scheduled must lie at or beyond
  // window_end — the conservative lookahead contract.
  virtual void deliver(unsigned dst_shard, SimTime window_end) = 0;
};

class ShardedEngine {
 public:
  struct Config {
    unsigned shards{1};
    // Window length = cross-shard lookahead. Must not exceed the minimum
    // cross-shard propagation delay of the fabrics built on top.
    Duration window{micros(10)};
    // Worker threads for run_until (0 = hardware_concurrency), capped at the
    // shard count. Affects wall-clock only, never results.
    unsigned threads{0};
  };

  explicit ShardedEngine(Config cfg);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  [[nodiscard]] Engine& shard(unsigned s) { return *shards_[s]; }
  [[nodiscard]] const Engine& shard(unsigned s) const { return *shards_[s]; }
  [[nodiscard]] Duration window() const { return cfg_.window; }

  // The synchronized window frontier: every shard has run to at least here.
  [[nodiscard]] SimTime now() const { return frontier_; }

  void set_exchange(ShardExchange* x) { exchange_ = x; }

  // -- telemetry (optional; dark by default) -------------------------------
  // When armed, the window loop feeds per-shard counters — events/window,
  // executed and idle-skipped windows, a load-imbalance gauge, and the
  // barrier's wait-time histogram — into the registry. Counters are written
  // only by each shard's owning worker and read only at barrier-protected
  // points, so arming adds zero atomics, zero engine events, and zero RNG
  // draws: an armed run is bit-identical to a dark one (the digest tests
  // pin this). set_telemetry() registers the counters; call it before the
  // registry's freeze().
  struct Telemetry {
    obs::Counters* counters{nullptr};
    // Snapshot cadence in executed windows; 0 disables snapshots. On a
    // snapshot window every worker takes one extra barrier pair; worker 0
    // refreshes the imbalance gauge and runs on_snapshot in between.
    std::uint64_t snapshot_every_windows{0};
    // Runs on worker 0 with every other worker parked at the barrier: all
    // shard state is happens-before-visible and safe to read. Must not
    // schedule engine events (that would break the determinism digest).
    std::function<void(SimTime window_end)> on_snapshot;
  };
  void set_telemetry(Telemetry tel);

  // Advances every shard to `horizon` under window synchronization. With one
  // shard this is exactly Engine::run_until on the lone shard.
  void run_until(SimTime horizon);

  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::size_t events_pending() const;

 private:
  struct TelemetryIds {
    obs::Counters::Id events;           // kSum, per shard
    obs::Counters::Id windows;          // kMax (every shard runs every window)
    obs::Counters::Id idle_windows;     // kSum, recorded into shard 0
    obs::Counters::Id idle_ns;          // kSum, recorded into shard 0
    obs::Counters::Id imbalance;        // kMax, permille of max/mean shard events
    obs::Counters::Id barrier_waits;    // kSum, per worker
    obs::Counters::Id barrier_last;     // kSum: arrivals that never waited
    obs::Counters::Id barrier_spins;    // kSum: completed spin bursts
    obs::Counters::Id barrier_yields;   // kSum
    obs::Counters::Id barrier_wait_ns;  // kSum: total ns inside the barrier
    obs::Counters::HistId barrier_wait_hist;
  };

  void run_windows(SimTime horizon, unsigned workers);
  void snapshot_tick(SimTime window_end);
  void fold_wait_stats(unsigned workers);

  Config cfg_;
  std::vector<std::unique_ptr<Engine>> shards_;
  // Per-shard next-pending-event time, refreshed at each barrier. Written by
  // the shard's owning worker before the exchange barrier, read by every
  // worker after it — the barrier is the synchronization.
  std::vector<std::int64_t> next_event_ns_;
  ShardExchange* exchange_{nullptr};
  SimTime frontier_{};

  Telemetry tel_;
  TelemetryIds tel_ids_;
  // Per-shard events_executed at the last window accounting / snapshot.
  // Written only by the shard's owner (fixed s ≡ worker mod workers
  // assignment) resp. worker 0 between the snapshot barriers.
  std::vector<std::uint64_t> tel_prev_events_;
  std::vector<std::uint64_t> tel_snap_events_;
  // Per-worker barrier stats, folded into the registry after the join.
  std::vector<rt::Barrier::WaitStats> tel_wait_;
};

}  // namespace stank::sim
