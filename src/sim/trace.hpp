// Structured trace log — compatibility shim.
//
// The implementation moved to the observability layer: obs::TraceLog is a
// string-annotation adapter over the typed obs::Recorder (see
// obs/trace_log.hpp). Existing code keeps using sim::TraceLog / sim::cat
// unchanged through these aliases.
#pragma once

#include "obs/trace_log.hpp"

namespace stank::sim {

using obs::cat;
using obs::TraceEvent;
using obs::TraceLog;

}  // namespace stank::sim
