// Structured trace log.
//
// Records protocol events with their global timestamp so tests can assert on
// orderings ("the server stole the locks strictly after the client finished
// its phase-4 flush") and benches can replay the paper's figures as traces.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strong_id.hpp"
#include "sim/time.hpp"

namespace stank::sim {

// Streams its arguments into one string. Lazy trace sinks call this inside a
// deferred format callable, so the stream machinery runs only when a TraceLog
// is actually attached; steady-state runs pay a single null check per event.
template <typename... Parts>
[[nodiscard]] std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << std::forward<Parts>(parts));
  return os.str();
}

struct TraceEvent {
  SimTime at;
  NodeId node;
  std::string category;  // e.g. "lease", "lock", "net", "io"
  std::string detail;
};

class TraceLog {
 public:
  void record(SimTime at, NodeId node, std::string category, std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  // All events whose category matches exactly, preserving order.
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;
  [[nodiscard]] std::vector<TraceEvent> by_node(NodeId node) const;

  // First event whose category matches and whose detail contains `needle`;
  // returns nullptr if absent.
  [[nodiscard]] const TraceEvent* find(const std::string& category,
                                       const std::string& needle) const;
  [[nodiscard]] std::size_t count(const std::string& category, const std::string& needle) const;

  void clear() { events_.clear(); }
  void print(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace stank::sim
