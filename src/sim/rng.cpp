#include "sim/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace stank::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    s = splitmix64(x);
  }
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the stream id into fresh state derived from this generator.
  std::uint64_t x = next_u64() ^ (stream * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  STANK_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  STANK_ASSERT(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::zipf(std::size_t n, double s) {
  STANK_ASSERT(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = acc;
    }
    for (auto& v : zipf_cdf_) {
      v /= acc;
    }
  }
  const double u = uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ZipfTable::ZipfTable(std::size_t n, double s) {
  STANK_ASSERT(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
}

std::size_t ZipfTable::pick(double u) const {
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace stank::sim
