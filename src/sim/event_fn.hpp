// Small-buffer event callback for the simulation engine.
//
// The engine schedules millions of short-lived closures per simulated run —
// message deliveries, disk completions, lease timers. std::function heap
// allocates for anything larger than two pointers, which put an allocator
// round-trip on every scheduled event. EventFn keeps a 48-byte inline buffer
// (enough for a this-pointer, a couple of ids and a moved Bytes vector) and
// is move-only, so move-only captures work and nothing is ever copied.
// Callables that do not fit fall back to the heap transparently.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace stank::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  // Invokes and destroys the stored callable in one virtual hop, leaving
  // this EventFn null. Precondition: non-null. The engine's step() uses this
  // so firing an event costs a single indirect call.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(buf_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const EventFn& f, std::nullptr_t) { return f.ops_ == nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    void (*destroy)(void* buf);
    void (*consume)(void* buf);  // invoke, then destroy
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* b) { (*std::launder(static_cast<Fn*>(b)))(); }
    static void destroy(void* b) { std::launder(static_cast<Fn*>(b))->~Fn(); }
    static void consume(void* b) {
      Fn* f = std::launder(static_cast<Fn*>(b));
      (*f)();
      f->~Fn();
    }
    static void relocate(void* dst, void* src) {
      Fn* s = std::launder(static_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static constexpr Ops ops{&invoke, &destroy, &consume, &relocate};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* b) { return *std::launder(static_cast<Fn**>(b)); }
    static void invoke(void* b) { (*ptr(b))(); }
    static void destroy(void* b) { delete ptr(b); }
    static void consume(void* b) {
      Fn* p = ptr(b);
      (*p)();
      delete p;
    }
    static void relocate(void* dst, void* src) { ::new (dst) Fn*(ptr(src)); }
    static constexpr Ops ops{&invoke, &destroy, &consume, &relocate};
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

}  // namespace stank::sim
