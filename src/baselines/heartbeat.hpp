// Frangipani-style leasing (Thekkath, Mann, Lee 1997), as the paper's
// section 5 characterizes it: "Frangipani uses heartbeats and loosely
// synchronized clocks ... Also, Frangipani stores lease information at the
// locking authority, rather than having a passive authority."
//
// Server side: a per-client lease table renewed by heartbeats — the server
// does lease work on EVERY heartbeat of EVERY client, all the time.
//
// Client side: an unconditional heartbeat every tau * beat_frac, active or
// idle; no piggybacking on regular traffic.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/strong_id.hpp"
#include "metrics/counters.hpp"
#include "sim/clock.hpp"

namespace stank::baselines {

// Server-side per-client heartbeat lease table.
class HeartbeatTable {
 public:
  HeartbeatTable(sim::LocalDuration tau, metrics::Counters& counters)
      : tau_(tau), counters_(&counters) {}

  void renew(NodeId client, sim::LocalTime now) {
    ++counters_->lease_ops;
    table_[client] = now + tau_;
  }

  void drop(NodeId client) {
    ++counters_->lease_ops;
    table_.erase(client);
  }

  [[nodiscard]] bool valid(NodeId client, sim::LocalTime now) const {
    auto it = table_.find(client);
    return it != table_.end() && now < it->second;
  }

  // Earliest safe steal time for the client's locks, given the clock bound.
  [[nodiscard]] sim::LocalTime steal_time(NodeId client, sim::LocalTime now, double eps) const {
    auto it = table_.find(client);
    if (it == table_.end()) {
      return now;
    }
    const sim::LocalDuration remaining =
        it->second > now ? it->second - now : sim::LocalDuration{0};
    return now + remaining * (1.0 + eps);
  }

  [[nodiscard]] std::size_t entries() const { return table_.size(); }
  [[nodiscard]] std::size_t state_bytes() const {
    return table_.size() * (sizeof(NodeId) + sizeof(sim::LocalTime) + 2 * sizeof(void*));
  }

 private:
  sim::LocalDuration tau_;
  metrics::Counters* counters_;
  std::unordered_map<NodeId, sim::LocalTime> table_;
};

// Client-side heartbeat loop with local expiry detection.
class HeartbeatClientScheduler {
 public:
  struct Hooks {
    // Send one heartbeat (its ACK should call on_ack with the heartbeat's
    // first-transmission time).
    std::function<void()> send_heartbeat;
    // No ACK within tau: the client must consider its lease lost, discard
    // its cache and locks.
    std::function<void()> expired;
  };

  HeartbeatClientScheduler(sim::NodeClock& clock, sim::LocalDuration tau, double beat_frac,
                           Hooks hooks);
  ~HeartbeatClientScheduler();

  HeartbeatClientScheduler(const HeartbeatClientScheduler&) = delete;
  HeartbeatClientScheduler& operator=(const HeartbeatClientScheduler&) = delete;

  void start();
  void stop();
  void on_ack(sim::LocalTime t_send);

  // Real Frangipani checks lease validity on every operation, not only at
  // heartbeat ticks; the client consults this before serving from cache.
  [[nodiscard]] bool lease_valid(sim::LocalTime now) const {
    return running_ && now < lease_start_ + tau_;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }

 private:
  void beat();

  sim::NodeClock* clock_;
  sim::LocalDuration tau_;
  double beat_frac_;
  Hooks hooks_;
  bool running_{false};
  sim::LocalTime lease_start_{};
  sim::TimerId timer_{0};
  std::uint64_t heartbeats_sent_{0};
};

}  // namespace stank::baselines
