#include "baselines/heartbeat.hpp"

#include "common/assert.hpp"

namespace stank::baselines {

HeartbeatClientScheduler::HeartbeatClientScheduler(sim::NodeClock& clock, sim::LocalDuration tau,
                                                   double beat_frac, Hooks hooks)
    : clock_(&clock), tau_(tau), beat_frac_(beat_frac), hooks_(std::move(hooks)) {
  STANK_ASSERT(beat_frac > 0.0 && beat_frac < 1.0);
}

HeartbeatClientScheduler::~HeartbeatClientScheduler() { stop(); }

void HeartbeatClientScheduler::start() {
  STANK_ASSERT(!running_);
  running_ = true;
  lease_start_ = clock_->now();
  beat();
}

void HeartbeatClientScheduler::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_ != 0) {
    clock_->cancel(timer_);
    timer_ = 0;
  }
}

void HeartbeatClientScheduler::on_ack(sim::LocalTime t_send) {
  if (!running_) return;
  if (t_send > lease_start_) {
    lease_start_ = t_send;
  }
}

void HeartbeatClientScheduler::beat() {
  if (!running_) return;
  const sim::LocalTime now = clock_->now();
  if (now >= lease_start_ + tau_) {
    running_ = false;
    timer_ = 0;
    if (hooks_.expired) hooks_.expired();
    return;
  }
  ++heartbeats_sent_;
  if (hooks_.send_heartbeat) hooks_.send_heartbeat();
  timer_ = clock_->schedule_after(tau_ * beat_frac_, [this]() {
    timer_ = 0;
    beat();
  });
}

}  // namespace stank::baselines
