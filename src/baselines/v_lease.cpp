#include "baselines/v_lease.hpp"

#include "common/assert.hpp"

namespace stank::baselines {

VLeaseClientScheduler::VLeaseClientScheduler(sim::NodeClock& clock, sim::LocalDuration tau,
                                             double renew_frac, Hooks hooks)
    : clock_(&clock), tau_(tau), renew_frac_(renew_frac), hooks_(std::move(hooks)) {
  STANK_ASSERT(renew_frac > 0.0 && renew_frac < 1.0);
}

VLeaseClientScheduler::~VLeaseClientScheduler() { clear(); }

void VLeaseClientScheduler::object_acquired(FileId object) {
  auto [it, inserted] = objects_.emplace(object, Entry{clock_->now(), 0});
  if (!inserted) {
    it->second.lease_start = clock_->now();
    clock_->cancel(it->second.timer);
  }
  arm(object);
}

void VLeaseClientScheduler::object_released(FileId object) {
  auto it = objects_.find(object);
  if (it == objects_.end()) return;
  clock_->cancel(it->second.timer);
  objects_.erase(it);
}

void VLeaseClientScheduler::renewed(FileId object, sim::LocalTime t_send) {
  auto it = objects_.find(object);
  if (it == objects_.end()) return;
  if (t_send <= it->second.lease_start) return;
  it->second.lease_start = t_send;
  clock_->cancel(it->second.timer);
  arm(object);
}

void VLeaseClientScheduler::clear() {
  for (auto& [object, e] : objects_) {
    clock_->cancel(e.timer);
  }
  objects_.clear();
}

void VLeaseClientScheduler::arm(FileId object) {
  Entry& e = objects_.at(object);
  const sim::LocalTime renew_at = e.lease_start + tau_ * renew_frac_;
  const sim::LocalTime now = clock_->now();
  sim::LocalDuration delay = renew_at > now ? renew_at - now : sim::LocalDuration{1};
  e.timer = clock_->schedule_after(delay, [this, object]() { tick(object); });
}

void VLeaseClientScheduler::tick(FileId object) {
  auto it = objects_.find(object);
  if (it == objects_.end()) return;
  const sim::LocalTime now = clock_->now();
  if (now >= it->second.lease_start + tau_) {
    // Lease lapsed: renewal attempts failed for a full period.
    objects_.erase(it);
    if (hooks_.object_expired) hooks_.object_expired(object);
    return;
  }
  ++renewals_sent_;
  if (hooks_.send_renew) hooks_.send_renew(object);
  // Re-arm a retry at a fraction of the remaining window, floored so retry
  // events cannot pile up geometrically as the expiry approaches.
  Entry& e = objects_.at(object);
  const sim::LocalTime expiry = e.lease_start + tau_;
  sim::LocalDuration delay = (expiry - now) / std::int64_t{4};
  const sim::LocalDuration floor = tau_ / std::int64_t{16};
  if (delay < floor) delay = floor;
  e.timer = clock_->schedule_after(delay, [this, object]() { tick(object); });
}

}  // namespace stank::baselines
