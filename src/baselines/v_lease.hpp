// V-system-style per-object leases (Gray & Cheriton 1989), as the paper's
// section 4 characterizes them: "a client holds one lease for every data
// object that it can write ... the renewal has a message cost".
//
// Server side: a lease table with one entry per (client, object), renewed by
// explicit RenewObj messages — memory and computation proportional to the
// number of cached objects, in contrast to the Storage Tank authority's
// zero-state design.
//
// Client side: a scheduler that re-sends a renewal for every held object at
// a fixed fraction of tau — message cost proportional to cache size, even
// when the client is otherwise active.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strong_id.hpp"
#include "metrics/counters.hpp"
#include "sim/clock.hpp"

namespace stank::baselines {

// Server-side per-object lease table.
class VLeaseTable {
 public:
  VLeaseTable(sim::LocalDuration tau, metrics::Counters& counters)
      : tau_(tau), counters_(&counters) {}

  // Grant or renew the lease on (client, object); every call is lease work
  // the server must perform.
  void renew(NodeId client, FileId object, sim::LocalTime now) {
    ++counters_->lease_ops;
    table_[{client, object}] = now + tau_;
  }

  void drop(NodeId client, FileId object) {
    ++counters_->lease_ops;
    table_.erase({client, object});
  }

  void drop_client(NodeId client) {
    ++counters_->lease_ops;
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->first.first == client) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] bool valid(NodeId client, FileId object, sim::LocalTime now) const {
    auto it = table_.find({client, object});
    return it != table_.end() && now < it->second;
  }

  // When may the server safely steal this object's lock: the recorded lease
  // expiry scaled by the clock bound.
  [[nodiscard]] sim::LocalTime steal_time(NodeId client, FileId object, sim::LocalTime now,
                                          double eps) const {
    auto it = table_.find({client, object});
    if (it == table_.end()) {
      return now;  // no lease: steal immediately
    }
    const sim::LocalDuration remaining =
        it->second > now ? it->second - now : sim::LocalDuration{0};
    return now + remaining * (1.0 + eps);
  }

  [[nodiscard]] std::size_t entries() const { return table_.size(); }
  [[nodiscard]] std::size_t state_bytes() const {
    return table_.size() *
           (sizeof(std::pair<std::pair<NodeId, FileId>, sim::LocalTime>) + 3 * sizeof(void*));
  }

 private:
  sim::LocalDuration tau_;
  metrics::Counters* counters_;
  std::map<std::pair<NodeId, FileId>, sim::LocalTime> table_;
};

// Client-side renewal scheduler: one renewal stream per held object.
class VLeaseClientScheduler {
 public:
  struct Hooks {
    // Send one RenewObj message for this object (its ACK should call
    // renewed()).
    std::function<void(FileId)> send_renew;
    // The object's lease lapsed without a successful renewal: the client
    // must invalidate that object and drop its lock.
    std::function<void(FileId)> object_expired;
  };

  VLeaseClientScheduler(sim::NodeClock& clock, sim::LocalDuration tau, double renew_frac,
                        Hooks hooks);
  ~VLeaseClientScheduler();

  VLeaseClientScheduler(const VLeaseClientScheduler&) = delete;
  VLeaseClientScheduler& operator=(const VLeaseClientScheduler&) = delete;

  // The client obtained (lock on) this object; lease starts now.
  void object_acquired(FileId object);
  void object_released(FileId object);
  // A renewal ACK arrived for this object; t_send is the renewal's first
  // transmission time.
  void renewed(FileId object, sim::LocalTime t_send);
  void clear();

  // Per-operation validity check (the lock is only usable while its lease
  // lives); untracked objects report invalid.
  [[nodiscard]] bool object_valid(FileId object, sim::LocalTime now) const {
    auto it = objects_.find(object);
    return it != objects_.end() && now < it->second.lease_start + tau_;
  }

  [[nodiscard]] std::size_t tracked_objects() const { return objects_.size(); }
  [[nodiscard]] std::uint64_t renewals_sent() const { return renewals_sent_; }

 private:
  struct Entry {
    sim::LocalTime lease_start;
    sim::TimerId timer{0};
  };

  void arm(FileId object);
  void tick(FileId object);

  sim::NodeClock* clock_;
  sim::LocalDuration tau_;
  double renew_frac_;
  Hooks hooks_;
  std::unordered_map<FileId, Entry> objects_;
  std::uint64_t renewals_sent_{0};
};

}  // namespace stank::baselines
