// Fatal assertion macros used throughout stank.
//
// STANK_ASSERT fires in all build types: the simulator's value is that it
// *detects* protocol violations, so internal invariants must never be
// compiled out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace stank::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "stank: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace stank::detail

#define STANK_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::stank::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
    }                                                                       \
  } while (0)

#define STANK_ASSERT_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::stank::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
    }                                                                       \
  } while (0)

#define STANK_UNREACHABLE(msg) \
  ::stank::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
