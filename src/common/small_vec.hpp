// Inline-capacity vector.
//
// Stores up to N elements in the object itself and spills to the heap only
// beyond that, so the common case — a file with one or two lock holders, a
// client with a handful of pending demands — allocates nothing. API is the
// useful subset of std::vector; elements must be movable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <utility>

#include "common/assert.hpp"

namespace stank {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }
  ~SmallVec() { reset(); }

  SmallVec(const SmallVec& other) { append_copy(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    append_copy(other);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { take(std::move(other)); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    reset();
    take(std::move(other));
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] bool is_inline() const { return data() == inline_ptr(); }

  [[nodiscard]] T* data() { return data_ ? data_ : inline_ptr(); }
  [[nodiscard]] const T* data() const { return data_ ? data_ : inline_ptr(); }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] T& front() { return data()[0]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] T& back() { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data()[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(size_ + 1);
    T* p = new (data() + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    STANK_ASSERT(size_ > 0);
    data()[--size_].~T();
  }

  // Erases [first, last), shifting the tail left. Returns `first`.
  T* erase(T* first, T* last) {
    T* e = end();
    STANK_ASSERT(begin() <= first && first <= last && last <= e);
    T* dst = first;
    for (T* src = last; src != e; ++src, ++dst) {
      *dst = std::move(*src);
    }
    for (T* p = dst; p != e; ++p) p->~T();
    size_ -= static_cast<std::size_t>(last - first);
    return first;
  }
  T* erase(T* pos) { return erase(pos, pos + 1); }

  // Order-destroying O(1) erase for sets where position is meaningless.
  void swap_erase(T* pos) {
    STANK_ASSERT(begin() <= pos && pos < end());
    *pos = std::move(back());
    pop_back();
  }

  void clear() {
    for (T* p = begin(); p != end(); ++p) p->~T();
    size_ = 0;
  }

  // Destroys elements and returns to the empty inline state, releasing any
  // heap buffer. clear() keeps the buffer (steady-state reuse); reset() is
  // the episode-boundary call that actually gives memory back.
  void reset() {
    clear();
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
      data_ = nullptr;
      cap_ = N;
    }
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void resize(std::size_t n) {
    if (n < size_) {
      for (T* p = begin() + n; p != end(); ++p) p->~T();
      size_ = n;
    } else {
      reserve(n);
      while (size_ < n) emplace_back();
    }
  }

 private:
  [[nodiscard]] T* inline_ptr() { return reinterpret_cast<T*>(inline_storage_); }
  [[nodiscard]] const T* inline_ptr() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void grow(std::size_t min_cap) {
    std::size_t new_cap = cap_ * 2;
    if (new_cap < min_cap) new_cap = min_cap;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    T* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      new (heap + i) T(std::move(src[i]));
      src[i].~T();
    }
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = heap;
    cap_ = new_cap;
  }

  void take(SmallVec&& other) {
    if (other.data_ != nullptr) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i) {
        new (inline_ptr() + i) T(std::move(other.inline_ptr()[i]));
      }
      size_ = other.size_;
      other.clear();
    }
  }

  void append_copy(const SmallVec& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_{nullptr};  // nullptr while inline
  std::size_t size_{0};
  std::size_t cap_{N};
};

}  // namespace stank
