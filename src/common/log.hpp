// Minimal leveled logger.
//
// The simulator is deterministic; logging is for humans chasing a failing
// scenario, so it goes to stderr and defaults to warnings-only. Benches and
// tests can silence or raise it per-process.
#pragma once

#include <sstream>
#include <string>

namespace stank {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
LogLevel& global_level();
void emit(LogLevel level, const std::string& msg);
}  // namespace log_detail

inline void set_log_level(LogLevel level) { log_detail::global_level() = level; }
[[nodiscard]] inline LogLevel log_level() { return log_detail::global_level(); }

}  // namespace stank

#define STANK_LOG(level, expr)                                       \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::stank::log_detail::global_level())) {     \
      std::ostringstream stank_log_os_;                              \
      stank_log_os_ << expr; /* NOLINT */                            \
      ::stank::log_detail::emit(level, stank_log_os_.str());         \
    }                                                                \
  } while (0)

#define STANK_TRACE(expr) STANK_LOG(::stank::LogLevel::kTrace, expr)
#define STANK_DEBUG(expr) STANK_LOG(::stank::LogLevel::kDebug, expr)
#define STANK_INFO(expr) STANK_LOG(::stank::LogLevel::kInfo, expr)
#define STANK_WARN(expr) STANK_LOG(::stank::LogLevel::kWarn, expr)
#define STANK_ERROR(expr) STANK_LOG(::stank::LogLevel::kError, expr)
