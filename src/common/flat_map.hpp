// Open-addressing hash containers for the control path.
//
// FlatMap is a linear-probing, power-of-two-capacity hash table with
// backward-shift deletion (no tombstones), designed for strong-ID keys: one
// flat slot array, no per-node allocation, no bucket pointers. Lookups on the
// steady-state server path touch one or two adjacent cache lines instead of
// chasing std::unordered_map buckets. FlatSet is the keys-only wrapper.
//
// Requirements: Key and Value are default-constructible and movable; Key is
// equality-comparable. Hash output is spread with a Fibonacci multiply, so
// the identity hashes of StrongId / integers are fine. Pointers and iterators
// are invalidated by any insert or erase; do not mutate while iterating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace stank {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  // Public so structured bindings at iteration sites read naturally:
  //   for (auto& [key, value] : map) ...
  struct Slot {
    Key key;
    Value value;
  };

  FlatMap() = default;
  FlatMap(FlatMap&&) noexcept = default;
  FlatMap& operator=(FlatMap&&) noexcept = default;
  FlatMap(const FlatMap& other) { *this = other; }
  FlatMap& operator=(const FlatMap& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (const Slot& s : other) {
      (*this)[s.key] = s.value;
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() {
    slots_.reset();
    used_.reset();
    capacity_ = 0;
    size_ = 0;
    shift_ = 0;
  }

  // Ensures capacity for `n` elements without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap - cap / 4 < n) cap <<= 1;
    if (cap > capacity_) rehash(cap);
  }

  [[nodiscard]] Value* find(const Key& k) {
    if (size_ == 0) return nullptr;
    std::size_t i = bucket(k);
    while (used_[i]) {
      if (slots_[i].key == k) return &slots_[i].value;
      i = (i + 1) & mask();
    }
    return nullptr;
  }
  [[nodiscard]] const Value* find(const Key& k) const {
    return const_cast<FlatMap*>(this)->find(k);
  }
  [[nodiscard]] bool contains(const Key& k) const { return find(k) != nullptr; }

  // Returns the value for `k`, default-constructing it if absent.
  Value& operator[](const Key& k) { return *try_emplace(k).first; }

  // Inserts (k, default Value) if absent. Returns the value slot and whether
  // an insert happened; an existing value is left untouched.
  std::pair<Value*, bool> try_emplace(const Key& k) {
    if (capacity_ == 0 || size_ + 1 > capacity_ - capacity_ / 4) {
      rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
    std::size_t i = bucket(k);
    while (used_[i]) {
      if (slots_[i].key == k) return {&slots_[i].value, false};
      i = (i + 1) & mask();
    }
    used_[i] = 1;
    slots_[i].key = k;
    ++size_;
    return {&slots_[i].value, true};
  }

  bool insert(const Key& k, Value v) {
    auto [slot, inserted] = try_emplace(k);
    if (inserted) *slot = std::move(v);
    return inserted;
  }

  // Backward-shift deletion: plugs the hole by sliding later probe-chain
  // members down, so lookups never scan tombstones.
  bool erase(const Key& k) {
    if (size_ == 0) return false;
    std::size_t i = bucket(k);
    while (used_[i]) {
      if (slots_[i].key == k) {
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
          j = (j + 1) & mask();
          if (!used_[j]) break;
          const std::size_t home = bucket(slots_[j].key);
          // Slot j may fill the hole only if the hole is not before its home
          // position on the (cyclic) probe sequence.
          if (((j - home) & mask()) >= ((j - hole) & mask())) {
            slots_[hole] = std::move(slots_[j]);
            hole = j;
          }
        }
        used_[hole] = 0;
        slots_[hole] = Slot{};  // release the stale element's resources
        --size_;
        return true;
      }
      i = (i + 1) & mask();
    }
    return false;
  }

  template <bool kConst>
  class Iter {
   public:
    using MapT = std::conditional_t<kConst, const FlatMap, FlatMap>;
    using SlotT = std::conditional_t<kConst, const Slot, Slot>;

    Iter(MapT* map, std::size_t idx) : map_(map), idx_(idx) { skip(); }
    SlotT& operator*() const { return map_->slots_[idx_]; }
    SlotT* operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.idx_ == b.idx_; }

   private:
    void skip() {
      while (idx_ < map_->capacity_ && !map_->used_[idx_]) ++idx_;
    }
    MapT* map_;
    std::size_t idx_;
  };

  [[nodiscard]] Iter<false> begin() { return {this, 0}; }
  [[nodiscard]] Iter<false> end() { return {this, capacity_}; }
  [[nodiscard]] Iter<true> begin() const { return {this, 0}; }
  [[nodiscard]] Iter<true> end() const { return {this, capacity_}; }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  [[nodiscard]] std::size_t mask() const { return capacity_ - 1; }

  [[nodiscard]] std::size_t bucket(const Key& k) const {
    // Fibonacci spreading: works even with identity hashes of small ints.
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(k)) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> shift_);
  }

  void rehash(std::size_t new_cap) {
    auto old_slots = std::move(slots_);
    auto old_used = std::move(used_);
    const std::size_t old_cap = capacity_;

    slots_ = std::make_unique<Slot[]>(new_cap);
    used_ = std::make_unique<std::uint8_t[]>(new_cap);
    capacity_ = new_cap;
    std::uint32_t log2 = 0;
    while ((std::size_t{1} << log2) < new_cap) ++log2;
    shift_ = 64 - log2;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_used[i]) continue;
      std::size_t j = bucket(old_slots[i].key);
      while (used_[j]) j = (j + 1) & mask();
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<std::uint8_t[]> used_;
  std::size_t capacity_{0};
  std::size_t size_{0};
  std::uint32_t shift_{0};
};

// Keys-only view over FlatMap, for the server's barred/fenced sets.
template <typename Key, typename Hash = std::hash<Key>>
class FlatSet {
 public:
  bool insert(const Key& k) { return map_.try_emplace(k).second; }
  bool erase(const Key& k) { return map_.erase(k); }
  [[nodiscard]] bool contains(const Key& k) const { return map_.contains(k); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [key, unused] : map_) f(key);
  }

 private:
  struct Empty {};
  FlatMap<Key, Empty, Hash> map_;
};

}  // namespace stank
