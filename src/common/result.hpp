// Error codes and a lightweight Result<T> for fallible file-system calls.
//
// The client-facing API (open/read/write/...) reports failures the way a
// kernel VFS would: with an error code, not an exception. Result<T> is a
// minimal expected-like type (std::expected is C++23; this project targets
// C++20).
#pragma once

#include <optional>
#include <ostream>
#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace stank {

// Outcome of a file-system or protocol operation.
enum class ErrorCode {
  kOk = 0,
  kNotFound,        // no such file
  kExists,          // create of an existing file
  kBadHandle,       // file descriptor not open
  kLockConflict,    // lock unavailable and caller asked not to wait
  kLeaseExpired,    // client lease lapsed; cache and locks invalid
  kQuiesced,        // client is in lease phase 3/4 and not accepting work
  kFenced,          // disk rejected I/O from a fenced initiator
  kIoError,         // SAN-level delivery failure
  kTimeout,         // control-network request exhausted retries
  kNacked,          // server negatively acknowledged: client state is suspect
  kInvalidArgument, // malformed request
  kNoSpace,         // allocator exhausted
  kShutdown,        // node has been stopped / crashed
  kStaleSession,    // server restarted and lost this session: re-register and
                    // reassert locks (paper section 6)
  kRetryLater,      // server is in its post-restart grace period
};

[[nodiscard]] constexpr const char* to_string(ErrorCode e) {
  switch (e) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kExists: return "exists";
    case ErrorCode::kBadHandle: return "bad-handle";
    case ErrorCode::kLockConflict: return "lock-conflict";
    case ErrorCode::kLeaseExpired: return "lease-expired";
    case ErrorCode::kQuiesced: return "quiesced";
    case ErrorCode::kFenced: return "fenced";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNacked: return "nacked";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNoSpace: return "no-space";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kStaleSession: return "stale-session";
    case ErrorCode::kRetryLater: return "retry-later";
  }
  return "unknown";
}

inline std::ostream& operator<<(std::ostream& os, ErrorCode e) { return os << to_string(e); }

// Holds either a value or an ErrorCode (never kOk when holding an error).
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode error) : state_(error) {      // NOLINT(google-explicit-constructor)
    STANK_ASSERT_MSG(error != ErrorCode::kOk, "error Result must not hold kOk");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] ErrorCode error() const {
    return ok() ? ErrorCode::kOk : std::get<ErrorCode>(state_);
  }

  [[nodiscard]] T& value() & {
    STANK_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    STANK_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    STANK_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, ErrorCode> state_;
};

// Specialization-free void flavour.
class Status {
 public:
  Status() : error_(ErrorCode::kOk) {}
  Status(ErrorCode error) : error_(error) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return error_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] ErrorCode error() const { return error_; }

  friend bool operator==(Status, Status) = default;

 private:
  ErrorCode error_;
};

inline std::ostream& operator<<(std::ostream& os, Status s) { return os << s.error(); }

}  // namespace stank
