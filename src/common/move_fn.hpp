// Small-buffer move-only callable, the general-purpose sibling of
// sim::EventFn.
//
// The protocol layers hold one completion callback per in-flight request
// (reply handlers, unlock continuations). std::function heap-allocates for
// any capture larger than two pointers and requires copyability, which both
// forces shared_ptr dances for move-only captures and puts an allocator
// round-trip on the steady-state request path. MoveFn<R(Args...)> keeps a
// configurable inline buffer (default 64 bytes — a this-pointer plus a few
// ids and a moved callback), is move-only so captures are never copied, and
// falls back to the heap transparently for oversized callables.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace stank {

template <typename Signature, std::size_t InlineSize = 64>
class MoveFn;

template <typename R, typename... Args, std::size_t InlineSize>
class MoveFn<R(Args...), InlineSize> {
 public:
  static constexpr std::size_t kInlineSize = InlineSize;

  MoveFn() = default;
  MoveFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, MoveFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  MoveFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  MoveFn(MoveFn&& other) noexcept { move_from(other); }
  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;
  ~MoveFn() { reset(); }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const MoveFn& f, std::nullptr_t) { return f.ops_ == nullptr; }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    void (*destroy)(void* buf);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
  };

  template <typename Fn>
  struct InlineOps {
    static R invoke(void* b, Args&&... args) {
      return (*std::launder(static_cast<Fn*>(b)))(std::forward<Args>(args)...);
    }
    static void destroy(void* b) { std::launder(static_cast<Fn*>(b))->~Fn(); }
    static void relocate(void* dst, void* src) {
      Fn* s = std::launder(static_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static constexpr Ops ops{&invoke, &destroy, &relocate};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* b) { return *std::launder(static_cast<Fn**>(b)); }
    static R invoke(void* b, Args&&... args) { return (*ptr(b))(std::forward<Args>(args)...); }
    static void destroy(void* b) { delete ptr(b); }
    static void relocate(void* dst, void* src) { ::new (dst) Fn*(ptr(src)); }
    static constexpr Ops ops{&invoke, &destroy, &relocate};
  };

  void move_from(MoveFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};
};

}  // namespace stank
