// Little-endian byte buffer writer/reader used by the wire codec.
//
// All control-network messages and disk blocks round-trip through real byte
// buffers; the reader is bounds-checked and reports truncation rather than
// crashing, since a datagram network may hand us garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stank {

using Bytes = std::vector<std::uint8_t>;

// Appends fixed-width little-endian integers and length-prefixed strings.
class ByteWriter {
 public:
  ByteWriter() = default;
  // Appends into a caller-owned buffer instead of the internal one.
  explicit ByteWriter(Bytes& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  void raw(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    out_->insert(out_->end(), data.begin(), data.end());
  }

  [[nodiscard]] const Bytes& bytes() const { return *out_; }
  [[nodiscard]] Bytes take() { return std::move(*out_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes owned_;
  Bytes* out_{&owned_};
};

// Bounds-checked reader; any read past the end latches a truncation flag and
// returns zeroes so decoders can finish and then test ok() once.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le(8)); }
  double f64() {
    std::uint64_t bits = get_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str();
  Bytes raw();

  [[nodiscard]] bool ok() const { return !truncated_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size() && !truncated_; }

 private:
  std::uint64_t get_le(std::size_t width);

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool truncated_{false};
};

}  // namespace stank
