// ASCII table printer used by the benchmark harnesses to emit the rows each
// paper table/figure reports.
#pragma once

#include <ostream>
#include <type_traits>
#include <cstdint>
#include <string>
#include <vector>

namespace stank {

// Collects rows of string cells and prints them with aligned columns, a
// header rule, and an optional title. Numeric convenience overloads format
// with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& title(std::string t);

  // Starts a new row. Subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string v);
  Table& cell(const char* v);
  Table& cell(double v, int precision = 3);
  // Any integral type.
  template <typename T>
    requires std::is_integral_v<T>
  Table& cell(T v) {
    return cell(std::to_string(v));
  }

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stank
