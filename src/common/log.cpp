#include "common/log.hpp"

#include <cstdio>

namespace stank::log_detail {

LogLevel& global_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void emit(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)], msg.c_str());
}

}  // namespace stank::log_detail
