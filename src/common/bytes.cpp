#include "common/bytes.hpp"

namespace stank {

std::uint64_t ByteReader::get_le(std::size_t width) {
  if (pos_ + width > data_.size()) {
    truncated_ = true;
    pos_ = data_.size();
    return 0;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += width;
  return v;
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (truncated_ || pos_ + n > data_.size()) {
    truncated_ = true;
    pos_ = data_.size();
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes ByteReader::raw() {
  std::uint32_t n = u32();
  if (truncated_ || pos_ + n > data_.size()) {
    truncated_ = true;
    pos_ = data_.size();
    return {};
  }
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace stank
