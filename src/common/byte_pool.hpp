// Thread-local recycled byte buffers.
//
// Every hot path that needs a transient Bytes — datagram encode, disk block
// payloads, read fan-in buffers, stamped workload blocks — takes a buffer
// whose capacity was recycled from an earlier one, so the steady state stops
// paying the allocator once the first episodes have warmed the pool. The
// pool is thread-local and process-lived: it deliberately survives net /
// engine / scenario teardown so back-to-back fuzz episodes and bench sweeps
// reuse the same memory instead of re-growing from empty.
//
// recycle_buf() clears the buffer, so callers must be completely done with
// the contents; a buffer that anything still references must NOT be
// recycled. Recycling is always optional — dropping a buffer on the floor
// is merely a missed reuse, never a leak.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace stank {

namespace pool_detail {

// Cap keeps a pathological burst (a 50k-client swarm tearing down) from
// pinning unbounded memory in the pool forever.
inline constexpr std::size_t kBufPoolCap = 4096;

inline std::vector<Bytes>& buf_pool() {
  thread_local std::vector<Bytes> pool;
  return pool;
}

}  // namespace pool_detail

// Returns an empty buffer, with recycled capacity when the pool has one.
[[nodiscard]] inline Bytes take_buf() {
  auto& pool = pool_detail::buf_pool();
  if (pool.empty()) return Bytes{};
  Bytes b = std::move(pool.back());
  pool.pop_back();
  return b;
}

// Donates a buffer's capacity back to the pool (no-op for buffers that never
// allocated, or when the pool is full).
inline void recycle_buf(Bytes&& b) {
  auto& pool = pool_detail::buf_pool();
  if (b.capacity() == 0 || pool.size() >= pool_detail::kBufPoolCap) return;
  b.clear();
  pool.push_back(std::move(b));
}

}  // namespace stank
