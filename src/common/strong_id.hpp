// Strongly-typed integral identifiers.
//
// The simulator routes requests between clients, servers and disks by id;
// using distinct types for each keeps a FileId from ever being passed where
// a NodeId is expected. Ids are hashable and totally ordered so they can key
// standard containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace stank {

// A transparent wrapper around an integer, parameterized by a tag type so
// that different id kinds do not convert into one another.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

 private:
  Rep value_{0};
};

struct NodeTag {
  static constexpr const char* prefix() { return "n"; }
};
struct FileTag {
  static constexpr const char* prefix() { return "f"; }
};
struct DiskTag {
  static constexpr const char* prefix() { return "d"; }
};
struct MsgTag {
  static constexpr const char* prefix() { return "m"; }
};

// Identifies any endpoint on the control network (client or server).
using NodeId = StrongId<NodeTag>;
// Identifies a file managed by a server.
using FileId = StrongId<FileTag>;
// Identifies a disk on the SAN.
using DiskId = StrongId<DiskTag>;
// Per-sender monotonically increasing message id (at-most-once dedup key).
using MsgId = StrongId<MsgTag, std::uint64_t>;

}  // namespace stank

namespace std {

template <typename Tag, typename Rep>
struct hash<stank::StrongId<Tag, Rep>> {
  size_t operator()(stank::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
