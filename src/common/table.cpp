#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace stank {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::title(std::string t) {
  title_ = std::move(t);
  return *this;
}

Table& Table::row() {
  STANK_ASSERT_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                   "previous row not fully populated");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string v) {
  STANK_ASSERT_MSG(!rows_.empty() && rows_.back().size() < headers_.size(),
                   "cell() without row() or row overfull");
  rows_.back().push_back(std::move(v));
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  os.flush();
}

}  // namespace stank
