// Event counters shared by the protocol, lease, and lock layers.
//
// These counters are what the paper's quantitative claims are made of:
// "invokes no message overhead, and uses no memory and performs no
// computation at the locking authority" (abstract). The bench harnesses
// read them to build tables T1/T2/T5.
#pragma once

#include <cstdint>

namespace stank::metrics {

struct Counters {
  // Control-network frames, by kind.
  std::uint64_t requests_sent{0};
  std::uint64_t acks_sent{0};
  std::uint64_t nacks_sent{0};
  std::uint64_t server_msgs_sent{0};
  std::uint64_t client_acks_sent{0};
  std::uint64_t retransmissions{0};

  // Messages whose SOLE purpose is lease maintenance (keep-alives, explicit
  // per-object renewals, heartbeats). Opportunistic renewals piggybacked on
  // real traffic do not count — that is the paper's point.
  std::uint64_t lease_only_msgs{0};

  // Lease-specific work performed at this node (timer arms, table updates,
  // expiry scans). The Storage Tank server's count must stay 0 during
  // failure-free operation.
  std::uint64_t lease_ops{0};

  // Lock manager activity (server side).
  std::uint64_t lock_grants{0};
  std::uint64_t lock_demands{0};
  std::uint64_t lock_steals{0};
  // Duplicate requests answered from the reply cache instead of re-executed
  // (exactly-once transport). A high rate means the fabric is eating ACKs.
  std::uint64_t reply_cache_hits{0};
  std::uint64_t fences_issued{0};
  // Fence rounds re-issued because a disk did not acknowledge the fence
  // admin command (e.g. a server<->disk SAN partition). The steal is held
  // until a round completes on every disk.
  std::uint64_t fence_retries{0};

  // Metadata transactions served (server side) — the paper's section 1.1
  // argues a SAN server is measured in transactions/second.
  std::uint64_t transactions{0};

  // Data-path bytes shipped through the server (zero for Storage Tank;
  // nonzero for the traditional data-shipping baseline of T5).
  std::uint64_t server_data_bytes{0};

  Counters& operator+=(const Counters& o) {
    requests_sent += o.requests_sent;
    acks_sent += o.acks_sent;
    nacks_sent += o.nacks_sent;
    server_msgs_sent += o.server_msgs_sent;
    client_acks_sent += o.client_acks_sent;
    retransmissions += o.retransmissions;
    lease_only_msgs += o.lease_only_msgs;
    lease_ops += o.lease_ops;
    lock_grants += o.lock_grants;
    lock_demands += o.lock_demands;
    lock_steals += o.lock_steals;
    reply_cache_hits += o.reply_cache_hits;
    fences_issued += o.fences_issued;
    fence_retries += o.fence_retries;
    transactions += o.transactions;
    server_data_bytes += o.server_data_bytes;
    return *this;
  }

  [[nodiscard]] std::uint64_t total_frames() const {
    return requests_sent + acks_sent + nacks_sent + server_msgs_sent + client_acks_sent;
  }
};

}  // namespace stank::metrics
