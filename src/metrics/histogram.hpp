// A small exact-quantile histogram: stores samples, sorts on demand.
//
// Simulation runs produce at most a few million samples; exact quantiles
// beat bucketed approximations for reproducing table rows.
#pragma once

#include <cstdint>
#include <vector>

namespace stank::metrics {

class Histogram {
 public:
  void add(double v);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // q in [0, 1]; nearest-rank. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double stddev() const;

  // Raw samples in insertion order (trace serialization, tests).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  void clear();
  void merge(const Histogram& other);

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_{false};
};

}  // namespace stank::metrics
