#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace stank::metrics {

void Histogram::add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::quantile(double q) const {
  STANK_ASSERT(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto n = sorted_.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  return sorted_[std::min(rank, n - 1)];
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

void Histogram::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

}  // namespace stank::metrics
