// The passive server side of the lease protocol.
//
// "The key feature of the server's protocol is that it retains no state
// about client leases. During normal operation, the server merely grants
// locks and ignores leasing altogether." (section 3)
//
// Only a delivery error creates state here: the client is marked suspect, a
// timer of tau(1+eps) — measured on the server's own clock — is started, and
// from that instant no ACK may reach that client. When the timer fires, the
// client's lease has provably expired (Theorem 3.1) and the steal hook runs.
// After the steal the client stays in a "failed" state, NACKed on every
// request except re-registration.
#pragma once

#include <cstdint>
#include <functional>

#include "common/flat_map.hpp"
#include "common/strong_id.hpp"
#include "core/lease_config.hpp"
#include "core/lease_math.hpp"
#include "metrics/counters.hpp"
#include "obs/recorder.hpp"
#include "sim/clock.hpp"

namespace stank::core {

enum class ClientStanding : std::uint8_t {
  kGood = 0,    // no lease state exists for this client (the normal case)
  kSuspect,     // delivery failure observed; expiry timer running
  kFailed,      // locks stolen; awaiting re-registration
};

class ServerLeaseAuthority {
 public:
  struct Hooks {
    // Timer expired: the client's lease is provably over — steal its locks,
    // fence it, redistribute.
    std::function<void(NodeId)> steal_locks;
    // Observer for traces (optional).
    std::function<void(NodeId, ClientStanding)> standing_changed;
  };

  ServerLeaseAuthority(sim::NodeClock& clock, LeaseConfig cfg, metrics::Counters& counters,
                       Hooks hooks);
  ~ServerLeaseAuthority();

  ServerLeaseAuthority(const ServerLeaseAuthority&) = delete;
  ServerLeaseAuthority& operator=(const ServerLeaseAuthority&) = delete;

  // A message requiring a client ACK exhausted its retries. Starts the
  // tau(1+eps) timer unless one is already running or the client is already
  // failed. This is the ONLY entry point that creates lease state.
  void on_delivery_failure(NodeId client);

  // The transport's ACK gate: false while suspect or failed.
  [[nodiscard]] bool may_ack(NodeId client) const;

  [[nodiscard]] ClientStanding standing(NodeId client) const;
  [[nodiscard]] bool is_suspect(NodeId client) const {
    return standing(client) == ClientStanding::kSuspect;
  }
  [[nodiscard]] bool is_failed(NodeId client) const {
    return standing(client) == ClientStanding::kFailed;
  }

  // Re-registration: clears the failed state. Returns false (and does
  // nothing) while the timer still runs and early re-registration is
  // disabled. With allow_early_reregister, a suspect client's locks are
  // stolen immediately and registration proceeds.
  [[nodiscard]] bool try_reregister(NodeId client);

  // Memory devoted to lease bookkeeping right now. The paper's claim is that
  // this is zero during failure-free operation.
  [[nodiscard]] std::size_t state_bytes() const;
  [[nodiscard]] std::size_t suspect_count() const;
  [[nodiscard]] std::size_t failed_count() const;

  [[nodiscard]] const LeaseConfig& config() const { return cfg_; }

  // Attaches the flight recorder; `self` is the server's own node id (the
  // authority otherwise has no identity). Standing changes become typed
  // events; steal -> successful re-registration becomes a recovery span.
  void set_recorder(obs::Recorder* rec, NodeId self) {
    rec_ = rec;
    self_ = self;
  }

 private:
  struct Entry {
    ClientStanding standing{ClientStanding::kSuspect};
    sim::TimerId timer{0};
    // When the steal happened (server clock); anchors the steal-to-reassert
    // recovery span. Only meaningful in the kFailed standing.
    sim::LocalTime failed_at{};
  };

  void fire(NodeId client);
  void set_standing(NodeId client, ClientStanding s);

  sim::NodeClock* clock_;
  LeaseConfig cfg_;
  metrics::Counters* counters_;
  Hooks hooks_;
  obs::Recorder* rec_{nullptr};
  NodeId self_{};
  // Empty during normal operation — that emptiness IS the paper's claim,
  // and bench T2 asserts it.
  FlatMap<NodeId, Entry> entries_;
};

}  // namespace stank::core
