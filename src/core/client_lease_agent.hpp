// The client side of the Storage Tank lease protocol: the four-phase lease
// interval of Figure 4.
//
//   phase 1  lease valid        — serve FS requests; any ACK renews
//   phase 2  renewal period     — still serving; actively send keep-alives
//   phase 3  lease suspect      — quiesce: no new FS requests
//   phase 4  expected failure   — flush all dirty data to the SAN
//   expiry                      — cache invalid, locks ceded; must re-register
//
// A NACK from the server (section 3.3) means the client missed a message:
// it skips straight to phase 3, stops trying to renew, and rides the
// remaining phases into recovery. Suspect/flush entered purely on local
// timeout are NOT latched: the client keeps probing with keep-alives, and a
// late ACK rescues the lease (the theorem 3.1 bound on the extension holds
// regardless of which phase the ACK lands in).
//
// All times are measured on the client's own clock; the agent never sees
// global simulation time.
#pragma once

#include <cstdint>
#include <functional>

#include "core/lease_config.hpp"
#include "obs/recorder.hpp"
#include "sim/clock.hpp"

namespace stank::core {

enum class LeasePhase : std::uint8_t {
  kNoLease = 0,  // never registered, or post-expiry awaiting re-register
  kActive = 1,   // phase 1
  kRenewal = 2,  // phase 2
  kSuspect = 3,  // phase 3
  kFlush = 4,    // phase 4
  kExpired = 5,  // lease over; recovery (re-register) pending
};

[[nodiscard]] constexpr const char* to_string(LeasePhase p) {
  switch (p) {
    case LeasePhase::kNoLease: return "no-lease";
    case LeasePhase::kActive: return "active";
    case LeasePhase::kRenewal: return "renewal";
    case LeasePhase::kSuspect: return "suspect";
    case LeasePhase::kFlush: return "flush";
    case LeasePhase::kExpired: return "expired";
  }
  return "?";
}

class ClientLeaseAgent {
 public:
  struct Hooks {
    // Phase 2: send one keep-alive NULL message (repeated every
    // keepalive_retry until the phase ends or an ACK arrives).
    std::function<void()> send_keepalive;
    // Phase 3 entered: stop admitting new FS requests; drain in-flight ones.
    std::function<void()> quiesce;
    // Phase 4 entered: write all dirty cache contents to shared storage.
    std::function<void()> flush;
    // Lease expired: invalidate the cache, cede all locks, begin recovery.
    std::function<void()> expired;
    // Optional observer for traces/metrics.
    std::function<void(LeasePhase from, LeasePhase to)> phase_changed;
  };

  ClientLeaseAgent(sim::NodeClock& clock, LeaseConfig cfg, Hooks hooks);
  ~ClientLeaseAgent();

  ClientLeaseAgent(const ClientLeaseAgent&) = delete;
  ClientLeaseAgent& operator=(const ClientLeaseAgent&) = delete;

  // Opportunistic renewal (section 3.1): an ACK arrived for a request whose
  // first transmission left at t_c1 (client clock). The new lease covers
  // [t_c1, t_c1 + tau) — measured from the SEND, not the ACK receipt.
  // Ignored while expired, and while NACK-latched: a client that knows it
  // missed a message "forgoes sending messages to acquire a lease". An
  // un-latched suspect/flush (entered on timeout alone) IS renewable — the
  // ACK proves the server heard us at t_c1 and the safety bound carries.
  void renew(sim::LocalTime t_c1);

  // The server NACKed one of our requests: jump directly to phase 3.
  void on_nack();

  // Recovery finished (re-registered under a fresh epoch, first lease comes
  // from the RegisterReq's ACK at t_c1).
  void restart(sim::LocalTime t_c1);

  // Voluntary teardown (clean shutdown / crash simulation).
  void deactivate();

  [[nodiscard]] LeasePhase phase() const { return phase_; }
  // FS requests are admitted only in phases 1 and 2.
  [[nodiscard]] bool fs_ops_allowed() const {
    return phase_ == LeasePhase::kActive || phase_ == LeasePhase::kRenewal;
  }
  [[nodiscard]] bool lease_valid() const {
    return phase_ == LeasePhase::kActive || phase_ == LeasePhase::kRenewal ||
           phase_ == LeasePhase::kSuspect || phase_ == LeasePhase::kFlush;
  }

  [[nodiscard]] sim::LocalTime lease_start() const { return lease_start_; }
  [[nodiscard]] sim::LocalTime lease_expiry() const { return lease_start_ + cfg_.tau; }

  // Counters for T1/F4.
  [[nodiscard]] std::uint64_t renewals() const { return renewals_; }
  [[nodiscard]] std::uint64_t keepalives_sent() const { return keepalives_sent_; }
  [[nodiscard]] std::uint64_t expiries() const { return expiries_; }
  [[nodiscard]] std::uint64_t nacks_seen() const { return nacks_seen_; }
  [[nodiscard]] bool nack_latched() const { return nack_latched_; }
  // Monotonic count of lease disruptions: bumped on every entry into phase 3
  // (suspect) or expiry. An op whose issue-time snapshot of this counter still
  // matches at completion ran entirely in steady state (phases 1/2); workloads
  // use it to separate steady-state latency from recovery-tail latency.
  [[nodiscard]] std::uint64_t disruptions() const { return disruptions_; }

  [[nodiscard]] const LeaseConfig& config() const { return cfg_; }

  // Attaches the flight recorder. The agent does not otherwise know which
  // node it serves, so the owner names it here. Phase transitions become
  // typed events and per-phase residencies become spans.
  void set_recorder(obs::Recorder* rec, NodeId self) {
    rec_ = rec;
    self_ = self;
    if (rec_ != nullptr) {
      phase_since_ = clock_->engine().now();
    }
  }

 private:
  void enter(LeasePhase p);
  // Records the phase transition and closes the residency span of the phase
  // being left. No-op when detached.
  void note_phase(LeasePhase old, LeasePhase now);
  void arm_boundary_timer();
  void cancel_timers();
  void keepalive_tick();
  // Local time at which the current lease crosses into the given fraction.
  [[nodiscard]] sim::LocalTime boundary(double frac) const;

  sim::NodeClock* clock_;
  LeaseConfig cfg_;
  Hooks hooks_;
  obs::Recorder* rec_{nullptr};
  NodeId self_{};
  sim::SimTime phase_since_{};  // residency-span anchor while rec_ attached

  LeasePhase phase_{LeasePhase::kNoLease};
  sim::LocalTime lease_start_{};
  sim::TimerId boundary_timer_{0};
  sim::TimerId keepalive_timer_{0};
  // Set by on_nack(): renewal is disabled until restart().
  bool nack_latched_{false};

  std::uint64_t renewals_{0};
  std::uint64_t keepalives_sent_{0};
  std::uint64_t expiries_{0};
  std::uint64_t nacks_seen_{0};
  std::uint64_t disruptions_{0};
};

}  // namespace stank::core
