#include "core/server_lease_authority.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"

namespace stank::core {

ServerLeaseAuthority::ServerLeaseAuthority(sim::NodeClock& clock, LeaseConfig cfg,
                                           metrics::Counters& counters, Hooks hooks)
    : clock_(&clock), cfg_(cfg), counters_(&counters), hooks_(std::move(hooks)) {
  cfg_.validate();
}

ServerLeaseAuthority::~ServerLeaseAuthority() {
  for (auto& [node, e] : entries_) {
    if (e.timer != 0) {
      clock_->cancel(e.timer);
    }
  }
}

void ServerLeaseAuthority::on_delivery_failure(NodeId client) {
  if (entries_.contains(client)) {
    return;  // already suspect or failed
  }
  ++counters_->lease_ops;
  Entry e;
  e.standing = ClientStanding::kSuspect;
  // Wait tau(1+eps) on OUR clock; rate synchronization guarantees that is at
  // least tau on the client's clock, so its lease has expired by the time
  // the timer fires.
  const sim::LocalDuration wait = server_wait(cfg_.tau, cfg_.epsilon);
  e.timer = clock_->schedule_after(wait, [this, client]() { fire(client); });
  entries_.insert(client, e);
  if (rec_ != nullptr) {
    const sim::SimTime t = clock_->engine().now();
    rec_->record(t, self_, obs::EventKind::kStandingChange, client.value(),
                 static_cast<std::uint64_t>(ClientStanding::kSuspect));
    rec_->record(t, self_, obs::EventKind::kStealTimerArm, client.value(),
                 static_cast<std::uint64_t>(wait.ns));
  }
  if (hooks_.standing_changed) {
    hooks_.standing_changed(client, ClientStanding::kSuspect);
  }
  STANK_DEBUG("lease authority: client " << client << " suspect, timer armed");
}

void ServerLeaseAuthority::fire(NodeId client) {
  Entry* e = entries_.find(client);
  STANK_ASSERT(e != nullptr);
  STANK_ASSERT(e->standing == ClientStanding::kSuspect);
  ++counters_->lease_ops;
  e->timer = 0;
  e->standing = ClientStanding::kFailed;
  e->failed_at = clock_->now();
  if (rec_ != nullptr) {
    const sim::SimTime t = clock_->engine().now();
    rec_->record(t, self_, obs::EventKind::kStandingChange, client.value(),
                 static_cast<std::uint64_t>(ClientStanding::kFailed));
    rec_->record(t, self_, obs::EventKind::kLockSteal, client.value());
  }
  if (hooks_.standing_changed) {
    hooks_.standing_changed(client, ClientStanding::kFailed);
  }
  STANK_DEBUG("lease authority: client " << client << " lease expired, stealing locks");
  if (hooks_.steal_locks) {
    hooks_.steal_locks(client);
  }
}

bool ServerLeaseAuthority::may_ack(NodeId client) const {
  return !entries_.contains(client);
}

ClientStanding ServerLeaseAuthority::standing(NodeId client) const {
  const Entry* e = entries_.find(client);
  return e == nullptr ? ClientStanding::kGood : e->standing;
}

bool ServerLeaseAuthority::try_reregister(NodeId client) {
  Entry* e = entries_.find(client);
  if (e == nullptr) {
    return true;  // nothing held against this client
  }
  ++counters_->lease_ops;
  if (e->standing == ClientStanding::kSuspect) {
    if (!cfg_.allow_early_reregister) {
      return false;  // conservative: wait out the full tau(1+eps)
    }
    // Ablation path: the client asserts its lease expired; steal now and
    // accept.
    clock_->cancel(e->timer);
    e->timer = 0;
    e->standing = ClientStanding::kFailed;
    e->failed_at = clock_->now();
    if (rec_ != nullptr) {
      const sim::SimTime t = clock_->engine().now();
      rec_->record(t, self_, obs::EventKind::kStandingChange, client.value(),
                   static_cast<std::uint64_t>(ClientStanding::kFailed));
      rec_->record(t, self_, obs::EventKind::kLockSteal, client.value());
    }
    if (hooks_.standing_changed) {
      hooks_.standing_changed(client, ClientStanding::kFailed);
    }
    if (hooks_.steal_locks) {
      hooks_.steal_locks(client);
    }
  }
  if (rec_ != nullptr) {
    if (e->standing == ClientStanding::kFailed) {
      // Steal-to-reassert recovery: how long the client's data sat fenced
      // before it came back.
      rec_->span(obs::SpanKind::kStealRecovery, (clock_->now() - e->failed_at).millis());
    }
    rec_->record(clock_->engine().now(), self_, obs::EventKind::kStandingChange, client.value(),
                 static_cast<std::uint64_t>(ClientStanding::kGood));
  }
  entries_.erase(client);
  if (hooks_.standing_changed) {
    hooks_.standing_changed(client, ClientStanding::kGood);
  }
  return true;
}

std::size_t ServerLeaseAuthority::state_bytes() const {
  // Honest accounting of the per-client lease footprint: one flat-table slot
  // per tracked client (no bucket pointers to charge).
  return entries_.size() * (sizeof(NodeId) + sizeof(Entry));
}

std::size_t ServerLeaseAuthority::suspect_count() const {
  std::size_t n = 0;
  for (const auto& [node, e] : entries_) {
    if (e.standing == ClientStanding::kSuspect) ++n;
  }
  return n;
}

std::size_t ServerLeaseAuthority::failed_count() const {
  std::size_t n = 0;
  for (const auto& [node, e] : entries_) {
    if (e.standing == ClientStanding::kFailed) ++n;
  }
  return n;
}

}  // namespace stank::core
