// The arithmetic behind Theorem 3.1.
//
// Client lease: obtained at first-transmission time t_C1 (client clock),
// valid over [t_C1, t_C1 + tau_c). Server timer: started at some t >= t_S2
// (server clock), fires after tau_s * (1 + eps). Rate synchronization gives
// tau_c < tau_s * (1 + eps) in any common frame, and the message ordering
// gives t_C1 <= t_S2, so the steal strictly follows the client expiry.
#pragma once

#include "sim/time.hpp"

namespace stank::core {

// The interval the server must wait, on its own clock, before stealing locks
// from an unresponsive client: tau(1 + eps).
[[nodiscard]] inline sim::LocalDuration server_wait(sim::LocalDuration tau, double eps) {
  return tau * (1.0 + eps);
}

// Client lease expiry on the client's clock.
[[nodiscard]] inline sim::LocalTime client_expiry(sim::LocalTime t_c1, sim::LocalDuration tau) {
  return t_c1 + tau;
}

// Verifies the theorem's premise for a concrete pair of clock rates: both
// rates must lie within the mutual bound. (rate = local-seconds per true
// second.)
[[nodiscard]] inline bool rates_within_bound(double rate_a, double rate_b, double eps) {
  const double ratio = rate_a / rate_b;
  return ratio < (1.0 + eps) && ratio > 1.0 / (1.0 + eps);
}

// Global-frame duration of a client-side lease of length tau on a clock of
// the given rate: how long the true world waits while that clock counts tau.
[[nodiscard]] inline sim::Duration lease_global_span(sim::LocalDuration tau, double clock_rate) {
  return sim::Duration{tau.ns} / clock_rate;
}

// Worst-case extra availability delay the protocol imposes beyond tau, in
// global time: the server waits tau(1+eps) on a clock that may itself run
// slow by (1+eps), so the bound is tau(1+eps)^2 in true time.
[[nodiscard]] inline sim::Duration worst_case_steal_delay(sim::LocalDuration tau, double eps) {
  return sim::Duration{tau.ns} * ((1.0 + eps) * (1.0 + eps));
}

}  // namespace stank::core
