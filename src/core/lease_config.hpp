// Lease protocol parameters.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace stank::core {

// Which lease machinery maintains the client/server contract during normal
// operation (the paper's sections 4 & 5 comparisons).
enum class LeaseStrategy : std::uint8_t {
  kStorageTank,  // single implicit lease, opportunistic renewal, passive server
  kVLeases,      // per-object leases with explicit renewals (V system)
  kFrangipani,   // single lease, heartbeats, stateful server
};

[[nodiscard]] constexpr const char* to_string(LeaseStrategy s) {
  switch (s) {
    case LeaseStrategy::kStorageTank: return "storage-tank";
    case LeaseStrategy::kVLeases: return "v-leases";
    case LeaseStrategy::kFrangipani: return "frangipani";
  }
  return "?";
}

struct LeaseConfig {
  // The contracted lease period tau, as counted on either party's own clock
  // (the contract is in local units; rate synchronization bounds the
  // cross-clock error).
  sim::LocalDuration tau{sim::local_seconds(10)};

  // Clock rate synchronization bound epsilon: an interval of length t on one
  // clock measures within (t/(1+eps), t(1+eps)) on another.
  double epsilon{1e-4};

  // Phase boundaries as fractions of tau (Figure 4).
  //  [0, phase2_frac)            phase 1: lease valid, passive renewal
  //  [phase2_frac, phase3_frac)  phase 2: active keep-alive renewal
  //  [phase3_frac, phase4_frac)  phase 3: suspect — quiesce FS activity
  //  [phase4_frac, 1)            phase 4: expected failure — flush dirty data
  double phase2_frac{0.50};
  double phase3_frac{0.75};
  double phase4_frac{0.85};

  // How often a phase-2 client re-sends its keep-alive NULL message.
  sim::LocalDuration keepalive_retry{sim::local_millis(500)};

  // Ablation switch: accept a RegisterReq from a client whose lease timer is
  // still running, stealing its locks immediately. Trusts the client's
  // claim that its own lease has expired; the paper's conservative protocol
  // always waits out the full tau(1+eps).
  bool allow_early_reregister{false};

  void validate() const {
    STANK_ASSERT(tau.ns > 0);
    STANK_ASSERT(epsilon >= 0.0);
    STANK_ASSERT(phase2_frac > 0.0 && phase2_frac < phase3_frac);
    STANK_ASSERT(phase3_frac < phase4_frac && phase4_frac < 1.0);
    STANK_ASSERT(keepalive_retry.ns > 0);
  }
};

}  // namespace stank::core
