#include "core/client_lease_agent.hpp"

#include "common/assert.hpp"

namespace stank::core {

ClientLeaseAgent::ClientLeaseAgent(sim::NodeClock& clock, LeaseConfig cfg, Hooks hooks)
    : clock_(&clock), cfg_(cfg), hooks_(std::move(hooks)) {
  cfg_.validate();
}

ClientLeaseAgent::~ClientLeaseAgent() { cancel_timers(); }

sim::LocalTime ClientLeaseAgent::boundary(double frac) const {
  return lease_start_ + cfg_.tau * frac;
}

void ClientLeaseAgent::cancel_timers() {
  if (boundary_timer_ != 0) {
    clock_->cancel(boundary_timer_);
    boundary_timer_ = 0;
  }
  if (keepalive_timer_ != 0) {
    clock_->cancel(keepalive_timer_);
    keepalive_timer_ = 0;
  }
}

void ClientLeaseAgent::restart(sim::LocalTime t_c1) {
  nack_latched_ = false;
  lease_start_ = t_c1;
  // Enter the phase the new lease is actually in (the ACK may arrive well
  // after the request was sent) and arm the next boundary.
  cancel_timers();
  phase_ = LeasePhase::kNoLease;
  arm_boundary_timer();
}

void ClientLeaseAgent::renew(sim::LocalTime t_c1) {
  if (phase_ == LeasePhase::kNoLease || phase_ == LeasePhase::kExpired) {
    // NoLease: the owning client calls restart() explicitly on registration.
    // Expired: the lease contract has lapsed; only re-registration revives it.
    return;
  }
  if (nack_latched_) {
    // A NACK means the server has disavowed us: the ride-down must complete
    // and a stray ACK (e.g. a cached server reply) must not resurrect the
    // lease. Without a NACK, suspect/flush were entered purely on local
    // timeout, and an ACK anchored at t_c1 proves the server heard us then —
    // the theorem 3.1 argument covers the extension regardless of phase.
    return;
  }
  if (t_c1 <= lease_start_) {
    return;  // would not extend the current lease
  }
  lease_start_ = t_c1;
  ++renewals_;
  if (rec_ != nullptr) {
    rec_->record(clock_->engine().now(), self_, obs::EventKind::kLeaseRenew,
                 static_cast<std::uint64_t>(t_c1.ns));
  }
  cancel_timers();
  arm_boundary_timer();
}

void ClientLeaseAgent::on_nack() {
  ++nacks_seen_;
  if (phase_ == LeasePhase::kNoLease || phase_ == LeasePhase::kExpired) {
    return;
  }
  nack_latched_ = true;
  if (static_cast<int>(phase_) < static_cast<int>(LeasePhase::kSuspect)) {
    // "The client ... knows its cache to be invalid and enters phase 3 of
    // the lease interval directly."
    cancel_timers();
    arm_boundary_timer();
  } else if (keepalive_timer_ != 0) {
    // Already riding down on timeout and still probing for a rescue: the
    // NACK ends that — renewal is disabled until restart().
    clock_->cancel(keepalive_timer_);
    keepalive_timer_ = 0;
  }
}

void ClientLeaseAgent::deactivate() {
  cancel_timers();
  const LeasePhase old = phase_;
  phase_ = LeasePhase::kNoLease;
  if (old != phase_) {
    note_phase(old, phase_);
    if (hooks_.phase_changed) {
      hooks_.phase_changed(old, phase_);
    }
  }
}

void ClientLeaseAgent::arm_boundary_timer() {
  const sim::LocalTime now = clock_->now();

  LeasePhase target;
  sim::LocalTime next;
  if (now < boundary(cfg_.phase2_frac)) {
    target = LeasePhase::kActive;
    next = boundary(cfg_.phase2_frac);
  } else if (now < boundary(cfg_.phase3_frac)) {
    target = LeasePhase::kRenewal;
    next = boundary(cfg_.phase3_frac);
  } else if (now < boundary(cfg_.phase4_frac)) {
    target = LeasePhase::kSuspect;
    next = boundary(cfg_.phase4_frac);
  } else if (now < lease_expiry()) {
    target = LeasePhase::kFlush;
    next = lease_expiry();
  } else {
    target = LeasePhase::kExpired;
    next = now;  // unused
  }

  // A latched NACK pins the client at phase 3 or beyond.
  if (nack_latched_ && static_cast<int>(target) < static_cast<int>(LeasePhase::kSuspect)) {
    target = LeasePhase::kSuspect;
    next = boundary(cfg_.phase4_frac);
    if (next <= now) {
      next = now + sim::LocalDuration{1};
    }
  }

  enter(target);
  if (target == LeasePhase::kExpired) {
    return;
  }

  sim::LocalDuration delay = next - now;
  if (delay.ns < 1) {
    delay = sim::LocalDuration{1};
  }
  boundary_timer_ = clock_->schedule_after(delay, [this]() {
    boundary_timer_ = 0;
    arm_boundary_timer();
  });
}

void ClientLeaseAgent::enter(LeasePhase p) {
  if (p == phase_) {
    return;
  }
  const LeasePhase old = phase_;
  phase_ = p;
  note_phase(old, p);
  if (hooks_.phase_changed) {
    hooks_.phase_changed(old, p);
  }

  // Keep-alives run from phase 2 until the ride-down is latched: a suspect
  // or flushing client that has NOT been NACKed keeps trying to renew, and a
  // late ACK rescues the lease (see renew()).
  if (keepalive_timer_ != 0) {
    clock_->cancel(keepalive_timer_);
    keepalive_timer_ = 0;
  }

  switch (p) {
    case LeasePhase::kActive:
    case LeasePhase::kNoLease:
      break;
    case LeasePhase::kRenewal:
      keepalive_tick();
      break;
    case LeasePhase::kSuspect:
      ++disruptions_;
      if (hooks_.quiesce) hooks_.quiesce();
      if (!nack_latched_) keepalive_tick();
      break;
    case LeasePhase::kFlush:
      if (hooks_.flush) hooks_.flush();
      if (!nack_latched_) keepalive_tick();
      break;
    case LeasePhase::kExpired:
      ++disruptions_;
      ++expiries_;
      if (hooks_.expired) hooks_.expired();
      break;
  }
}

void ClientLeaseAgent::note_phase(LeasePhase old, LeasePhase now) {
  if (rec_ == nullptr) {
    return;
  }
  const sim::SimTime t = clock_->engine().now();
  switch (old) {
    case LeasePhase::kActive: rec_->span(obs::SpanKind::kPhaseActive, (t - phase_since_).millis()); break;
    case LeasePhase::kRenewal: rec_->span(obs::SpanKind::kPhaseRenewal, (t - phase_since_).millis()); break;
    case LeasePhase::kSuspect: rec_->span(obs::SpanKind::kPhaseSuspect, (t - phase_since_).millis()); break;
    case LeasePhase::kFlush: rec_->span(obs::SpanKind::kPhaseFlush, (t - phase_since_).millis()); break;
    case LeasePhase::kNoLease:
    case LeasePhase::kExpired: break;
  }
  phase_since_ = t;
  rec_->record(t, self_, obs::EventKind::kLeasePhase, static_cast<std::uint64_t>(old),
               static_cast<std::uint64_t>(now));
  if (now == LeasePhase::kExpired) {
    rec_->record(t, self_, obs::EventKind::kLeaseExpire);
  }
}

void ClientLeaseAgent::keepalive_tick() {
  const bool renewing = phase_ == LeasePhase::kRenewal;
  const bool riding_down_unlatched =
      (phase_ == LeasePhase::kSuspect || phase_ == LeasePhase::kFlush) &&
      !nack_latched_;
  if (!renewing && !riding_down_unlatched) {
    return;
  }
  ++keepalives_sent_;
  if (rec_ != nullptr) {
    rec_->record(clock_->engine().now(), self_, obs::EventKind::kKeepaliveSend);
  }
  if (hooks_.send_keepalive) {
    hooks_.send_keepalive();
  }
  keepalive_timer_ = clock_->schedule_after(cfg_.keepalive_retry, [this]() {
    keepalive_timer_ = 0;
    keepalive_tick();
  });
}

}  // namespace stank::core
