// Consistency checker: replays a recorded history against the guarantees
// Storage Tank promises (sequential consistency of file data, no lost
// updates) and reports every violation.
//
// Three rules:
//  1. Disk write order — per (file, block), versions written to the disk
//     must never regress. A regression means two writers raced: exactly the
//     corruption naive lock stealing produces (section 2).
//  2. Stale read — a read must observe at least the version the disk held
//     when the read began. Observing less means the reader consumed a stale
//     cache: the failure mode of fencing-only recovery (section 2.1) and of
//     NFS polling (section 5).
//  3. Lost update — after the run settles, the disk must hold the newest
//     buffered version of every block, excluding writes buffered by clients
//     that crashed (a failed machine legitimately loses volatile state).
//     Fencing-only recovery strands such data (section 2.1).
#pragma once

#include <string>
#include <vector>

#include "verify/history.hpp"

namespace stank::verify {

enum class ViolationKind : std::uint8_t {
  kWriteOrderRegression,
  kStaleRead,
  kLostUpdate,
};

[[nodiscard]] constexpr const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kWriteOrderRegression: return "write-order-regression";
    case ViolationKind::kStaleRead: return "stale-read";
    case ViolationKind::kLostUpdate: return "lost-update";
  }
  return "?";
}

struct Violation {
  ViolationKind kind;
  sim::SimTime at;
  std::string detail;
};

struct ViolationSummary {
  std::size_t write_order{0};
  std::size_t stale_reads{0};
  std::size_t lost_updates{0};
  [[nodiscard]] std::size_t total() const { return write_order + stale_reads + lost_updates; }
};

class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(const HistoryRecorder& history) : h_(&history) {}

  [[nodiscard]] std::vector<Violation> check_all() const;
  [[nodiscard]] std::vector<Violation> check_write_order() const;
  [[nodiscard]] std::vector<Violation> check_stale_reads() const;
  [[nodiscard]] std::vector<Violation> check_lost_updates() const;

  [[nodiscard]] static ViolationSummary summarize(const std::vector<Violation>& vs);

 private:
  const HistoryRecorder* h_;
};

}  // namespace stank::verify
