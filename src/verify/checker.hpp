// Consistency checker: replays a recorded history against the guarantees
// Storage Tank promises (sequential consistency of file data, no lost
// updates) and reports every violation.
//
// Three rules:
//  1. Disk write order — per (file, block), versions written to the disk
//     must never regress. A regression means two writers raced: exactly the
//     corruption naive lock stealing produces (section 2).
//  2. Stale read — a read must observe at least the version the disk held
//     when the read began. Observing less means the reader consumed a stale
//     cache: the failure mode of fencing-only recovery (section 2.1) and of
//     NFS polling (section 5).
//  3. Lost update — after the run settles, the disk must hold the newest
//     buffered version of every block, excluding writes buffered by clients
//     that crashed (a failed machine legitimately loses volatile state).
//     Fencing-only recovery strands such data (section 2.1).
#pragma once

#include <string>
#include <vector>

#include "verify/history.hpp"

namespace stank::verify {

enum class ViolationKind : std::uint8_t {
  kWriteOrderRegression,
  kStaleRead,
  kLostUpdate,
};

[[nodiscard]] constexpr const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kWriteOrderRegression: return "write-order-regression";
    case ViolationKind::kStaleRead: return "stale-read";
    case ViolationKind::kLostUpdate: return "lost-update";
  }
  return "?";
}

struct Violation {
  ViolationKind kind;
  sim::SimTime at;
  std::string detail;
  // The party whose guarantee broke: the writer whose landed version was
  // regressed over, the reader that observed staleness, or the client whose
  // buffered update was lost. Drives the split verdict below.
  NodeId victim{};
};

// The split verdict of DESIGN.md §13: violations whose victim is an HONEST
// client break the paper's safety claim (the trusted base — server + fence
// list — failed to protect a rule-following participant); violations whose
// victim is a declared-byzantine client are self-inflicted and merely
// diagnostic (e.g. a defiant client's own late writes being fenced away).
// With no byzantine clients declared, every violation is in `honest` and the
// verdict degenerates to check_all().
struct SplitVerdict {
  std::vector<Violation> honest;
  std::vector<Violation> byzantine;
};

struct ViolationSummary {
  std::size_t write_order{0};
  std::size_t stale_reads{0};
  std::size_t lost_updates{0};
  [[nodiscard]] std::size_t total() const { return write_order + stale_reads + lost_updates; }
};

class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(const HistoryRecorder& history) : h_(&history) {}

  [[nodiscard]] std::vector<Violation> check_all() const;
  [[nodiscard]] SplitVerdict check_all_split() const;
  [[nodiscard]] std::vector<Violation> check_write_order() const;
  [[nodiscard]] std::vector<Violation> check_stale_reads() const;
  [[nodiscard]] std::vector<Violation> check_lost_updates() const;

  [[nodiscard]] static ViolationSummary summarize(const std::vector<Violation>& vs);

 private:
  const HistoryRecorder* h_;
};

}  // namespace stank::verify
