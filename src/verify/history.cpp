#include "verify/history.hpp"

#include <algorithm>
#include <span>

namespace stank::verify {

void HistoryRecorder::on_disk_io(const storage::IoRequest& req, const storage::IoResult& res,
                                 sim::SimTime at, std::uint32_t block_size) {
  if (req.op != storage::IoOp::kWrite || !res.status.is_ok()) {
    return;
  }
  for (std::uint32_t i = 0; i < req.count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_size;
    if (off + block_size > req.data.size()) {
      break;
    }
    auto stamp = decode_stamp(std::span<const std::uint8_t>(req.data).subspan(off, block_size));
    if (!stamp) {
      continue;  // unstamped write (metadata, filler) — not verified
    }
    disk_writes_.push_back(DiskWriteRec{at, req.initiator, req.disk, req.addr + i, *stamp});
  }
}

void HistoryRecorder::on_buffered_write(sim::SimTime at, NodeId client, const Stamp& stamp) {
  buffered_writes_.push_back(BufferedWriteRec{at, client, stamp});
}

void HistoryRecorder::on_read(const ReadRec& r) { reads_.push_back(r); }

void HistoryRecorder::on_crash(NodeId client) { crashed_.insert(client); }

std::vector<DiskWriteRec> HistoryRecorder::disk_writes_of(BlockKey key) const {
  std::vector<DiskWriteRec> out;
  for (const auto& w : disk_writes_) {
    if (w.stamp.file == key.first && w.stamp.block == key.second) {
      out.push_back(w);
    }
  }
  return out;
}

std::uint64_t HistoryRecorder::disk_version_at(BlockKey key, sim::SimTime t) const {
  std::uint64_t v = 0;
  sim::SimTime latest{-1};
  for (const auto& w : disk_writes_) {
    if (w.stamp.file == key.first && w.stamp.block == key.second && w.at <= t && w.at >= latest) {
      latest = w.at;
      v = w.stamp.version;
    }
  }
  return v;
}

std::set<HistoryRecorder::BlockKey> HistoryRecorder::all_blocks() const {
  std::set<BlockKey> keys;
  for (const auto& w : disk_writes_) {
    keys.insert({w.stamp.file, w.stamp.block});
  }
  for (const auto& w : buffered_writes_) {
    keys.insert({w.stamp.file, w.stamp.block});
  }
  for (const auto& r : reads_) {
    keys.insert({r.file, r.block});
  }
  return keys;
}

void HistoryRecorder::clear() {
  disk_writes_.clear();
  buffered_writes_.clear();
  reads_.clear();
  crashed_.clear();
}

}  // namespace stank::verify
