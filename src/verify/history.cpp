#include "verify/history.hpp"

#include <algorithm>
#include <span>

#include "common/assert.hpp"

namespace stank::verify {

void HistoryRecorder::on_disk_io(const storage::IoRequest& req, const storage::IoResult& res,
                                 sim::SimTime at, std::uint32_t block_size) {
  if (req.op != storage::IoOp::kWrite || !res.status.is_ok()) {
    return;
  }
  for (std::uint32_t i = 0; i < req.count; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * block_size;
    if (off + block_size > req.data.size()) {
      break;
    }
    auto stamp = decode_stamp(std::span<const std::uint8_t>(req.data).subspan(off, block_size));
    if (!stamp) {
      continue;  // unstamped write (metadata, filler) — not verified
    }
    const auto pos = static_cast<std::uint32_t>(disk_writes_.size());
    disk_writes_.push_back(DiskWriteRec{at, req.initiator, req.disk, req.addr + i, *stamp});
    auto& idx = writes_by_block_[{stamp->file, stamp->block}];
    // The tap runs off engine events: completion times are non-decreasing,
    // which is what lets disk_version_at() binary-search this list.
    STANK_ASSERT(idx.empty() || disk_writes_[idx.back()].at <= at);
    idx.push_back(pos);
  }
}

void HistoryRecorder::on_buffered_write(sim::SimTime at, NodeId client, const Stamp& stamp) {
  buffered_writes_.push_back(BufferedWriteRec{at, client, stamp});
}

void HistoryRecorder::on_read(const ReadRec& r) { reads_.push_back(r); }

void HistoryRecorder::on_crash(NodeId client) { crashed_.insert(client); }

std::vector<DiskWriteRec> HistoryRecorder::disk_writes_of(BlockKey key) const {
  std::vector<DiskWriteRec> out;
  const auto* idx = writes_by_block_.find(key);
  if (idx == nullptr) return out;
  out.reserve(idx->size());
  for (std::uint32_t pos : *idx) {
    out.push_back(disk_writes_[pos]);
  }
  return out;
}

std::uint64_t HistoryRecorder::disk_version_at(BlockKey key, sim::SimTime t) const {
  const auto* idx = writes_by_block_.find(key);
  if (idx == nullptr) return 0;
  // Last position whose completion time is <= t; ties resolve to the later
  // record, matching disk order.
  auto it = std::upper_bound(idx->begin(), idx->end(), t,
                             [&](sim::SimTime lhs, std::uint32_t pos) {
                               return lhs < disk_writes_[pos].at;
                             });
  if (it == idx->begin()) return 0;
  return disk_writes_[*std::prev(it)].stamp.version;
}

std::set<HistoryRecorder::BlockKey> HistoryRecorder::all_blocks() const {
  std::set<BlockKey> keys;
  for (const auto& [key, idx] : writes_by_block_) {
    keys.insert(key);
  }
  for (const auto& w : buffered_writes_) {
    keys.insert({w.stamp.file, w.stamp.block});
  }
  for (const auto& r : reads_) {
    keys.insert({r.file, r.block});
  }
  return keys;
}

void HistoryRecorder::clear() {
  disk_writes_.clear();
  writes_by_block_.clear();
  buffered_writes_.clear();
  reads_.clear();
  crashed_.clear();
  byzantine_.clear();
}

}  // namespace stank::verify
