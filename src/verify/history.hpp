// Omniscient history recorder.
//
// Test equipment, not part of the modelled system: it taps the SAN fabric
// (every I/O the disks execute) and receives explicit notifications from the
// workload driver (writes accepted into a client cache, reads returned to a
// local process). The ConsistencyChecker replays this history against the
// file system's guarantees.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/flat_map.hpp"
#include "common/strong_id.hpp"
#include "sim/time.hpp"
#include "storage/io.hpp"
#include "verify/stamp.hpp"

namespace stank::verify {

struct DiskWriteRec {
  sim::SimTime at;        // completion time at the disk (serialization point)
  NodeId initiator;
  DiskId disk;
  storage::BlockAddr addr;
  Stamp stamp;            // decoded from the written block
};

struct BufferedWriteRec {
  sim::SimTime at;        // when the local process's write() completed
  NodeId client;
  Stamp stamp;
};

struct ReadRec {
  sim::SimTime start;
  sim::SimTime end;
  NodeId client;
  FileId file;
  std::uint64_t block{0};
  // Version observed by the process; 0 when the block carried no stamp yet.
  std::uint64_t observed_version{0};
};

class HistoryRecorder {
 public:
  // SAN tap entry point: install as
  //   san.on_io = [&](auto& rq, auto& rs, auto t) { rec.on_disk_io(rq, rs, t, bs); };
  void on_disk_io(const storage::IoRequest& req, const storage::IoResult& res, sim::SimTime at,
                  std::uint32_t block_size);

  // Driver notifications.
  void on_buffered_write(sim::SimTime at, NodeId client, const Stamp& stamp);
  void on_read(const ReadRec& r);
  void on_crash(NodeId client);
  // Declares a client adversarial for the whole run: the checker's split
  // verdict buckets violations whose victim is byzantine as diagnostic
  // rather than safety-breaking (DESIGN.md §13).
  void mark_byzantine(NodeId client) { byzantine_.insert(client); }

  using BlockKey = std::pair<FileId, std::uint64_t>;

  [[nodiscard]] const std::vector<DiskWriteRec>& disk_writes() const { return disk_writes_; }
  [[nodiscard]] const std::vector<BufferedWriteRec>& buffered_writes() const {
    return buffered_writes_;
  }
  [[nodiscard]] const std::vector<ReadRec>& reads() const { return reads_; }
  [[nodiscard]] const std::set<NodeId>& crashed() const { return crashed_; }
  [[nodiscard]] const std::set<NodeId>& byzantine() const { return byzantine_; }

  // Disk writes of one (file, block), in completion order.
  [[nodiscard]] std::vector<DiskWriteRec> disk_writes_of(BlockKey key) const;
  // Version of the last disk write to (file, block) completing at or before
  // t; 0 if none. O(log writes-to-that-block) via the per-block index.
  [[nodiscard]] std::uint64_t disk_version_at(BlockKey key, sim::SimTime t) const;
  // All block keys that appear anywhere in the history.
  [[nodiscard]] std::set<BlockKey> all_blocks() const;

  void clear();

 private:
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.first.value()) << 40) ^ k.second);
    }
  };

  std::vector<DiskWriteRec> disk_writes_;
  // Per-block positions into disk_writes_, in completion order (the tap runs
  // off engine events, so `at` is non-decreasing within each list). Checker
  // queries are per block and per read; without this index each one rescans
  // the whole history and the verified benches go quadratic.
  FlatMap<BlockKey, std::vector<std::uint32_t>, BlockKeyHash> writes_by_block_;
  std::vector<BufferedWriteRec> buffered_writes_;
  std::vector<ReadRec> reads_;
  std::set<NodeId> crashed_;
  std::set<NodeId> byzantine_;
};

}  // namespace stank::verify
