#include "verify/checker.hpp"

#include <map>
#include <sstream>

namespace stank::verify {

namespace {

std::string block_name(HistoryRecorder::BlockKey key) {
  std::ostringstream os;
  os << "f" << key.first.value() << ":b" << key.second;
  return os.str();
}

}  // namespace

std::vector<Violation> ConsistencyChecker::check_all() const {
  std::vector<Violation> out = check_write_order();
  auto stale = check_stale_reads();
  out.insert(out.end(), stale.begin(), stale.end());
  auto lost = check_lost_updates();
  out.insert(out.end(), lost.begin(), lost.end());
  return out;
}

SplitVerdict ConsistencyChecker::check_all_split() const {
  SplitVerdict verdict;
  const auto& byz = h_->byzantine();
  for (auto& v : check_all()) {
    (byz.contains(v.victim) ? verdict.byzantine : verdict.honest).push_back(std::move(v));
  }
  return verdict;
}

std::vector<Violation> ConsistencyChecker::check_write_order() const {
  std::vector<Violation> out;
  // Last version seen at the disk per (file, block); disk_writes_ is already
  // in completion order.
  std::map<HistoryRecorder::BlockKey, std::pair<std::uint64_t, NodeId>> last;
  for (const auto& w : h_->disk_writes()) {
    const HistoryRecorder::BlockKey key{w.stamp.file, w.stamp.block};
    auto it = last.find(key);
    if (it != last.end() && w.stamp.version < it->second.first) {
      std::ostringstream os;
      os << block_name(key) << ": v" << w.stamp.version << " by n" << w.initiator.value()
         << " landed after v" << it->second.first << " by n" << it->second.second.value();
      // The victim is the writer whose (newer) version got clobbered, not
      // whoever submitted the late write.
      out.push_back(
          Violation{ViolationKind::kWriteOrderRegression, w.at, os.str(), it->second.second});
    }
    if (it == last.end() || w.stamp.version >= it->second.first) {
      last[key] = {w.stamp.version, w.initiator};
    }
  }
  return out;
}

std::vector<Violation> ConsistencyChecker::check_stale_reads() const {
  std::vector<Violation> out;
  for (const auto& r : h_->reads()) {
    const HistoryRecorder::BlockKey key{r.file, r.block};
    const std::uint64_t on_disk = h_->disk_version_at(key, r.start);
    if (r.observed_version < on_disk) {
      std::ostringstream os;
      os << block_name(key) << ": n" << r.client.value() << " read v" << r.observed_version
         << " but disk already held v" << on_disk;
      out.push_back(Violation{ViolationKind::kStaleRead, r.end, os.str(), r.client});
    }
  }
  return out;
}

std::vector<Violation> ConsistencyChecker::check_lost_updates() const {
  std::vector<Violation> out;
  // Newest version buffered by a client that did NOT crash, per block.
  std::map<HistoryRecorder::BlockKey, BufferedWriteRec> newest;
  for (const auto& w : h_->buffered_writes()) {
    if (h_->crashed().contains(w.client)) {
      continue;  // volatile loss on a failed machine is legitimate
    }
    const HistoryRecorder::BlockKey key{w.stamp.file, w.stamp.block};
    auto it = newest.find(key);
    if (it == newest.end() || w.stamp.version > it->second.stamp.version) {
      newest[key] = w;
    }
  }
  for (const auto& [key, w] : newest) {
    // Final disk state: version of the chronologically last write.
    const auto writes = h_->disk_writes_of(key);
    const std::uint64_t final_version = writes.empty() ? 0 : writes.back().stamp.version;
    if (final_version < w.stamp.version) {
      std::ostringstream os;
      os << block_name(key) << ": v" << w.stamp.version << " buffered by n"
         << w.client.value() << " never superseded on disk (final v" << final_version << ")";
      out.push_back(Violation{ViolationKind::kLostUpdate, w.at, os.str(), w.client});
    }
  }
  return out;
}

ViolationSummary ConsistencyChecker::summarize(const std::vector<Violation>& vs) {
  ViolationSummary s;
  for (const auto& v : vs) {
    switch (v.kind) {
      case ViolationKind::kWriteOrderRegression: ++s.write_order; break;
      case ViolationKind::kStaleRead: ++s.stale_reads; break;
      case ViolationKind::kLostUpdate: ++s.lost_updates; break;
    }
  }
  return s;
}

}  // namespace stank::verify
