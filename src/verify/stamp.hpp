// Self-describing block stamps.
//
// Every block the verified workloads write begins with a stamp naming the
// file, the block index within the file, a per-block monotonically
// increasing version, and the writer. The stamps make the disk history
// self-describing: the omniscient SAN tap can attribute every write without
// consulting file metadata, and readers can report exactly which version
// they observed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/byte_pool.hpp"
#include "common/bytes.hpp"
#include "common/strong_id.hpp"

namespace stank::verify {

struct Stamp {
  FileId file;
  std::uint64_t block{0};   // file-block index
  std::uint64_t version{0}; // per-(file, block) monotone version
  NodeId writer;

  friend bool operator==(const Stamp&, const Stamp&) = default;
};

inline constexpr std::uint32_t kStampMagic = 0x53544E4Bu;  // "STNK"
inline constexpr std::size_t kStampBytes = 4 + 4 + 8 + 8 + 4;

// Builds a full block of `block_size` bytes carrying the stamp; the filler
// bytes are a deterministic function of the stamp so corruption is
// detectable. Requires block_size >= kStampBytes.
[[nodiscard]] inline Bytes make_stamped_block(std::uint32_t block_size, const Stamp& s) {
  Bytes b = take_buf();  // pooled: workloads stamp one of these per write
  b.reserve(block_size);
  ByteWriter w(b);
  w.u32(kStampMagic);
  w.u32(s.file.value());
  w.u64(s.block);
  w.u64(s.version);
  w.u32(s.writer.value());
  std::uint8_t fill = static_cast<std::uint8_t>(s.version * 131 + s.block * 31 + 7);
  while (b.size() < block_size) {
    b.push_back(fill++);
  }
  return b;
}

// Decodes a stamp from the head of a block; nullopt if the block was never
// stamped (all-zero or foreign data).
[[nodiscard]] inline std::optional<Stamp> decode_stamp(std::span<const std::uint8_t> block) {
  if (block.size() < kStampBytes) {
    return std::nullopt;
  }
  ByteReader r(block.subspan(0, kStampBytes));
  if (r.u32() != kStampMagic) {
    return std::nullopt;
  }
  Stamp s;
  s.file = FileId{r.u32()};
  s.block = r.u64();
  s.version = r.u64();
  s.writer = NodeId{r.u32()};
  return s;
}

}  // namespace stank::verify
