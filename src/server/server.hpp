// The Storage Tank metadata/lock server.
//
// Serves metadata transactions and runs the distributed locking protocol on
// the control network; never touches file data during normal operation
// (clients do direct SAN I/O). Composes:
//   * Metadata + BlockAllocator  — inodes, namespace, extent allocation
//   * LockManager                — data-lock state machine
//   * ServerLeaseAuthority       — the paper's passive lease protocol
//   * ServerTransport            — ACK/NACK datagram sessions
//
// Recovery behaviour on a delivery failure is selectable so the experiment
// tables can compare the paper's protocol against its strawmen:
//   kNaiveSteal     steal immediately (unsafe: concurrent writers)
//   kFenceOnly      fence, then steal immediately (section 2.1's strawman)
//   kLeaseOnly      wait tau(1+eps), then steal (no fence)
//   kLeaseAndFence  wait tau(1+eps), then fence, then steal (section 6)
//   kNoRecovery     honor the locks forever (unavailability strawman)
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/heartbeat.hpp"
#include "common/flat_map.hpp"
#include "common/small_vec.hpp"
#include "baselines/v_lease.hpp"
#include "core/server_lease_authority.hpp"
#include "metrics/counters.hpp"
#include "net/control_net.hpp"
#include "protocol/server_transport.hpp"
#include "server/block_alloc.hpp"
#include "server/lock_manager.hpp"
#include "server/metadata.hpp"
#include "sim/trace.hpp"
#include "storage/san.hpp"

namespace stank::server {

enum class RecoveryMode : std::uint8_t {
  kNaiveSteal,
  kFenceOnly,
  kLeaseOnly,
  kLeaseAndFence,
  kNoRecovery,
};

[[nodiscard]] constexpr const char* to_string(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kNaiveSteal: return "naive-steal";
    case RecoveryMode::kFenceOnly: return "fence-only";
    case RecoveryMode::kLeaseOnly: return "lease-only";
    case RecoveryMode::kLeaseAndFence: return "lease+fence";
    case RecoveryMode::kNoRecovery: return "no-recovery";
  }
  return "?";
}

using core::LeaseStrategy;

struct ServerConfig {
  NodeId id{1};
  core::LeaseConfig lease;
  RecoveryMode recovery{RecoveryMode::kLeaseAndFence};
  LeaseStrategy strategy{LeaseStrategy::kStorageTank};
  protocol::TransportConfig transport;
  std::uint32_t block_size{4096};
  std::vector<DiskId> data_disks;
  // A holder that ACKed a LockDemand but never completed it is declared
  // failed after this long (e.g. its SAN path is dead and the flush hangs).
  sim::LocalDuration demand_timeout{sim::local_seconds(30)};
  // Section 3.3 ablation: answer valid requests of suspect clients with a
  // NACK (the paper's design). With false, such requests are silently
  // ignored — "correct, [but] leads to further unnecessary message traffic".
  bool nack_suspect{true};
  // Post-restart grace period during which clients may reassert locks and
  // no fresh locks are granted (paper section 6: client-driven lock
  // reassertion). <= 0 picks the safe default tau(1+eps): every lease
  // granted by the previous incarnation has expired by the time fresh
  // grants resume.
  sim::LocalDuration recovery_grace{sim::LocalDuration{0}};
};

class Server {
 public:
  Server(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
         sim::LocalClock local_clock, ServerConfig cfg, sim::TraceLog* trace = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  // --- Introspection for tests, benches and the verifier -----------------
  [[nodiscard]] NodeId id() const { return cfg_.id; }
  [[nodiscard]] metrics::Counters& counters() { return counters_; }
  [[nodiscard]] const metrics::Counters& counters() const { return counters_; }
  [[nodiscard]] LockManager& locks() { return locks_; }
  [[nodiscard]] Metadata& metadata() { return metadata_; }
  [[nodiscard]] const core::ServerLeaseAuthority& authority() const { return *authority_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

  // Bytes of lease bookkeeping currently held, whatever the strategy — the
  // paper's T2 claim is that this is 0 for Storage Tank in normal operation.
  [[nodiscard]] std::size_t lease_state_bytes() const;

  [[nodiscard]] bool session_valid(NodeId client) const;
  [[nodiscard]] std::uint32_t session_epoch(NodeId client) const;

  // Force the recovery path as if a delivery failure had been observed
  // (failure-injection hook for tests/benches).
  void inject_delivery_failure(NodeId client);

  // Fail-stop server crash: volatile state (locks, sessions, lease timers,
  // lock generations) is lost; metadata and the allocator live on the
  // server's private persistent storage and survive. restart() begins a new
  // incarnation with a grace period for lock reassertion (section 6).
  void crash();
  void restart();
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool in_grace() const;

  // Test/bench setup helper: creates a file and allocates blocks for `size`
  // bytes, without any client traffic.
  Result<FileId> preallocate(const std::string& path, std::uint64_t size);

 private:
  struct Session {
    std::uint32_t epoch{0};
    bool valid{false};
  };
  struct DemandKey {
    NodeId holder;
    FileId file;
    friend bool operator==(const DemandKey&, const DemandKey&) = default;
  };
  struct DemandKeyHash {
    std::size_t operator()(const DemandKey& k) const {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.holder.value()) << 32) |
                                        k.file.value());
    }
  };
  struct DemandTimer {
    FileId file;
    sim::TimerId timer{0};
  };

  // Request dispatch.
  void handle_request(NodeId client, std::uint32_t epoch, const protocol::RequestBody& body,
                      protocol::ServerTransport::Responder r);
  void handle_register(NodeId client, protocol::ServerTransport::Responder r);
  void handle_reassert(NodeId client, const protocol::ReassertLockReq&,
                       protocol::ServerTransport::Responder r);
  void handle_open(NodeId client, const protocol::OpenReq&,
                   protocol::ServerTransport::Responder r);
  void handle_lock(NodeId client, const protocol::LockReq&,
                   protocol::ServerTransport::Responder r);
  void handle_unlock(NodeId client, const protocol::UnlockReq&,
                     protocol::ServerTransport::Responder r);
  void handle_demand_done(NodeId client, const protocol::DemandDoneReq&,
                          protocol::ServerTransport::Responder r);
  void handle_setsize(NodeId client, const protocol::SetSizeReq&,
                      protocol::ServerTransport::Responder r);
  void handle_read_data(NodeId client, const protocol::ReadDataReq&,
                        protocol::ServerTransport::Responder r);
  void handle_write_data(NodeId client, const protocol::WriteDataReq&,
                         protocol::ServerTransport::Responder r);

  [[nodiscard]] std::unique_ptr<core::ServerLeaseAuthority> make_authority();

  // Locking plumbing.
  void apply_update(const LockManager::Update& upd);
  void issue_demand(const LockManager::Demand& d);
  void deliver_grant(const LockManager::Grant& g);
  void cancel_demand_timer(NodeId holder, FileId file);
  void cancel_demand_timers(NodeId holder);
  void arm_demand_timer(NodeId holder, FileId file);
  [[nodiscard]] std::uint32_t lock_gen(NodeId client, FileId file) const;
  std::uint32_t bump_lock_gen(NodeId client, FileId file);
  [[nodiscard]] std::uint64_t lock_cookie(NodeId client, FileId file) const;
  std::uint64_t new_lock_cookie(NodeId client, FileId file);

  // Recovery.
  void on_delivery_failure(NodeId client);
  void begin_recovery(NodeId client);  // applies cfg_.recovery
  void fence_client(NodeId client, std::function<void()> then);
  // One fence attempt across all data disks; re-arms itself until every disk
  // acks, then runs `then` (the steal). See fence_client.
  void fence_round(NodeId client, std::function<void()> then);
  void unfence_client(NodeId client);
  void do_steal(NodeId client);

  [[nodiscard]] bool barred(NodeId client) const;

  // Lazy, sink-gated tracing: the format callable runs — and its string
  // machinery allocates — only when a TraceLog is attached. With tracing off
  // a trace site costs one branch.
  template <typename F>
    requires std::is_invocable_v<F&>
  void trace(const char* category, F&& detail) {
    if (trace_ != nullptr) {
      record_trace(category, std::forward<F>(detail)());
    }
  }
  void trace(const char* category, const char* detail) {
    if (trace_ != nullptr) {
      record_trace(category, detail);
    }
  }
  void record_trace(const char* category, std::string detail);

  [[nodiscard]] std::uint64_t now_ns() const;
  [[nodiscard]] BlockAllocator* allocator_with_space(std::uint64_t blocks);
  Status grow_file(Inode& inode, std::uint64_t new_size);
  void shrink_file(Inode& inode, std::uint64_t new_size);

  sim::Engine* engine_;
  net::ControlNet* net_;
  storage::SanFabric* san_;
  ServerConfig cfg_;
  sim::NodeClock clock_;
  sim::TraceLog* trace_;
  // Typed flight recorder behind trace_ (one ctor argument attaches both);
  // null when tracing is off.
  obs::Recorder* rec_{nullptr};

  metrics::Counters counters_;
  protocol::ServerTransport transport_;
  Metadata metadata_;
  LockManager locks_;
  std::vector<std::unique_ptr<BlockAllocator>> allocators_;

  // Lease machinery (by strategy).
  std::unique_ptr<core::ServerLeaseAuthority> authority_;
  std::unique_ptr<baselines::VLeaseTable> v_table_;
  std::unique_ptr<baselines::HeartbeatTable> hb_table_;
  // Clients whose sessions were invalidated by a steal; they must
  // re-register before being served again.
  FlatSet<NodeId> barred_;
  // Lease-expiry recovery timers for the V/Frangipani strategies (the
  // Storage Tank authority manages its own).
  FlatMap<NodeId, sim::TimerId> recovery_timers_;
  // Clients currently fenced at the data disks.
  FlatSet<NodeId> fenced_clients_;
  // Clients with a fence -> steal still in flight (some disk has not acked
  // its fence). Registration is refused for them: a new session admitted now
  // would have its locks swept by the pending do_steal().
  FlatSet<NodeId> fencing_;

  FlatMap<NodeId, Session> sessions_;
  // Persistent across crashes (kept on the server's private storage).
  std::uint32_t incarnation_{1};
  sim::LocalTime grace_until_{};
  // Compliance timers, grouped per holder so a client-wide cancel (steal,
  // re-registration) is O(that client's demands).
  FlatMap<NodeId, SmallVec<DemandTimer, 2>> demand_timers_;
  // Per-(client, file) lock generation: bumped by every grant and by steals,
  // so compliance/release messages that crossed a newer grant in flight are
  // recognizably stale (see protocol/messages.hpp).
  FlatMap<DemandKey, std::uint32_t, DemandKeyHash> lock_gens_;
  // Per-(client, file) grant cookie: a fresh unguessable value issued with
  // every grant and required on UnlockReq/DemandDoneReq. Generations alone
  // are guessable counters, so a client could forge a release for a grant
  // still in flight to it and the server would re-grant the lock while the
  // original holder later installs the late grant and writes — the forged
  // lock-claim hole tools/fuzz_safety --byzantine found. Here a counter mixed
  // through splitmix64 stands in for the CSPRNG a real server would use; the
  // model only needs clients to be unable to predict it.
  FlatMap<DemandKey, std::uint64_t, DemandKeyHash> lock_cookies_;
  std::uint64_t cookie_seq_{0};
  // Handler-loop scratch: lock-table results are appended here and consumed
  // in place, so steady-state requests reuse capacity instead of returning
  // fresh vectors. Never used across an event boundary.
  LockManager::Update update_scratch_;
  std::vector<LockManager::Demand> demand_scratch_;
  std::vector<FileId> affected_scratch_;
  bool started_{false};
};

}  // namespace stank::server
