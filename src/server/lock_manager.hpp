// Per-file data-lock manager: the distributed lock state machine at the
// locking authority.
//
// Pure state — no I/O, no timers — so it can be tested exhaustively and
// reused by every recovery mode. The server drives it and performs the
// messaging (demands, grants) it prescribes.
//
// Lock modes: Shared (cached reads) and Exclusive (write-back caching and
// direct SAN writes). Waiters queue in FIFO order; conflicting holders are
// demanded down; a steal removes a client's locks without its cooperation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/strong_id.hpp"
#include "protocol/messages.hpp"

namespace stank::server {

using protocol::LockMode;

class LockManager {
 public:
  struct Grant {
    NodeId client;
    FileId file;
    LockMode mode{LockMode::kNone};
  };
  struct Demand {
    NodeId holder;
    FileId file;
    // The strongest mode the holder may retain.
    LockMode max_mode{LockMode::kNone};
  };

  enum class AcquireOutcome : std::uint8_t {
    kGranted,      // lock held now (possibly an upgrade)
    kQueued,       // conflicts exist; caller should issue returned demands
    kAlreadyHeld,  // requested mode (or stronger) already held
  };

  struct AcquireResult {
    AcquireOutcome outcome{AcquireOutcome::kGranted};
    // Demands the server must deliver to conflicting holders (kQueued only;
    // holders already demanded at this or a lower max_mode are not repeated).
    std::vector<Demand> demands;
  };

  // Grants and demands that fell out of a state change, already applied to
  // the lock table; the caller must deliver them.
  struct Update {
    std::vector<Grant> grants;
    std::vector<Demand> demands;
  };

  // Requests `mode` on `file` for `client`.
  AcquireResult acquire(NodeId client, FileId file, LockMode mode);

  // Voluntary release/downgrade (also the holder's response to a demand).
  Update set_mode(NodeId client, FileId file, LockMode mode);

  // Removes a queued (not yet granted) request, e.g. when its client fails.
  // Removing a blocked head can unblock the queue, so grants may result.
  Update cancel_waiter(NodeId client, FileId file);

  // Steals every lock and queued request of a client without its
  // cooperation. Returns the files whose state changed plus the grants and
  // follow-up demands that became possible.
  struct StealResult {
    std::vector<FileId> affected;
    Update update;
  };
  StealResult steal_all(NodeId client);

  [[nodiscard]] LockMode mode_of(NodeId client, FileId file) const;
  // Strongest retained mode currently demanded of this holder, if any
  // demand is outstanding against it.
  [[nodiscard]] std::optional<LockMode> demanded_mode(NodeId client, FileId file) const;
  [[nodiscard]] std::vector<std::pair<NodeId, LockMode>> holders(FileId file) const;
  [[nodiscard]] bool has_waiters(FileId file) const;
  [[nodiscard]] std::size_t waiter_count(FileId file) const;
  [[nodiscard]] std::size_t held_files() const { return files_.size(); }
  // Files on which this client currently holds any lock.
  [[nodiscard]] std::vector<FileId> files_of(NodeId client) const;

  // Invariant check for tests: holders of each file are pairwise compatible
  // and waiters are only queued while a conflict actually exists.
  [[nodiscard]] bool invariants_hold() const;

 private:
  struct Waiter {
    NodeId client;
    LockMode mode{LockMode::kShared};
  };
  struct FileLocks {
    std::map<NodeId, LockMode> holders;  // mode is kShared or kExclusive
    std::deque<Waiter> waiters;
    // Strongest retained mode already demanded of each holder, to avoid
    // duplicate demands.
    std::map<NodeId, LockMode> demanded;
  };

  // Can `client` hold `mode` given current holders (ignoring itself)?
  [[nodiscard]] static bool grantable(const FileLocks& fl, NodeId client, LockMode mode);
  // Grants every grantable waiter (FIFO, stopping at the first conflict),
  // then computes fresh demands needed by the new queue head.
  void pump_waiters(FileId file, FileLocks& fl, Update& out);
  void collect_demands(FileId file, FileLocks& fl, Update& out);
  void gc(FileId file);

  std::unordered_map<FileId, FileLocks> files_;
};

}  // namespace stank::server
