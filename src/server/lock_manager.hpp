// Per-file data-lock manager: the distributed lock state machine at the
// locking authority.
//
// Pure state — no I/O, no timers — so it can be tested exhaustively and
// reused by every recovery mode. The server drives it and performs the
// messaging (demands, grants) it prescribes.
//
// Lock modes: Shared (cached reads) and Exclusive (write-back caching and
// direct SAN writes). Waiters queue in FIFO order; conflicting holders are
// demanded down; a steal removes a client's locks without its cooperation.
//
// Layout: the table is a flat ID-keyed hash map of inline lock records — the
// common case of one or two holders/waiters per file lives entirely in the
// record, so a steady-state lock operation touches no heap. A per-client
// reverse index (NodeId -> files held/awaited) makes files_of() and the
// steal/recovery path O(locks of that client) instead of O(lock table).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "common/small_vec.hpp"
#include "common/strong_id.hpp"
#include "obs/recorder.hpp"
#include "protocol/messages.hpp"

namespace stank::server {

using protocol::LockMode;

class LockManager {
 public:
  struct Grant {
    NodeId client;
    FileId file;
    LockMode mode{LockMode::kNone};
  };
  struct Demand {
    NodeId holder;
    FileId file;
    // The strongest mode the holder may retain.
    LockMode max_mode{LockMode::kNone};
  };
  struct Waiter {
    NodeId client;
    LockMode mode{LockMode::kShared};
  };

  enum class AcquireOutcome : std::uint8_t {
    kGranted,      // lock held now (possibly an upgrade)
    kQueued,       // conflicts exist; caller should issue returned demands
    kAlreadyHeld,  // requested mode (or stronger) already held
  };

  struct AcquireResult {
    AcquireOutcome outcome{AcquireOutcome::kGranted};
    // Demands the server must deliver to conflicting holders (kQueued only;
    // holders already demanded at this or a lower max_mode are not repeated).
    std::vector<Demand> demands;
  };

  // Grants and demands that fell out of a state change, already applied to
  // the lock table; the caller must deliver them.
  struct Update {
    std::vector<Grant> grants;
    std::vector<Demand> demands;
    void clear() {
      grants.clear();
      demands.clear();
    }
  };

  // --- Scratch-buffer API --------------------------------------------------
  // The steady-state entry points append into caller-owned buffers, so a
  // handler loop reuses capacity across requests instead of allocating a
  // fresh vector per message. Buffers are appended to, not cleared.

  // Requests `mode` on `file` for `client`; demands to issue are appended.
  AcquireOutcome acquire(NodeId client, FileId file, LockMode mode,
                         std::vector<Demand>& demands);

  // Voluntary release/downgrade (also the holder's response to a demand).
  void set_mode(NodeId client, FileId file, LockMode mode, Update& out);

  // Removes a queued (not yet granted) request, e.g. when its client fails.
  // Removing a blocked head can unblock the queue, so grants may result.
  void cancel_waiter(NodeId client, FileId file, Update& out);

  // Steals every lock and queued request of a client without its
  // cooperation. Appends the files whose state changed plus the grants and
  // follow-up demands that became possible.
  void steal_all(NodeId client, std::vector<FileId>& affected, Update& out);

  // --- Convenience wrappers (tests and cold paths) -------------------------
  AcquireResult acquire(NodeId client, FileId file, LockMode mode) {
    AcquireResult res;
    res.outcome = acquire(client, file, mode, res.demands);
    return res;
  }
  Update set_mode(NodeId client, FileId file, LockMode mode) {
    Update out;
    set_mode(client, file, mode, out);
    return out;
  }
  Update cancel_waiter(NodeId client, FileId file) {
    Update out;
    cancel_waiter(client, file, out);
    return out;
  }
  struct StealResult {
    std::vector<FileId> affected;
    Update update;
  };
  StealResult steal_all(NodeId client) {
    StealResult res;
    steal_all(client, res.affected, res.update);
    return res;
  }

  [[nodiscard]] LockMode mode_of(NodeId client, FileId file) const;
  // Strongest retained mode currently demanded of this holder, if any
  // demand is outstanding against it.
  [[nodiscard]] std::optional<LockMode> demanded_mode(NodeId client, FileId file) const;
  [[nodiscard]] std::vector<std::pair<NodeId, LockMode>> holders(FileId file) const;
  [[nodiscard]] bool has_waiters(FileId file) const;
  [[nodiscard]] std::size_t waiter_count(FileId file) const;
  // Total queued (not yet granted) requests across every file, maintained
  // incrementally — O(1), so the invariant watchdog can probe for lock
  // convoys on every evaluation without walking the table.
  [[nodiscard]] std::size_t queued_waiters() const { return queued_waiters_; }
  // Queued requests in FIFO order (model-based tests).
  [[nodiscard]] std::vector<Waiter> waiters_of(FileId file) const;
  [[nodiscard]] std::size_t held_files() const { return files_.size(); }
  // Files on which this client currently holds any lock, sorted by id.
  [[nodiscard]] std::vector<FileId> files_of(NodeId client) const;

  // Invariant check for tests: holders of each file are pairwise compatible,
  // waiters are only queued while a conflict actually exists, empty records
  // have been gc'd, and the reverse index agrees with the lock table.
  [[nodiscard]] bool invariants_hold() const;

  // Attaches the flight recorder. The manager is pure state with no clock of
  // its own, so events are stamped via the recorder's bound engine; each
  // event carries the affected client as its node.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

 private:
  struct Holder {
    NodeId node;
    LockMode mode{LockMode::kShared};  // kShared or kExclusive
    // Strongest retained mode already demanded of this holder (valid while
    // demand_outstanding), to avoid duplicate demands.
    LockMode demanded{LockMode::kNone};
    bool demand_outstanding{false};
  };
  struct FileLocks {
    SmallVec<Holder, 2> holders;
    SmallVec<Waiter, 2> waiters;

    [[nodiscard]] Holder* find_holder(NodeId node) {
      for (Holder& h : holders) {
        if (h.node == node) return &h;
      }
      return nullptr;
    }
    [[nodiscard]] const Holder* find_holder(NodeId node) const {
      return const_cast<FileLocks*>(this)->find_holder(node);
    }
  };
  // Reverse index entry: the files this client holds locks on or waits for.
  struct ClientFiles {
    SmallVec<FileId, 6> held;
    SmallVec<FileId, 2> waiting;
  };

  // Can `client` hold `mode` given current holders (ignoring itself)?
  [[nodiscard]] static bool grantable(const FileLocks& fl, NodeId client, LockMode mode);
  // Grants every grantable waiter (FIFO, stopping at the first conflict),
  // then computes fresh demands needed by the new queue head.
  void pump_waiters(FileId file, FileLocks& fl, Update& out);
  void collect_demands(FileId file, FileLocks& fl, std::vector<Demand>& out);
  void remove_holder(FileId file, FileLocks& fl, NodeId node);
  void gc(FileId file);

  // Reverse-index maintenance. add_* assume the entry is absent.
  void index_add_held(NodeId client, FileId file);
  void index_remove_held(NodeId client, FileId file);
  void index_add_waiting(NodeId client, FileId file);
  void index_remove_waiting(NodeId client, FileId file);
  void gc_client(NodeId client);

  FlatMap<FileId, FileLocks> files_;
  FlatMap<NodeId, ClientFiles> clients_;
  // Sum of waiters over all files; updated wherever a queue mutates (the
  // steal path edits queues without touching the reverse index, so this
  // cannot ride on index_add/remove_waiting).
  std::size_t queued_waiters_{0};
  obs::Recorder* rec_{nullptr};
};

}  // namespace stank::server
