#include "server/server.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/lease_math.hpp"
#include "protocol/layout.hpp"

namespace stank::server {

using protocol::ServerTransport;

namespace {

const char* standing_str(core::ClientStanding s) {
  switch (s) {
    case core::ClientStanding::kGood: return "good";
    case core::ClientStanding::kSuspect: return "suspect";
    case core::ClientStanding::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

Server::Server(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
               sim::LocalClock local_clock, ServerConfig cfg, sim::TraceLog* trace)
    : engine_(&engine),
      net_(&net),
      san_(&san),
      cfg_(std::move(cfg)),
      clock_(engine, local_clock),
      trace_(trace),
      rec_(trace != nullptr ? &trace->recorder() : nullptr),
      transport_(net, clock_, cfg_.id, counters_, cfg_.transport) {
  cfg_.lease.validate();
  if (rec_ != nullptr) {
    rec_->bind_engine(engine);
    transport_.set_recorder(rec_);
    locks_.set_recorder(rec_);
  }
  STANK_ASSERT_MSG(!cfg_.data_disks.empty(), "server needs at least one data disk");
  for (DiskId d : cfg_.data_disks) {
    allocators_.push_back(std::make_unique<BlockAllocator>(d, san_->disk(d).capacity()));
  }

  switch (cfg_.strategy) {
    case LeaseStrategy::kStorageTank:
      authority_ = make_authority();
      break;
    case LeaseStrategy::kVLeases:
      v_table_ = std::make_unique<baselines::VLeaseTable>(cfg_.lease.tau, counters_);
      break;
    case LeaseStrategy::kFrangipani:
      hb_table_ = std::make_unique<baselines::HeartbeatTable>(cfg_.lease.tau, counters_);
      break;
  }
}

std::unique_ptr<core::ServerLeaseAuthority> Server::make_authority() {
  core::ServerLeaseAuthority::Hooks hooks;
  hooks.steal_locks = [this](NodeId c) {
    if (cfg_.recovery == RecoveryMode::kLeaseAndFence) {
      fence_client(c, [this, c]() { do_steal(c); });
    } else {
      do_steal(c);
    }
  };
  hooks.standing_changed = [this](NodeId c, core::ClientStanding s) {
    this->trace("lease",
                [&] { return sim::cat("client ", c, " standing=", standing_str(s)); });
  };
  auto authority = std::make_unique<core::ServerLeaseAuthority>(clock_, cfg_.lease, counters_,
                                                                std::move(hooks));
  authority->set_recorder(rec_, cfg_.id);
  return authority;
}

Server::~Server() {
  if (started_) {
    stop();
  }
}

void Server::start() {
  STANK_ASSERT(!started_);
  started_ = true;
  transport_.on_request = [this](NodeId client, std::uint32_t epoch,
                                 const protocol::RequestBody& body, ServerTransport::Responder r) {
    handle_request(client, epoch, body, r);
  };
  transport_.may_ack = [this](NodeId c) {
    if (barred_.contains(c)) return false;
    if (authority_ && !authority_->may_ack(c)) return false;
    return true;
  };
  transport_.set_incarnation(incarnation_);
  transport_.start();
}

void Server::stop() {
  if (!started_) return;
  started_ = false;
  transport_.stop();
  for (auto& [holder, timers] : demand_timers_) {
    for (DemandTimer& dt : timers) {
      clock_.cancel(dt.timer);
    }
  }
  demand_timers_.clear();
  for (auto& [node, timer] : recovery_timers_) {
    clock_.cancel(timer);
  }
  recovery_timers_.clear();
}

// ---------------------------------------------------------------------------
// Request dispatch

void Server::handle_request(NodeId client, std::uint32_t epoch,
                            const protocol::RequestBody& body, ServerTransport::Responder r) {
  if (std::holds_alternative<protocol::RegisterReq>(body)) {
    handle_register(client, r);
    return;
  }

  // "The server can neither acknowledge the message, which would renew the
  // client lease, nor execute a transaction on the client's behalf." (3.3)
  if (barred_.contains(client) || (authority_ && !authority_->may_ack(client))) {
    if (cfg_.nack_suspect) {
      r.nack();
    }
    // else: silent-ignore ablation — the client keeps retrying blindly.
    return;
  }

  const Session* session = sessions_.find(client);
  if (session == nullptr) {
    // No session at all. After a restart that is the normal state for every
    // pre-crash client: tell it to re-register and reassert (section 6)
    // rather than NACKing it into cache invalidation.
    if (incarnation_ > 1) {
      r.ack(protocol::ErrReply{ErrorCode::kStaleSession});
    } else {
      r.nack();
    }
    return;
  }
  if (!session->valid || session->epoch != epoch) {
    // Stale epoch within a known session: the client is out of sync.
    r.nack();
    return;
  }

  std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, protocol::OpenReq>) {
          handle_open(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::CloseReq>) {
          ++counters_.transactions;
          r.ack(protocol::OkReply{});
        } else if constexpr (std::is_same_v<T, protocol::LockReq>) {
          handle_lock(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::UnlockReq>) {
          handle_unlock(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::DemandDoneReq>) {
          handle_demand_done(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::GetAttrReq>) {
          ++counters_.transactions;
          const Inode* inode = metadata_.find(req.file);
          if (inode == nullptr) {
            r.ack(protocol::ErrReply{ErrorCode::kNotFound});
          } else {
            r.ack(protocol::AttrReply{inode->attr, inode->extents});
          }
        } else if constexpr (std::is_same_v<T, protocol::SetSizeReq>) {
          handle_setsize(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::KeepAliveReq>) {
          // The paper's NULL message. For Storage Tank the server does
          // nothing lease-related here — the transport-level ACK is the
          // renewal. Frangipani's server must update its lease table.
          if (hb_table_) {
            hb_table_->renew(client, clock_.now());
          }
          r.ack(protocol::OkReply{});
        } else if constexpr (std::is_same_v<T, protocol::RenewObjReq>) {
          if (v_table_) {
            v_table_->renew(client, req.file, clock_.now());
          }
          r.ack(protocol::OkReply{});
        } else if constexpr (std::is_same_v<T, protocol::ReadDataReq>) {
          handle_read_data(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::WriteDataReq>) {
          handle_write_data(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::ReassertLockReq>) {
          handle_reassert(client, req, r);
        } else if constexpr (std::is_same_v<T, protocol::RegisterReq>) {
          // handled above
        }
      },
      body);
}

void Server::handle_register(NodeId client, ServerTransport::Responder r) {
  if (authority_ && !authority_->try_reregister(client)) {
    // Conservative protocol: the timer must run out first.
    r.nack();
    return;
  }
  if (recovery_timers_.contains(client)) {
    r.nack();
    return;
  }
  if (fencing_.contains(client)) {
    // A fence -> steal for this client is still in flight (a disk has not
    // acked its fence yet). Admitting a new session now would let the
    // pending do_steal() land on the FRESH session's locks — the client
    // would write under locks the server just handed to someone else. Make
    // it retry registration until the steal completes.
    r.nack();
    return;
  }
  barred_.erase(client);

  Session& s = sessions_[client];
  ++s.epoch;
  s.valid = true;

  if (hb_table_) {
    hb_table_->renew(client, clock_.now());
  }
  unfence_client(client);
  ++counters_.transactions;
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), client, obs::EventKind::kRegister, s.epoch);
  }
  trace("session",
        [&] { return sim::cat("client ", client.value(), " registered epoch ", s.epoch); });
  r.ack(protocol::RegisterReply{s.epoch, incarnation_});
}

void Server::handle_open(NodeId client, const protocol::OpenReq& req,
                         ServerTransport::Responder r) {
  (void)client;
  ++counters_.transactions;
  auto res = metadata_.open(req.path, req.create);
  if (!res.ok()) {
    r.ack(protocol::ErrReply{res.error()});
    return;
  }
  const Inode* inode = metadata_.find(res.value());
  STANK_ASSERT(inode != nullptr);
  r.ack(protocol::OpenReply{inode->id, inode->attr, inode->extents});
}

void Server::handle_lock(NodeId client, const protocol::LockReq& req,
                         ServerTransport::Responder r) {
  ++counters_.transactions;
  if (metadata_.find(req.file) == nullptr) {
    r.ack(protocol::ErrReply{ErrorCode::kNotFound});
    return;
  }
  if (req.mode == protocol::LockMode::kNone) {
    r.ack(protocol::ErrReply{ErrorCode::kInvalidArgument});
    return;
  }

  if (in_grace()) {
    // No fresh locks while reassertions may still arrive: a grant now could
    // conflict with a lock the previous incarnation had given out.
    r.ack(protocol::ErrReply{ErrorCode::kRetryLater});
    return;
  }
  demand_scratch_.clear();
  const auto outcome = locks_.acquire(client, req.file, req.mode, demand_scratch_);
  if (outcome == LockManager::AcquireOutcome::kQueued) {
    for (const auto& d : demand_scratch_) {
      issue_demand(d);
    }
    r.ack(protocol::LockReply{false, req.mode, 0});
    return;
  }
  if (outcome == LockManager::AcquireOutcome::kAlreadyHeld) {
    // The holder asked for a mode no stronger than what it has — typically a
    // reordered or retransmitted request overtaken by a stronger grant.
    // Answer idempotently with the held mode under the CURRENT generation.
    // Bumping here would let the reply masquerade as a newer, weaker grant
    // and silently downgrade the client's stronger (possibly dirty) holding.
    r.ack(protocol::LockReply{true, locks_.mode_of(client, req.file),
                              lock_gen(client, req.file), lock_cookie(client, req.file)});
    return;
  }
  ++counters_.lock_grants;
  // A fresh grant supersedes any outstanding demand against this client's
  // previous incarnation of the lock.
  const std::uint32_t gen = bump_lock_gen(client, req.file);
  const std::uint64_t cookie = new_lock_cookie(client, req.file);
  cancel_demand_timer(client, req.file);
  if (v_table_) {
    v_table_->renew(client, req.file, clock_.now());
  }
  trace("lock", [&] {
    return sim::cat("grant ", req.file, " ", protocol::to_string(req.mode), " g", gen, " -> ",
                    client);
  });
  r.ack(protocol::LockReply{true, req.mode, gen, cookie});
}

void Server::handle_unlock(NodeId client, const protocol::UnlockReq& req,
                           ServerTransport::Responder r) {
  ++counters_.transactions;
  if (req.gen != lock_gen(client, req.file)) {
    // Release of a superseded lock incarnation: a newer grant crossed this
    // request in flight. Ignore; the client will learn the new state from
    // the grant.
    r.ack(protocol::OkReply{});
    return;
  }
  if (req.cookie != lock_cookie(client, req.file)) {
    // Right generation but wrong grant cookie: the sender never received the
    // grant it claims to renounce (forged or corrupted release). Acting on it
    // would free a lock whose grant is still in flight to the real holder.
    r.ack(protocol::OkReply{});
    return;
  }
  update_scratch_.clear();
  locks_.set_mode(client, req.file, req.downgrade_to, update_scratch_);
  if (v_table_ && req.downgrade_to == protocol::LockMode::kNone) {
    v_table_->drop(client, req.file);
  }
  apply_update(update_scratch_);
  r.ack(protocol::OkReply{});
}

void Server::handle_demand_done(NodeId client, const protocol::DemandDoneReq& req,
                                ServerTransport::Responder r) {
  ++counters_.transactions;
  if (req.gen != lock_gen(client, req.file)) {
    // Compliance for a superseded lock incarnation; the state it describes
    // no longer exists.
    r.ack(protocol::OkReply{});
    return;
  }
  if (req.cookie != lock_cookie(client, req.file)) {
    // Compliance without the grant cookie: forged (see handle_unlock). The
    // real holder's compliance, carrying the cookie, will settle the demand;
    // failing that, the demand timer escalates to suspect -> fence + steal.
    r.ack(protocol::OkReply{});
    return;
  }
  update_scratch_.clear();
  locks_.set_mode(client, req.file, req.new_mode, update_scratch_);
  if (v_table_ && req.new_mode == protocol::LockMode::kNone) {
    v_table_->drop(client, req.file);
  }
  // Stop the compliance clock only once no demand remains outstanding
  // against this holder (a deeper demand may have been issued meanwhile).
  if (!locks_.demanded_mode(client, req.file).has_value()) {
    cancel_demand_timer(client, req.file);
  } else {
    arm_demand_timer(client, req.file);
  }
  apply_update(update_scratch_);
  r.ack(protocol::OkReply{});
}

void Server::handle_setsize(NodeId client, const protocol::SetSizeReq& req,
                            ServerTransport::Responder r) {
  (void)client;
  ++counters_.transactions;
  Inode* inode = metadata_.find(req.file);
  if (inode == nullptr) {
    r.ack(protocol::ErrReply{ErrorCode::kNotFound});
    return;
  }
  if (req.new_size > inode->attr.size) {
    Status st = grow_file(*inode, req.new_size);
    if (!st.is_ok()) {
      r.ack(protocol::ErrReply{st.error()});
      return;
    }
    inode->attr.size = req.new_size;
    metadata_.touch(*inode, now_ns());
  } else if (req.new_size < inode->attr.size) {
    if (!req.truncate) {
      // Grow-only request against an already-larger file: no-op; the reply
      // refreshes the client's stale attributes.
      r.ack(protocol::AttrReply{inode->attr, inode->extents});
      return;
    }
    shrink_file(*inode, req.new_size);
    inode->attr.size = req.new_size;
    metadata_.touch(*inode, now_ns());
  }
  r.ack(protocol::AttrReply{inode->attr, inode->extents});
}

void Server::handle_reassert(NodeId client, const protocol::ReassertLockReq& req,
                             ServerTransport::Responder r) {
  ++counters_.transactions;
  if (!in_grace()) {
    // Reassertion outside the grace window is not honored: the lock may
    // already have been granted elsewhere.
    r.ack(protocol::ErrReply{ErrorCode::kInvalidArgument});
    return;
  }
  if (metadata_.find(req.file) == nullptr || req.mode == protocol::LockMode::kNone) {
    r.ack(protocol::ErrReply{ErrorCode::kInvalidArgument});
    return;
  }
  // If the pre-crash state was legal, concurrent reassertions are mutually
  // compatible; an incompatible one indicates divergence and is refused
  // (that client must invalidate the file).
  demand_scratch_.clear();
  if (locks_.acquire(client, req.file, req.mode, demand_scratch_) ==
      LockManager::AcquireOutcome::kQueued) {
    // No other waiters can exist during grace, so the cancel cannot unblock
    // anyone; its update is discarded.
    update_scratch_.clear();
    locks_.cancel_waiter(client, req.file, update_scratch_);
    r.ack(protocol::ErrReply{ErrorCode::kLockConflict});
    return;
  }
  ++counters_.lock_grants;
  const std::uint32_t gen = bump_lock_gen(client, req.file);
  const std::uint64_t cookie = new_lock_cookie(client, req.file);
  if (v_table_) {
    v_table_->renew(client, req.file, clock_.now());
  }
  trace("lock", [&] {
    return sim::cat("reassert ", req.file, " ", protocol::to_string(req.mode), " g", gen,
                    " <- ", client);
  });
  r.ack(protocol::LockReply{true, req.mode, gen, cookie});
}

bool Server::in_grace() const {
  return incarnation_ > 1 && clock_.now() < grace_until_;
}

void Server::crash() {
  if (!started_) return;
  trace("node", "server crash");
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), cfg_.id, obs::EventKind::kCrash);
  }
  stop();  // drops transport, timers
  // Volatile state is gone. Metadata, the allocator and the incarnation
  // counter live on the server's private persistent storage.
  locks_ = LockManager{};
  locks_.set_recorder(rec_);
  sessions_.clear();
  barred_.clear();
  fenced_clients_.clear();
  fencing_.clear();
  lock_gens_.clear();
  if (authority_) {
    // Rebuild the authority empty (its timers died with stop()).
    authority_ = make_authority();
  }
  if (v_table_) {
    v_table_ = std::make_unique<baselines::VLeaseTable>(cfg_.lease.tau, counters_);
  }
  if (hb_table_) {
    hb_table_ = std::make_unique<baselines::HeartbeatTable>(cfg_.lease.tau, counters_);
  }
}

void Server::restart() {
  STANK_ASSERT_MSG(!started_, "restart() requires a crashed/stopped server");
  ++incarnation_;
  const sim::LocalDuration grace = cfg_.recovery_grace.ns > 0
                                       ? cfg_.recovery_grace
                                       : core::server_wait(cfg_.lease.tau, cfg_.lease.epsilon);
  grace_until_ = clock_.now() + grace;
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), cfg_.id, obs::EventKind::kRestart, incarnation_);
  }
  trace("node", [&] {
    return sim::cat("server restart incarnation ", incarnation_, ", grace until ",
                    grace_until_.seconds(), "s");
  });
  start();
}

// ---------------------------------------------------------------------------
// Data shipping (traditional client/server baseline; NFS mode)

namespace {

// Fan-in helper: fires `done` once after `expected` completions, reporting
// the first error seen.
struct FanIn {
  std::size_t expected{0};
  std::size_t seen{0};
  Status status{Status::ok()};
  std::function<void(Status)> done;

  void complete(Status s) {
    if (!s.is_ok() && status.is_ok()) {
      status = s;
    }
    if (++seen == expected && done) {
      done(status);
    }
  }
};

}  // namespace

void Server::handle_read_data(NodeId client, const protocol::ReadDataReq& req,
                              ServerTransport::Responder r) {
  (void)client;
  ++counters_.transactions;
  Inode* inode = metadata_.find(req.file);
  if (inode == nullptr) {
    r.ack(protocol::ErrReply{ErrorCode::kNotFound});
    return;
  }
  const std::uint64_t end = std::min<std::uint64_t>(inode->attr.size, req.offset + req.len);
  const std::uint64_t len = end > req.offset ? end - req.offset : 0;
  auto buf = std::make_shared<Bytes>(len, 0);
  if (len == 0) {
    counters_.server_data_bytes += 0;
    r.ack(protocol::DataReply{*buf});
    return;
  }

  bool ok = false;
  auto slices = protocol::slice_range(inode->extents, cfg_.block_size, req.offset, len, ok);
  if (!ok) {
    r.ack(protocol::ErrReply{ErrorCode::kIoError});
    return;
  }

  auto fan = std::make_shared<FanIn>();
  fan->expected = slices.size();
  fan->done = [this, r, buf, len](Status st) {
    if (!st.is_ok()) {
      r.ack(protocol::ErrReply{st.error()});
      return;
    }
    counters_.server_data_bytes += len;
    r.ack(protocol::DataReply{*buf});
  };
  for (const auto& s : slices) {
    storage::IoRequest io;
    io.initiator = cfg_.id;
    io.disk = s.disk;
    io.op = storage::IoOp::kRead;
    io.addr = s.addr;
    io.count = 1;
    san_->submit(std::move(io), [fan, buf, s](storage::IoResult res) {
      if (res.status.is_ok()) {
        std::copy_n(res.data.begin() + s.offset_in_block, s.len,
                    buf->begin() + static_cast<std::ptrdiff_t>(s.buf_offset));
      }
      fan->complete(res.status);
    });
  }
}

void Server::handle_write_data(NodeId client, const protocol::WriteDataReq& req,
                               ServerTransport::Responder r) {
  (void)client;
  ++counters_.transactions;
  Inode* inode = metadata_.find(req.file);
  if (inode == nullptr) {
    r.ack(protocol::ErrReply{ErrorCode::kNotFound});
    return;
  }
  const std::uint64_t new_end = req.offset + req.data.size();
  if (new_end > inode->attr.size) {
    Status st = grow_file(*inode, new_end);
    if (!st.is_ok()) {
      r.ack(protocol::ErrReply{st.error()});
      return;
    }
    inode->attr.size = new_end;
  }
  metadata_.touch(*inode, now_ns());

  bool ok = false;
  auto slices =
      protocol::slice_range(inode->extents, cfg_.block_size, req.offset, req.data.size(), ok);
  if (!ok) {
    r.ack(protocol::ErrReply{ErrorCode::kIoError});
    return;
  }

  auto fan = std::make_shared<FanIn>();
  fan->expected = slices.size();
  const std::uint64_t len = req.data.size();
  fan->done = [this, r, len](Status st) {
    if (!st.is_ok()) {
      r.ack(protocol::ErrReply{st.error()});
      return;
    }
    counters_.server_data_bytes += len;
    r.ack(protocol::OkReply{});
  };

  auto data = std::make_shared<Bytes>(req.data);
  for (const auto& s : slices) {
    auto write_block = [this, fan, s](Bytes block) {
      storage::IoRequest io;
      io.initiator = cfg_.id;
      io.disk = s.disk;
      io.op = storage::IoOp::kWrite;
      io.addr = s.addr;
      io.count = 1;
      io.data = std::move(block);
      san_->submit(std::move(io),
                   [fan](storage::IoResult res) { fan->complete(res.status); });
    };

    if (s.len == cfg_.block_size) {
      Bytes block(data->begin() + static_cast<std::ptrdiff_t>(s.buf_offset),
                  data->begin() + static_cast<std::ptrdiff_t>(s.buf_offset + s.len));
      write_block(std::move(block));
    } else {
      // Partial block: read-modify-write at the server.
      storage::IoRequest io;
      io.initiator = cfg_.id;
      io.disk = s.disk;
      io.op = storage::IoOp::kRead;
      io.addr = s.addr;
      io.count = 1;
      san_->submit(std::move(io),
                   [fan, s, data, write_block](storage::IoResult res) mutable {
                     if (!res.status.is_ok()) {
                       fan->complete(res.status);
                       return;
                     }
                     Bytes block = std::move(res.data);
                     std::copy_n(data->begin() + static_cast<std::ptrdiff_t>(s.buf_offset), s.len,
                                 block.begin() + s.offset_in_block);
                     write_block(std::move(block));
                   });
    }
  }
}

// ---------------------------------------------------------------------------
// Locking plumbing

void Server::apply_update(const LockManager::Update& upd) {
  for (const auto& g : upd.grants) {
    deliver_grant(g);
  }
  for (const auto& d : upd.demands) {
    issue_demand(d);
  }
}

void Server::issue_demand(const LockManager::Demand& d) {
  ++counters_.lock_demands;
  const std::uint32_t gen = lock_gen(d.holder, d.file);
  trace("lock", [&] {
    return sim::cat("demand ", d.file, " max=", protocol::to_string(d.max_mode), " g", gen,
                    " -> ", d.holder);
  });
  const Session* session = sessions_.find(d.holder);
  const std::uint32_t epoch = session == nullptr ? 0 : session->epoch;
  transport_.send_server_msg(
      d.holder, epoch, protocol::LockDemand{d.file, d.max_mode, gen},
      [this, d, gen](bool delivered) {
        if (!delivered) {
          trace("lease",
                [&] { return sim::cat("demand to client ", d.holder.value(), " undeliverable"); });
          on_delivery_failure(d.holder);
          return;
        }
        if (gen != lock_gen(d.holder, d.file)) {
          return;  // a grant superseded this demand while it was in flight
        }
        if (!locks_.demanded_mode(d.holder, d.file).has_value()) {
          // Compliance already arrived (it can overtake the transport-level
          // ACK of the demand itself): nothing left to time out.
          return;
        }
        arm_demand_timer(d.holder, d.file);
      });
}

void Server::arm_demand_timer(NodeId holder, FileId file) {
  const sim::TimerId timer =
      clock_.schedule_after(cfg_.demand_timeout, [this, holder, file]() {
        cancel_demand_timer(holder, file);  // drop the fired timer's record
        trace("lease", [&] {
          return sim::cat("demand compliance timeout for client ", holder.value(), " file ",
                          file.value(), " gen ", lock_gen(holder, file));
        });
        on_delivery_failure(holder);
      });
  auto& timers = demand_timers_[holder];
  for (DemandTimer& dt : timers) {
    if (dt.file == file) {
      clock_.cancel(dt.timer);
      dt.timer = timer;
      return;
    }
  }
  timers.push_back(DemandTimer{file, timer});
}

std::uint32_t Server::lock_gen(NodeId client, FileId file) const {
  const std::uint32_t* gen = lock_gens_.find(DemandKey{client, file});
  return gen == nullptr ? 0 : *gen;
}

std::uint32_t Server::bump_lock_gen(NodeId client, FileId file) {
  return ++lock_gens_[DemandKey{client, file}];
}

std::uint64_t Server::lock_cookie(NodeId client, FileId file) const {
  const std::uint64_t* c = lock_cookies_.find(DemandKey{client, file});
  return c == nullptr ? 0 : *c;
}

std::uint64_t Server::new_lock_cookie(NodeId client, FileId file) {
  // splitmix64 of a private sequence; incarnation folded in so cookies never
  // repeat across server reboots. Stands in for a CSPRNG (see server.hpp).
  std::uint64_t z = (++cookie_seq_ + (static_cast<std::uint64_t>(incarnation_) << 48)) +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  if (z == 0) z = 1;  // 0 means "no cookie issued"
  lock_cookies_[DemandKey{client, file}] = z;
  return z;
}

void Server::deliver_grant(const LockManager::Grant& g) {
  ++counters_.lock_grants;
  const std::uint32_t gen = bump_lock_gen(g.client, g.file);
  const std::uint64_t cookie = new_lock_cookie(g.client, g.file);
  cancel_demand_timer(g.client, g.file);
  if (v_table_) {
    v_table_->renew(g.client, g.file, clock_.now());
  }
  trace("lock", [&] {
    return sim::cat("grant ", g.file, " ", protocol::to_string(g.mode), " g", gen, " -> ",
                    g.client, " (queued)");
  });
  const Session* session = sessions_.find(g.client);
  const std::uint32_t epoch = session == nullptr ? 0 : session->epoch;
  transport_.send_server_msg(g.client, epoch, protocol::LockGrant{g.file, g.mode, gen, cookie},
                             [this, g](bool delivered) {
                               if (!delivered) {
                                 on_delivery_failure(g.client);
                               }
                             });
}

void Server::cancel_demand_timer(NodeId holder, FileId file) {
  auto* timers = demand_timers_.find(holder);
  if (timers == nullptr) return;
  for (DemandTimer& dt : *timers) {
    if (dt.file == file) {
      clock_.cancel(dt.timer);
      timers->swap_erase(&dt);
      break;
    }
  }
  if (timers->empty()) {
    demand_timers_.erase(holder);
  }
}

void Server::cancel_demand_timers(NodeId holder) {
  auto* timers = demand_timers_.find(holder);
  if (timers == nullptr) return;
  for (DemandTimer& dt : *timers) {
    clock_.cancel(dt.timer);
  }
  demand_timers_.erase(holder);
}

// ---------------------------------------------------------------------------
// Recovery

void Server::inject_delivery_failure(NodeId client) { on_delivery_failure(client); }

Result<FileId> Server::preallocate(const std::string& path, std::uint64_t size) {
  auto res = metadata_.open(path, /*create=*/true);
  if (!res.ok()) {
    return res;
  }
  Inode* inode = metadata_.find(res.value());
  STANK_ASSERT(inode != nullptr);
  if (size > inode->attr.size) {
    Status st = grow_file(*inode, size);
    if (!st.is_ok()) {
      return st.error();
    }
    inode->attr.size = size;
    metadata_.touch(*inode, now_ns());
  }
  return res;
}

void Server::on_delivery_failure(NodeId client) {
  if (barred_.contains(client)) {
    return;  // already stolen; nothing left to protect
  }
  switch (cfg_.recovery) {
    case RecoveryMode::kNoRecovery:
      trace("lease", [&] {
        return sim::cat("delivery failure for client ", client.value(),
                        " ignored (no-recovery)");
      });
      return;
    case RecoveryMode::kNaiveSteal:
      do_steal(client);
      return;
    case RecoveryMode::kFenceOnly:
      ++counters_.fences_issued;
      fence_client(client, [this, client]() { do_steal(client); });
      return;
    case RecoveryMode::kLeaseOnly:
    case RecoveryMode::kLeaseAndFence:
      begin_recovery(client);
      return;
  }
}

void Server::begin_recovery(NodeId client) {
  if (authority_) {
    authority_->on_delivery_failure(client);  // idempotent
    return;
  }
  // V / Frangipani: wait out the lease recorded in the server-side table,
  // then re-check — a heartbeat or renewal may have arrived in the interim.
  if (recovery_timers_.contains(client)) {
    return;
  }
  sim::LocalTime steal_at;
  const sim::LocalTime now = clock_.now();
  if (hb_table_) {
    steal_at = hb_table_->steal_time(client, now, cfg_.lease.epsilon);
  } else if (v_table_) {
    steal_at = now;
    for (FileId f : locks_.files_of(client)) {
      steal_at = std::max(steal_at, v_table_->steal_time(client, f, now, cfg_.lease.epsilon));
    }
  } else {
    steal_at = now + core::server_wait(cfg_.lease.tau, cfg_.lease.epsilon);
  }
  ++counters_.lease_ops;
  sim::LocalDuration delay = steal_at > now ? steal_at - now : sim::LocalDuration{1};
  recovery_timers_[client] = clock_.schedule_after(delay, [this, client]() {
    recovery_timers_.erase(client);
    const sim::LocalTime t = clock_.now();
    // Re-check: did the client legitimately renew while we waited?
    if (hb_table_ && hb_table_->valid(client, t)) {
      return;
    }
    if (v_table_) {
      bool any_valid = false;
      for (FileId f : locks_.files_of(client)) {
        any_valid = any_valid || v_table_->valid(client, f, t);
      }
      if (any_valid) {
        begin_recovery(client);  // re-arm at the extended expiry
        return;
      }
    }
    if (cfg_.recovery == RecoveryMode::kLeaseAndFence) {
      fence_client(client, [this, client]() { do_steal(client); });
    } else {
      do_steal(client);
    }
  });
}

void Server::fence_client(NodeId client, std::function<void()> then) {
  ++counters_.fences_issued;
  fenced_clients_.insert(client);
  fencing_.insert(client);
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), client, obs::EventKind::kFence);
  }
  trace("fence", [&] { return sim::cat("fencing client ", client.value()); });
  fence_round(client, std::move(then));
}

void Server::fence_round(NodeId client, std::function<void()> then) {
  auto fan = std::make_shared<FanIn>();
  fan->expected = cfg_.data_disks.size();
  fan->done = [this, client, then = std::move(then)](Status st) mutable {
    if (st.is_ok()) {
      fencing_.erase(client);
      if (then) then();
      return;
    }
    // A disk that did not acknowledge the fence is NOT fenced. Stealing the
    // locks anyway would hand them to a new holder while the old one's SAN
    // path to that disk may still be live — a partitioned-but-alive (or
    // byzantine) holder could keep writing under them, which is exactly the
    // corruption the fence exists to rule out. Hold the steal and retry
    // until a round completes on every disk: availability of this client's
    // locks is sacrificed for safety, never the other way around.
    ++counters_.fence_retries;
    trace("fence", [&] {
      return sim::cat("fence of client ", client.value(), " incomplete (",
                      to_string(st.error()), "), retrying");
    });
    const std::uint32_t inc = incarnation_;
    clock_.schedule_after(sim::local_millis(100),
                          [this, client, inc, then = std::move(then)]() mutable {
                            // A crash/restart dropped the whole fence context
                            // (a new incarnation re-fences from scratch).
                            if (!started_ || incarnation_ != inc ||
                                !fencing_.contains(client)) {
                              return;
                            }
                            fence_round(client, std::move(then));
                          });
  };
  for (DiskId d : cfg_.data_disks) {
    san_->submit_admin(storage::AdminRequest{cfg_.id, d, storage::AdminOp::kFence, client},
                       [fan](Status st) { fan->complete(st); });
  }
}

void Server::unfence_client(NodeId client) {
  // Only fencing recovery modes ever touch the disks' fence state (the
  // lease-only baseline must not get fencing semantics through the back
  // door).
  if (cfg_.recovery != RecoveryMode::kFenceOnly &&
      cfg_.recovery != RecoveryMode::kLeaseAndFence) {
    return;
  }
  // Sent unconditionally within those modes: after a server crash the fenced
  // set is forgotten, but fences persist at the disks; re-registration must
  // clear them. The unfence installs the client's NEW registration key —
  // (incarnation << 32) | epoch, since epoch numbers alone repeat across
  // server reboots — so commands any earlier session left crawling through
  // the SAN stay locked out forever.
  fenced_clients_.erase(client);
  const Session* session = sessions_.find(client);
  const std::uint64_t key =
      session == nullptr
          ? 0
          : (static_cast<std::uint64_t>(incarnation_) << 32) | session->epoch;
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), client, obs::EventKind::kUnfence, key);
  }
  trace("fence", [&] { return sim::cat("unfencing client ", client.value(), " key ", key); });
  for (DiskId d : cfg_.data_disks) {
    san_->submit_admin(
        storage::AdminRequest{cfg_.id, d, storage::AdminOp::kUnfence, client, key},
        [](Status) {});
  }
}

void Server::do_steal(NodeId client) {
  fencing_.erase(client);
  if (barred_.contains(client)) {
    return;
  }
  barred_.insert(client);
  if (Session* session = sessions_.find(client); session != nullptr) {
    session->valid = false;
  }
  transport_.cancel_server_msgs(client);
  cancel_demand_timers(client);
  if (sim::TimerId* rt = recovery_timers_.find(client); rt != nullptr) {
    clock_.cancel(*rt);
    recovery_timers_.erase(client);
  }

  affected_scratch_.clear();
  update_scratch_.clear();
  locks_.steal_all(client, affected_scratch_, update_scratch_);
  counters_.lock_steals += affected_scratch_.size();
  for (FileId f : affected_scratch_) {
    bump_lock_gen(client, f);  // any in-flight compliance from the victim is now stale
  }
  trace("lock", [&] {
    return sim::cat("stole ", affected_scratch_.size(), " locks from client ", client);
  });
  if (v_table_) {
    v_table_->drop_client(client);
  }
  if (hb_table_) {
    hb_table_->drop(client);
  }
  apply_update(update_scratch_);
}

// ---------------------------------------------------------------------------
// Helpers

bool Server::barred(NodeId client) const { return barred_.contains(client); }

bool Server::session_valid(NodeId client) const {
  const Session* s = sessions_.find(client);
  return s != nullptr && s->valid;
}

std::uint32_t Server::session_epoch(NodeId client) const {
  const Session* s = sessions_.find(client);
  return s == nullptr ? 0 : s->epoch;
}

std::size_t Server::lease_state_bytes() const {
  if (authority_) return authority_->state_bytes();
  if (v_table_) return v_table_->state_bytes();
  if (hb_table_) return hb_table_->state_bytes();
  return 0;
}

void Server::record_trace(const char* category, std::string detail) {
  trace_->record(engine_->now(), cfg_.id, category, std::move(detail));
}

std::uint64_t Server::now_ns() const { return static_cast<std::uint64_t>(clock_.now().ns); }

BlockAllocator* Server::allocator_with_space(std::uint64_t blocks) {
  for (auto& a : allocators_) {
    if (a->free_blocks() >= blocks) {
      return a.get();
    }
  }
  return nullptr;
}

Status Server::grow_file(Inode& inode, std::uint64_t new_size) {
  const std::uint64_t needed = (new_size + cfg_.block_size - 1) / cfg_.block_size;
  const std::uint64_t have = inode.allocated_blocks();
  if (needed <= have) {
    return Status::ok();
  }
  BlockAllocator* alloc = allocator_with_space(needed - have);
  if (alloc == nullptr) {
    return ErrorCode::kNoSpace;
  }
  auto extents = alloc->allocate(needed - have);
  STANK_ASSERT(extents.ok());
  for (auto& e : extents.value()) {
    inode.extents.push_back(e);
  }
  return Status::ok();
}

void Server::shrink_file(Inode& inode, std::uint64_t new_size) {
  const std::uint64_t needed = (new_size + cfg_.block_size - 1) / cfg_.block_size;
  std::uint64_t have = inode.allocated_blocks();
  while (have > needed && !inode.extents.empty()) {
    protocol::Extent& last = inode.extents.back();
    const std::uint64_t excess = have - needed;
    if (last.count <= excess) {
      have -= last.count;
      for (auto& a : allocators_) {
        if (a->disk() == last.disk) {
          a->release({last});
          break;
        }
      }
      inode.extents.pop_back();
    } else {
      const std::uint32_t trim = static_cast<std::uint32_t>(excess);
      protocol::Extent freed{last.disk, last.start + last.count - trim, trim};
      last.count -= trim;
      have -= trim;
      for (auto& a : allocators_) {
        if (a->disk() == freed.disk) {
          a->release({freed});
          break;
        }
      }
    }
  }
}

}  // namespace stank::server
