#include "server/block_alloc.hpp"

#include "common/assert.hpp"

namespace stank::server {

BlockAllocator::BlockAllocator(DiskId disk, storage::BlockAddr total_blocks)
    : disk_(disk), total_(total_blocks), free_count_(total_blocks) {
  STANK_ASSERT(total_blocks > 0);
  free_.emplace(0, total_blocks);
}

Result<std::vector<protocol::Extent>> BlockAllocator::allocate(std::uint64_t count) {
  if (count == 0) {
    return std::vector<protocol::Extent>{};
  }
  if (count > free_count_) {
    return ErrorCode::kNoSpace;
  }

  std::vector<protocol::Extent> out;
  std::uint64_t remaining = count;
  auto it = free_.begin();
  while (remaining > 0) {
    STANK_ASSERT_MSG(it != free_.end(), "free_count_ out of sync with free list");
    const storage::BlockAddr start = it->first;
    const storage::BlockAddr len = it->second;
    const std::uint64_t take = std::min<std::uint64_t>(len, remaining);
    out.push_back(protocol::Extent{disk_, start, static_cast<std::uint32_t>(take)});
    remaining -= take;
    it = free_.erase(it);
    if (take < len) {
      free_.emplace(start + take, len - take);
    }
  }
  free_count_ -= count;
  return out;
}

void BlockAllocator::release(const std::vector<protocol::Extent>& extents) {
  for (const auto& e : extents) {
    if (e.count == 0) continue;
    STANK_ASSERT_MSG(e.disk == disk_, "extent from a different disk");
    STANK_ASSERT(e.start + e.count <= total_);

    storage::BlockAddr start = e.start;
    storage::BlockAddr len = e.count;

    // No existing free run may overlap the released range.
    auto next = free_.lower_bound(start);
    STANK_ASSERT_MSG(next == free_.end() || next->first >= start + len,
                     "double free (overlaps following run)");
    if (next != free_.begin()) {
      auto prev = std::prev(next);
      STANK_ASSERT_MSG(prev->first + prev->second <= start, "double free (overlaps predecessor)");
      if (prev->first + prev->second == start) {
        start = prev->first;
        len += prev->second;
        free_.erase(prev);
      }
    }
    // Coalesce with successor.
    next = free_.lower_bound(start + len);
    if (next != free_.end() && next->first == start + len) {
      len += next->second;
      free_.erase(next);
    }

    free_.emplace(start, len);
    free_count_ += e.count;
  }
}

bool BlockAllocator::invariants_hold() const {
  storage::BlockAddr sum = 0;
  storage::BlockAddr prev_end = 0;
  bool first = true;
  for (const auto& [start, len] : free_) {
    if (len == 0) return false;
    if (!first && start <= prev_end) return false;  // overlap or missed coalesce
    if (!first && start == prev_end) return false;
    if (start + len > total_) return false;
    sum += len;
    prev_end = start + len;
    first = false;
  }
  return sum == free_count_;
}

}  // namespace stank::server
