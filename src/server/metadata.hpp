// Server-resident file system metadata: a flat namespace and an inode table.
//
// Per the paper's architecture (section 1.1), metadata — including "the
// location of the blocks of each file on shared storage" — lives only at the
// server; the shared disks hold nothing but file data blocks.
//
// Layout: the FileId -> Inode side is a flat ID-keyed table; the name side
// uses heterogeneous string_view lookup, so resolving an existing path —
// the hit path of every open() — copies no string and allocates nothing.
// Inode pointers are invalidated by creating or removing files; handlers
// must re-find() rather than cache them across mutations.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/result.hpp"
#include "common/strong_id.hpp"
#include "protocol/messages.hpp"

namespace stank::server {

struct Inode {
  FileId id;
  protocol::FileAttr attr;
  std::vector<protocol::Extent> extents;

  [[nodiscard]] std::uint64_t allocated_blocks() const {
    std::uint64_t n = 0;
    for (const auto& e : extents) n += e.count;
    return n;
  }
};

class Metadata {
 public:
  // Resolves a path; creates the file if `create` and absent. Returns the
  // inode, or kNotFound. The path string is only copied on a create.
  Result<FileId> open(std::string_view path, bool create);

  [[nodiscard]] Inode* find(FileId id);
  [[nodiscard]] const Inode* find(FileId id) const;
  Status remove(std::string_view path);

  [[nodiscard]] std::size_t file_count() const { return inodes_.size(); }
  [[nodiscard]] std::optional<FileId> lookup(std::string_view path) const;

  // Every mutation bumps the inode's meta version and mtime stamp (weakly
  // consistent metadata per the paper's footnote 1).
  void touch(Inode& inode, std::uint64_t now_ns);

 private:
  struct PathHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, FileId, PathHash, std::equal_to<>> names_;
  FlatMap<FileId, Inode> inodes_;
  std::uint32_t next_id_{1};
};

}  // namespace stank::server
