// Server-resident file system metadata: a flat namespace and an inode table.
//
// Per the paper's architecture (section 1.1), metadata — including "the
// location of the blocks of each file on shared storage" — lives only at the
// server; the shared disks hold nothing but file data blocks.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/strong_id.hpp"
#include "protocol/messages.hpp"

namespace stank::server {

struct Inode {
  FileId id;
  protocol::FileAttr attr;
  std::vector<protocol::Extent> extents;

  [[nodiscard]] std::uint64_t allocated_blocks() const {
    std::uint64_t n = 0;
    for (const auto& e : extents) n += e.count;
    return n;
  }
};

class Metadata {
 public:
  // Resolves a path; creates the file if `create` and absent. Returns the
  // inode, or kNotFound.
  Result<FileId> open(const std::string& path, bool create);

  [[nodiscard]] Inode* find(FileId id);
  [[nodiscard]] const Inode* find(FileId id) const;
  Status remove(const std::string& path);

  [[nodiscard]] std::size_t file_count() const { return inodes_.size(); }
  [[nodiscard]] std::optional<FileId> lookup(const std::string& path) const;

  // Every mutation bumps the inode's meta version and mtime stamp (weakly
  // consistent metadata per the paper's footnote 1).
  void touch(Inode& inode, std::uint64_t now_ns);

 private:
  std::unordered_map<std::string, FileId> names_;
  std::unordered_map<FileId, Inode> inodes_;
  std::uint32_t next_id_{1};
};

}  // namespace stank::server
