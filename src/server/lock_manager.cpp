#include "server/lock_manager.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace stank::server {

namespace {

// Strongest mode the holder may keep while `want` is granted to another.
LockMode retained_mode(LockMode want) {
  return want == LockMode::kExclusive ? LockMode::kNone : LockMode::kShared;
}

bool mode_leq(LockMode a, LockMode b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

}  // namespace

bool LockManager::grantable(const FileLocks& fl, NodeId client, LockMode mode) {
  for (const Holder& h : fl.holders) {
    if (h.node == client) continue;
    if (!protocol::compatible(h.mode, mode)) return false;
  }
  return true;
}

LockManager::AcquireOutcome LockManager::acquire(NodeId client, FileId file, LockMode mode,
                                                 std::vector<Demand>& demands) {
  STANK_ASSERT_MSG(mode != LockMode::kNone, "acquire(kNone) is a release; use set_mode");
  FileLocks& fl = files_[file];

  Holder* held = fl.find_holder(client);
  if (held != nullptr && mode_leq(mode, held->mode)) {
    return AcquireOutcome::kAlreadyHeld;
  }

  // Strict FIFO: a request must queue behind existing waiters even when
  // immediately grantable, or writers would starve behind a reader stream.
  const bool must_queue = !fl.waiters.empty() || !grantable(fl, client, mode);
  if (!must_queue) {
    if (held != nullptr) {
      held->mode = mode;
      held->demand_outstanding = false;
    } else {
      fl.holders.push_back(Holder{client, mode, LockMode::kNone, false});
      index_add_held(client, file);
    }
    if (rec_ != nullptr) {
      rec_->record_now(client, obs::EventKind::kLockGrant, file.value(),
                       static_cast<std::uint64_t>(mode));
    }
    return AcquireOutcome::kGranted;
  }

  // Deduplicate: a client re-requesting while queued keeps one entry at the
  // strongest requested mode.
  bool queued = false;
  for (Waiter& w : fl.waiters) {
    if (w.client == client) {
      if (mode_leq(w.mode, mode)) w.mode = mode;
      queued = true;
      break;
    }
  }
  if (!queued) {
    fl.waiters.push_back(Waiter{client, mode});
    index_add_waiting(client, file);
    ++queued_waiters_;
  }
  if (rec_ != nullptr) {
    rec_->record_now(client, obs::EventKind::kLockQueue, file.value(),
                     static_cast<std::uint64_t>(mode));
  }

  collect_demands(file, fl, demands);
  return AcquireOutcome::kQueued;
}

void LockManager::collect_demands(FileId file, FileLocks& fl, std::vector<Demand>& out) {
  if (fl.waiters.empty()) return;
  const Waiter& head = fl.waiters.front();
  for (Holder& h : fl.holders) {
    if (h.node == head.client) continue;
    if (protocol::compatible(h.mode, head.mode)) continue;
    const LockMode need = retained_mode(head.mode);
    if (h.demand_outstanding && mode_leq(h.demanded, need)) {
      continue;  // already demanded this far (or further) down
    }
    h.demanded = need;
    h.demand_outstanding = true;
    if (rec_ != nullptr) {
      rec_->record_now(h.node, obs::EventKind::kLockDemand, file.value(),
                       static_cast<std::uint64_t>(need));
    }
    out.push_back(Demand{h.node, file, need});
  }
}

void LockManager::set_mode(NodeId client, FileId file, LockMode mode, Update& out) {
  FileLocks* flp = files_.find(file);
  if (flp == nullptr) {
    return;
  }
  FileLocks& fl = *flp;

  Holder* held = fl.find_holder(client);
  if (held == nullptr) {
    // Not a holder (already stolen or never granted): nothing to apply, but
    // the queue may still be pumpable.
    pump_waiters(file, fl, out);
    gc(file);
    return;
  }

  if (mode == LockMode::kNone) {
    remove_holder(file, fl, client);
    if (rec_ != nullptr) {
      rec_->record_now(client, obs::EventKind::kLockRelease, file.value(),
                       static_cast<std::uint64_t>(LockMode::kNone));
    }
  } else if (mode_leq(mode, held->mode)) {
    held->mode = mode;
    // Satisfied a demand down to `mode`? Clear bookkeeping at or above it.
    if (held->demand_outstanding && mode_leq(mode, held->demanded)) {
      held->demand_outstanding = false;
    }
    if (rec_ != nullptr) {
      rec_->record_now(client, obs::EventKind::kLockRelease, file.value(),
                       static_cast<std::uint64_t>(mode));
    }
  }
  // Upgrades via set_mode are ignored; acquire() is the only upgrade path.

  pump_waiters(file, fl, out);
  gc(file);
}

void LockManager::pump_waiters(FileId file, FileLocks& fl, Update& out) {
  while (!fl.waiters.empty()) {
    const Waiter w = fl.waiters.front();
    if (!grantable(fl, w.client, w.mode)) {
      break;
    }
    if (Holder* h = fl.find_holder(w.client); h != nullptr) {
      h->mode = w.mode;
      h->demand_outstanding = false;
    } else {
      fl.holders.push_back(Holder{w.client, w.mode, LockMode::kNone, false});
      index_add_held(w.client, file);
    }
    if (rec_ != nullptr) {
      rec_->record_now(w.client, obs::EventKind::kLockGrant, file.value(),
                       static_cast<std::uint64_t>(w.mode));
    }
    out.grants.push_back(Grant{w.client, file, w.mode});
    fl.waiters.erase(fl.waiters.begin());
    index_remove_waiting(w.client, file);
    --queued_waiters_;
  }
  collect_demands(file, fl, out.demands);
}

void LockManager::cancel_waiter(NodeId client, FileId file, Update& out) {
  FileLocks* flp = files_.find(file);
  if (flp == nullptr) return;
  auto& ws = flp->waiters;
  Waiter* kept = std::remove_if(ws.begin(), ws.end(),
                                [&](const Waiter& w) { return w.client == client; });
  if (kept != ws.end()) {
    queued_waiters_ -= static_cast<std::size_t>(ws.end() - kept);
    ws.erase(kept, ws.end());
    index_remove_waiting(client, file);
  }
  pump_waiters(file, *flp, out);
  gc(file);
}

void LockManager::steal_all(NodeId client, std::vector<FileId>& affected, Update& out) {
  ClientFiles* cf = clients_.find(client);
  if (cf == nullptr) {
    return;
  }
  const std::size_t first = affected.size();
  for (FileId f : cf->held) {
    affected.push_back(f);
  }
  for (FileId f : cf->waiting) {
    // A client can hold S and wait for X on the same file; list it once.
    bool dup = false;
    for (std::size_t i = first; i < affected.size(); ++i) {
      dup = dup || affected[i] == f;
    }
    if (!dup) affected.push_back(f);
  }
  // Drop the index entry first: the removals below must not touch it, and
  // pumping can only add entries for OTHER clients (this one waits nowhere).
  clients_.erase(client);

  for (std::size_t i = first; i < affected.size(); ++i) {
    const FileId file = affected[i];
    FileLocks* flp = files_.find(file);
    STANK_ASSERT_MSG(flp != nullptr, "reverse index names a gc'd file");
    FileLocks& fl = *flp;
    for (Holder& h : fl.holders) {
      if (h.node == client) {
        fl.holders.swap_erase(&h);
        if (rec_ != nullptr) {
          rec_->record_now(client, obs::EventKind::kLockStolen, file.value());
        }
        break;
      }
    }
    Waiter* kept = std::remove_if(fl.waiters.begin(), fl.waiters.end(),
                                  [&](const Waiter& w) { return w.client == client; });
    queued_waiters_ -= static_cast<std::size_t>(fl.waiters.end() - kept);
    fl.waiters.erase(kept, fl.waiters.end());
    pump_waiters(file, fl, out);
    gc(file);
  }
}

std::optional<LockMode> LockManager::demanded_mode(NodeId client, FileId file) const {
  const FileLocks* fl = files_.find(file);
  if (fl == nullptr) return std::nullopt;
  const Holder* h = fl->find_holder(client);
  if (h == nullptr || !h->demand_outstanding) return std::nullopt;
  return h->demanded;
}

LockMode LockManager::mode_of(NodeId client, FileId file) const {
  const FileLocks* fl = files_.find(file);
  if (fl == nullptr) return LockMode::kNone;
  const Holder* h = fl->find_holder(client);
  return h == nullptr ? LockMode::kNone : h->mode;
}

std::vector<std::pair<NodeId, LockMode>> LockManager::holders(FileId file) const {
  std::vector<std::pair<NodeId, LockMode>> out;
  const FileLocks* fl = files_.find(file);
  if (fl == nullptr) return out;
  out.reserve(fl->holders.size());
  for (const Holder& h : fl->holders) {
    out.emplace_back(h.node, h.mode);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool LockManager::has_waiters(FileId file) const {
  const FileLocks* fl = files_.find(file);
  return fl != nullptr && !fl->waiters.empty();
}

std::size_t LockManager::waiter_count(FileId file) const {
  const FileLocks* fl = files_.find(file);
  return fl == nullptr ? 0 : fl->waiters.size();
}

std::vector<LockManager::Waiter> LockManager::waiters_of(FileId file) const {
  const FileLocks* fl = files_.find(file);
  if (fl == nullptr) return {};
  return {fl->waiters.begin(), fl->waiters.end()};
}

std::vector<FileId> LockManager::files_of(NodeId client) const {
  std::vector<FileId> out;
  const ClientFiles* cf = clients_.find(client);
  if (cf == nullptr) return out;
  out.assign(cf->held.begin(), cf->held.end());
  std::sort(out.begin(), out.end());
  return out;
}

void LockManager::remove_holder(FileId file, FileLocks& fl, NodeId node) {
  for (Holder& h : fl.holders) {
    if (h.node == node) {
      fl.holders.swap_erase(&h);
      index_remove_held(node, file);
      return;
    }
  }
}

void LockManager::gc(FileId file) {
  const FileLocks* fl = files_.find(file);
  if (fl != nullptr && fl->holders.empty() && fl->waiters.empty()) {
    files_.erase(file);
  }
}

// ---------------------------------------------------------------------------
// Reverse index

void LockManager::index_add_held(NodeId client, FileId file) {
  clients_[client].held.push_back(file);
}

void LockManager::index_remove_held(NodeId client, FileId file) {
  ClientFiles* cf = clients_.find(client);
  STANK_ASSERT_MSG(cf != nullptr, "holder missing from reverse index");
  for (FileId& f : cf->held) {
    if (f == file) {
      cf->held.swap_erase(&f);
      break;
    }
  }
  gc_client(client);
}

void LockManager::index_add_waiting(NodeId client, FileId file) {
  clients_[client].waiting.push_back(file);
}

void LockManager::index_remove_waiting(NodeId client, FileId file) {
  ClientFiles* cf = clients_.find(client);
  if (cf == nullptr) {
    return;  // client already dropped from the index (steal path)
  }
  for (FileId& f : cf->waiting) {
    if (f == file) {
      cf->waiting.swap_erase(&f);
      break;
    }
  }
  gc_client(client);
}

void LockManager::gc_client(NodeId client) {
  const ClientFiles* cf = clients_.find(client);
  if (cf != nullptr && cf->held.empty() && cf->waiting.empty()) {
    clients_.erase(client);
  }
}

// ---------------------------------------------------------------------------

bool LockManager::invariants_hold() const {
  std::size_t holder_records = 0;
  std::size_t waiter_records = 0;
  for (const auto& [file, fl] : files_) {
    if (fl.holders.empty() && fl.waiters.empty()) {
      return false;  // should have been gc'd
    }
    // Holders pairwise compatible, unique, never kNone.
    for (const Holder& a : fl.holders) {
      if (a.mode == LockMode::kNone) return false;
      for (const Holder& b : fl.holders) {
        if (&a == &b) continue;
        if (a.node == b.node) return false;
        if (!protocol::compatible(a.mode, b.mode)) return false;
      }
      // The reverse index must list this file for the holder exactly once.
      const ClientFiles* cf = clients_.find(a.node);
      if (cf == nullptr) return false;
      std::size_t n = 0;
      for (FileId f : cf->held) n += f == file ? 1 : 0;
      if (n != 1) return false;
    }
    // Waiters unique per client; head waiter must actually be blocked.
    for (const Waiter& a : fl.waiters) {
      std::size_t dups = 0;
      for (const Waiter& b : fl.waiters) dups += a.client == b.client ? 1 : 0;
      if (dups != 1) return false;
      const ClientFiles* cf = clients_.find(a.client);
      if (cf == nullptr) return false;
      std::size_t n = 0;
      for (FileId f : cf->waiting) n += f == file ? 1 : 0;
      if (n != 1) return false;
    }
    if (!fl.waiters.empty() && grantable(fl, fl.waiters.front().client, fl.waiters.front().mode)) {
      return false;
    }
    holder_records += fl.holders.size();
    waiter_records += fl.waiters.size();
  }
  // The O(1) convoy counter must agree with the table it summarizes.
  if (queued_waiters_ != waiter_records) return false;

  // The index holds nothing beyond the lock table (no stale or empty
  // records): totals match, so index->table containment plus the per-record
  // uniqueness above makes the two views identical.
  std::size_t indexed_held = 0;
  std::size_t indexed_waiting = 0;
  for (const auto& [client, cf] : clients_) {
    if (cf.held.empty() && cf.waiting.empty()) return false;
    indexed_held += cf.held.size();
    indexed_waiting += cf.waiting.size();
  }
  return indexed_held == holder_records && indexed_waiting == waiter_records;
}

}  // namespace stank::server
