#include "server/lock_manager.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace stank::server {

namespace {

// Strongest mode the holder may keep while `want` is granted to another.
LockMode retained_mode(LockMode want) {
  return want == LockMode::kExclusive ? LockMode::kNone : LockMode::kShared;
}

bool mode_leq(LockMode a, LockMode b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

}  // namespace

bool LockManager::grantable(const FileLocks& fl, NodeId client, LockMode mode) {
  for (const auto& [holder, held] : fl.holders) {
    if (holder == client) continue;
    if (!protocol::compatible(held, mode)) return false;
  }
  return true;
}

LockManager::AcquireResult LockManager::acquire(NodeId client, FileId file, LockMode mode) {
  STANK_ASSERT_MSG(mode != LockMode::kNone, "acquire(kNone) is a release; use set_mode");
  FileLocks& fl = files_[file];

  auto held_it = fl.holders.find(client);
  const LockMode held = held_it == fl.holders.end() ? LockMode::kNone : held_it->second;
  if (mode_leq(mode, held)) {
    gc(file);
    return AcquireResult{AcquireOutcome::kAlreadyHeld, {}};
  }

  // Strict FIFO: a request must queue behind existing waiters even when
  // immediately grantable, or writers would starve behind a reader stream.
  const bool must_queue = !fl.waiters.empty() || !grantable(fl, client, mode);
  if (!must_queue) {
    fl.holders[client] = mode;
    fl.demanded.erase(client);
    return AcquireResult{AcquireOutcome::kGranted, {}};
  }

  // Deduplicate: a client re-requesting while queued keeps one entry at the
  // strongest requested mode.
  bool queued = false;
  for (auto& w : fl.waiters) {
    if (w.client == client) {
      if (mode_leq(w.mode, mode)) w.mode = mode;
      queued = true;
      break;
    }
  }
  if (!queued) {
    fl.waiters.push_back(Waiter{client, mode});
  }

  AcquireResult res;
  res.outcome = AcquireOutcome::kQueued;
  Update upd;
  collect_demands(file, fl, upd);
  res.demands = std::move(upd.demands);
  return res;
}

void LockManager::collect_demands(FileId file, FileLocks& fl, Update& out) {
  if (fl.waiters.empty()) return;
  const Waiter& head = fl.waiters.front();
  for (const auto& [holder, held] : fl.holders) {
    if (holder == head.client) continue;
    if (protocol::compatible(held, head.mode)) continue;
    const LockMode need = retained_mode(head.mode);
    auto dem = fl.demanded.find(holder);
    if (dem != fl.demanded.end() && mode_leq(dem->second, need)) {
      continue;  // already demanded this far (or further) down
    }
    fl.demanded[holder] = need;
    out.demands.push_back(Demand{holder, file, need});
  }
}

LockManager::Update LockManager::set_mode(NodeId client, FileId file, LockMode mode) {
  Update out;
  auto fit = files_.find(file);
  if (fit == files_.end()) {
    return out;
  }
  FileLocks& fl = fit->second;

  auto held_it = fl.holders.find(client);
  if (held_it == fl.holders.end()) {
    // Not a holder (already stolen or never granted): nothing to apply, but
    // the queue may still be pumpable.
    pump_waiters(file, fl, out);
    gc(file);
    return out;
  }

  if (mode == LockMode::kNone) {
    fl.holders.erase(held_it);
    fl.demanded.erase(client);
  } else if (mode_leq(mode, held_it->second)) {
    held_it->second = mode;
    // Satisfied a demand down to `mode`? Clear bookkeeping at or above it.
    auto dem = fl.demanded.find(client);
    if (dem != fl.demanded.end() && mode_leq(mode, dem->second)) {
      fl.demanded.erase(dem);
    }
  }
  // Upgrades via set_mode are ignored; acquire() is the only upgrade path.

  pump_waiters(file, fl, out);
  gc(file);
  return out;
}

void LockManager::pump_waiters(FileId file, FileLocks& fl, Update& out) {
  while (!fl.waiters.empty()) {
    const Waiter& w = fl.waiters.front();
    if (!grantable(fl, w.client, w.mode)) {
      break;
    }
    fl.holders[w.client] = w.mode;
    fl.demanded.erase(w.client);
    out.grants.push_back(Grant{w.client, file, w.mode});
    fl.waiters.pop_front();
  }
  collect_demands(file, fl, out);
}

LockManager::Update LockManager::cancel_waiter(NodeId client, FileId file) {
  Update out;
  auto fit = files_.find(file);
  if (fit == files_.end()) return out;
  auto& ws = fit->second.waiters;
  ws.erase(std::remove_if(ws.begin(), ws.end(),
                          [&](const Waiter& w) { return w.client == client; }),
           ws.end());
  pump_waiters(file, fit->second, out);
  gc(file);
  return out;
}

LockManager::StealResult LockManager::steal_all(NodeId client) {
  StealResult res;
  std::vector<FileId> to_process;
  for (auto& [file, fl] : files_) {
    const bool holds = fl.holders.contains(client);
    const bool waits = std::any_of(fl.waiters.begin(), fl.waiters.end(),
                                   [&](const Waiter& w) { return w.client == client; });
    if (holds || waits) {
      to_process.push_back(file);
    }
  }
  for (FileId file : to_process) {
    FileLocks& fl = files_.at(file);
    fl.holders.erase(client);
    fl.demanded.erase(client);
    fl.waiters.erase(std::remove_if(fl.waiters.begin(), fl.waiters.end(),
                                    [&](const Waiter& w) { return w.client == client; }),
                     fl.waiters.end());
    res.affected.push_back(file);
    pump_waiters(file, fl, res.update);
    gc(file);
  }
  return res;
}

std::optional<LockMode> LockManager::demanded_mode(NodeId client, FileId file) const {
  auto fit = files_.find(file);
  if (fit == files_.end()) return std::nullopt;
  auto it = fit->second.demanded.find(client);
  if (it == fit->second.demanded.end()) return std::nullopt;
  return it->second;
}

LockMode LockManager::mode_of(NodeId client, FileId file) const {
  auto fit = files_.find(file);
  if (fit == files_.end()) return LockMode::kNone;
  auto it = fit->second.holders.find(client);
  return it == fit->second.holders.end() ? LockMode::kNone : it->second;
}

std::vector<std::pair<NodeId, LockMode>> LockManager::holders(FileId file) const {
  std::vector<std::pair<NodeId, LockMode>> out;
  auto fit = files_.find(file);
  if (fit == files_.end()) return out;
  out.assign(fit->second.holders.begin(), fit->second.holders.end());
  return out;
}

bool LockManager::has_waiters(FileId file) const {
  auto fit = files_.find(file);
  return fit != files_.end() && !fit->second.waiters.empty();
}

std::size_t LockManager::waiter_count(FileId file) const {
  auto fit = files_.find(file);
  return fit == files_.end() ? 0 : fit->second.waiters.size();
}

std::vector<FileId> LockManager::files_of(NodeId client) const {
  std::vector<FileId> out;
  for (const auto& [file, fl] : files_) {
    if (fl.holders.contains(client)) {
      out.push_back(file);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void LockManager::gc(FileId file) {
  auto fit = files_.find(file);
  if (fit != files_.end() && fit->second.holders.empty() && fit->second.waiters.empty()) {
    files_.erase(fit);
  }
}

bool LockManager::invariants_hold() const {
  for (const auto& [file, fl] : files_) {
    if (fl.holders.empty() && fl.waiters.empty()) {
      return false;  // should have been gc'd
    }
    // Holders pairwise compatible.
    for (const auto& [a, am] : fl.holders) {
      if (am == LockMode::kNone) return false;
      for (const auto& [b, bm] : fl.holders) {
        if (a != b && !protocol::compatible(am, bm)) return false;
      }
    }
    // Head waiter must actually be blocked.
    if (!fl.waiters.empty() && grantable(fl, fl.waiters.front().client, fl.waiters.front().mode)) {
      return false;
    }
    // demanded refers only to current holders.
    for (const auto& [node, m] : fl.demanded) {
      if (!fl.holders.contains(node)) return false;
    }
  }
  return true;
}

}  // namespace stank::server
