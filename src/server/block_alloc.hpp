// First-fit extent allocator over one shared disk's block space.
//
// The server performs "the allocation of file data" (section 1.1): clients
// never choose block addresses; they receive extent lists and do direct I/O
// against them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.hpp"
#include "common/strong_id.hpp"
#include "protocol/messages.hpp"
#include "storage/io.hpp"

namespace stank::server {

class BlockAllocator {
 public:
  BlockAllocator(DiskId disk, storage::BlockAddr total_blocks);

  // Allocates `count` blocks, possibly split across several extents when
  // free space is fragmented. Returns kNoSpace and allocates nothing if the
  // disk cannot satisfy the request.
  Result<std::vector<protocol::Extent>> allocate(std::uint64_t count);

  // Returns blocks to the free pool, coalescing adjacent runs.
  void release(const std::vector<protocol::Extent>& extents);

  [[nodiscard]] storage::BlockAddr free_blocks() const { return free_count_; }
  [[nodiscard]] storage::BlockAddr total_blocks() const { return total_; }
  [[nodiscard]] std::size_t free_runs() const { return free_.size(); }
  [[nodiscard]] DiskId disk() const { return disk_; }

  // Invariant check used by tests: free runs are disjoint, sorted, coalesced
  // and sum to free_blocks().
  [[nodiscard]] bool invariants_hold() const;

 private:
  DiskId disk_;
  storage::BlockAddr total_;
  storage::BlockAddr free_count_;
  // start -> length, non-overlapping, non-adjacent.
  std::map<storage::BlockAddr, storage::BlockAddr> free_;
};

}  // namespace stank::server
