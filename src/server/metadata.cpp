#include "server/metadata.hpp"

namespace stank::server {

Result<FileId> Metadata::open(const std::string& path, bool create) {
  auto it = names_.find(path);
  if (it != names_.end()) {
    return it->second;
  }
  if (!create) {
    return ErrorCode::kNotFound;
  }
  const FileId id{next_id_++};
  names_.emplace(path, id);
  Inode inode;
  inode.id = id;
  inodes_.emplace(id, std::move(inode));
  return id;
}

Inode* Metadata::find(FileId id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

const Inode* Metadata::find(FileId id) const {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

Status Metadata::remove(const std::string& path) {
  auto it = names_.find(path);
  if (it == names_.end()) {
    return ErrorCode::kNotFound;
  }
  inodes_.erase(it->second);
  names_.erase(it);
  return Status::ok();
}

std::optional<FileId> Metadata::lookup(const std::string& path) const {
  auto it = names_.find(path);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

void Metadata::touch(Inode& inode, std::uint64_t now_ns) {
  inode.attr.mtime_ns = now_ns;
  ++inode.attr.meta_version;
}

}  // namespace stank::server
