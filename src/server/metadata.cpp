#include "server/metadata.hpp"

namespace stank::server {

Result<FileId> Metadata::open(std::string_view path, bool create) {
  auto it = names_.find(path);  // heterogeneous: no string copy on the hit path
  if (it != names_.end()) {
    return it->second;
  }
  if (!create) {
    return ErrorCode::kNotFound;
  }
  const FileId id{next_id_++};
  names_.emplace(std::string(path), id);
  Inode& inode = inodes_[id];
  inode.id = id;
  return id;
}

Inode* Metadata::find(FileId id) { return inodes_.find(id); }

const Inode* Metadata::find(FileId id) const { return inodes_.find(id); }

Status Metadata::remove(std::string_view path) {
  auto it = names_.find(path);
  if (it == names_.end()) {
    return ErrorCode::kNotFound;
  }
  inodes_.erase(it->second);
  names_.erase(it);
  return Status::ok();
}

std::optional<FileId> Metadata::lookup(std::string_view path) const {
  auto it = names_.find(path);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

void Metadata::touch(Inode& inode, std::uint64_t now_ns) {
  inode.attr.mtime_ns = now_ns;
  ++inode.attr.meta_version;
}

}  // namespace stank::server
