// Reusable synchronization barrier for the sharded simulation engine.
//
// The window loop synchronizes K shard workers twice per 10us simulated
// window, so a conservative parallel run crosses the barrier hundreds of
// thousands of times. std::barrier's completion-function machinery and
// futex round trips are measurable at that rate; this barrier spins briefly
// (windows are short, the other workers are usually already arriving) and
// then yields, so it degrades gracefully when workers outnumber cores.
//
// Memory ordering: arrive_and_wait() is a full rendezvous — every write a
// participant made before arriving happens-before every read any participant
// makes after leaving. That ordering is what makes the lock-free SPSC
// mailboxes safe: producers fill them strictly before the barrier, consumers
// drain them strictly after.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/assert.hpp"

namespace stank::rt {

class Barrier {
 public:
  // Per-participant wait accounting, filled by arrive_and_wait(WaitStats*).
  // Strictly thread-local: each worker passes its own instance and the
  // owner folds them only after the workers have joined, so there is no
  // sharing to order. Padded to a cache line anyway — the stats commonly
  // live in an array indexed by worker.
  struct alignas(64) WaitStats {
    std::uint64_t waits{0};          // rendezvous crossed
    std::uint64_t last_arrivals{0};  // times this participant arrived last
    std::uint64_t spin_rounds{0};    // completed kSpinLimit spin bursts
    std::uint64_t yields{0};         // sched_yield calls while waiting
    std::uint64_t wait_ns{0};        // total wall time inside the barrier
    // log2 wait-time buckets: bucket b counts waits in [2^(b-1), 2^b) ns.
    std::array<std::uint64_t, 32> wait_ns_buckets{};

    void reset() { *this = WaitStats{}; }
  };

  explicit Barrier(std::uint32_t participants) : participants_(participants) {
    STANK_ASSERT_MSG(participants > 0, "barrier needs at least one participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() { arrive_and_wait(nullptr); }

  // With ws == nullptr this is the original untimed path: the null check is
  // the one untaken branch dark instrumentation is allowed. With stats the
  // wait is clocked (two steady_clock reads) and spin/yield behavior is
  // counted — same spin/yield policy, so arming never changes scheduling.
  void arrive_and_wait(WaitStats* ws) {
    if (participants_ == 1) return;  // single worker: every window is a no-op
    using clock = std::chrono::steady_clock;
    clock::time_point t0;
    if (ws != nullptr) t0 = clock::now();
    const std::uint64_t phase = phase_.load(std::memory_order_relaxed);
    // The release on the last arrival publishes this worker's writes; the
    // acquire in the spin loop (and in the fetch_add itself) pulls in every
    // other worker's writes from the previous phase.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_acq_rel);
      if (ws != nullptr) {
        ++ws->last_arrivals;
        note_wait(*ws, t0);
      }
      return;
    }
    // Spin a little first — at dense event rates the other shards arrive
    // within a microsecond — then yield so an oversubscribed machine (more
    // workers than cores) does not burn whole scheduler quanta.
    if (ws == nullptr) {
      for (std::uint32_t spins = 0; phase_.load(std::memory_order_acquire) == phase;) {
        if (++spins >= kSpinLimit) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      return;
    }
    for (std::uint32_t spins = 0; phase_.load(std::memory_order_acquire) == phase;) {
      if (++spins >= kSpinLimit) {
        ++ws->spin_rounds;
        ++ws->yields;
        std::this_thread::yield();
        spins = 0;
      }
    }
    note_wait(*ws, t0);
  }

  [[nodiscard]] std::uint32_t participants() const { return participants_; }

 private:
  static constexpr std::uint32_t kSpinLimit = 4096;

  static void note_wait(WaitStats& ws, std::chrono::steady_clock::time_point t0) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++ws.waits;
    ws.wait_ns += ns;
    const unsigned width = static_cast<unsigned>(std::bit_width(ns));
    ws.wait_ns_buckets[width < ws.wait_ns_buckets.size()
                           ? width
                           : ws.wait_ns_buckets.size() - 1] += 1;
  }

  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace stank::rt
