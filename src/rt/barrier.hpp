// Reusable synchronization barrier for the sharded simulation engine.
//
// The window loop synchronizes K shard workers twice per 10us simulated
// window, so a conservative parallel run crosses the barrier hundreds of
// thousands of times. std::barrier's completion-function machinery and
// futex round trips are measurable at that rate; this barrier spins briefly
// (windows are short, the other workers are usually already arriving) and
// then yields, so it degrades gracefully when workers outnumber cores.
//
// Memory ordering: arrive_and_wait() is a full rendezvous — every write a
// participant made before arriving happens-before every read any participant
// makes after leaving. That ordering is what makes the lock-free SPSC
// mailboxes safe: producers fill them strictly before the barrier, consumers
// drain them strictly after.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/assert.hpp"

namespace stank::rt {

class Barrier {
 public:
  explicit Barrier(std::uint32_t participants) : participants_(participants) {
    STANK_ASSERT_MSG(participants > 0, "barrier needs at least one participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() {
    if (participants_ == 1) return;  // single worker: every window is a no-op
    const std::uint64_t phase = phase_.load(std::memory_order_relaxed);
    // The release on the last arrival publishes this worker's writes; the
    // acquire in the spin loop (and in the fetch_add itself) pulls in every
    // other worker's writes from the previous phase.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    // Spin a little first — at dense event rates the other shards arrive
    // within a microsecond — then yield so an oversubscribed machine (more
    // workers than cores) does not burn whole scheduler quanta.
    for (std::uint32_t spins = 0; phase_.load(std::memory_order_acquire) == phase;) {
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  [[nodiscard]] std::uint32_t participants() const { return participants_; }

 private:
  static constexpr std::uint32_t kSpinLimit = 4096;

  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace stank::rt
