// Parallel sweep driver for randomized experiment batches.
//
// Each task is an independent simulation (its own engine, nodes, RNG), so
// the sweep is embarrassingly parallel; results land in a pre-sized vector
// indexed by task id, making the aggregate deterministic regardless of
// thread interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace stank::rt {

// Runs f(i) for i in [0, n) on up to `threads` workers. f must be callable
// concurrently from multiple threads for distinct i.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f,
                         unsigned threads = 0) {
  if (n == 0) return;
  unsigned hw = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  hw = static_cast<unsigned>(std::min<std::size_t>(hw, n));

  if (hw <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        f(i);
      }
    });
  }
}

// Maps f over [0, n) in parallel, collecting results in index order.
template <typename R>
std::vector<R> parallel_map(std::size_t n, const std::function<R(std::size_t)>& f,
                            unsigned threads = 0) {
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = f(i); }, threads);
  return out;
}

}  // namespace stank::rt
