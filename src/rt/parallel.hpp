// Parallel sweep driver for randomized experiment batches.
//
// Each task is an independent simulation (its own engine, nodes, RNG), so
// the sweep is embarrassingly parallel; results land in a pre-sized vector
// indexed by task id, making the aggregate deterministic regardless of
// thread interleaving.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <vector>

namespace stank::rt {

// Runs f(i) for i in [0, n) on up to `threads` workers. f must be callable
// concurrently from multiple threads for distinct i. Templated on the
// callable so the per-index dispatch inlines — no std::function indirection
// on a path that fans out millions of simulated events per task.
template <typename F>
  requires std::is_invocable_v<F&, std::size_t>
void parallel_for(std::size_t n, F&& f, unsigned threads = 0) {
  if (n == 0) return;
  unsigned hw = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  hw = static_cast<unsigned>(std::min<std::size_t>(hw, n));

  if (hw <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        f(i);
      }
    });
  }
}

// Maps f over [0, n) in parallel, collecting results in index order. The
// result type is deduced from f; pass it explicitly to override.
template <typename R = void, typename F>
auto parallel_map(std::size_t n, F&& f, unsigned threads = 0) {
  using Result = std::conditional_t<std::is_void_v<R>, std::invoke_result_t<F&, std::size_t>, R>;
  std::vector<Result> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = f(i); }, threads);
  return out;
}

}  // namespace stank::rt
