// File layout arithmetic: mapping a byte range of a file onto the disk
// blocks of its extent list.
//
// Shared by the Storage Tank client (direct SAN I/O) and by the
// data-shipping baseline server (which performs the same I/O on the
// client's behalf).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "protocol/messages.hpp"

namespace stank::protocol {

// One block's worth of a byte-range operation.
struct BlockSlice {
  DiskId disk;
  storage::BlockAddr addr{0};     // block address on that disk
  std::uint64_t file_block{0};    // block index within the file
  std::uint32_t offset_in_block{0};
  std::uint32_t len{0};           // bytes of this slice
  std::uint64_t buf_offset{0};    // offset into the caller's buffer
};

// Looks up the disk block backing file-block index `fb`, or returns false if
// the extent list does not cover it.
inline bool locate_block(const std::vector<Extent>& extents, std::uint64_t fb, DiskId& disk,
                         storage::BlockAddr& addr) {
  std::uint64_t base = 0;
  for (const auto& e : extents) {
    if (fb < base + e.count) {
      disk = e.disk;
      addr = e.start + (fb - base);
      return true;
    }
    base += e.count;
  }
  return false;
}

// Splits [offset, offset+len) of a file into per-block slices appended to
// `out` (cleared first). Returns false — with `out` emptied — if the extent
// list does not cover the range. Templated on the container so hot callers
// can hand in a stack-inline SmallVec and slice without touching the heap.
template <typename Vec>
inline bool slice_range_into(const std::vector<Extent>& extents, std::uint32_t block_size,
                             std::uint64_t offset, std::uint64_t len, Vec& out) {
  STANK_ASSERT(block_size > 0);
  out.clear();
  std::uint64_t pos = offset;
  std::uint64_t buf = 0;
  while (buf < len) {
    const std::uint64_t fb = pos / block_size;
    const std::uint32_t in_block = static_cast<std::uint32_t>(pos % block_size);
    const std::uint32_t take =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(block_size - in_block, len - buf));
    BlockSlice s;
    if (!locate_block(extents, fb, s.disk, s.addr)) {
      out.clear();
      return false;
    }
    s.file_block = fb;
    s.offset_in_block = in_block;
    s.len = take;
    s.buf_offset = buf;
    out.push_back(s);
    pos += take;
    buf += take;
  }
  return true;
}

// Vector-returning convenience wrapper over slice_range_into.
inline std::vector<BlockSlice> slice_range(const std::vector<Extent>& extents,
                                           std::uint32_t block_size, std::uint64_t offset,
                                           std::uint64_t len, bool& ok) {
  std::vector<BlockSlice> out;
  ok = slice_range_into(extents, block_size, offset, len, out);
  return out;
}

}  // namespace stank::protocol
