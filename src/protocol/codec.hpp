// Wire codec: Frame <-> bytes.
//
// Every frame actually crosses the simulated control network as a byte
// buffer, so the codec is exercised on every message of every experiment.
// Decoding is total: malformed or truncated datagrams yield nullopt, never
// undefined behaviour.
#pragma once

#include <cstddef>
#include <optional>

#include "common/bytes.hpp"
#include "protocol/messages.hpp"

namespace stank::protocol {

// Exact wire size of the encoded frame, computed by a counting writer that
// walks the same encode path as encode_into — they cannot drift apart.
[[nodiscard]] std::size_t encoded_size(const Frame& frame);

// Encodes into a caller-owned buffer: clears it, reserves the exact frame
// size (one allocation, no growth reallocs), and writes. Transports keep a
// scratch buffer and move it into the net, so a send costs one allocation.
void encode_into(const Frame& frame, Bytes& out);

[[nodiscard]] Bytes encode(const Frame& frame);
[[nodiscard]] std::optional<Frame> decode(const Bytes& datagram);

}  // namespace stank::protocol
