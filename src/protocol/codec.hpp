// Wire codec: Frame <-> bytes.
//
// Every frame actually crosses the simulated control network as a byte
// buffer, so the codec is exercised on every message of every experiment.
// Decoding is total: malformed or truncated datagrams yield nullopt, never
// undefined behaviour.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "protocol/messages.hpp"

namespace stank::protocol {

[[nodiscard]] Bytes encode(const Frame& frame);
[[nodiscard]] std::optional<Frame> decode(const Bytes& datagram);

}  // namespace stank::protocol
