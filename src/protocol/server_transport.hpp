// Server side of the control-network session.
//
// Responsibilities:
//  * At-most-once request execution per (client, epoch, msg id), with a
//    bounded reply cache so retransmitted requests re-send the original
//    reply instead of re-executing.
//  * The ACK gate: before ANY positive acknowledgment leaves this node, the
//    may_ack predicate is consulted. Section 3.1: "we require the server not
//    to ACK messages if it has already started a counter to expire client
//    locks". A denied ACK is turned into a NACK (section 3.3).
//  * Server-initiated messages (lock demands/grants) with retransmission;
//    exhausting retries reports a delivery failure, which is what triggers
//    the passive lease authority.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "metrics/counters.hpp"
#include "net/control_net.hpp"
#include "obs/recorder.hpp"
#include "protocol/codec.hpp"
#include "protocol/transport.hpp"
#include "sim/clock.hpp"

namespace stank::protocol {

class ServerTransport {
 public:
  ServerTransport(net::ControlNet& net, sim::NodeClock& clock, NodeId self,
                  metrics::Counters& counters, TransportConfig cfg = {});
  ~ServerTransport();

  ServerTransport(const ServerTransport&) = delete;
  ServerTransport& operator=(const ServerTransport&) = delete;

  void start();
  void stop();

  // Handle with which the request handler answers exactly once.
  class Responder {
   public:
    void ack(ReplyBody body) const;
    void nack() const;
    [[nodiscard]] NodeId client() const { return client_; }
    [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

   private:
    friend class ServerTransport;
    Responder(ServerTransport* t, NodeId client, MsgId id, std::uint32_t epoch)
        : t_(t), client_(client), id_(id), epoch_(epoch) {}
    ServerTransport* t_;
    NodeId client_;
    MsgId id_;
    std::uint32_t epoch_;
  };

  // Wired by the server before start().
  std::function<void(NodeId client, std::uint32_t epoch, const RequestBody&, Responder)>
      on_request;
  // ACK suppression gate; default permits.
  std::function<bool(NodeId client)> may_ack;

  // Sends a server-initiated message requiring a client transport ACK.
  // done(delivered) fires exactly once; delivered=false after retries are
  // exhausted — the delivery error of section 3.
  void send_server_msg(NodeId client, std::uint32_t epoch, ServerBody body,
                       std::function<void(bool delivered)> done);

  // Drops outstanding server messages to a client without firing their
  // callbacks (used once the client has been declared failed).
  void cancel_server_msgs(NodeId client);

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::size_t outstanding_server_msgs() const { return out_msgs_.size(); }

  // Stamps every outgoing frame with this server incarnation. Clients gate
  // server-initiated messages on it: epoch numbers and server msg_ids both
  // restart across reboots, so the incarnation is the only field that makes
  // a captured pre-restart datagram distinguishable from a live one.
  void set_incarnation(std::uint32_t inc) { incarnation_ = inc; }
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }

  // Attaches (or detaches, with nullptr) the flight recorder.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

 private:
  struct Session {
    // msg id -> cached reply frame; nullopt while the handler is running.
    FlatMap<MsgId, std::optional<Frame>> executed;
    // Fixed-capacity eviction ring (FIFO). Once the session has seen
    // reply_cache_size requests the ring stops growing and every further
    // request recycles one slot — the steady-state server path makes zero
    // allocations per request.
    std::vector<MsgId> ring;
    std::size_t ring_pos{0};
  };
  struct OutMsg {
    NodeId client;
    Frame frame;
    int transmissions{0};
    sim::TimerId timer{0};
    std::function<void(bool)> done;
  };

  void handle_datagram(NodeId from, const Bytes& datagram);
  void handle_request(const Frame& f);
  void respond(NodeId client, MsgId id, std::uint32_t epoch, bool positive, ReplyBody body);
  void send_reply_frame(NodeId client, const Frame& f);
  void send_frame(NodeId to, const Frame& f);
  void transmit_server_msg(MsgId id);
  Session& session(NodeId client, std::uint32_t epoch);

  net::ControlNet* net_;
  sim::NodeClock* clock_;
  NodeId self_;
  metrics::Counters* counters_;
  obs::Recorder* rec_{nullptr};
  TransportConfig cfg_;
  bool started_{false};
  std::uint32_t incarnation_{0};
  std::uint64_t next_msg_{1};

  // Sessions keyed by packed (client, epoch): one flat table instead of a
  // map-of-maps, so a million-client server pays one probe per request and
  // ~56 bytes of per-session overhead instead of two bucket chains.
  FlatMap<std::uint64_t, Session> sessions_;
  std::unordered_map<MsgId, OutMsg> out_msgs_;
};

}  // namespace stank::protocol
