#include "protocol/codec.hpp"

#include "common/assert.hpp"

namespace stank::protocol {

namespace {

// Body type tags. Stable on the wire; append-only.
enum class ReqTag : std::uint8_t {
  kOpen = 1,
  kClose,
  kLock,
  kUnlock,
  kDemandDone,
  kGetAttr,
  kSetSize,
  kKeepAlive,
  kRegister,
  kRenewObj,
  kReadData,
  kWriteData,
  kReassertLock,
};
enum class RepTag : std::uint8_t {
  kOk = 1,
  kErr,
  kOpen,
  kLock,
  kAttr,
  kRegister,
  kData,
};
enum class SrvTag : std::uint8_t {
  kLockDemand = 1,
  kLockGrant,
};

template <typename W>
void put_attr(W& w, const FileAttr& a) {
  w.u64(a.size);
  w.u64(a.mtime_ns);
  w.u32(a.meta_version);
}

FileAttr get_attr(ByteReader& r) {
  FileAttr a;
  a.size = r.u64();
  a.mtime_ns = r.u64();
  a.meta_version = r.u32();
  return a;
}

template <typename W>
void put_extents(W& w, const std::vector<Extent>& ex) {
  w.u32(static_cast<std::uint32_t>(ex.size()));
  for (const auto& e : ex) {
    w.u32(e.disk.value());
    w.u64(e.start);
    w.u32(e.count);
  }
}

std::vector<Extent> get_extents(ByteReader& r) {
  std::uint32_t n = r.u32();
  std::vector<Extent> ex;
  // Guard against hostile lengths: cap by remaining bytes (16 per extent).
  if (n > r.remaining() / 16 + 1) {
    n = 0;
  }
  ex.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Extent e;
    e.disk = DiskId{r.u32()};
    e.start = r.u64();
    e.count = r.u32();
    ex.push_back(e);
  }
  return ex;
}

template <typename W>
void encode_request(W& w, const RequestBody& body) {
  std::visit(
      [&](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, OpenReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kOpen));
          w.str(b.path);
          w.boolean(b.create);
        } else if constexpr (std::is_same_v<T, CloseReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kClose));
          w.u32(b.file.value());
        } else if constexpr (std::is_same_v<T, LockReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kLock));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.mode));
        } else if constexpr (std::is_same_v<T, UnlockReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kUnlock));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.downgrade_to));
          w.u32(b.gen);
          w.u64(b.cookie);
        } else if constexpr (std::is_same_v<T, DemandDoneReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kDemandDone));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.new_mode));
          w.u32(b.gen);
          w.u64(b.cookie);
        } else if constexpr (std::is_same_v<T, GetAttrReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kGetAttr));
          w.u32(b.file.value());
        } else if constexpr (std::is_same_v<T, SetSizeReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kSetSize));
          w.u32(b.file.value());
          w.u64(b.new_size);
          w.boolean(b.truncate);
        } else if constexpr (std::is_same_v<T, KeepAliveReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kKeepAlive));
        } else if constexpr (std::is_same_v<T, RegisterReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kRegister));
        } else if constexpr (std::is_same_v<T, RenewObjReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kRenewObj));
          w.u32(b.file.value());
        } else if constexpr (std::is_same_v<T, ReadDataReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kReadData));
          w.u32(b.file.value());
          w.u64(b.offset);
          w.u32(b.len);
        } else if constexpr (std::is_same_v<T, WriteDataReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kWriteData));
          w.u32(b.file.value());
          w.u64(b.offset);
          w.raw(b.data);
        } else if constexpr (std::is_same_v<T, ReassertLockReq>) {
          w.u8(static_cast<std::uint8_t>(ReqTag::kReassertLock));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.mode));
        }
      },
      body);
}

std::optional<RequestBody> decode_request(ByteReader& r) {
  const auto tag = static_cast<ReqTag>(r.u8());
  switch (tag) {
    case ReqTag::kOpen: {
      OpenReq b;
      b.path = r.str();
      b.create = r.boolean();
      return RequestBody{b};
    }
    case ReqTag::kClose:
      return RequestBody{CloseReq{FileId{r.u32()}}};
    case ReqTag::kLock: {
      LockReq b;
      b.file = FileId{r.u32()};
      b.mode = static_cast<LockMode>(r.u8());
      return RequestBody{b};
    }
    case ReqTag::kUnlock: {
      UnlockReq b;
      b.file = FileId{r.u32()};
      b.downgrade_to = static_cast<LockMode>(r.u8());
      b.gen = r.u32();
      b.cookie = r.u64();
      return RequestBody{b};
    }
    case ReqTag::kDemandDone: {
      DemandDoneReq b;
      b.file = FileId{r.u32()};
      b.new_mode = static_cast<LockMode>(r.u8());
      b.gen = r.u32();
      b.cookie = r.u64();
      return RequestBody{b};
    }
    case ReqTag::kGetAttr:
      return RequestBody{GetAttrReq{FileId{r.u32()}}};
    case ReqTag::kSetSize: {
      SetSizeReq b;
      b.file = FileId{r.u32()};
      b.new_size = r.u64();
      b.truncate = r.boolean();
      return RequestBody{b};
    }
    case ReqTag::kKeepAlive:
      return RequestBody{KeepAliveReq{}};
    case ReqTag::kRegister:
      return RequestBody{RegisterReq{}};
    case ReqTag::kRenewObj:
      return RequestBody{RenewObjReq{FileId{r.u32()}}};
    case ReqTag::kReadData: {
      ReadDataReq b;
      b.file = FileId{r.u32()};
      b.offset = r.u64();
      b.len = r.u32();
      return RequestBody{b};
    }
    case ReqTag::kWriteData: {
      WriteDataReq b;
      b.file = FileId{r.u32()};
      b.offset = r.u64();
      b.data = r.raw();
      return RequestBody{b};
    }
    case ReqTag::kReassertLock: {
      ReassertLockReq b;
      b.file = FileId{r.u32()};
      b.mode = static_cast<LockMode>(r.u8());
      return RequestBody{b};
    }
  }
  return std::nullopt;
}

template <typename W>
void encode_reply(W& w, const ReplyBody& body) {
  std::visit(
      [&](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, OkReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kOk));
        } else if constexpr (std::is_same_v<T, ErrReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kErr));
          w.u8(static_cast<std::uint8_t>(b.code));
        } else if constexpr (std::is_same_v<T, OpenReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kOpen));
          w.u32(b.file.value());
          put_attr(w, b.attr);
          put_extents(w, b.extents);
        } else if constexpr (std::is_same_v<T, LockReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kLock));
          w.boolean(b.granted);
          w.u8(static_cast<std::uint8_t>(b.mode));
          w.u32(b.gen);
          w.u64(b.cookie);
        } else if constexpr (std::is_same_v<T, AttrReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kAttr));
          put_attr(w, b.attr);
          put_extents(w, b.extents);
        } else if constexpr (std::is_same_v<T, RegisterReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kRegister));
          w.u32(b.epoch);
          w.u32(b.incarnation);
        } else if constexpr (std::is_same_v<T, DataReply>) {
          w.u8(static_cast<std::uint8_t>(RepTag::kData));
          w.raw(b.data);
        }
      },
      body);
}

std::optional<ReplyBody> decode_reply(ByteReader& r) {
  const auto tag = static_cast<RepTag>(r.u8());
  switch (tag) {
    case RepTag::kOk:
      return ReplyBody{OkReply{}};
    case RepTag::kErr:
      return ReplyBody{ErrReply{static_cast<ErrorCode>(r.u8())}};
    case RepTag::kOpen: {
      OpenReply b;
      b.file = FileId{r.u32()};
      b.attr = get_attr(r);
      b.extents = get_extents(r);
      return ReplyBody{b};
    }
    case RepTag::kLock: {
      LockReply b;
      b.granted = r.boolean();
      b.mode = static_cast<LockMode>(r.u8());
      b.gen = r.u32();
      b.cookie = r.u64();
      return ReplyBody{b};
    }
    case RepTag::kAttr: {
      AttrReply b;
      b.attr = get_attr(r);
      b.extents = get_extents(r);
      return ReplyBody{b};
    }
    case RepTag::kRegister: {
      RegisterReply b;
      b.epoch = r.u32();
      b.incarnation = r.u32();
      return ReplyBody{b};
    }
    case RepTag::kData:
      return ReplyBody{DataReply{r.raw()}};
  }
  return std::nullopt;
}

template <typename W>
void encode_server(W& w, const ServerBody& body) {
  std::visit(
      [&](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, LockDemand>) {
          w.u8(static_cast<std::uint8_t>(SrvTag::kLockDemand));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.max_mode));
          w.u32(b.gen);
        } else if constexpr (std::is_same_v<T, LockGrant>) {
          w.u8(static_cast<std::uint8_t>(SrvTag::kLockGrant));
          w.u32(b.file.value());
          w.u8(static_cast<std::uint8_t>(b.mode));
          w.u32(b.gen);
          w.u64(b.cookie);
        }
      },
      body);
}

std::optional<ServerBody> decode_server(ByteReader& r) {
  const auto tag = static_cast<SrvTag>(r.u8());
  switch (tag) {
    case SrvTag::kLockDemand: {
      LockDemand b;
      b.file = FileId{r.u32()};
      b.max_mode = static_cast<LockMode>(r.u8());
      b.gen = r.u32();
      return ServerBody{b};
    }
    case SrvTag::kLockGrant: {
      LockGrant b;
      b.file = FileId{r.u32()};
      b.mode = static_cast<LockMode>(r.u8());
      b.gen = r.u32();
      b.cookie = r.u64();
      return ServerBody{b};
    }
  }
  return std::nullopt;
}

// Writer that only measures: drives the same encode_* templates as
// ByteWriter so encoded_size() can never drift from the real encoding.
class SizeCounter {
 public:
  void u8(std::uint8_t) { n_ += 1; }
  void u16(std::uint16_t) { n_ += 2; }
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void i64(std::int64_t) { n_ += 8; }
  void f64(double) { n_ += 8; }
  void boolean(bool) { n_ += 1; }
  void str(std::string_view s) { n_ += 4 + s.size(); }
  void raw(std::span<const std::uint8_t> data) { n_ += 4 + data.size(); }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_{0};
};

template <typename W>
void encode_frame(W& w, const Frame& frame) {
  w.u8(static_cast<std::uint8_t>(frame.kind));
  w.u32(frame.sender.value());
  w.u64(frame.msg_id.value());
  w.u32(frame.epoch);
  w.u32(frame.incarnation);
  switch (frame.kind) {
    case FrameKind::kRequest:
      encode_request(w, std::get<RequestBody>(frame.body));
      break;
    case FrameKind::kAck:
      encode_reply(w, std::get<ReplyBody>(frame.body));
      break;
    case FrameKind::kServerMsg:
      encode_server(w, std::get<ServerBody>(frame.body));
      break;
    case FrameKind::kNack:
    case FrameKind::kClientAck:
      break;  // no body
  }
}

bool valid_mode(LockMode m) {
  return m == LockMode::kNone || m == LockMode::kShared || m == LockMode::kExclusive;
}

bool body_modes_valid(const Frame& f) {
  // Reject out-of-range lock modes smuggled in by a corrupted datagram.
  if (const auto* req = std::get_if<RequestBody>(&f.body)) {
    if (const auto* l = std::get_if<LockReq>(req)) return valid_mode(l->mode);
    if (const auto* u = std::get_if<UnlockReq>(req)) return valid_mode(u->downgrade_to);
    if (const auto* d = std::get_if<DemandDoneReq>(req)) return valid_mode(d->new_mode);
    if (const auto* ra = std::get_if<ReassertLockReq>(req)) return valid_mode(ra->mode);
  }
  if (const auto* rep = std::get_if<ReplyBody>(&f.body)) {
    if (const auto* l = std::get_if<LockReply>(rep)) return valid_mode(l->mode);
  }
  if (const auto* srv = std::get_if<ServerBody>(&f.body)) {
    if (const auto* d = std::get_if<LockDemand>(srv)) return valid_mode(d->max_mode);
    if (const auto* g = std::get_if<LockGrant>(srv)) return valid_mode(g->mode);
  }
  return true;
}

}  // namespace

std::size_t encoded_size(const Frame& frame) {
  SizeCounter c;
  encode_frame(c, frame);
  return c.size();
}

void encode_into(const Frame& frame, Bytes& out) {
  out.clear();
  out.reserve(encoded_size(frame));
  ByteWriter w(out);
  encode_frame(w, frame);
}

Bytes encode(const Frame& frame) {
  Bytes out;
  encode_into(frame, out);
  return out;
}

std::optional<Frame> decode(const Bytes& datagram) {
  ByteReader r(datagram);
  Frame f;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 5) {
    return std::nullopt;
  }
  f.kind = static_cast<FrameKind>(kind);
  f.sender = NodeId{r.u32()};
  f.msg_id = MsgId{r.u64()};
  f.epoch = r.u32();
  f.incarnation = r.u32();
  if (!r.ok()) {
    return std::nullopt;
  }

  switch (f.kind) {
    case FrameKind::kRequest: {
      auto body = decode_request(r);
      if (!body) return std::nullopt;
      f.body = std::move(*body);
      break;
    }
    case FrameKind::kAck: {
      auto body = decode_reply(r);
      if (!body) return std::nullopt;
      f.body = std::move(*body);
      break;
    }
    case FrameKind::kServerMsg: {
      auto body = decode_server(r);
      if (!body) return std::nullopt;
      f.body = std::move(*body);
      break;
    }
    case FrameKind::kNack:
    case FrameKind::kClientAck:
      break;
  }
  if (!r.ok() || !r.at_end() || !body_modes_valid(f)) {
    return std::nullopt;
  }
  return f;
}

const char* request_name(const RequestBody& body) {
  return std::visit(
      [](const auto& b) -> const char* {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, OpenReq>) return "open";
        else if constexpr (std::is_same_v<T, CloseReq>) return "close";
        else if constexpr (std::is_same_v<T, LockReq>) return "lock";
        else if constexpr (std::is_same_v<T, UnlockReq>) return "unlock";
        else if constexpr (std::is_same_v<T, DemandDoneReq>) return "demand-done";
        else if constexpr (std::is_same_v<T, GetAttrReq>) return "getattr";
        else if constexpr (std::is_same_v<T, SetSizeReq>) return "setsize";
        else if constexpr (std::is_same_v<T, KeepAliveReq>) return "keepalive";
        else if constexpr (std::is_same_v<T, RegisterReq>) return "register";
        else if constexpr (std::is_same_v<T, RenewObjReq>) return "renew-obj";
        else if constexpr (std::is_same_v<T, ReadDataReq>) return "read-data";
        else if constexpr (std::is_same_v<T, WriteDataReq>) return "write-data";
        else if constexpr (std::is_same_v<T, ReassertLockReq>) return "reassert-lock";
        else return "?";
      },
      body);
}

}  // namespace stank::protocol
