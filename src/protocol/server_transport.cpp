#include "protocol/server_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace stank::protocol {

ServerTransport::ServerTransport(net::ControlNet& net, sim::NodeClock& clock, NodeId self,
                                 metrics::Counters& counters, TransportConfig cfg)
    : net_(&net), clock_(&clock), self_(self), counters_(&counters), cfg_(cfg) {}

ServerTransport::~ServerTransport() {
  if (started_) {
    stop();
  }
}

void ServerTransport::start() {
  STANK_ASSERT(!started_);
  STANK_ASSERT_MSG(on_request != nullptr, "wire on_request before start()");
  started_ = true;
  net_->attach(self_, [this](NodeId from, const Bytes& dg) { handle_datagram(from, dg); });
}

void ServerTransport::stop() {
  if (!started_) return;
  started_ = false;
  net_->detach(self_);
  for (auto& [id, m] : out_msgs_) {
    clock_->cancel(m.timer);
  }
  out_msgs_.clear();
}

ServerTransport::Session& ServerTransport::session(NodeId client, std::uint32_t epoch) {
  const std::uint64_t key = (static_cast<std::uint64_t>(client.value()) << 32) | epoch;
  return sessions_[key];
}

void ServerTransport::handle_datagram(NodeId from, const Bytes& datagram) {
  auto frame = decode(datagram);
  if (!frame) {
    STANK_WARN("server " << self_ << ": undecodable datagram from " << from);
    return;
  }
  switch (frame->kind) {
    case FrameKind::kRequest:
      handle_request(*frame);
      return;
    case FrameKind::kClientAck: {
      auto it = out_msgs_.find(frame->msg_id);
      if (it == out_msgs_.end()) {
        return;  // duplicate ACK
      }
      OutMsg m = std::move(it->second);
      clock_->cancel(m.timer);
      out_msgs_.erase(it);
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kServerMsgAcked,
                     frame->msg_id.value(), m.client.value());
      }
      if (m.done) {
        m.done(true);
      }
      return;
    }
    case FrameKind::kAck:
    case FrameKind::kNack:
    case FrameKind::kServerMsg:
      STANK_WARN("server " << self_ << ": unexpected frame kind from " << from);
      return;
  }
}

void ServerTransport::handle_request(const Frame& f) {
  Session& s = session(f.sender, f.epoch);
  if (std::optional<Frame>* cached = s.executed.find(f.msg_id)) {
    if (cached->has_value()) {
      // Retransmission of a completed request: re-send the cached reply,
      // unless the ACK gate has closed in the meantime — then the client
      // must see a NACK, not a lease-renewing ACK.
      Frame reply = **cached;
      if (reply.kind == FrameKind::kAck && may_ack && !may_ack(f.sender)) {
        reply.kind = FrameKind::kNack;
        reply.body = std::monostate{};
      }
      ++counters_->reply_cache_hits;
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kReqReplay,
                     f.msg_id.value(), f.sender.value());
      }
      send_reply_frame(f.sender, reply);
    }
    // else: still executing; the eventual reply will go out once.
    return;
  }

  s.executed.try_emplace(f.msg_id);
  if (s.ring.size() < cfg_.reply_cache_size) {
    s.ring.push_back(f.msg_id);
  } else {
    // Recycle the oldest ring slot in place: no deque churn, no allocation
    // once the session has seen reply_cache_size requests.
    s.executed.erase(s.ring[s.ring_pos]);
    s.ring[s.ring_pos] = f.msg_id;
    s.ring_pos = (s.ring_pos + 1) % s.ring.size();
  }

  if (rec_ != nullptr) {
    rec_->record(clock_->engine().now(), self_, obs::EventKind::kReqRecv, f.msg_id.value(),
                 f.sender.value(),
                 static_cast<std::uint16_t>(std::get<RequestBody>(f.body).index()));
  }
  Responder r(this, f.sender, f.msg_id, f.epoch);
  on_request(f.sender, f.epoch, std::get<RequestBody>(f.body), r);
}

void ServerTransport::Responder::ack(ReplyBody body) const {
  t_->respond(client_, id_, epoch_, true, std::move(body));
}

void ServerTransport::Responder::nack() const {
  t_->respond(client_, id_, epoch_, false, ReplyBody{});
}

void ServerTransport::respond(NodeId client, MsgId id, std::uint32_t epoch, bool positive,
                              ReplyBody body) {
  Frame f;
  f.sender = self_;
  f.msg_id = id;
  f.epoch = epoch;
  f.incarnation = incarnation_;
  // The ACK gate is enforced HERE, unconditionally, so no server-logic bug
  // can leak a lease-renewing ACK to a client being timed out.
  if (positive && may_ack && !may_ack(client)) {
    positive = false;
  }
  if (positive) {
    f.kind = FrameKind::kAck;
    f.body = std::move(body);
  } else {
    f.kind = FrameKind::kNack;
  }

  Session& s = session(client, epoch);
  if (std::optional<Frame>* cached = s.executed.find(id)) {
    STANK_ASSERT_MSG(!cached->has_value(), "double reply to one request");
    *cached = f;
  }
  send_reply_frame(client, f);
}

void ServerTransport::send_reply_frame(NodeId client, const Frame& f) {
  if (f.kind == FrameKind::kAck) {
    ++counters_->acks_sent;
  } else {
    ++counters_->nacks_sent;
  }
  if (rec_ != nullptr) {
    rec_->record(clock_->engine().now(), self_,
                 f.kind == FrameKind::kAck ? obs::EventKind::kAckSend
                                           : obs::EventKind::kNackSend,
                 f.msg_id.value(), client.value());
  }
  send_frame(client, f);
}

void ServerTransport::send_frame(NodeId to, const Frame& f) {
  // Encode into a pooled buffer (exact-size reserve into recycled capacity),
  // then move the bytes into the net: zero allocations per datagram once the
  // pool is warm, zero copies.
  Bytes buf = net::ControlNet::take_buf();
  encode_into(f, buf);
  net_->send(self_, to, std::move(buf));
}

void ServerTransport::send_server_msg(NodeId client, std::uint32_t epoch, ServerBody body,
                                      std::function<void(bool)> done) {
  STANK_ASSERT_MSG(started_, "send_server_msg on stopped transport");
  const MsgId id{next_msg_++};
  OutMsg m;
  m.client = client;
  m.frame.kind = FrameKind::kServerMsg;
  m.frame.sender = self_;
  m.frame.msg_id = id;
  m.frame.epoch = epoch;
  m.frame.incarnation = incarnation_;
  m.frame.body = std::move(body);
  m.done = std::move(done);
  out_msgs_.emplace(id, std::move(m));
  transmit_server_msg(id);
}

void ServerTransport::transmit_server_msg(MsgId id) {
  auto it = out_msgs_.find(id);
  STANK_ASSERT(it != out_msgs_.end());
  OutMsg& m = it->second;

  ++counters_->server_msgs_sent;
  if (m.transmissions > 0) {
    ++counters_->retransmissions;
  }
  if (rec_ != nullptr) {
    if (m.transmissions == 0) {
      rec_->record(clock_->engine().now(), self_, obs::EventKind::kServerMsgSend, id.value(),
                   m.client.value(),
                   static_cast<std::uint16_t>(std::get<ServerBody>(m.frame.body).index()));
    } else {
      rec_->record(clock_->engine().now(), self_, obs::EventKind::kServerMsgRetransmit,
                   id.value(), m.client.value(),
                   static_cast<std::uint16_t>(m.transmissions));
    }
  }
  ++m.transmissions;
  send_frame(m.client, m.frame);

  m.timer = clock_->schedule_after(cfg_.retransmit_timeout, [this, id]() {
    auto it2 = out_msgs_.find(id);
    if (it2 == out_msgs_.end()) {
      return;  // ACKed meanwhile
    }
    if (it2->second.transmissions > cfg_.max_retries) {
      OutMsg m2 = std::move(it2->second);
      out_msgs_.erase(it2);
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kDeliveryFailure,
                     id.value(), m2.client.value());
      }
      if (m2.done) {
        m2.done(false);  // delivery failure
      }
      return;
    }
    transmit_server_msg(id);
  });
}

void ServerTransport::cancel_server_msgs(NodeId client) {
  for (auto it = out_msgs_.begin(); it != out_msgs_.end();) {
    if (it->second.client == client) {
      clock_->cancel(it->second.timer);
      it = out_msgs_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace stank::protocol
