// Storage Tank control-network message types.
//
// Clients talk to servers for metadata and locks only; data never crosses
// this network. Every client-initiated request is acknowledged (ACK,
// carrying a reply body) or negatively acknowledged (NACK — the server has
// begun timing out the client's lease, section 3.3). Server-initiated
// messages (lock demands) require a transport-level client ACK; failure to
// receive one is the delivery error that makes the server declare the client
// suspect.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "common/strong_id.hpp"
#include "storage/io.hpp"

namespace stank::protocol {

// Data-lock modes. Shared permits cached reads; Exclusive permits write-back
// caching and direct writes to the SAN.
enum class LockMode : std::uint8_t { kNone = 0, kShared = 1, kExclusive = 2 };

[[nodiscard]] constexpr const char* to_string(LockMode m) {
  switch (m) {
    case LockMode::kNone: return "none";
    case LockMode::kShared: return "shared";
    case LockMode::kExclusive: return "exclusive";
  }
  return "?";
}

// True if two locks may be held simultaneously by different clients.
[[nodiscard]] constexpr bool compatible(LockMode a, LockMode b) {
  if (a == LockMode::kNone || b == LockMode::kNone) return true;
  return a == LockMode::kShared && b == LockMode::kShared;
}

struct FileAttr {
  std::uint64_t size{0};       // bytes
  std::uint64_t mtime_ns{0};   // server-local modification stamp
  std::uint32_t meta_version{0};
};

// A run of blocks on one disk. File data lives on shared SAN disks; the
// extent list is the metadata clients need to do direct I/O.
struct Extent {
  DiskId disk;
  storage::BlockAddr start{0};
  std::uint32_t count{0};
};

// ---------------------------------------------------------------------------
// Client -> server request bodies.

struct OpenReq {
  std::string path;
  bool create{false};
};
struct CloseReq {
  FileId file;
};
// Acquire or upgrade a data lock.
struct LockReq {
  FileId file;
  LockMode mode{LockMode::kShared};
};
// Voluntarily release or downgrade. Carries the lock generation the client
// believes it holds; the server ignores the request if a newer grant is in
// flight (see "Lock generations" below). Also echoes the grant cookie:
// generations are small guessable counters, so without the cookie a client
// could forge a release for a grant it never received — the server would
// free the lock while the real grant is still in flight, and the holder
// would later write under a lock the server had already re-granted
// (found by tools/fuzz_safety --byzantine, forge-lock-claims). The cookie is
// an unguessable per-grant secret only the grant's recipient knows, so a
// release proves receipt of the grant it renounces.
struct UnlockReq {
  FileId file;
  LockMode downgrade_to{LockMode::kNone};
  std::uint32_t gen{0};
  std::uint64_t cookie{0};
};
// Client's protocol-level answer to a LockDemand, sent after it has flushed
// dirty data covered by the demanded lock. Echoes the demand's generation so
// a compliance that crossed a newer grant in flight is discarded, and the
// grant cookie so compliance cannot be forged (see UnlockReq).
struct DemandDoneReq {
  FileId file;
  LockMode new_mode{LockMode::kNone};
  std::uint32_t gen{0};
  std::uint64_t cookie{0};
};
struct GetAttrReq {
  FileId file;
};
// Grow (allocating blocks) or — with truncate set — shrink a file. Without
// truncate the request is grow-only: a client holding stale attributes must
// not be able to shrink a file another client extended.
struct SetSizeReq {
  FileId file;
  std::uint64_t new_size{0};
  bool truncate{false};
};
// The paper's NULL message: encodes no file-system or lock operation, exists
// solely to solicit an ACK that renews the lease (lease phase 2).
struct KeepAliveReq {};
// (Re-)establish a session. A client whose lease expired must re-register
// under a fresh epoch before the server will serve it again.
struct RegisterReq {};
// V-system-style per-object lease renewal (baseline only): keeps ONE cached
// object alive. Storage Tank never sends these; the comparison is table T1.
struct RenewObjReq {
  FileId file;
};
// Re-establish a lock after a SERVER failure (paper section 6: client-driven
// lock reassertion). Valid only during the restarted server's grace period;
// the client's cache stays intact if the reassertion succeeds.
struct ReassertLockReq {
  FileId file;
  LockMode mode{LockMode::kNone};
};
// Data ops shipped through the server (traditional client/server baseline,
// table T5, and the NFS-style polling baseline). Storage Tank clients do
// direct SAN I/O instead.
struct ReadDataReq {
  FileId file;
  std::uint64_t offset{0};
  std::uint32_t len{0};
};
struct WriteDataReq {
  FileId file;
  std::uint64_t offset{0};
  Bytes data;
};

using RequestBody =
    std::variant<OpenReq, CloseReq, LockReq, UnlockReq, DemandDoneReq, GetAttrReq, SetSizeReq,
                 KeepAliveReq, RegisterReq, RenewObjReq, ReadDataReq, WriteDataReq,
                 ReassertLockReq>;

// ---------------------------------------------------------------------------
// Server -> client reply bodies (carried inside an ACK).

struct OkReply {};
struct ErrReply {
  ErrorCode code{ErrorCode::kInvalidArgument};
};
struct OpenReply {
  FileId file;
  FileAttr attr;
  std::vector<Extent> extents;
};
struct LockReply {
  bool granted{false};
  LockMode mode{LockMode::kNone};
  std::uint32_t gen{0};        // lock generation of this grant (granted only)
  std::uint64_t cookie{0};     // per-grant secret to echo in releases (granted only)
};
struct AttrReply {
  FileAttr attr;
  std::vector<Extent> extents;
};
struct RegisterReply {
  std::uint32_t epoch{0};
  // Bumped every time the server restarts; a change tells the client the
  // server lost its lock state and reassertion is in order.
  std::uint32_t incarnation{1};
};
struct DataReply {
  Bytes data;
};

using ReplyBody =
    std::variant<OkReply, ErrReply, OpenReply, LockReply, AttrReply, RegisterReply, DataReply>;

// ---------------------------------------------------------------------------
// Server-initiated bodies (require a transport-level client ACK).
//
// Lock generations: the control network is a datagram network — demands,
// grants and compliance messages for the same (client, file) lock can cross
// in flight. Every grant the server issues bumps a per-(client, file)
// generation; demands name the generation they revoke and compliance echoes
// it. A message carrying a stale generation is discarded by whichever side
// receives it, and one carrying a future generation is deferred until the
// intervening grant arrives. This keeps both ends' view of the lock state
// convergent without assuming ordered delivery.

// Demand that the holder downgrade its lock on `file` to at most `max_mode`,
// flushing dirty data first. The client answers with DemandDoneReq.
struct LockDemand {
  FileId file;
  LockMode max_mode{LockMode::kNone};
  std::uint32_t gen{0};  // generation of the holder's lock being demanded
};

// Grants a previously queued lock request (LockReply{granted=false}) once
// conflicting holders have been demanded away.
struct LockGrant {
  FileId file;
  LockMode mode{LockMode::kNone};
  std::uint32_t gen{0};
  std::uint64_t cookie{0};  // per-grant secret to echo in releases
};

using ServerBody = std::variant<LockDemand, LockGrant>;

// ---------------------------------------------------------------------------
// Transport frame.

enum class FrameKind : std::uint8_t {
  kRequest = 1,    // client -> server, body = RequestBody
  kAck = 2,        // server -> client, answers msg_id, body = ReplyBody
  kNack = 3,       // server -> client, answers msg_id, no body
  kServerMsg = 4,  // server -> client, body = ServerBody
  kClientAck = 5,  // client -> server, answers msg_id, no body
};

struct Frame {
  FrameKind kind{FrameKind::kRequest};
  NodeId sender;
  MsgId msg_id;            // fresh id for kRequest/kServerMsg; echoed id otherwise
  std::uint32_t epoch{0};  // client session epoch
  // Server incarnation the frame was issued under (server-originated frames
  // only; clients send 0). Epoch numbers restart at 1 in every incarnation
  // and server msg_ids restart on every reboot, so a replayed pre-restart
  // server message can carry a perfectly current-looking (epoch, msg_id)
  // pair — the incarnation stamp is what lets the client reject it.
  std::uint32_t incarnation{0};
  std::variant<std::monostate, RequestBody, ReplyBody, ServerBody> body;
};

[[nodiscard]] constexpr const char* to_string(FrameKind k) {
  switch (k) {
    case FrameKind::kRequest: return "request";
    case FrameKind::kAck: return "ack";
    case FrameKind::kNack: return "nack";
    case FrameKind::kServerMsg: return "server-msg";
    case FrameKind::kClientAck: return "client-ack";
  }
  return "?";
}

// Human-readable tag of a request body, for traces.
[[nodiscard]] const char* request_name(const RequestBody& body);

}  // namespace stank::protocol
