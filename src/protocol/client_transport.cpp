#include "protocol/client_transport.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace stank::protocol {

ClientTransport::ClientTransport(net::ControlNet& net, sim::NodeClock& clock, NodeId self,
                                 NodeId server, metrics::Counters& counters, TransportConfig cfg)
    : net_(&net), clock_(&clock), self_(self), server_(server), counters_(&counters), cfg_(cfg) {}

ClientTransport::~ClientTransport() {
  if (started_) {
    stop();
  }
}

void ClientTransport::start() {
  STANK_ASSERT(!started_);
  started_ = true;
  net_->attach(self_, [this](NodeId from, const Bytes& dg) { handle_datagram(from, dg); });
}

void ClientTransport::stop() {
  if (!started_) return;
  started_ = false;
  net_->detach(self_);
  for (auto& [id, p] : pending_) {
    clock_->cancel(p.timer);
  }
  pending_.clear();
}

MsgId ClientTransport::send_request(RequestBody body, ReplyHandler handler, bool lease_only) {
  STANK_ASSERT_MSG(started_, "send_request on stopped transport");
  STANK_ASSERT(handler != nullptr);
  const MsgId id{next_msg_++};
  Pending p;
  p.body = std::move(body);
  p.handler = std::move(handler);
  p.first_send = clock_->now();
  p.lease_only = lease_only;
  p.epoch = epoch_;
  p.session_gen = session_gen_;
  pending_.insert(id, std::move(p));
  transmit(id);
  return id;
}

void ClientTransport::abandon_pending() {
  for (auto& [id, p] : pending_) {
    clock_->cancel(p.timer);
  }
  pending_.clear();
}

void ClientTransport::transmit(MsgId id) {
  Pending* found = pending_.find(id);
  STANK_ASSERT(found != nullptr);
  Pending& p = *found;

  Frame f;
  f.kind = FrameKind::kRequest;
  f.sender = self_;
  f.msg_id = id;
  f.epoch = p.epoch;
  f.body = p.body;

  ++counters_->requests_sent;
  if (p.transmissions > 0) {
    ++counters_->retransmissions;
  }
  if (p.lease_only) {
    ++counters_->lease_only_msgs;
  }
  if (rec_ != nullptr) {
    if (p.transmissions == 0) {
      rec_->record(clock_->engine().now(), self_, obs::EventKind::kReqSend, id.value(),
                   p.body.index());
    } else {
      rec_->record(clock_->engine().now(), self_, obs::EventKind::kReqRetransmit, id.value(),
                   static_cast<std::uint64_t>(p.transmissions));
    }
  }
  ++p.transmissions;
  send_frame(server_, f);
  arm_retry(id);
}

void ClientTransport::send_frame(NodeId to, const Frame& f) {
  // Encode into a pooled buffer (exact-size reserve into recycled capacity),
  // then move the bytes into the net: zero allocations per datagram once the
  // pool is warm, zero copies.
  Bytes buf = net::ControlNet::take_buf();
  encode_into(f, buf);
  net_->send(self_, to, std::move(buf));
}

void ClientTransport::arm_retry(MsgId id) {
  Pending& p = *pending_.find(id);
  p.timer = clock_->schedule_after(cfg_.retransmit_timeout, [this, id]() {
    Pending* found = pending_.find(id);
    if (found == nullptr) {
      return;  // already answered
    }
    if (found->transmissions > cfg_.max_retries) {
      // Delivery failure: report timeout and give up.
      Pending p2 = std::move(*found);
      pending_.erase(id);
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kReqTimeout, id.value(),
                     static_cast<std::uint64_t>(p2.transmissions));
      }
      ReplyEvent ev;
      ev.outcome = ReplyOutcome::kTimeout;
      ev.first_send = p2.first_send;
      p2.handler(ev);
      return;
    }
    transmit(id);
  });
}

void ClientTransport::handle_datagram(NodeId from, const Bytes& datagram) {
  auto frame = decode(datagram);
  if (!frame) {
    STANK_WARN("client " << self_ << ": undecodable datagram from " << from);
    return;
  }
  const Frame& f = *frame;

  switch (f.kind) {
    case FrameKind::kAck: {
      Pending* found = pending_.find(f.msg_id);
      if (found == nullptr) {
        return;  // duplicate ACK for an already-completed request
      }
      if (found->epoch != f.epoch) {
        // Reply from a stale session: pretend it never arrived so the
        // retransmit/timeout machinery still resolves this request.
        return;
      }
      Pending p = std::move(*found);
      clock_->cancel(p.timer);
      pending_.erase(f.msg_id);
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kAckRecv, f.msg_id.value());
        rec_->span(obs::SpanKind::kRequestRtt, (clock_->now() - p.first_send).millis());
      }
      // A kStaleSession error comes from a NEW server incarnation that holds
      // no session — and no locks — for this client. It must be detected
      // BEFORE the opportunistic renewal: extending the lease on its ACK
      // would keep cached data live under locks the new server is free to
      // grant elsewhere.
      bool stale_session = false;
      if (const auto* body = std::get_if<ReplyBody>(&f.body)) {
        if (const auto* err = std::get_if<ErrReply>(body)) {
          stale_session = err->code == ErrorCode::kStaleSession;
        }
      }
      // Session-level signals (stale-session teardown, lease renewal) are
      // only meaningful for requests sent under the CURRENT registration.
      // A delayed reply to a request from a prior session can carry the
      // same epoch number (incarnations renumber from 1); tearing down or
      // renewing on it would act on a contract that no longer exists.
      const bool current_session = p.session_gen == session_gen_;
      if (stale_session) {
        if (current_session && on_stale_session) {
          on_stale_session();
        }
      } else if (current_session && on_ack) {
        // Opportunistic lease renewal fires before the handler so the
        // handler observes a renewed lease.
        on_ack(p.first_send);
      }
      ReplyEvent ev;
      ev.outcome = ReplyOutcome::kAck;
      ev.body = std::get<ReplyBody>(f.body);
      ev.first_send = p.first_send;
      p.handler(ev);
      return;
    }
    case FrameKind::kNack: {
      Pending* found = pending_.find(f.msg_id);
      if (found == nullptr) {
        // Duplicated or delayed NACK for a request that no longer exists —
        // possibly from before a crash/recovery. Acting on it would re-latch
        // a freshly re-registered client into phase 3 forever.
        return;
      }
      if (found->epoch != f.epoch) {
        // NACK from a stale session (pre-recovery epoch): ignore, exactly
        // like a stale ACK; retransmission/timeout resolves the request.
        return;
      }
      Pending p = std::move(*found);
      clock_->cancel(p.timer);
      pending_.erase(f.msg_id);
      if (rec_ != nullptr) {
        rec_->record(clock_->engine().now(), self_, obs::EventKind::kNackRecv, f.msg_id.value());
        rec_->span(obs::SpanKind::kRequestRtt, (clock_->now() - p.first_send).millis());
      }
      // A NACK means the server is timing out our lease regardless of which
      // of our current-epoch requests it answers — but only if the request
      // really belongs to the current registration (epoch numbers repeat
      // across incarnations; session_gen does not).
      if (p.session_gen == session_gen_ && on_nack) {
        on_nack();
      }
      ReplyEvent ev;
      ev.outcome = ReplyOutcome::kNack;
      ev.first_send = p.first_send;
      p.handler(ev);
      return;
    }
    case FrameKind::kServerMsg: {
      if (wiretap_server_msg) {
        wiretap_server_msg(datagram);
      }
      note_server_msg(f);
      return;
    }
    case FrameKind::kRequest:
    case FrameKind::kClientAck:
      STANK_WARN("client " << self_ << ": unexpected frame kind");
      return;
  }
}

void ClientTransport::note_server_msg(const Frame& f) {
  if (f.incarnation != incarnation_) {
    // Stamped by a different server incarnation than the one this session
    // registered with. The epoch and msg_id checks below cannot catch this:
    // both sequences restart across server reboots, so a datagram captured
    // before a restart and replayed into the new session can collide with
    // CURRENT numbers. Drop without ACKing — the frame is from a session
    // that no longer exists.
    return;
  }
  if (accept_server_msg && !accept_server_msg(f.epoch)) {
    // Going silent is deliberate: the server's retransmissions will exhaust
    // and it will start the lease timeout for us.
    return;
  }

  // Transport-level ACK (idempotent; re-ACK duplicates in case our earlier
  // ACK was lost).
  Frame ack;
  ack.kind = FrameKind::kClientAck;
  ack.sender = self_;
  ack.msg_id = f.msg_id;
  ack.epoch = f.epoch;
  ++counters_->client_acks_sent;
  send_frame(server_, ack);

  // Dedup = bounded window + monotone low-water mark, reset per epoch.
  // Server msg ids are assigned monotonically at the sender, so an id at or
  // below the highest id ever evicted from the window is a duplicate even
  // after >reply_cache_size intervening messages pushed it out of the set —
  // the hole a bounded window alone leaves open to late duplicates. (A
  // genuinely fresh message could only be misjudged if reordering let
  // reply_cache_size newer server msgs overtake it, far beyond any real
  // spike; and the server's retry-then-suspect path bounds the damage to a
  // delivery failure, never a safety violation.)
  if (f.msg_id.value() <= seen_low_water_ || seen_server_msgs_.contains(f.msg_id)) {
    // Duplicate (within the window or beyond it): ACKed again, not
    // re-delivered.
    if (rec_ != nullptr) {
      rec_->record(clock_->engine().now(), self_, obs::EventKind::kServerMsgDup,
                   f.msg_id.value());
    }
    return;
  }
  if (rec_ != nullptr) {
    rec_->record(clock_->engine().now(), self_, obs::EventKind::kServerMsgRecv, f.msg_id.value());
  }
  if (cfg_.reply_cache_size == 0) {
    // Degenerate window: every id is evicted the instant it is seen, so the
    // low-water mark alone carries the dedup.
    seen_low_water_ = std::max(seen_low_water_, f.msg_id.value());
  } else if (seen_order_.size() < cfg_.reply_cache_size) {
    seen_server_msgs_.insert(f.msg_id);
    seen_order_.push_back(f.msg_id);
  } else {
    // Window full: recycle the oldest ring slot in place. Steady state makes
    // zero allocations here — the ring and the set both sit at their caps.
    MsgId& oldest = seen_order_[seen_pos_];
    seen_low_water_ = std::max(seen_low_water_, oldest.value());
    seen_server_msgs_.erase(oldest);
    seen_server_msgs_.insert(f.msg_id);
    oldest = f.msg_id;
    seen_pos_ = (seen_pos_ + 1) % seen_order_.size();
  }

  if (on_server_msg) {
    on_server_msg(std::get<ServerBody>(f.body));
  }
}

}  // namespace stank::protocol
