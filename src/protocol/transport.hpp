// Shared transport configuration and reply-event types.
#pragma once

#include <functional>

#include "common/move_fn.hpp"
#include "protocol/messages.hpp"
#include "sim/time.hpp"

namespace stank::protocol {

struct TransportConfig {
  // Retransmit period, measured on the sender's own clock.
  sim::LocalDuration retransmit_timeout{sim::local_millis(500)};
  // Total transmissions = 1 + max_retries before a delivery failure is
  // reported. The paper: "if a server attempts to send a message that
  // requires an ACK ... and the client does not respond, the server assumes
  // the client to be failed."
  int max_retries{3};
  // Reply-cache capacity per client session (at-most-once dedup window).
  std::size_t reply_cache_size{128};
};

enum class ReplyOutcome : std::uint8_t { kAck, kNack, kTimeout };

// Delivered to the requester when its request concludes.
struct ReplyEvent {
  ReplyOutcome outcome{ReplyOutcome::kTimeout};
  ReplyBody body;              // meaningful only for kAck
  // Local time at which the FIRST transmission of this request left the
  // client. This is the paper's t_C1: the lease obtained by the eventual ACK
  // is valid for [t_C1, t_C1 + tau). Using the first transmission is the
  // conservative choice that keeps t_C1 <= t_S2 for whichever copy the
  // server actually acknowledged.
  sim::LocalTime first_send{};
};

// Move-only with a generous inline buffer: reply continuations capture a
// this-pointer, ids, and sometimes a chained user callback — std::function
// would heap-allocate and force copyable captures (shared_ptr wrapping) on
// the per-request path.
using ReplyHandler = MoveFn<void(const ReplyEvent&)>;

}  // namespace stank::protocol
