// Client side of the control-network session: request/reply with
// retransmission, at-most-once ids, and delivery of server-initiated
// messages (which it transport-ACKs).
//
// Lease integration points (used by core::ClientLeaseAgent):
//  * on_ack fires for every ACK of a client-initiated request, carrying the
//    request's first-transmission local time — the opportunistic renewal of
//    section 3.1.
//  * on_nack fires when the server negatively acknowledges — the client has
//    missed a message and must treat its cache as suspect (section 3.3).
//  * deliver_server_msgs gates whether incoming server messages are ACKed at
//    all; a client that knows its lease lapsed must go silent so the server
//    path converges on steal + fence.
#pragma once

#include <functional>
#include <vector>

#include "common/flat_map.hpp"
#include "metrics/counters.hpp"
#include "net/control_net.hpp"
#include "obs/recorder.hpp"
#include "protocol/codec.hpp"
#include "protocol/transport.hpp"
#include "sim/clock.hpp"

namespace stank::protocol {

class ClientTransport {
 public:
  ClientTransport(net::ControlNet& net, sim::NodeClock& clock, NodeId self, NodeId server,
                  metrics::Counters& counters, TransportConfig cfg = {});
  ~ClientTransport();

  ClientTransport(const ClientTransport&) = delete;
  ClientTransport& operator=(const ClientTransport&) = delete;

  // Attach to / detach from the network. Detaching models a crash: all
  // pending requests are dropped without callbacks.
  void start();
  void stop();

  // Sends a request; the handler always fires exactly once (ACK, NACK, or
  // timeout after retries). lease_only marks pure keep-alives for metrics.
  MsgId send_request(RequestBody body, ReplyHandler handler, bool lease_only = false);

  // Abandons every pending request without invoking handlers. Used when the
  // lease expires and all outstanding state is invalid anyway.
  void abandon_pending();
  [[nodiscard]] std::size_t pending_requests() const { return pending_.size(); }

  // Hooks (owner wires these before start()).
  std::function<void(sim::LocalTime first_send)> on_ack;
  std::function<void()> on_nack;
  // Fired when any reply carries ErrReply{kStaleSession}: the server
  // restarted and lost this session (re-register + reassert, section 6).
  std::function<void()> on_stale_session;
  std::function<void(const ServerBody&)> on_server_msg;
  // Consulted before ACKing/delivering a server-initiated message; default
  // accepts. Return false to drop silently (e.g. stale epoch, expired lease).
  std::function<bool(std::uint32_t epoch)> accept_server_msg;
  // Observes the raw bytes of every decodable server-initiated datagram,
  // BEFORE any gating. This models an on-path recorder: the byzantine-client
  // harness uses it to capture grants/demands for later replay via
  // inject_datagram(). Null in honest operation.
  std::function<void(const Bytes&)> wiretap_server_msg;

  // Feeds a raw datagram through the receive path as if the network had just
  // delivered it from the server. Adversarial-replay hook: everything the
  // transport's gates would do to a real duplicate happens to this one too.
  void inject_datagram(const Bytes& datagram) { handle_datagram(server_, datagram); }

  void set_session(std::uint32_t e, std::uint32_t incarnation) {
    if (e != epoch_ || incarnation != incarnation_) {
      // New session epoch: the server-msg dedup window is keyed per epoch.
      // The new incarnation's id sequence is unrelated to the old one, so
      // both the window and its low-water mark start over.
      seen_server_msgs_.clear();
      seen_order_.clear();
      seen_pos_ = 0;
      seen_low_water_ = 0;
    }
    // Always a new session: epoch NUMBERS collide across server
    // incarnations (each numbers from 1), so requests are additionally
    // stamped with a local generation that never repeats.
    ++session_gen_;
    epoch_ = e;
    incarnation_ = incarnation;
  }
  void set_epoch(std::uint32_t e) { set_session(e, incarnation_); }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] NodeId server() const { return server_; }

  // Attaches (or detaches, with nullptr) the flight recorder. Null in steady
  // state: every instrumentation site is then a single predictable branch.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

 private:
  struct Pending {
    RequestBody body;
    ReplyHandler handler;
    sim::LocalTime first_send;
    int transmissions{0};
    sim::TimerId timer{0};
    bool lease_only{false};
    std::uint32_t epoch{0};
    std::uint64_t session_gen{0};
  };

  void transmit(MsgId id);
  void arm_retry(MsgId id);
  void send_frame(NodeId to, const Frame& f);
  void handle_datagram(NodeId from, const Bytes& datagram);
  void note_server_msg(const Frame& f);

  net::ControlNet* net_;
  sim::NodeClock* clock_;
  NodeId self_;
  NodeId server_;
  metrics::Counters* counters_;
  obs::Recorder* rec_{nullptr};
  TransportConfig cfg_;
  std::uint32_t epoch_{0};
  // Server incarnation of the current registration. Server-initiated
  // messages stamped with any other incarnation are replays of a dead
  // session (possibly injected by an adversary) and are dropped un-ACKed.
  std::uint32_t incarnation_{0};
  // Bumped on every set_epoch(): distinguishes requests of the current
  // registration from ones sent under an earlier session whose epoch NUMBER
  // happens to repeat (incarnations each number epochs from 1).
  std::uint64_t session_gen_{0};
  std::uint64_t next_msg_{1};
  bool started_{false};

  // Flat table: at steady state the in-flight set is small and churns via
  // balanced insert/erase, so capacity — and therefore memory — stays fixed.
  FlatMap<MsgId, Pending> pending_;
  // Recently seen server-msg ids, to suppress duplicate delivery while still
  // re-ACKing (the ACK may have been lost). The window is bounded
  // (reply_cache_size); ids evicted from it are covered by the monotone
  // low-water mark below, so a duplicate delayed past the window is still
  // suppressed. Both reset when the epoch changes. The FIFO order lives in a
  // fixed-capacity ring (a deque would hold a ~500-byte chunk block per
  // client just to remember 8 ids) and the membership set in a flat table.
  FlatSet<MsgId> seen_server_msgs_;
  std::vector<MsgId> seen_order_;
  std::size_t seen_pos_{0};
  std::uint64_t seen_low_water_{0};
};

}  // namespace stank::protocol
