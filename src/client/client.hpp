// The Storage Tank file-system client.
//
// Serves a local process's open/read/write/fsync/close calls by combining:
//   * metadata and locks from the server over the control network,
//   * direct block I/O to shared SAN disks for file data,
//   * a write-back BlockCache protected by data locks,
//   * the four-phase ClientLeaseAgent (the paper's core protocol).
//
// The same class also hosts the comparison configurations the experiment
// tables need:
//   * LeaseStrategy::kVLeases / kFrangipani — per-object renewals or
//     heartbeats instead of opportunistic single-lease renewal,
//   * CoherenceMode::kNfsPoll — attribute polling, no locks (NFS-style),
//   * DataPath::kServerShipped — function-ship all data through the server
//     (the traditional client/server file system of table T5).
//
// All public calls are asynchronous: the simulation is event-driven, so a
// call schedules work and the callback fires when it completes. Callbacks
// always fire exactly once.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/heartbeat.hpp"
#include "baselines/v_lease.hpp"
#include "client/byzantine.hpp"
#include "client/cache.hpp"
#include "common/flat_map.hpp"
#include "common/small_vec.hpp"
#include "core/client_lease_agent.hpp"
#include "metrics/counters.hpp"
#include "net/control_net.hpp"
#include "protocol/client_transport.hpp"
#include "sim/trace.hpp"
#include "storage/san.hpp"

namespace stank::client {

enum class CoherenceMode : std::uint8_t {
  kLocks,    // data locks + callbacks: sequential consistency
  kNfsPoll,  // NFS-style attribute polling: weak consistency by design
};

enum class DataPath : std::uint8_t {
  kDirectSan,      // Storage Tank: clients perform I/O to shared disks
  kServerShipped,  // traditional: all data moves through the server
};

struct ClientConfig {
  NodeId id{100};
  NodeId server{1};
  core::LeaseConfig lease;
  core::LeaseStrategy strategy{core::LeaseStrategy::kStorageTank};
  CoherenceMode coherence{CoherenceMode::kLocks};
  DataPath data_path{DataPath::kDirectSan};
  protocol::TransportConfig transport;
  std::uint32_t block_size{4096};
  // NFS mode: how long cached attributes are trusted before re-polling.
  sim::LocalDuration attr_timeout{sim::local_seconds(3)};
  // How often a deregistered client retries RegisterReq.
  sim::LocalDuration reregister_retry{sim::local_millis(700)};
  bool auto_reregister{true};
  // V-lease renewal point as a fraction of tau; Frangipani heartbeat period
  // as a fraction of tau.
  double v_renew_frac{0.5};
  double hb_beat_frac{0.34};
  // Page-cache capacity (0 = unbounded). When full, clean pages are evicted
  // LRU-first; if everything is dirty, the oldest dirty file is flushed to
  // make clean pages available.
  std::size_t cache_capacity_pages{0};
  // Background write-back period (0 = off): dirty pages are flushed
  // periodically instead of only at demand/fsync/lease-phase-4 time.
  sim::LocalDuration writeback_interval{sim::LocalDuration{0}};
  // Adversarial misbehaviors (all off for an honest client). See
  // client/byzantine.hpp and DESIGN.md §13.
  ByzantineSpec byzantine;
};

using Fd = std::uint32_t;

class Client {
 public:
  Client(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
         sim::LocalClock local_clock, ClientConfig cfg, sim::TraceLog* trace = nullptr);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Attaches to the network and (by default) registers with the server.
  void start();
  // Fail-stop crash: detach, drop all volatile state, fire no callbacks.
  void crash();
  // Reboot after crash(): fresh cache, re-register.
  void restart();

  // --- Local-process file API --------------------------------------------
  void open(const std::string& path, bool create, std::function<void(Result<Fd>)> cb);
  void read(Fd fd, std::uint64_t offset, std::uint32_t len,
            std::function<void(Result<Bytes>)> cb);
  void write(Fd fd, std::uint64_t offset, Bytes data, std::function<void(Status)> cb);
  void fsync(Fd fd, std::function<void(Status)> cb);
  void close(Fd fd, std::function<void(Status)> cb);
  void getattr(Fd fd, std::function<void(Result<protocol::FileAttr>)> cb);

  // Explicit data-lock control. lock() acquires at least `mode`; release()
  // downgrades (flushing dirty data first when ceding an exclusive lock).
  // Ordinary reads/writes acquire locks implicitly; these exist for
  // workloads that need to serialize around the lock boundary.
  void lock(Fd fd, protocol::LockMode mode, std::function<void(Status)> cb);
  void release(Fd fd, protocol::LockMode downgrade_to, std::function<void(Status)> cb);
  // Flushes every dirty page (all files) to the SAN.
  void sync_all(std::function<void(Status)> cb);

  // --- Introspection ------------------------------------------------------
  [[nodiscard]] NodeId id() const { return cfg_.id; }
  [[nodiscard]] bool registered() const { return registered_; }
  [[nodiscard]] bool accepting() const { return accepting_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::size_t dirty_pages() const { return cache_.dirty_count(); }
  [[nodiscard]] core::LeasePhase lease_phase() const;
  [[nodiscard]] metrics::Counters& counters() { return counters_; }
  [[nodiscard]] const metrics::Counters& counters() const { return counters_; }
  [[nodiscard]] BlockCache& cache() { return cache_; }
  [[nodiscard]] const BlockCache& cache() const { return cache_; }
  [[nodiscard]] const core::ClientLeaseAgent* lease_agent() const { return agent_.get(); }
  // Snapshot of the lease-disruption counter. An op whose issue-time token
  // still matches at completion never overlapped a suspect/expiry window —
  // its latency belongs to the steady-state population, not the recovery
  // tail. Always 0 for strategies without a lease agent (their ops are all
  // "steady" by definition).
  [[nodiscard]] std::uint64_t disruption_token() const {
    return agent_ != nullptr ? agent_->disruptions() : 0;
  }
  [[nodiscard]] protocol::LockMode lock_mode(Fd fd) const;
  [[nodiscard]] const ClientConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t ops_completed() const { return ops_completed_; }
  [[nodiscard]] std::uint64_t ops_rejected() const { return ops_rejected_; }
  [[nodiscard]] std::uint32_t server_incarnation() const { return server_incarnation_; }

  // Observers for benches/tests.
  std::function<void(core::LeasePhase, core::LeasePhase)> on_phase_change;
  std::function<void()> on_registered;
  std::function<void()> on_lease_expired;

 private:
  struct LockWait {
    protocol::LockMode mode;
    std::function<void(Status)> cb;
  };
  struct FileState {
    FileId file;
    protocol::FileAttr attr;
    std::vector<protocol::Extent> extents;
    protocol::LockMode mode{protocol::LockMode::kNone};
    // Generation of the grant `mode` came from (see protocol/messages.hpp).
    std::uint32_t lock_gen{0};
    // Per-grant secret issued with that grant; echoed in UnlockReq /
    // DemandDoneReq so releases prove receipt of the grant they renounce.
    std::uint64_t lock_cookie{0};
    // Bumped on every transition of `mode`. Generations identify steals, not
    // transfers, so async ops capture this instead to detect that the lock
    // they were issued under survived an intervening control-net round.
    std::uint64_t mode_seq{0};
    // Strongest mode requested from the server and not yet resolved.
    protocol::LockMode pending_mode{protocol::LockMode::kNone};
    // A lock demand is being processed (flush in progress): new exclusive
    // acquisitions are deferred until it completes so no page can become
    // dirty between the revocation flush and the downgrade.
    bool revoking{false};
    // Strongest mode the active demand allows us to retain.
    protocol::LockMode revoke_target{protocol::LockMode::kNone};
    // Demand received for a generation we have not seen granted yet
    // (reordered delivery): processed once the grant arrives.
    std::optional<protocol::LockDemand> deferred_demand;
    // Asynchronous cache mutations in flight (read-modify-write fills);
    // demand processing waits for zero before flushing.
    std::uint32_t writes_in_flight{0};
    std::uint32_t open_count{0};
    sim::LocalTime last_validate{};  // NFS mode
    bool attr_known{false};
    // Size/attr rounds are serialized per file and their waiters served in
    // arrival order: two concurrent writes racing independent rounds through
    // a reordering network would apply to the page cache out of issue order.
    struct SizeWait {
      std::uint64_t min_size{0};
      std::function<void(Status)> cb;
    };
    std::vector<SizeWait> size_waiters;
    bool size_round_inflight{false};
    // Callers blocked on a lock upgrade, inline in the file state: the
    // uncontended acquire path never touches a side map or allocates.
    SmallVec<LockWait, 2> lock_waits;
  };

  // Setup & lifecycle.
  void wire_transport();
  void build_lease_machinery();
  void register_with_server();
  void schedule_register_retry();
  void handle_lease_expired();
  void invalidate_everything();
  // The server restarted (new incarnation): re-register while the lease is
  // still valid, then reassert every held lock so the cache survives
  // (paper section 6).
  void handle_stale_session();
  void reassert_locks();
  void reset_lock_generations();

  // Request plumbing.
  [[nodiscard]] bool gate(ErrorCode& why) const;
  FileState* state_of(Fd fd);
  FileState& state_for(FileId file);

  // Locking.
  void ensure_lock(FileId file, protocol::LockMode mode, std::function<void(Status)> cb);
  // Downgrades the held mode and sends the UnlockReq (any required flush has
  // already completed). The release() fast path reaches here directly.
  void do_unlock(FileId file, protocol::LockMode downgrade_to, std::function<void(Status)> cb);
  // Sends a LockReq for the strongest still-unsatisfied wait, unless one is
  // already pending or a revocation is in progress.
  void pump_lock_requests(FileId file);
  // Applies a grant (from a LockReply or a LockGrant) if its generation is
  // newer than what we hold.
  void apply_grant(FileId file, protocol::LockMode mode, std::uint32_t gen,
                   std::uint64_t cookie);
  void lock_state_changed(FileId file);
  void fail_lock_waits(FileId file, ErrorCode code);
  void fail_all_lock_waits(ErrorCode code);
  void handle_server_msg(const protocol::ServerBody& body);
  void handle_demand(const protocol::LockDemand& d);
  void process_demand(FileId file);  // runs the active demand when quiescent
  void finish_demand(FileId file);

  // Data path.
  void ensure_size(FileState& fs, std::uint64_t min_size, std::function<void(Status)> cb);
  // Starts the next size round for `file` if waiters are queued and no round
  // is in flight; completion serves every waiter the result covers, in order.
  void pump_size_round(FileId file);
  // Fails every queued size waiter (all files) with `why`; used when pending
  // transport requests are abandoned, which silently drops their handlers.
  void abort_size_rounds(ErrorCode why);
  void read_direct(FileState& fs, std::uint64_t offset, std::uint32_t len,
                   std::function<void(Result<Bytes>)> cb);
  void write_direct(FileState& fs, std::uint64_t offset, Bytes data,
                    std::function<void(Status)> cb);
  void read_shipped(FileState& fs, std::uint64_t offset, std::uint32_t len,
                    std::function<void(Result<Bytes>)> cb);
  void write_shipped(FileState& fs, std::uint64_t offset, Bytes data,
                     std::function<void(Status)> cb);
  void fetch_block(FileState& fs, std::uint64_t fb,
                   std::function<void(Result<Bytes>)> cb);
  void write_block_through(FileState& fs, std::uint64_t fb, const Bytes& data,
                           std::function<void(Status)> cb);

  // Flushing.
  void flush_file(FileId file, std::function<void(Status)> cb);
  void flush_all(std::function<void(Status)> cb);
  // Evicts down to the configured capacity (clean LRU pages first; flushes
  // the oldest dirty file when nothing clean remains).
  void enforce_cache_limit();
  void writeback_tick();

  // NFS attribute revalidation.
  void maybe_revalidate(FileState& fs, std::function<void(Status)> cb);

  // Byzantine behavior machinery (no-ops for honest clients).
  void arm_byzantine_timers();
  void cancel_byzantine_timers();
  // write_after_expiry: freeze the dirty cache (with block locations and the
  // superseded registration's io_key) at expiry time, then keep re-submitting
  // it raw to the SAN — the slow-computer late write the fence must stop.
  void snapshot_rogue_writes();
  void rogue_flush_tick();
  void replay_tick();
  void forge_tick();
  // Tiny deterministic generator for the forged/replayed message choices —
  // client-local so runs stay reproducible without threading the scenario RNG
  // through here.
  std::uint32_t byz_rand();

  // Lazy, sink-gated tracing: the format callable runs — and its string
  // machinery allocates — only when a TraceLog is attached. With tracing off
  // a trace site costs one branch.
  template <typename F>
    requires std::is_invocable_v<F&>
  void trace(const char* category, F&& detail) {
    if (trace_ != nullptr) {
      record_trace(category, std::forward<F>(detail)());
    }
  }
  void trace(const char* category, const char* detail) {
    if (trace_ != nullptr) {
      record_trace(category, detail);
    }
  }
  void record_trace(const char* category, std::string detail);

  sim::Engine* engine_;
  storage::SanFabric* san_;
  ClientConfig cfg_;
  sim::NodeClock clock_;
  sim::TraceLog* trace_;
  // Typed flight recorder behind trace_ (one ctor argument attaches both);
  // null when tracing is off.
  obs::Recorder* rec_{nullptr};

  metrics::Counters counters_;
  protocol::ClientTransport transport_;
  BlockCache cache_;

  // Lease machinery (one of these by strategy; ST uses agent_).
  std::unique_ptr<core::ClientLeaseAgent> agent_;
  std::unique_ptr<baselines::VLeaseClientScheduler> v_sched_;
  std::unique_ptr<baselines::HeartbeatClientScheduler> hb_sched_;

  sim::TimerId writeback_timer_{0};
  bool started_{false};
  bool crashed_{false};
  bool registered_{false};
  bool accepting_{false};
  bool register_inflight_{false};
  sim::TimerId register_timer_{0};
  // Last server incarnation seen in a RegisterReply (0 = never registered).
  std::uint32_t server_incarnation_{0};

  Fd next_fd_{1};
  // Flat open-addressing table: a handful of open fds per client at steady
  // state, probed once per data op.
  FlatMap<Fd, FileId> fds_;
  std::map<FileId, FileState> files_;

  std::uint64_t ops_completed_{0};
  std::uint64_t ops_rejected_{0};
  // Incarnation counter: bumped on crash so SAN completions from a previous
  // life are discarded instead of mutating the rebooted client.
  std::uint32_t gen_{0};

  // --- Byzantine state (unused when cfg_.byzantine is all-off) -------------
  struct RogueWrite {
    DiskId disk;
    storage::BlockAddr addr{0};
    Bytes data;
  };
  struct CapturedDatagram {
    std::uint32_t epoch{0};
    std::uint32_t incarnation{0};
    Bytes bytes;
  };
  std::vector<RogueWrite> rogue_writes_;
  std::uint64_t rogue_io_key_{0};  // captured at expiry; never re-keyed
  std::uint32_t rogue_rounds_left_{0};
  std::vector<CapturedDatagram> captured_;  // bounded ring of server msgs
  std::size_t captured_next_{0};
  sim::TimerId rogue_timer_{0};
  sim::TimerId replay_timer_{0};
  sim::TimerId forge_timer_{0};
  std::uint32_t byz_rng_state_{0};
};

}  // namespace stank::client
