#include "client/machine.hpp"

#include "common/assert.hpp"

namespace stank::client {

Machine::Machine(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
                 sim::LocalClock local_clock, MachineConfig cfg, sim::TraceLog* trace) {
  STANK_ASSERT_MSG(!cfg.servers.empty(), "a machine needs at least one server");
  for (std::size_t k = 0; k < cfg.servers.size(); ++k) {
    ClientConfig c = cfg.client;
    c.id = NodeId{cfg.base_id.value() + static_cast<std::uint32_t>(k)};
    c.server = cfg.servers[k];
    // All sub-clients share the machine's single hardware clock.
    subs_.push_back(std::make_unique<Client>(engine, net, san, local_clock, c, trace));
  }
}

void Machine::start() {
  for (auto& s : subs_) {
    s->start();
  }
}

void Machine::crash() {
  crashed_ = true;
  for (auto& s : subs_) {
    s->crash();
  }
}

void Machine::restart() {
  crashed_ = false;
  for (auto& s : subs_) {
    s->restart();
  }
}

std::size_t Machine::route(const std::string& path) const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char ch : path) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x100000001B3ULL;
  }
  return static_cast<std::size_t>(h % subs_.size());
}

Client* Machine::sub_for(MFd fd) {
  const std::size_t k = sub_of(fd);
  return k < subs_.size() ? subs_[k].get() : nullptr;
}

void Machine::open(const std::string& path, bool create, std::function<void(Result<MFd>)> cb) {
  const std::size_t k = route(path);
  subs_[k]->open(path, create, [k, cb = std::move(cb)](Result<Fd> r) {
    if (!r.ok()) {
      cb(r.error());
      return;
    }
    cb((static_cast<MFd>(k) << kSubShift) | r.value());
  });
}

void Machine::read(MFd fd, std::uint64_t offset, std::uint32_t len,
                   std::function<void(Result<Bytes>)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->read(fd_of(fd), offset, len, std::move(cb));
}

void Machine::write(MFd fd, std::uint64_t offset, Bytes data, std::function<void(Status)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->write(fd_of(fd), offset, std::move(data), std::move(cb));
}

void Machine::fsync(MFd fd, std::function<void(Status)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->fsync(fd_of(fd), std::move(cb));
}

void Machine::close(MFd fd, std::function<void(Status)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->close(fd_of(fd), std::move(cb));
}

void Machine::lock(MFd fd, protocol::LockMode mode, std::function<void(Status)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->lock(fd_of(fd), mode, std::move(cb));
}

void Machine::release(MFd fd, protocol::LockMode downgrade_to, std::function<void(Status)> cb) {
  Client* c = sub_for(fd);
  if (c == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  c->release(fd_of(fd), downgrade_to, std::move(cb));
}

void Machine::sync_all(std::function<void(Status)> cb) {
  auto remaining = std::make_shared<std::size_t>(subs_.size());
  auto worst = std::make_shared<Status>(Status::ok());
  auto shared_cb = std::make_shared<std::function<void(Status)>>(std::move(cb));
  for (auto& s : subs_) {
    s->sync_all([remaining, worst, shared_cb](Status st) {
      if (!st.is_ok() && worst->is_ok()) {
        *worst = st;
      }
      if (--*remaining == 0) {
        (*shared_cb)(*worst);
      }
    });
  }
}

bool Machine::fully_registered() const {
  for (const auto& s : subs_) {
    if (!s->registered()) return false;
  }
  return true;
}

std::size_t Machine::total_dirty_pages() const {
  std::size_t n = 0;
  for (const auto& s : subs_) {
    n += s->cache().dirty_count();
  }
  return n;
}

}  // namespace stank::client
