// A client MACHINE talking to a cluster of Storage Tank servers.
//
// The paper's installation (Figure 1) has a server cluster; section 3 is
// explicit that "a client must have a valid lease on all servers with which
// it holds locks, and cached data become invalid when a lease expires."
// This layer composes one per-server Client — each with its own transport,
// lock table, cache partition and four-phase lease agent — behind a single
// path-routed file API. A partition between the machine and ONE server
// walks only that lease through its phases; files served by the other
// servers stay fully usable.
//
// Identities: sub-client k uses NodeId{base + k}. Fencing therefore scopes
// naturally to the failed server's disks, matching the paper's "a fence
// between that client and its storage devices" (the devices are the ones
// the fencing server owns).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"

namespace stank::client {

// Machine-level file handle: identifies the sub-client and its local fd.
using MFd = std::uint64_t;

struct MachineConfig {
  // Sub-client k gets NodeId{base_id.value() + k}.
  NodeId base_id{100};
  // One entry per server in the cluster.
  std::vector<NodeId> servers;
  // Per-sub-client options (id/server fields are overwritten per target).
  ClientConfig client;
};

class Machine {
 public:
  Machine(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
          sim::LocalClock local_clock, MachineConfig cfg, sim::TraceLog* trace = nullptr);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  void start();
  void crash();
  void restart();

  // Deterministic path -> server routing (FNV-1a over the path). Every node
  // in the installation computes the same mapping, so servers own disjoint
  // slices of the namespace.
  [[nodiscard]] std::size_t route(const std::string& path) const;

  // --- Path-routed file API (same semantics as Client) --------------------
  void open(const std::string& path, bool create, std::function<void(Result<MFd>)> cb);
  void read(MFd fd, std::uint64_t offset, std::uint32_t len,
            std::function<void(Result<Bytes>)> cb);
  void write(MFd fd, std::uint64_t offset, Bytes data, std::function<void(Status)> cb);
  void fsync(MFd fd, std::function<void(Status)> cb);
  void close(MFd fd, std::function<void(Status)> cb);
  void lock(MFd fd, protocol::LockMode mode, std::function<void(Status)> cb);
  void release(MFd fd, protocol::LockMode downgrade_to, std::function<void(Status)> cb);
  // Flushes dirty data across every sub-client.
  void sync_all(std::function<void(Status)> cb);

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] std::size_t num_servers() const { return subs_.size(); }
  [[nodiscard]] Client& sub(std::size_t i) { return *subs_.at(i); }
  [[nodiscard]] const Client& sub(std::size_t i) const { return *subs_.at(i); }
  // Registered with every server in the cluster?
  [[nodiscard]] bool fully_registered() const;
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::size_t total_dirty_pages() const;

  static constexpr std::uint32_t kSubShift = 32;
  [[nodiscard]] static std::size_t sub_of(MFd fd) { return fd >> kSubShift; }
  [[nodiscard]] static Fd fd_of(MFd fd) { return static_cast<Fd>(fd & 0xFFFFFFFFu); }

 private:
  [[nodiscard]] Client* sub_for(MFd fd);

  std::vector<std::unique_ptr<Client>> subs_;
  bool crashed_{false};
};

}  // namespace stank::client
