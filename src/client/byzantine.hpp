// Composable client misbehaviors for the adversarial-client harness.
//
// The paper's safety argument (section 2/6) trusts exactly two parties: the
// server and the fence list at the network-attached disks. Clients and the
// network are untrusted. Each flag below makes this client violate one
// protocol obligation an honest client keeps; tools/fuzz_safety composes
// them and the split verdict in src/verify/ checks that HONEST clients stay
// safe regardless (DESIGN.md §13).
//
// These are protocol-level lies — late I/O under a superseded registration,
// timestamp lies, ignored quiesce/revocation, replayed datagrams, forged
// claims. Arbitrary data-plane forgery under a live, valid registration
// (a registered EX holder writing garbage it never buffered) is out of
// scope: per-initiator fencing cannot distinguish it from legitimate I/O,
// and no lease protocol could (DESIGN.md §13, "limits of the model").
#pragma once

#include <cstdint>

namespace stank::client {

struct ByzantineSpec {
  // Renew the lease from `first_send + skew` instead of the true first
  // transmission time — the lie-about-time attack on the renewal math.
  bool lie_send_time{false};
  double send_time_skew_s{0.0};
  // Ignore the agent's quiesce: keep accepting fs ops and keep renewing off
  // their ACKs instead of going quiet, and ignore NACKs entirely.
  bool defy_quiesce{false};
  // At lease expiry, snapshot the dirty cache and keep re-submitting it to
  // the SAN under the (now superseded) registration key, forever.
  bool write_after_expiry{false};
  // Transport-ACK lock demands but never flush, downgrade, or answer with
  // DemandDoneReq — the revocation stalls on this client.
  bool ack_without_release{false};
  // Record server-initiated datagrams off the wire and re-inject captured
  // ones from dead sessions (old epoch / old server incarnation) later.
  bool replay_old_session{false};
  // Periodically send UnlockReq / DemandDoneReq for locks and generations
  // this client was never granted.
  bool forge_lock_claims{false};

  [[nodiscard]] bool any() const {
    return lie_send_time || defy_quiesce || write_after_expiry || ack_without_release ||
           replay_old_session || forge_lock_claims;
  }

  // Bitmask form for replay files and shrinkers (send_time_skew_s rides
  // separately: it is a continuous parameter, not a behavior).
  enum : std::uint32_t {
    kLieSendTime = 1u << 0,
    kDefyQuiesce = 1u << 1,
    kWriteAfterExpiry = 1u << 2,
    kAckWithoutRelease = 1u << 3,
    kReplayOldSession = 1u << 4,
    kForgeLockClaims = 1u << 5,
  };

  [[nodiscard]] std::uint32_t mask() const {
    std::uint32_t m = 0;
    if (lie_send_time) m |= kLieSendTime;
    if (defy_quiesce) m |= kDefyQuiesce;
    if (write_after_expiry) m |= kWriteAfterExpiry;
    if (ack_without_release) m |= kAckWithoutRelease;
    if (replay_old_session) m |= kReplayOldSession;
    if (forge_lock_claims) m |= kForgeLockClaims;
    return m;
  }

  [[nodiscard]] static ByzantineSpec from_mask(std::uint32_t m, double skew_s = 0.0) {
    ByzantineSpec s;
    s.lie_send_time = (m & kLieSendTime) != 0;
    s.send_time_skew_s = skew_s;
    s.defy_quiesce = (m & kDefyQuiesce) != 0;
    s.write_after_expiry = (m & kWriteAfterExpiry) != 0;
    s.ack_without_release = (m & kAckWithoutRelease) != 0;
    s.replay_old_session = (m & kReplayOldSession) != 0;
    s.forge_lock_claims = (m & kForgeLockClaims) != 0;
    return s;
  }
};

}  // namespace stank::client
