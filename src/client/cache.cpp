#include "client/cache.hpp"

#include "common/assert.hpp"
#include "common/byte_pool.hpp"

namespace stank::client {

BlockCache::BlockCache(std::uint32_t block_size, std::size_t capacity_pages)
    : block_size_(block_size), capacity_(capacity_pages) {
  STANK_ASSERT(block_size > 0);
}

void BlockCache::touch(const std::map<Key, Entry>::iterator& it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

BlockCache::Page* BlockCache::find(FileId file, std::uint64_t fb) {
  auto it = pages_.find({file, fb});
  if (it == pages_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch(it);
  return &it->second.page;
}

const BlockCache::Page* BlockCache::peek(FileId file, std::uint64_t fb) const {
  auto it = pages_.find({file, fb});
  return it == pages_.end() ? nullptr : &it->second.page;
}

BlockCache::Page& BlockCache::put(FileId file, std::uint64_t fb, Bytes data, bool dirty) {
  STANK_ASSERT_MSG(data.size() == block_size_, "page must be exactly one block");
  const Key key{file, fb};
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    lru_.push_front(key);
    it = pages_.emplace(key, Entry{Page{std::move(data), dirty}, lru_.begin()}).first;
  } else {
    recycle_buf(std::move(it->second.page.data));  // replaced page's buffer
    it->second.page.data = std::move(data);
    it->second.page.dirty = dirty;
    touch(it);
  }
  return it->second.page;
}

void BlockCache::mark_dirty(FileId file, std::uint64_t fb) {
  auto it = pages_.find({file, fb});
  STANK_ASSERT_MSG(it != pages_.end(), "mark_dirty of uncached page");
  it->second.page.dirty = true;
}

void BlockCache::mark_clean(FileId file, std::uint64_t fb) {
  auto it = pages_.find({file, fb});
  if (it != pages_.end()) {
    it->second.page.dirty = false;
  }
}

std::vector<std::uint64_t> BlockCache::dirty_blocks(FileId file) const {
  std::vector<std::uint64_t> out;
  for (auto it = pages_.lower_bound({file, 0}); it != pages_.end() && it->first.first == file;
       ++it) {
    if (it->second.page.dirty) {
      out.push_back(it->first.second);
    }
  }
  return out;
}

bool BlockCache::has_dirty(FileId file) const {
  for (auto it = pages_.lower_bound({file, 0}); it != pages_.end() && it->first.first == file;
       ++it) {
    if (it->second.page.dirty) return true;
  }
  return false;
}

std::vector<BlockCache::Key> BlockCache::all_dirty() const {
  std::vector<Key> out;
  for (const auto& [key, entry] : pages_) {
    if (entry.page.dirty) {
      out.push_back(key);
    }
  }
  return out;
}

void BlockCache::invalidate_file(FileId file) {
  auto it = pages_.lower_bound({file, 0});
  while (it != pages_.end() && it->first.first == file) {
    recycle_buf(std::move(it->second.page.data));
    lru_.erase(it->second.lru_it);
    it = pages_.erase(it);
  }
}

void BlockCache::invalidate_all() {
  for (auto& [key, entry] : pages_) {
    recycle_buf(std::move(entry.page.data));
  }
  pages_.clear();
  lru_.clear();
}

std::size_t BlockCache::dirty_count() const {
  std::size_t n = 0;
  for (const auto& [key, entry] : pages_) {
    if (entry.page.dirty) ++n;
  }
  return n;
}

std::size_t BlockCache::file_page_count(FileId file) const {
  std::size_t n = 0;
  for (auto it = pages_.lower_bound({file, 0}); it != pages_.end() && it->first.first == file;
       ++it) {
    ++n;
  }
  return n;
}

std::vector<FileId> BlockCache::cached_files() const {
  std::vector<FileId> out;
  for (const auto& [key, entry] : pages_) {
    if (out.empty() || out.back() != key.first) {
      out.push_back(key.first);
    }
  }
  return out;
}

std::optional<BlockCache::Key> BlockCache::evict_clean_lru() {
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = pages_.find(*rit);
    STANK_ASSERT(it != pages_.end());
    if (!it->second.page.dirty) {
      const Key key = *rit;
      recycle_buf(std::move(it->second.page.data));
      lru_.erase(it->second.lru_it);
      pages_.erase(it);
      ++evictions_;
      return key;
    }
  }
  return std::nullopt;
}

std::optional<BlockCache::Key> BlockCache::oldest_dirty() const {
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = pages_.find(*rit);
    if (it != pages_.end() && it->second.page.dirty) {
      return *rit;
    }
  }
  return std::nullopt;
}

}  // namespace stank::client
