#include "client/client.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/assert.hpp"
#include "common/byte_pool.hpp"
#include "common/log.hpp"
#include "common/small_vec.hpp"
#include "protocol/layout.hpp"

namespace stank::client {

using protocol::LockMode;

namespace {

bool mode_leq(LockMode a, LockMode b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

LockMode mode_max(LockMode a, LockMode b) { return mode_leq(a, b) ? b : a; }

// Fan-in helper for multi-block operations.
struct FanIn {
  std::size_t expected{0};
  std::size_t seen{0};
  Status status{Status::ok()};
  std::function<void(Status)> done;

  void complete(Status s) {
    if (!s.is_ok() && status.is_ok()) {
      status = s;
    }
    if (++seen == expected && done) {
      done(status);
    }
  }
};

// Combined fan state for read_direct: the (pooled) result buffer, the
// caller's callback and the fan-in counters share one allocation instead of
// a buffer shared_ptr + FanIn + a capturing done-closure.
struct ReadFan {
  Bytes buf;
  std::function<void(Result<Bytes>)> cb;
  std::size_t expected{0};
  std::size_t seen{0};
  Status status{Status::ok()};
};

// Same idea for write_direct: the caller's payload rides in the fan.
struct WriteFan {
  Bytes data;
  std::function<void(Status)> cb;
  std::size_t expected{0};
  std::size_t seen{0};
  Status status{Status::ok()};
};

// On-stack slice list: steady-state ops span a handful of blocks, so the
// inline capacity makes slicing allocation-free.
using SliceVec = SmallVec<protocol::BlockSlice, 8>;

}  // namespace

Client::Client(sim::Engine& engine, net::ControlNet& net, storage::SanFabric& san,
               sim::LocalClock local_clock, ClientConfig cfg, sim::TraceLog* trace)
    : engine_(&engine),
      san_(&san),
      cfg_(std::move(cfg)),
      clock_(engine, local_clock),
      trace_(trace),
      rec_(trace != nullptr ? &trace->recorder() : nullptr),
      transport_(net, clock_, cfg_.id, cfg_.server, counters_, cfg_.transport),
      cache_(cfg_.block_size, cfg_.cache_capacity_pages) {
  cfg_.lease.validate();
  if (rec_ != nullptr) {
    rec_->bind_engine(engine);
    transport_.set_recorder(rec_);
  }
  wire_transport();
  build_lease_machinery();
}

Client::~Client() {
  if (register_timer_ != 0) {
    clock_.cancel(register_timer_);
  }
  cancel_byzantine_timers();
}

void Client::wire_transport() {
  transport_.on_ack = [this](sim::LocalTime first_send) {
    if (agent_) {
      if (cfg_.byzantine.lie_send_time) {
        // The lie-about-time attack: renew from a shifted anchor instead of
        // the true first transmission. A positive skew makes this client
        // believe its lease outlives the server's tau(1+eps) suspect math.
        agent_->renew(first_send + sim::local_seconds_d(cfg_.byzantine.send_time_skew_s));
        return;
      }
      agent_->renew(first_send);
    }
  };
  transport_.on_nack = [this]() {
    if (cfg_.byzantine.defy_quiesce) {
      // An honest client treats a NACK as proof it missed a message and
      // rides down; this one pretends it never happened.
      this->trace("byz", "NACK ignored (defy_quiesce)");
      return;
    }
    this->trace("lease", "NACK received");
    if (agent_) {
      // Section 3.3: the client knows it missed a message; phase 3 directly.
      agent_->on_nack();
    } else {
      // Heartbeat / per-object strategies have no phased ride-down: the
      // session is gone, recover now.
      handle_lease_expired();
    }
  };
  if (cfg_.byzantine.replay_old_session) {
    transport_.wiretap_server_msg = [this](const Bytes& datagram) {
      // Tag with the session the capture happened in; once the session
      // changes these become dead-session datagrams — the replay material.
      CapturedDatagram c{transport_.epoch(), transport_.incarnation(), datagram};
      if (captured_.size() < 16) {
        captured_.push_back(std::move(c));
      } else {
        captured_[captured_next_] = std::move(c);
        captured_next_ = (captured_next_ + 1) % captured_.size();
      }
    };
  }
  transport_.on_stale_session = [this]() { handle_stale_session(); };
  transport_.on_server_msg = [this](const protocol::ServerBody& body) { handle_server_msg(body); };
  transport_.accept_server_msg = [this](std::uint32_t epoch) {
    if (crashed_ || !registered_) return false;
    if (epoch != transport_.epoch()) return false;
    if (agent_ && !agent_->lease_valid()) return false;
    return true;
  };
}

void Client::build_lease_machinery() {
  switch (cfg_.strategy) {
    case core::LeaseStrategy::kStorageTank: {
      core::ClientLeaseAgent::Hooks hooks;
      hooks.send_keepalive = [this]() {
        // The NULL message: no file-system or lock content, exists to be
        // ACKed (which renews via transport_.on_ack).
        transport_.send_request(protocol::KeepAliveReq{}, [](const protocol::ReplyEvent&) {},
                                /*lease_only=*/true);
      };
      hooks.quiesce = [this]() {
        if (cfg_.byzantine.defy_quiesce) {
          this->trace("byz", "quiesce defied: still accepting ops");
          return;
        }
        accepting_ = false;
        this->trace("lease", "phase 3: quiesced");
      };
      hooks.flush = [this]() {
        if (cfg_.byzantine.write_after_expiry) {
          // The paper's "slow computer" weaponized: sit on the dirty data
          // through phase 4 so it is still buffered at expiry, then push it
          // down the SAN under the dead registration (snapshot_rogue_writes).
          this->trace("byz", "phase 4 flush withheld (write_after_expiry)");
          return;
        }
        this->trace("lease", "phase 4: flushing dirty data");
        flush_all([](Status) {});
      };
      hooks.expired = [this]() {
        this->trace("lease", "lease expired");
        handle_lease_expired();
      };
      hooks.phase_changed = [this](core::LeasePhase from, core::LeasePhase to) {
        if (static_cast<int>(from) >= static_cast<int>(core::LeasePhase::kSuspect) &&
            (to == core::LeasePhase::kActive || to == core::LeasePhase::kRenewal)) {
          // A keep-alive probe rescued an un-NACKed ride-down: the lease is
          // valid again and quiesce is over.
          if (registered_ && !crashed_) {
            accepting_ = true;
            this->trace("lease", "rescued: service resumed");
          }
        }
        if (on_phase_change) on_phase_change(from, to);
      };
      agent_ = std::make_unique<core::ClientLeaseAgent>(clock_, cfg_.lease, std::move(hooks));
      if (rec_ != nullptr) {
        agent_->set_recorder(rec_, cfg_.id);
      }
      break;
    }
    case core::LeaseStrategy::kVLeases: {
      baselines::VLeaseClientScheduler::Hooks hooks;
      hooks.send_renew = [this](FileId file) {
        transport_.send_request(
            protocol::RenewObjReq{file},
            [this, file](const protocol::ReplyEvent& ev) {
              if (ev.outcome == protocol::ReplyOutcome::kAck && v_sched_) {
                v_sched_->renewed(file, ev.first_send);
              }
            },
            /*lease_only=*/true);
      };
      hooks.object_expired = [this](FileId file) {
        // This object's lease lapsed: its lock and cached pages are invalid.
        cache_.invalidate_file(file);
        auto it = files_.find(file);
        if (it != files_.end()) {
          it->second.mode = LockMode::kNone;
          ++it->second.mode_seq;
          it->second.pending_mode = LockMode::kNone;
        }
        fail_lock_waits(file, ErrorCode::kLeaseExpired);
      };
      v_sched_ = std::make_unique<baselines::VLeaseClientScheduler>(clock_, cfg_.lease.tau,
                                                                    cfg_.v_renew_frac,
                                                                    std::move(hooks));
      break;
    }
    case core::LeaseStrategy::kFrangipani: {
      baselines::HeartbeatClientScheduler::Hooks hooks;
      hooks.send_heartbeat = [this]() {
        transport_.send_request(
            protocol::KeepAliveReq{},
            [this](const protocol::ReplyEvent& ev) {
              if (ev.outcome == protocol::ReplyOutcome::kAck && hb_sched_) {
                hb_sched_->on_ack(ev.first_send);
              }
            },
            /*lease_only=*/true);
      };
      hooks.expired = [this]() {
        this->trace("lease", "heartbeat lease expired");
        handle_lease_expired();
      };
      hb_sched_ = std::make_unique<baselines::HeartbeatClientScheduler>(
          clock_, cfg_.lease.tau, cfg_.hb_beat_frac, std::move(hooks));
      break;
    }
  }
}

void Client::start() {
  STANK_ASSERT(!started_);
  started_ = true;
  transport_.start();
  register_with_server();
  if (cfg_.writeback_interval.ns > 0) {
    writeback_timer_ = clock_.schedule_after(cfg_.writeback_interval,
                                             [this]() { writeback_tick(); });
  }
  arm_byzantine_timers();
}

void Client::writeback_tick() {
  writeback_timer_ = 0;
  if (crashed_) return;
  if (registered_ && accepting_ && cache_.dirty_count() > 0) {
    flush_all([](Status) {});
  }
  writeback_timer_ =
      clock_.schedule_after(cfg_.writeback_interval, [this]() { writeback_tick(); });
}

void Client::enforce_cache_limit() {
  while (cache_.over_capacity()) {
    if (cache_.evict_clean_lru().has_value()) {
      continue;
    }
    // Every page is dirty: flush the least-recently-used dirty page's file,
    // then try again — dropping dirty data would be a silent lost update.
    auto od = cache_.oldest_dirty();
    if (!od) break;
    flush_file(od->first, [this](Status st) {
      if (st.is_ok()) enforce_cache_limit();
    });
    break;
  }
}

void Client::crash() {
  if (crashed_) return;
  this->trace("node", "crash");
  if (rec_ != nullptr) {
    rec_->record(clock_.engine().now(), cfg_.id, obs::EventKind::kCrash);
  }
  crashed_ = true;
  ++gen_;
  transport_.stop();
  if (agent_) agent_->deactivate();
  if (hb_sched_) hb_sched_->stop();
  if (v_sched_) v_sched_->clear();
  if (register_timer_ != 0) {
    clock_.cancel(register_timer_);
    register_timer_ = 0;
  }
  if (writeback_timer_ != 0) {
    clock_.cancel(writeback_timer_);
    writeback_timer_ = 0;
  }
  register_inflight_ = false;
  registered_ = false;
  accepting_ = false;
  // A crashed machine loses even its misbehavior: snapshots and captured
  // datagrams are volatile state too.
  cancel_byzantine_timers();
  rogue_writes_.clear();
  rogue_rounds_left_ = 0;
  captured_.clear();
  captured_next_ = 0;
  // Volatile state is gone. Callbacks of in-flight operations are dropped —
  // a crashed machine answers nobody.
  cache_.invalidate_all();
  files_.clear();
  fds_.clear();
}

void Client::restart() {
  STANK_ASSERT_MSG(crashed_, "restart() is only valid after crash()");
  this->trace("node", "restart");
  if (rec_ != nullptr) {
    rec_->record(clock_.engine().now(), cfg_.id, obs::EventKind::kRestart, gen_);
  }
  crashed_ = false;
  transport_.set_epoch(0);
  transport_.start();
  register_with_server();
  if (cfg_.writeback_interval.ns > 0 && writeback_timer_ == 0) {
    writeback_timer_ = clock_.schedule_after(cfg_.writeback_interval,
                                             [this]() { writeback_tick(); });
  }
  arm_byzantine_timers();
}

// ---------------------------------------------------------------------------
// Registration & lease lifecycle

void Client::register_with_server() {
  if (crashed_ || registered_ || register_inflight_) return;
  register_inflight_ = true;
  transport_.send_request(protocol::RegisterReq{}, [this](const protocol::ReplyEvent& ev) {
    register_inflight_ = false;
    if (ev.outcome == protocol::ReplyOutcome::kAck) {
      if (const auto* rep = std::get_if<protocol::RegisterReply>(&ev.body)) {
        transport_.set_session(rep->epoch, rep->incarnation);
        const bool server_restarted =
            server_incarnation_ != 0 && rep->incarnation != server_incarnation_;
        // ANY re-registration means the server had no session for us — it
        // restarted, or it declared us failed and stole our locks. Either
        // way every lock we think we hold must be re-verified (section 6):
        // reassert_locks() confirms each with the server and drops the ones
        // it refuses. Re-registering and silently keeping the old lock
        // table would serve stale cache under locks granted elsewhere.
        const bool re_registration = server_incarnation_ != 0;
        const bool can_reassert =
            re_registration && (agent_ == nullptr || agent_->lease_valid());
        server_incarnation_ = rep->incarnation;
        registered_ = true;
        if (agent_) {
          if (agent_->lease_valid() && !agent_->nack_latched()) {
            agent_->renew(ev.first_send);
          } else {
            // NACK-latched or expired: the successful registration opened a
            // FRESH contract (new epoch at the server), so the old lease's
            // quiesce discipline no longer applies. renew() would refuse
            // while latched and the client would expire moments after
            // resuming service, dropping writes accepted in the window.
            // Anchor the new lease at the RegisterReq's first send (t_C1).
            agent_->restart(ev.first_send);
          }
          // A retried RegisterReq can anchor so far back that the lease is
          // already in ride-down; resuming service then would buffer dirty
          // data inside the flush window and lose it at expiry. Stay
          // quiesced — the keep-alive probe re-opens service on rescue.
          accepting_ = agent_->fs_ops_allowed();
        } else {
          accepting_ = true;
        }
        if (hb_sched_) {
          if (hb_sched_->running()) hb_sched_->stop();
          hb_sched_->start();
        }
        this->trace("session", [&] {
          return sim::cat("registered epoch ", rep->epoch, " incarnation ", rep->incarnation);
        });
        if (can_reassert) {
          reassert_locks();
        } else if (re_registration) {
          // Lease not even valid: too late to reassert safely — drop
          // everything. A new incarnation also numbers generations from
          // scratch.
          invalidate_everything();
          if (server_restarted) reset_lock_generations();
        }
        if (on_registered) on_registered();
        return;
      }
    }
    schedule_register_retry();
  });
}

void Client::schedule_register_retry() {
  if (crashed_ || registered_ || !cfg_.auto_reregister || register_timer_ != 0) return;
  register_timer_ = clock_.schedule_after(cfg_.reregister_retry, [this]() {
    register_timer_ = 0;
    register_with_server();
  });
}

void Client::handle_stale_session() {
  if (crashed_ || !registered_) {
    return;  // a registration is already on its way
  }
  this->trace("session", "server restarted: re-registering to reassert locks");
  registered_ = false;
  // Keep the cache, the lock table and the lease: the failure is at the
  // SERVER; our contract (and dirty data) remain valid while the lease
  // lives. Outstanding requests will fail; the workload retries.
  transport_.abandon_pending();
  abort_size_rounds(ErrorCode::kStaleSession);
  register_with_server();
  schedule_register_retry();
}

void Client::reassert_locks() {
  // The new incarnation numbers lock generations from scratch — for EVERY
  // file, not only the ones we reassert, or a stale pre-crash generation
  // would make us discard the new incarnation's grants and demands.
  for (auto& [file, fs] : files_) {
    fs.lock_gen = 0;
    fs.lock_cookie = 0;
    fs.pending_mode = LockMode::kNone;
    fs.revoking = false;
    fs.revoke_target = LockMode::kNone;
    fs.deferred_demand.reset();
  }
  for (auto& [file, fs] : files_) {
    if (fs.mode == LockMode::kNone) continue;
    const LockMode mode = fs.mode;
    transport_.send_request(
        protocol::ReassertLockReq{file, mode},
        [this, file_id = file](const protocol::ReplyEvent& ev) {
          auto fit = files_.find(file_id);
          if (fit == files_.end()) return;
          if (ev.outcome == protocol::ReplyOutcome::kAck) {
            if (const auto* rep = std::get_if<protocol::LockReply>(&ev.body)) {
              if (rep->granted) {
                fit->second.lock_gen = rep->gen;
                fit->second.lock_cookie = rep->cookie;
                this->trace("lock",
                            [&] { return sim::cat("reasserted ", file_id.value()); });
                return;
              }
            }
          }
          // Reassertion refused or lost: the lock (and cache) for this file
          // are gone. Dirty pages here are unprotected — drop them; the
          // checker charges this to the server-crash scenario, exactly the
          // data-loss window reassertion is meant to close.
          this->trace("lock",
                      [&] { return sim::cat("reassert FAILED for ", file_id.value()); });
          cache_.invalidate_file(file_id);
          fit->second.mode = LockMode::kNone;
          ++fit->second.mode_seq;
        });
  }
}

void Client::handle_lease_expired() {
  if (!registered_ && !accepting_) {
    return;  // already torn down
  }
  if (cfg_.byzantine.write_after_expiry) {
    // Freeze the dirty cache NOW, before teardown invalidates it: the rogue
    // flusher keeps pushing these pages to the SAN under the superseded key.
    snapshot_rogue_writes();
  }
  registered_ = false;
  accepting_ = false;
  transport_.abandon_pending();
  abort_size_rounds(ErrorCode::kLeaseExpired);
  fail_all_lock_waits(ErrorCode::kLeaseExpired);
  invalidate_everything();
  if (hb_sched_ && hb_sched_->running()) hb_sched_->stop();
  if (v_sched_) v_sched_->clear();
  if (on_lease_expired) on_lease_expired();
  if (cfg_.auto_reregister) {
    register_with_server();
    schedule_register_retry();
  }
}

void Client::invalidate_everything() {
  cache_.invalidate_all();
  for (auto& [file, fs] : files_) {
    fs.mode = LockMode::kNone;
    ++fs.mode_seq;
    fs.pending_mode = LockMode::kNone;
    fs.revoking = false;
    fs.revoke_target = LockMode::kNone;
    fs.deferred_demand.reset();
    fs.attr_known = false;
  }
}

void Client::reset_lock_generations() {
  for (auto& [file, fs] : files_) {
    fs.lock_gen = 0;
    fs.lock_cookie = 0;
  }
}

core::LeasePhase Client::lease_phase() const {
  return agent_ ? agent_->phase() : core::LeasePhase::kNoLease;
}

// ---------------------------------------------------------------------------
// Gating & lookup

bool Client::gate(ErrorCode& why) const {
  if (crashed_) {
    why = ErrorCode::kShutdown;
    return false;
  }
  if (!registered_) {
    why = ErrorCode::kLeaseExpired;
    return false;
  }
  if (!accepting_) {
    why = ErrorCode::kQuiesced;
    return false;
  }
  // Frangipani-style lease: validity is checked on every operation (a
  // heartbeat-tick-only check would serve stale cache in the gap between
  // true expiry and the next tick).
  if (hb_sched_ && !hb_sched_->lease_valid(clock_.now())) {
    why = ErrorCode::kLeaseExpired;
    return false;
  }
  return true;
}

Client::FileState* Client::state_of(Fd fd) {
  const FileId* file = fds_.find(fd);
  if (file == nullptr) return nullptr;
  auto fit = files_.find(*file);
  return fit == files_.end() ? nullptr : &fit->second;
}

Client::FileState& Client::state_for(FileId file) {
  auto [it, inserted] = files_.try_emplace(file);
  if (inserted) {
    it->second.file = file;
  }
  return it->second;
}

protocol::LockMode Client::lock_mode(Fd fd) const {
  const FileId* file = fds_.find(fd);
  if (file == nullptr) return LockMode::kNone;
  auto fit = files_.find(*file);
  return fit == files_.end() ? LockMode::kNone : fit->second.mode;
}

// ---------------------------------------------------------------------------
// Public file API

void Client::open(const std::string& path, bool create, std::function<void(Result<Fd>)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  transport_.send_request(
      protocol::OpenReq{path, create}, [this, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          cb(ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                         : ErrorCode::kTimeout);
          return;
        }
        if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          cb(err->code);
          return;
        }
        const auto* rep = std::get_if<protocol::OpenReply>(&ev.body);
        if (rep == nullptr) {
          cb(ErrorCode::kInvalidArgument);
          return;
        }
        FileState& fs = state_for(rep->file);
        fs.attr = rep->attr;
        fs.extents = rep->extents;
        fs.attr_known = true;
        fs.last_validate = clock_.now();
        ++fs.open_count;
        const Fd fd = next_fd_++;
        fds_.insert(fd, rep->file);
        ++ops_completed_;
        cb(fd);
      });
}

void Client::close(Fd fd, std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  const FileId file = fs->file;
  if (fs->open_count > 0) {
    --fs->open_count;
  }
  fds_.erase(fd);
  // Cached data and locks are deliberately RETAINED across close — that is
  // the whole point of lease-protected caching.
  transport_.send_request(protocol::CloseReq{file},
                          [this, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
                            ++ops_completed_;
                            cb(ev.outcome == protocol::ReplyOutcome::kAck
                                   ? Status::ok()
                                   : Status{ErrorCode::kTimeout});
                          });
}

void Client::getattr(Fd fd, std::function<void(Result<protocol::FileAttr>)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  const FileId file = fs->file;
  transport_.send_request(
      protocol::GetAttrReq{file},
      [this, file, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          cb(ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                         : ErrorCode::kTimeout);
          return;
        }
        if (const auto* rep = std::get_if<protocol::AttrReply>(&ev.body)) {
          FileState& fs2 = state_for(file);
          fs2.attr = rep->attr;
          fs2.extents = rep->extents;
          fs2.attr_known = true;
          fs2.last_validate = clock_.now();
          ++ops_completed_;
          cb(rep->attr);
          return;
        }
        if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          cb(err->code);
          return;
        }
        cb(ErrorCode::kInvalidArgument);
      });
}

void Client::read(Fd fd, std::uint64_t offset, std::uint32_t len,
                  std::function<void(Result<Bytes>)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  const FileId file = fs->file;

  if (cfg_.coherence == CoherenceMode::kNfsPoll) {
    maybe_revalidate(*fs, [this, file, offset, len, cb = std::move(cb)](Status st) {
      if (!st.is_ok()) {
        cb(st.error());
        return;
      }
      FileState& fs2 = state_for(file);
      if (cfg_.data_path == DataPath::kServerShipped) {
        read_shipped(fs2, offset, len, std::move(cb));
      } else {
        read_direct(fs2, offset, len, std::move(cb));
      }
    });
    return;
  }

  ensure_lock(file, LockMode::kShared, [this, file, offset, len, cb = std::move(cb)](Status st) {
    if (!st.is_ok()) {
      cb(st.error());
      return;
    }
    FileState& fs2 = state_for(file);
    if (cfg_.data_path == DataPath::kServerShipped) {
      read_shipped(fs2, offset, len, std::move(cb));
    } else {
      read_direct(fs2, offset, len, std::move(cb));
    }
  });
}

void Client::write(Fd fd, std::uint64_t offset, Bytes data, std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  const FileId file = fs->file;

  if (cfg_.coherence == CoherenceMode::kNfsPoll ||
      cfg_.data_path == DataPath::kServerShipped) {
    // Traditional/NFS path: ship the write; the server grows the file.
    write_shipped(*fs, offset, std::move(data), std::move(cb));
    return;
  }

  ensure_lock(file, LockMode::kExclusive,
              [this, file, offset, data = std::move(data), cb = std::move(cb)](Status st) mutable {
                if (!st.is_ok()) {
                  cb(st);
                  return;
                }
                FileState& fs2 = state_for(file);
                const std::uint64_t seq = fs2.mode_seq;
                const std::uint64_t end = offset + data.size();
                ensure_size(fs2, end,
                            [this, file, offset, seq, data = std::move(data),
                             cb = std::move(cb)](Status st2) mutable {
                              if (!st2.is_ok()) {
                                cb(st2);
                                return;
                              }
                              // The size round crossed the control net; the
                              // exclusive lock may have been revoked (demand,
                              // lease ride-down) and even re-granted under it.
                              // Buffering now would dirty the cache under a
                              // serialization this write was not issued in —
                              // fail and let the caller retry afresh.
                              auto fit = files_.find(file);
                              if (fit == files_.end() || fit->second.mode_seq != seq ||
                                  fit->second.mode != LockMode::kExclusive ||
                                  fit->second.revoking) {
                                cb(Status{ErrorCode::kLockConflict});
                                return;
                              }
                              write_direct(fit->second, offset, std::move(data),
                                           std::move(cb));
                            });
              });
}

void Client::lock(Fd fd, protocol::LockMode mode, std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  ensure_lock(fs->file, mode, std::move(cb));
}

void Client::release(Fd fd, protocol::LockMode downgrade_to, std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  const FileId file = fs->file;
  if (fs->revoking) {
    cb(ErrorCode::kLockConflict);  // a server demand is already downgrading us
    return;
  }
  if (mode_leq(fs->mode, downgrade_to)) {
    cb(Status::ok());
    return;
  }

  if (fs->mode == LockMode::kExclusive && cache_.has_dirty(file)) {
    flush_file(file, [this, file, downgrade_to, cb = std::move(cb)](Status st) mutable {
      if (!st.is_ok()) {
        // Keep the lock — dirty data must not be orphaned — but tell the
        // caller the release did not happen.
        cb(st);
        return;
      }
      do_unlock(file, downgrade_to, std::move(cb));
    });
    return;
  }
  // Fast path (shared lock, or exclusive with a clean cache): no flush, no
  // shared_ptr dance, no allocation.
  do_unlock(file, downgrade_to, std::move(cb));
}

void Client::do_unlock(FileId file, LockMode downgrade_to, std::function<void(Status)> cb) {
  auto fit = files_.find(file);
  if (fit == files_.end()) {
    cb(Status{ErrorCode::kShutdown});
    return;
  }
  FileState& fs = fit->second;
  fs.mode = downgrade_to;
  ++fs.mode_seq;
  if (downgrade_to == LockMode::kNone) {
    cache_.invalidate_file(file);
    if (v_sched_) v_sched_->object_released(file);
  }
  transport_.send_request(protocol::UnlockReq{file, downgrade_to, fs.lock_gen, fs.lock_cookie},
                          [cb = std::move(cb)](const protocol::ReplyEvent& ev) {
                            cb(ev.outcome == protocol::ReplyOutcome::kAck
                                   ? Status::ok()
                                   : Status{ErrorCode::kTimeout});
                          });
}

void Client::sync_all(std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    cb(why);
    return;
  }
  flush_all(std::move(cb));
}

void Client::fsync(Fd fd, std::function<void(Status)> cb) {
  ErrorCode why;
  if (!gate(why)) {
    ++ops_rejected_;
    cb(why);
    return;
  }
  FileState* fs = state_of(fd);
  if (fs == nullptr) {
    cb(ErrorCode::kBadHandle);
    return;
  }
  flush_file(fs->file, std::move(cb));
}

// ---------------------------------------------------------------------------
// Locking

void Client::ensure_lock(FileId file, LockMode mode, std::function<void(Status)> cb) {
  FileState& fs = state_for(file);
  // Per-object (V-lease) strategy: the lock is only usable while its lease
  // lives. Checked on EVERY operation, not only at scheduler ticks, so an
  // expired object can never serve stale cache in the detection gap.
  if (v_sched_ && fs.mode != LockMode::kNone &&
      !v_sched_->object_valid(file, clock_.now())) {
    cache_.invalidate_file(file);
    fs.mode = LockMode::kNone;
    ++fs.mode_seq;
  }
  // An exclusive request must not overtake an in-progress revocation: a page
  // dirtied between the revocation flush and the downgrade would survive
  // under an insufficient lock.
  const bool blocked_by_revoke = fs.revoking && mode == LockMode::kExclusive;
  if (mode_leq(mode, fs.mode) && !blocked_by_revoke) {
    cb(Status::ok());
    return;
  }
  if (rec_ != nullptr) {
    // Lock-grant latency span: queued-acquire to callback (cache hits above
    // are free and would only dilute the percentiles).
    const sim::SimTime start = clock_.engine().now();
    cb = [this, start, inner = std::move(cb)](Status st) {
      rec_->span(obs::SpanKind::kLockAcquire, (clock_.engine().now() - start).millis());
      inner(st);
    };
  }
  fs.lock_waits.push_back(LockWait{mode, std::move(cb)});
  pump_lock_requests(file);
}

void Client::pump_lock_requests(FileId file) {
  auto fit = files_.find(file);
  if (fit == files_.end()) return;
  FileState& fs = fit->second;
  if (fs.revoking) return;  // re-pumped when the demand completes

  if (fs.lock_waits.empty()) return;
  LockMode want = LockMode::kNone;
  for (const auto& w : fs.lock_waits) {
    want = mode_max(want, w.mode);
  }
  if (mode_leq(want, fs.mode)) {
    lock_state_changed(file);
    return;
  }
  if (mode_leq(want, fs.pending_mode)) {
    return;  // a sufficient request is already in flight
  }
  fs.pending_mode = want;
  transport_.send_request(
      protocol::LockReq{file, want}, [this, file](const protocol::ReplyEvent& ev) {
        auto fit2 = files_.find(file);
        if (fit2 == files_.end()) {
          return;  // state discarded (crash) while in flight
        }
        FileState& fs2 = fit2->second;
        if (ev.outcome == protocol::ReplyOutcome::kAck) {
          if (const auto* rep = std::get_if<protocol::LockReply>(&ev.body)) {
            if (rep->granted) {
              fs2.pending_mode = LockMode::kNone;
              apply_grant(file, rep->mode, rep->gen, rep->cookie);
            }
            // Queued: pending_mode stays set; a LockGrant will arrive.
            return;
          }
          if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
            fs2.pending_mode = LockMode::kNone;
            if (err->code == ErrorCode::kRetryLater || err->code == ErrorCode::kStaleSession) {
              // Post-restart grace period (or session refresh in flight):
              // keep the waiters and retry shortly.
              clock_.schedule_after(sim::local_millis(300),
                                    [this, file]() { pump_lock_requests(file); });
              return;
            }
            fail_lock_waits(file, err->code);
            return;
          }
          fs2.pending_mode = LockMode::kNone;
          fail_lock_waits(file, ErrorCode::kInvalidArgument);
          return;
        }
        fs2.pending_mode = LockMode::kNone;
        fail_lock_waits(file, ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                                          : ErrorCode::kTimeout);
      });
}

void Client::apply_grant(FileId file, LockMode mode, std::uint32_t gen, std::uint64_t cookie) {
  FileState& fs = state_for(file);
  if (gen <= fs.lock_gen) {
    return;  // stale or duplicate grant
  }
  fs.lock_gen = gen;
  fs.lock_cookie = cookie;
  fs.mode = mode;
  ++fs.mode_seq;
  if (mode_leq(fs.pending_mode, mode)) {
    fs.pending_mode = LockMode::kNone;
  }
  if (v_sched_) v_sched_->object_acquired(file);
  lock_state_changed(file);

  // A demand that arrived ahead of this grant can be processed now.
  if (fs.deferred_demand) {
    if (fs.deferred_demand->gen < fs.lock_gen) {
      fs.deferred_demand.reset();
    } else if (fs.deferred_demand->gen == fs.lock_gen) {
      const protocol::LockDemand d = *fs.deferred_demand;
      fs.deferred_demand.reset();
      handle_demand(d);
    }
  }
  pump_lock_requests(file);
}

void Client::lock_state_changed(FileId file) {
  FileState& fs = state_for(file);
  if (fs.lock_waits.empty()) return;
  // Move satisfied waiters out before invoking: a callback may re-enter
  // ensure_lock/pump and mutate the wait list. Inline capacity keeps the
  // single-waiter common case allocation-free.
  SmallVec<LockWait, 2> ready;
  auto& waits = fs.lock_waits;
  for (auto* it = waits.begin(); it != waits.end();) {
    if (mode_leq(it->mode, fs.mode)) {
      ready.push_back(std::move(*it));
      it = waits.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& w : ready) {
    w.cb(Status::ok());
  }
}

void Client::fail_lock_waits(FileId file, ErrorCode code) {
  auto fit = files_.find(file);
  if (fit == files_.end() || fit->second.lock_waits.empty()) return;
  SmallVec<LockWait, 2> failed = std::move(fit->second.lock_waits);
  for (auto& w : failed) {
    w.cb(Status{code});
  }
}

void Client::fail_all_lock_waits(ErrorCode code) {
  // Collect every waiter first: a failure callback may re-enter and mutate
  // files_ (this is the expiry/teardown path, not a hot one).
  std::vector<LockWait> failed;
  for (auto& [file, fs] : files_) {
    for (auto& w : fs.lock_waits) {
      failed.push_back(std::move(w));
    }
    fs.lock_waits.clear();
  }
  for (auto& w : failed) {
    w.cb(Status{code});
  }
}

void Client::handle_server_msg(const protocol::ServerBody& body) {
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, protocol::LockDemand>) {
          handle_demand(msg);
        } else if constexpr (std::is_same_v<T, protocol::LockGrant>) {
          this->trace("lock", [&] {
            return sim::cat("granted (queued) ", msg.file.value(), " g", msg.gen);
          });
          apply_grant(msg.file, msg.mode, msg.gen, msg.cookie);
        }
      },
      body);
}

void Client::handle_demand(const protocol::LockDemand& d) {
  if (cfg_.byzantine.ack_without_release) {
    // The transport already ACKed the datagram; swallowing the demand here
    // means the server sees a compliant-looking client that never flushes,
    // downgrades, or answers — the revocation must time out instead.
    this->trace("byz", [&] { return sim::cat("demand ", d.file, " swallowed (no release)"); });
    return;
  }
  FileState& fs = state_for(d.file);
  this->trace("lock", [&] {
    return sim::cat("demand ", d.file, " max=", protocol::to_string(d.max_mode), " g", d.gen,
                    " held=", protocol::to_string(fs.mode), " g", fs.lock_gen);
  });
  if (d.gen < fs.lock_gen) {
    return;  // demand against a superseded incarnation: a newer grant exists
  }
  if (d.gen > fs.lock_gen) {
    // The grant establishing this incarnation has not reached us yet
    // (datagram reordering): defer until it does.
    if (!fs.deferred_demand || fs.deferred_demand->gen < d.gen) {
      fs.deferred_demand = d;
    }
    return;
  }

  if (fs.revoking) {
    // A deeper demand for the same incarnation: fold into the active one.
    if (mode_leq(d.max_mode, fs.revoke_target)) {
      fs.revoke_target = d.max_mode;
    }
    return;
  }
  if (mode_leq(fs.mode, d.max_mode)) {
    // Already compliant (duplicate demand): confirm.
    transport_.send_request(protocol::DemandDoneReq{d.file, fs.mode, d.gen, fs.lock_cookie},
                            [](const protocol::ReplyEvent&) {});
    return;
  }

  fs.revoking = true;
  fs.revoke_target = d.max_mode;
  process_demand(d.file);
}

void Client::process_demand(FileId file) {
  auto fit = files_.find(file);
  if (fit == files_.end()) return;
  FileState& fs = fit->second;
  if (!fs.revoking) return;  // resolved meanwhile (e.g. lease expiry)

  if (fs.writes_in_flight > 0) {
    // Let in-flight cache mutations land before the revocation flush.
    clock_.schedule_after(sim::local_millis(1), [this, file]() { process_demand(file); });
    return;
  }

  if (fs.mode == LockMode::kExclusive && cache_.has_dirty(file)) {
    // Dirty data protected by this lock must reach the disk before the lock
    // is ceded (the consistency guarantee fencing alone cannot provide).
    flush_file(file, [this, file](Status st) {
      auto fit2 = files_.find(file);
      if (fit2 == files_.end() || !fit2->second.revoking) return;
      if (st.is_ok()) {
        finish_demand(file);
      } else {
        // Cannot flush (SAN fault / fenced). Keep the lock and retry; the
        // server's demand timeout will engage the lease protocol if this
        // never succeeds.
        this->trace("lock",
                    [&] { return sim::cat("demand flush failed: ", to_string(st.error())); });
        clock_.schedule_after(sim::local_millis(500),
                              [this, file]() { process_demand(file); });
      }
    });
    return;
  }
  finish_demand(file);
}

void Client::finish_demand(FileId file) {
  auto fit = files_.find(file);
  if (fit == files_.end()) return;
  FileState& fs = fit->second;
  if (!fs.revoking) return;
  const LockMode target = fs.revoke_target;
  const std::uint32_t gen = fs.lock_gen;
  if (!mode_leq(fs.mode, target)) {
    fs.mode = target;
    ++fs.mode_seq;
    if (target == LockMode::kNone) {
      // Relinquishing entirely: the cache contents are no longer protected.
      cache_.invalidate_file(file);
      if (v_sched_) v_sched_->object_released(file);
    }
  }
  fs.revoking = false;
  transport_.send_request(protocol::DemandDoneReq{file, fs.mode, gen, fs.lock_cookie},
                          [](const protocol::ReplyEvent&) {});
  pump_lock_requests(file);
}

// ---------------------------------------------------------------------------
// Size management

void Client::ensure_size(FileState& fs, std::uint64_t min_size, std::function<void(Status)> cb) {
  // Fast path only when nothing is queued: letting a fresh write skip past
  // waiters parked behind an in-flight round would buffer it ahead of writes
  // that drew earlier versions under the same lock.
  if (fs.attr_known && fs.attr.size >= min_size && fs.size_waiters.empty() &&
      !fs.size_round_inflight) {
    cb(Status::ok());
    return;
  }
  fs.size_waiters.push_back(FileState::SizeWait{min_size, std::move(cb)});
  if (!fs.size_round_inflight) {
    pump_size_round(fs.file);
  }
}

void Client::pump_size_round(FileId file) {
  auto fit = files_.find(file);
  if (fit == files_.end()) return;
  FileState& fs = fit->second;
  if (fs.size_waiters.empty()) {
    fs.size_round_inflight = false;
    return;
  }
  fs.size_round_inflight = true;
  std::uint64_t want = 0;
  for (const auto& w : fs.size_waiters) {
    want = std::max(want, w.min_size);
  }
  transport_.send_request(
      protocol::SetSizeReq{file, want, /*truncate=*/false},
      [this, file](const protocol::ReplyEvent& ev) {
        auto fit2 = files_.find(file);
        if (fit2 == files_.end()) return;
        FileState& fs2 = fit2->second;
        fs2.size_round_inflight = false;

        Status st = Status::ok();
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          st = Status{ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                                  : ErrorCode::kTimeout};
        } else if (const auto* rep = std::get_if<protocol::AttrReply>(&ev.body)) {
          fs2.attr = rep->attr;
          fs2.extents = rep->extents;
          fs2.attr_known = true;
        } else if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          st = Status{err->code};
        } else {
          st = Status{ErrorCode::kInvalidArgument};
        }

        if (!st.is_ok()) {
          auto waiters = std::move(fs2.size_waiters);
          fs2.size_waiters.clear();
          for (auto& w : waiters) {
            w.cb(st);
          }
          pump_size_round(file);  // arrivals queued by the callbacks
          return;
        }
        // Serve the satisfied prefix strictly in arrival order; a waiter
        // queued mid-flight may need a bigger size and starts a new round.
        while (true) {
          auto fit3 = files_.find(file);
          if (fit3 == files_.end()) return;
          FileState& fs3 = fit3->second;
          if (fs3.size_waiters.empty() || !fs3.attr_known ||
              fs3.attr.size < fs3.size_waiters.front().min_size) {
            break;
          }
          auto cb = std::move(fs3.size_waiters.front().cb);
          fs3.size_waiters.erase(fs3.size_waiters.begin());
          cb(Status::ok());
        }
        pump_size_round(file);
      });
}

void Client::abort_size_rounds(ErrorCode why) {
  std::vector<std::function<void(Status)>> cbs;
  for (auto& [file, fs] : files_) {
    for (auto& w : fs.size_waiters) {
      cbs.push_back(std::move(w.cb));
    }
    fs.size_waiters.clear();
    fs.size_round_inflight = false;
  }
  for (auto& cb : cbs) {
    cb(Status{why});
  }
}

// ---------------------------------------------------------------------------
// Direct SAN data path

void Client::fetch_block(FileState& fs, std::uint64_t fb, std::function<void(Result<Bytes>)> cb) {
  DiskId disk;
  storage::BlockAddr addr;
  if (!protocol::locate_block(fs.extents, fb, disk, addr)) {
    cb(ErrorCode::kIoError);
    return;
  }
  storage::IoRequest io;
  io.initiator = cfg_.id;
  io.disk = disk;
  io.op = storage::IoOp::kRead;
  io.addr = addr;
  io.count = 1;
  io.io_key = (static_cast<std::uint64_t>(server_incarnation_) << 32) | transport_.epoch();
  const std::uint32_t gen = gen_;
  san_->submit(std::move(io), [this, gen, cb = std::move(cb)](storage::IoResult res) {
    if (gen != gen_) return;  // completion from a previous incarnation
    if (!res.status.is_ok()) {
      cb(res.status.error());
      return;
    }
    cb(std::move(res.data));
  });
}

void Client::read_direct(FileState& fs, std::uint64_t offset, std::uint32_t len,
                         std::function<void(Result<Bytes>)> cb) {
  const std::uint64_t size = fs.attr.size;
  const std::uint64_t end = std::min<std::uint64_t>(size, offset + len);
  if (end <= offset) {
    ++ops_completed_;
    cb(Bytes{});
    return;
  }
  const std::uint64_t n = end - offset;
  SliceVec slices;
  if (!protocol::slice_range_into(fs.extents, cfg_.block_size, offset, n, slices)) {
    cb(ErrorCode::kIoError);
    return;
  }

  const FileId file = fs.file;
  auto fan = std::make_shared<ReadFan>();
  fan->buf = take_buf();
  fan->buf.resize(n);  // slices overwrite every byte; resize just sizes it
  fan->cb = std::move(cb);
  fan->expected = slices.size();
  auto complete = [this, fan](Status st) {
    if (!st.is_ok() && fan->status.is_ok()) fan->status = st;
    if (++fan->seen != fan->expected) return;
    if (!fan->status.is_ok()) {
      recycle_buf(std::move(fan->buf));
      fan->cb(fan->status.error());
      return;
    }
    ++ops_completed_;
    enforce_cache_limit();
    fan->cb(std::move(fan->buf));
  };

  // Pages fetched from disk may only enter the cache if the lock that
  // protected the fetch is STILL held, same incarnation — otherwise a fetch
  // completing after a demand invalidated this file would pollute the cache
  // with an unprotected (and soon stale) page.
  const std::uint32_t fetch_gen = fs.lock_gen;
  for (const auto& s : slices) {
    if (BlockCache::Page* page = cache_.find(file, s.file_block)) {
      std::copy_n(page->data.begin() + s.offset_in_block, s.len,
                  fan->buf.begin() + static_cast<std::ptrdiff_t>(s.buf_offset));
      complete(Status::ok());
      continue;
    }
    fetch_block(fs, s.file_block, [this, file, s, fan, fetch_gen, complete](Result<Bytes> res) {
      if (!res.ok()) {
        complete(Status{res.error()});
        return;
      }
      std::copy_n(res.value().begin() + s.offset_in_block, s.len,
                  fan->buf.begin() + static_cast<std::ptrdiff_t>(s.buf_offset));
      auto fit2 = files_.find(file);
      const bool lock_intact = fit2 != files_.end() && fit2->second.lock_gen == fetch_gen &&
                               fit2->second.mode != LockMode::kNone;
      const bool cacheable =
          cfg_.coherence == CoherenceMode::kNfsPoll ? true : lock_intact;
      // Also never clobber a page that appeared (dirty) while we fetched.
      if (cacheable && cache_.peek(file, s.file_block) == nullptr) {
        cache_.put(file, s.file_block, std::move(res).value(), /*dirty=*/false);
      } else {
        recycle_buf(std::move(res).value());
      }
      complete(Status::ok());
    });
  }
}

void Client::write_direct(FileState& fs, std::uint64_t offset, Bytes data,
                          std::function<void(Status)> cb) {
  SliceVec slices;
  if (!protocol::slice_range_into(fs.extents, cfg_.block_size, offset, data.size(), slices)) {
    recycle_buf(std::move(data));
    cb(Status{ErrorCode::kIoError});
    return;
  }

  const FileId file = fs.file;
  auto fan = std::make_shared<WriteFan>();
  fan->data = std::move(data);
  fan->cb = std::move(cb);
  fan->expected = slices.size();
  auto complete = [this, fan](Status st) {
    if (!st.is_ok() && fan->status.is_ok()) fan->status = st;
    if (++fan->seen != fan->expected) return;
    if (fan->status.is_ok()) ++ops_completed_;
    enforce_cache_limit();
    recycle_buf(std::move(fan->data));  // every slice has consumed its span
    fan->cb(fan->status);
  };

  for (const auto& s : slices) {
    if (s.len == cfg_.block_size) {
      Bytes block = take_buf();
      block.assign(fan->data.begin() + static_cast<std::ptrdiff_t>(s.buf_offset),
                   fan->data.begin() + static_cast<std::ptrdiff_t>(s.buf_offset + s.len));
      cache_.put(file, s.file_block, std::move(block), /*dirty=*/true);
      complete(Status::ok());
      continue;
    }
    if (BlockCache::Page* page = cache_.find(file, s.file_block)) {
      std::copy_n(fan->data.begin() + static_cast<std::ptrdiff_t>(s.buf_offset), s.len,
                  page->data.begin() + s.offset_in_block);
      page->dirty = true;
      complete(Status::ok());
      continue;
    }
    // Partial write of an uncached block: read-modify-write. Counted as an
    // in-flight write so a concurrent lock demand waits for it.
    ++fs.writes_in_flight;
    const std::uint64_t seq = fs.mode_seq;
    fetch_block(fs, s.file_block, [this, file, s, seq, fan, complete](Result<Bytes> res) {
      auto fit2 = files_.find(file);
      if (fit2 != files_.end() && fit2->second.writes_in_flight > 0) {
        --fit2->second.writes_in_flight;
      }
      if (!res.ok()) {
        complete(Status{res.error()});
        return;
      }
      // Demands wait on writes_in_flight, but a lease ride-down does not:
      // if the lock changed while the fill was in flight, the dirty put
      // would outlive its serialization.
      if (fit2 == files_.end() || fit2->second.mode_seq != seq ||
          fit2->second.mode != LockMode::kExclusive) {
        recycle_buf(std::move(res).value());
        complete(Status{ErrorCode::kLockConflict});
        return;
      }
      Bytes block = std::move(res).value();
      std::copy_n(fan->data.begin() + static_cast<std::ptrdiff_t>(s.buf_offset), s.len,
                  block.begin() + s.offset_in_block);
      cache_.put(file, s.file_block, std::move(block), /*dirty=*/true);
      complete(Status::ok());
    });
  }
}

// ---------------------------------------------------------------------------
// Server-shipped data path (traditional / NFS baselines)

void Client::read_shipped(FileState& fs, std::uint64_t offset, std::uint32_t len,
                          std::function<void(Result<Bytes>)> cb) {
  const FileId file = fs.file;

  // Serve entirely from cache when possible (NFS semantics: the cache is
  // trusted while the attributes are fresh — possibly stale data).
  const std::uint64_t end = std::min<std::uint64_t>(fs.attr.size, offset + len);
  if (end > offset) {
    const std::uint64_t n = end - offset;
    const std::uint32_t bs = cfg_.block_size;
    bool all_cached = true;
    for (std::uint64_t fb = offset / bs; fb <= (end - 1) / bs; ++fb) {
      if (cache_.peek(file, fb) == nullptr) {
        all_cached = false;
        break;
      }
    }
    if (all_cached) {
      Bytes out = take_buf();
      out.resize(n);
      for (std::uint64_t pos = offset; pos < end;) {
        const std::uint64_t fb = pos / bs;
        const std::uint32_t in_block = static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(bs - in_block, end - pos));
        const BlockCache::Page* page = cache_.find(file, fb);
        std::copy_n(page->data.begin() + in_block, take,
                    out.begin() + static_cast<std::ptrdiff_t>(pos - offset));
        pos += take;
      }
      ++ops_completed_;
      cb(std::move(out));
      return;
    }
  }

  transport_.send_request(
      protocol::ReadDataReq{file, offset, len},
      [this, file, offset, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          cb(ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                         : ErrorCode::kTimeout);
          return;
        }
        if (const auto* rep = std::get_if<protocol::DataReply>(&ev.body)) {
          FileState& fs2 = state_for(file);
          // The server clamped by its own size; what came back proves the
          // file extends at least this far.
          fs2.attr.size = std::max<std::uint64_t>(fs2.attr.size, offset + rep->data.size());
          // Cache fully covered blocks for future hits (NFS-style caching).
          const std::uint32_t bs = cfg_.block_size;
          if (offset % bs == 0) {
            for (std::uint64_t off = 0; off + bs <= rep->data.size(); off += bs) {
              Bytes block = take_buf();
              block.assign(rep->data.begin() + static_cast<std::ptrdiff_t>(off),
                           rep->data.begin() + static_cast<std::ptrdiff_t>(off + bs));
              cache_.put(file, (offset + off) / bs, std::move(block), /*dirty=*/false);
            }
          }
          ++ops_completed_;
          cb(rep->data);
          return;
        }
        if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          cb(err->code);
          return;
        }
        cb(ErrorCode::kInvalidArgument);
      });
}

void Client::write_shipped(FileState& fs, std::uint64_t offset, Bytes data,
                           std::function<void(Status)> cb) {
  const FileId file = fs.file;
  const std::uint64_t end = offset + data.size();
  // Write-through: the cached copies of the touched blocks are stale now;
  // drop them rather than patching partially covered pages.
  const std::uint32_t bs = cfg_.block_size;
  for (std::uint64_t fb = offset / bs; fb <= (end > 0 ? (end - 1) / bs : 0); ++fb) {
    cache_.invalidate_file(file);  // coarse but simple: whole-file drop
    break;
  }
  transport_.send_request(
      protocol::WriteDataReq{file, offset, std::move(data)},
      [this, file, end, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          cb(Status{ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                                : ErrorCode::kTimeout});
          return;
        }
        if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          cb(Status{err->code});
          return;
        }
        FileState& fs2 = state_for(file);
        fs2.attr.size = std::max(fs2.attr.size, end);
        ++ops_completed_;
        cb(Status::ok());
      });
}

// ---------------------------------------------------------------------------
// Flushing

void Client::flush_file(FileId file, std::function<void(Status)> cb) {
  auto fit = files_.find(file);
  if (fit == files_.end()) {
    cb(Status::ok());
    return;
  }
  FileState& fs = fit->second;
  auto dirty = cache_.dirty_blocks(file);
  if (dirty.empty()) {
    cb(Status::ok());
    return;
  }

  auto fan = std::make_shared<FanIn>();
  fan->expected = dirty.size();
  fan->done = std::move(cb);  // same signature — no wrapping closure needed

  for (std::uint64_t fb : dirty) {
    const BlockCache::Page* page = cache_.peek(file, fb);
    STANK_ASSERT(page != nullptr);
    write_block_through(fs, fb, page->data, [fan](Status st) { fan->complete(st); });
  }
}

void Client::write_block_through(FileState& fs, std::uint64_t fb, const Bytes& data,
                                 std::function<void(Status)> cb) {
  DiskId disk;
  storage::BlockAddr addr;
  if (!protocol::locate_block(fs.extents, fb, disk, addr)) {
    cb(Status{ErrorCode::kIoError});
    return;
  }
  storage::IoRequest io;
  io.initiator = cfg_.id;
  io.disk = disk;
  io.op = storage::IoOp::kWrite;
  io.addr = addr;
  io.count = 1;
  io.io_key = (static_cast<std::uint64_t>(server_incarnation_) << 32) | transport_.epoch();
  io.data = take_buf();  // snapshot of the page at flush time
  io.data.assign(data.begin(), data.end());

  const FileId file = fs.file;
  const std::uint32_t gen = gen_;
  Bytes snapshot = take_buf();  // second copy stays behind for the compare
  snapshot.assign(data.begin(), data.end());
  san_->submit(std::move(io),
               [this, gen, file, fb, snapshot = std::move(snapshot),
                cb = std::move(cb)](storage::IoResult res) mutable {
                 if (gen != gen_) return;
                 if (res.status.is_ok()) {
                   // Only mark clean if the page still holds exactly what we
                   // wrote; a concurrent process write must stay dirty.
                   const BlockCache::Page* page = cache_.peek(file, fb);
                   if (page != nullptr && page->data == snapshot) {
                     cache_.mark_clean(file, fb);
                   }
                 }
                 recycle_buf(std::move(snapshot));
                 cb(res.status);
               });
}

void Client::flush_all(std::function<void(Status)> cb) {
  auto dirty = cache_.all_dirty();
  if (dirty.empty()) {
    cb(Status::ok());
    return;
  }
  auto fan = std::make_shared<FanIn>();
  fan->expected = dirty.size();
  fan->done = std::move(cb);
  for (const auto& [file, fb] : dirty) {
    auto fit = files_.find(file);
    if (fit == files_.end()) {
      fan->complete(Status{ErrorCode::kIoError});
      continue;
    }
    const BlockCache::Page* page = cache_.peek(file, fb);
    if (page == nullptr || !page->dirty) {
      fan->complete(Status::ok());
      continue;
    }
    write_block_through(fit->second, fb, page->data, [fan](Status st) { fan->complete(st); });
  }
}

// ---------------------------------------------------------------------------
// NFS attribute polling

void Client::maybe_revalidate(FileState& fs, std::function<void(Status)> cb) {
  const sim::LocalTime now = clock_.now();
  if (fs.attr_known && now - fs.last_validate <= cfg_.attr_timeout) {
    cb(Status::ok());
    return;
  }
  const FileId file = fs.file;
  const std::uint64_t old_mtime = fs.attr.mtime_ns;
  transport_.send_request(
      protocol::GetAttrReq{file},
      [this, file, old_mtime, cb = std::move(cb)](const protocol::ReplyEvent& ev) {
        if (ev.outcome != protocol::ReplyOutcome::kAck) {
          cb(Status{ev.outcome == protocol::ReplyOutcome::kNack ? ErrorCode::kNacked
                                                                : ErrorCode::kTimeout});
          return;
        }
        if (const auto* rep = std::get_if<protocol::AttrReply>(&ev.body)) {
          FileState& fs2 = state_for(file);
          if (fs2.attr_known && rep->attr.mtime_ns != old_mtime) {
            // File changed on the server: NFS semantics discard the cache.
            cache_.invalidate_file(file);
          }
          fs2.attr = rep->attr;
          fs2.extents = rep->extents;
          fs2.attr_known = true;
          fs2.last_validate = clock_.now();
          cb(Status::ok());
          return;
        }
        if (const auto* err = std::get_if<protocol::ErrReply>(&ev.body)) {
          cb(Status{err->code});
          return;
        }
        cb(Status{ErrorCode::kInvalidArgument});
      });
}

// ---------------------------------------------------------------------------
// Byzantine behaviors (see client/byzantine.hpp and DESIGN.md §13)

void Client::arm_byzantine_timers() {
  if (cfg_.byzantine.replay_old_session && replay_timer_ == 0) {
    replay_timer_ = clock_.schedule_after(sim::local_millis(400), [this]() { replay_tick(); });
  }
  if (cfg_.byzantine.forge_lock_claims && forge_timer_ == 0) {
    forge_timer_ = clock_.schedule_after(sim::local_millis(600), [this]() { forge_tick(); });
  }
}

void Client::cancel_byzantine_timers() {
  if (rogue_timer_ != 0) {
    clock_.cancel(rogue_timer_);
    rogue_timer_ = 0;
  }
  if (replay_timer_ != 0) {
    clock_.cancel(replay_timer_);
    replay_timer_ = 0;
  }
  if (forge_timer_ != 0) {
    clock_.cancel(forge_timer_);
    forge_timer_ = 0;
  }
}

std::uint32_t Client::byz_rand() {
  if (byz_rng_state_ == 0) {
    byz_rng_state_ = cfg_.id.value() * 2654435761u + 12345u;
    if (byz_rng_state_ == 0) byz_rng_state_ = 1;
  }
  byz_rng_state_ ^= byz_rng_state_ << 13;
  byz_rng_state_ ^= byz_rng_state_ >> 17;
  byz_rng_state_ ^= byz_rng_state_ << 5;
  return byz_rng_state_;
}

void Client::snapshot_rogue_writes() {
  // Resolve every dirty page to its (disk, addr) NOW, with the extents and
  // registration key of the dying session; the flusher never re-resolves or
  // re-keys — that staleness is the attack.
  rogue_io_key_ =
      (static_cast<std::uint64_t>(server_incarnation_) << 32) | transport_.epoch();
  rogue_writes_.clear();
  for (const auto& [file, fb] : cache_.all_dirty()) {
    auto fit = files_.find(file);
    if (fit == files_.end()) continue;
    DiskId disk;
    storage::BlockAddr addr;
    if (!protocol::locate_block(fit->second.extents, fb, disk, addr)) continue;
    const BlockCache::Page* page = cache_.peek(file, fb);
    if (page == nullptr) continue;
    rogue_writes_.push_back(RogueWrite{disk, addr, page->data});
  }
  if (rogue_writes_.empty()) return;
  // Long enough (~4s of 50ms rounds) to straddle the server's fence+steal and
  // the next holder's first writes — the window the fence must actually close.
  rogue_rounds_left_ = 80;
  this->trace("byz", [&] {
    return sim::cat("snapshotted ", rogue_writes_.size(), " dirty pages for rogue flushing");
  });
  if (rogue_timer_ == 0) {
    rogue_timer_ = clock_.schedule_after(sim::local_millis(50), [this]() { rogue_flush_tick(); });
  }
}

void Client::rogue_flush_tick() {
  rogue_timer_ = 0;
  if (crashed_ || rogue_rounds_left_ == 0 || rogue_writes_.empty()) return;
  --rogue_rounds_left_;
  for (const auto& rw : rogue_writes_) {
    storage::IoRequest io;
    io.initiator = cfg_.id;
    io.disk = rw.disk;
    io.op = storage::IoOp::kWrite;
    io.addr = rw.addr;
    io.count = 1;
    io.io_key = rogue_io_key_;  // deliberately stale: the dead session's key
    io.data = rw.data;
    san_->submit(std::move(io), [](storage::IoResult) {});
  }
  rogue_timer_ = clock_.schedule_after(sim::local_millis(50), [this]() { rogue_flush_tick(); });
}

void Client::replay_tick() {
  replay_timer_ = 0;
  if (crashed_) return;
  if (!captured_.empty()) {
    // Prefer a datagram captured in a DEAD session (older epoch or server
    // incarnation); fall back to a same-session duplicate, which exercises
    // the dedup window instead.
    const std::uint32_t cur_epoch = transport_.epoch();
    const std::uint32_t cur_inc = transport_.incarnation();
    const CapturedDatagram* pick = nullptr;
    for (const auto& c : captured_) {
      if (c.epoch != cur_epoch || c.incarnation != cur_inc) {
        pick = &c;
        break;
      }
    }
    if (pick == nullptr) {
      pick = &captured_[byz_rand() % captured_.size()];
    }
    transport_.inject_datagram(pick->bytes);
  }
  replay_timer_ = clock_.schedule_after(sim::local_millis(400), [this]() { replay_tick(); });
}

void Client::forge_tick() {
  forge_timer_ = 0;
  if (crashed_) return;
  if (registered_) {
    // Claim release/compliance for a lock and generation this client was
    // never granted. Generations are small counters, so guessing one that is
    // current is easy — before grant cookies this released locks whose real
    // grant was still in flight to us. The forged cookie is a guess; the
    // server must reject the claim on that mismatch. Prefer files we know
    // exist.
    FileId file{1 + (byz_rand() % 4)};
    if (!files_.empty()) {
      auto it = files_.begin();
      std::advance(it, byz_rand() % files_.size());
      file = it->first;
    }
    const std::uint32_t gen = 1 + (byz_rand() % 4);
    const std::uint64_t cookie =
        (static_cast<std::uint64_t>(byz_rand()) << 32) | byz_rand();
    if ((byz_rand() & 1u) != 0) {
      transport_.send_request(protocol::UnlockReq{file, LockMode::kNone, gen, cookie},
                              [](const protocol::ReplyEvent&) {});
    } else {
      transport_.send_request(protocol::DemandDoneReq{file, LockMode::kNone, gen, cookie},
                              [](const protocol::ReplyEvent&) {});
    }
  }
  forge_timer_ = clock_.schedule_after(sim::local_millis(600), [this]() { forge_tick(); });
}

void Client::record_trace(const char* category, std::string detail) {
  trace_->record(engine_->now(), cfg_.id, category, std::move(detail));
}

}  // namespace stank::client
