// Client-side write-back block cache.
//
// Pages are keyed by (file, file-block index). Dirty pages stay in the cache
// until an explicit flush — a demand, an fsync, or lease phase 4 — which is
// precisely the behaviour that makes "fence and steal" unsafe (section 2.1):
// fencing strands these dirty pages.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/strong_id.hpp"

namespace stank::client {

class BlockCache {
 public:
  // capacity_pages = 0 means unbounded.
  explicit BlockCache(std::uint32_t block_size, std::size_t capacity_pages = 0);

  struct Page {
    Bytes data;
    bool dirty{false};
  };
  using Key = std::pair<FileId, std::uint64_t>;

  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }

  // Returns the cached page or nullptr. Counts a hit/miss.
  [[nodiscard]] Page* find(FileId file, std::uint64_t fb);
  // Lookup without touching hit/miss statistics.
  [[nodiscard]] const Page* peek(FileId file, std::uint64_t fb) const;

  // Inserts or replaces a page (data must be exactly one block).
  Page& put(FileId file, std::uint64_t fb, Bytes data, bool dirty);

  // Marks an existing page dirty.
  void mark_dirty(FileId file, std::uint64_t fb);
  // Marks a page clean (it reached the disk).
  void mark_clean(FileId file, std::uint64_t fb);

  [[nodiscard]] std::vector<std::uint64_t> dirty_blocks(FileId file) const;
  [[nodiscard]] std::vector<Key> all_dirty() const;
  // Allocation-free check used by the release/demand fast paths: whether any
  // page of `file` is dirty, without materializing the block list.
  [[nodiscard]] bool has_dirty(FileId file) const;

  // Drops every page of a file (dirty pages are LOST — callers must have
  // flushed first unless loss is the point, e.g. post-expiry invalidation).
  void invalidate_file(FileId file);
  void invalidate_all();

  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }
  [[nodiscard]] std::size_t dirty_count() const;
  [[nodiscard]] std::size_t file_page_count(FileId file) const;
  // Distinct files with at least one cached page.
  [[nodiscard]] std::vector<FileId> cached_files() const;

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  // --- Capacity management (LRU) ------------------------------------------
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t pages) { capacity_ = pages; }
  [[nodiscard]] bool over_capacity() const {
    return capacity_ != 0 && pages_.size() > capacity_;
  }
  // Evicts the least-recently-used CLEAN page; returns its key, or nullopt
  // when every cached page is dirty (the caller must flush first — dropping
  // dirty data silently would be a lost update).
  std::optional<Key> evict_clean_lru();
  // Least-recently-used dirty page, if any (flush-then-evict candidate).
  [[nodiscard]] std::optional<Key> oldest_dirty() const;

 private:
  struct Entry {
    Page page;
    std::list<Key>::iterator lru_it;
  };
  void touch(const std::map<Key, Entry>::iterator& it);

  std::uint32_t block_size_;
  std::size_t capacity_;
  std::map<Key, Entry> pages_;
  std::list<Key> lru_;  // front = most recently used
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace stank::client
