#include "storage/virtual_disk.hpp"

#include "common/assert.hpp"
#include "common/byte_pool.hpp"

namespace stank::storage {

VirtualDisk::VirtualDisk(DiskId id, BlockAddr capacity_blocks, std::uint32_t block_size)
    : id_(id), capacity_(capacity_blocks), block_size_(block_size) {
  STANK_ASSERT(capacity_blocks > 0);
  STANK_ASSERT(block_size > 0);
}

IoResult VirtualDisk::execute(const IoRequest& req) {
  auto key_it = keys_.find(req.initiator);
  if (key_it != keys_.end() &&
      (!key_it->second.has_value() || *key_it->second != req.io_key)) {
    // Blocked outright, or a command from a superseded registration (a slow
    // computer's late I/O — exactly what the paper's fence must stop).
    ++fence_rejects_;
    ++rejects_by_initiator_[req.initiator];
    return IoResult{Status{ErrorCode::kFenced}, {}};
  }
  if (req.count == 0 || req.addr + req.count > capacity_) {
    return IoResult{Status{ErrorCode::kInvalidArgument}, {}};
  }

  if (req.op == IoOp::kWrite) {
    if (req.data.size() != static_cast<std::size_t>(req.count) * block_size_) {
      return IoResult{Status{ErrorCode::kInvalidArgument}, {}};
    }
    for (std::uint32_t i = 0; i < req.count; ++i) {
      Bytes& blk = blocks_[req.addr + i];
      blk.assign(req.data.begin() + static_cast<std::ptrdiff_t>(i) * block_size_,
                 req.data.begin() + static_cast<std::ptrdiff_t>(i + 1) * block_size_);
    }
    ++writes_;
    return IoResult{Status::ok(), {}};
  }

  // Pooled result buffer: resize() zero-fills, which unwritten blocks need.
  Bytes out = take_buf();
  out.resize(static_cast<std::size_t>(req.count) * block_size_);
  for (std::uint32_t i = 0; i < req.count; ++i) {
    auto it = blocks_.find(req.addr + i);
    if (it != blocks_.end()) {
      std::copy(it->second.begin(), it->second.end(),
                out.begin() + static_cast<std::ptrdiff_t>(i) * block_size_);
    }
  }
  ++reads_;
  return IoResult{Status::ok(), std::move(out)};
}

Bytes VirtualDisk::peek(BlockAddr addr) const {
  auto it = blocks_.find(addr);
  return it == blocks_.end() ? Bytes{} : it->second;
}

}  // namespace stank::storage
