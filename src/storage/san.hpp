// The storage area network fabric.
//
// Routes block I/O and admin (fence) commands from initiators — clients and
// servers — to disks, with its own latency model and its own independent
// partition state. The paper's "two network problem" arises exactly because
// this fabric and the control network fail independently: a client cut off
// from the server usually still reaches the disks, and vice versa.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/reachability.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "storage/io.hpp"
#include "storage/virtual_disk.hpp"

namespace stank::storage {

struct SanConfig {
  sim::Duration latency{sim::micros(500)};  // submit-to-completion base service time
  sim::Duration jitter{sim::micros(100)};
  double drop_probability{0.0};  // lost command: completes with kIoError after timeout
  sim::Duration error_timeout{sim::millis(50)};
  // Per-initiator extra service delay; models the paper's "slow computer"
  // whose late commands fencing must stop.
  std::unordered_map<NodeId, sim::Duration> initiator_delay;
};

struct SanStats {
  std::uint64_t ios_submitted{0};
  std::uint64_t ios_completed{0};
  std::uint64_t ios_failed_partition{0};
  std::uint64_t ios_failed_fenced{0};
  std::uint64_t admin_ops{0};
  std::uint64_t bytes_transferred{0};
};

class SanFabric {
 public:
  SanFabric(sim::Engine& engine, sim::Rng rng, SanConfig cfg = {});

  // The fabric owns its disks.
  VirtualDisk& add_disk(DiskId id, BlockAddr capacity_blocks, std::uint32_t block_size);
  [[nodiscard]] VirtualDisk& disk(DiskId id);
  [[nodiscard]] const VirtualDisk& disk(DiskId id) const;

  // Submits block I/O; the callback always fires (with kIoError on loss,
  // kFenced on rejection, kIoError on partition).
  void submit(IoRequest req, IoCallback cb);

  // Admin command from a server to a disk: travels the SAN like any other
  // command, so a SAN partition between server and disk makes fencing fail.
  void submit_admin(AdminRequest req, AdminCallback cb);

  // Initiator-to-disk reachability (directed, per the two-network model).
  [[nodiscard]] net::Reachability<NodeId, DiskId>& reachability() { return reach_; }

  // Omniscient observation tap for the verifier: fires for every I/O the
  // disk actually executed successfully (at its completion time). Not part
  // of the modelled system.
  std::function<void(const IoRequest&, const IoResult&, sim::SimTime)> on_io;

  [[nodiscard]] const SanStats& stats() const { return stats_; }
  void set_config(SanConfig cfg) { cfg_ = std::move(cfg); }
  [[nodiscard]] SanConfig& config() { return cfg_; }

 private:
  sim::Duration service_delay(NodeId initiator);

  sim::Engine* engine_;
  sim::Rng rng_;
  SanConfig cfg_;
  net::Reachability<NodeId, DiskId> reach_;
  std::unordered_map<DiskId, std::unique_ptr<VirtualDisk>> disks_;
  SanStats stats_;
};

}  // namespace stank::storage
