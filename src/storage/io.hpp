// Block I/O request/response types for the storage area network.
//
// The paper is emphatic (section 2) that SAN disks are dumb: they move
// blocks and, at most, honor a fence list. The entire disk interface is
// therefore: read blocks, write blocks, and admin fence/unfence — nothing a
// commodity drive of the era could not do.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/strong_id.hpp"

namespace stank::storage {

using BlockAddr = std::uint64_t;

enum class IoOp : std::uint8_t { kRead, kWrite };

struct IoRequest {
  NodeId initiator;      // who is performing the I/O (fencing is per-initiator)
  DiskId disk;
  IoOp op{IoOp::kRead};
  BlockAddr addr{0};     // first block
  std::uint32_t count{1};
  Bytes data;            // write payload (count * block_size bytes); empty for reads
  // Registration key: (server incarnation << 32) | session epoch. After an
  // unfence the disk only honors commands carrying the NEW key, so a slow
  // command issued before the fence can never land after it — SCSI-3
  // persistent reservation style. The incarnation half matters because epoch
  // numbers restart at 1 on every server reboot: a bare-epoch key from a
  // pre-restart session could collide with a freshly installed one.
  std::uint64_t io_key{0};
};

struct IoResult {
  Status status;
  Bytes data;  // read payload on success
};

using IoCallback = std::function<void(IoResult)>;

// Administrative commands the locking authority sends to devices. Fencing by
// initiator id is exactly the capability the paper assumes of SAN devices or
// switches.
enum class AdminOp : std::uint8_t { kFence, kUnfence };

struct AdminRequest {
  NodeId requester;  // the server issuing the command
  DiskId disk;
  AdminOp op{AdminOp::kFence};
  NodeId target;     // initiator to (un)fence
  // kUnfence: the registration key future commands must carry (0 = accept
  // any, restoring the pre-fence state).
  std::uint64_t new_key{0};
};

using AdminCallback = std::function<void(Status)>;

}  // namespace stank::storage
