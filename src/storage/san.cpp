#include "storage/san.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/byte_pool.hpp"

namespace stank::storage {

SanFabric::SanFabric(sim::Engine& engine, sim::Rng rng, SanConfig cfg)
    : engine_(&engine), rng_(rng), cfg_(std::move(cfg)) {}

VirtualDisk& SanFabric::add_disk(DiskId id, BlockAddr capacity_blocks, std::uint32_t block_size) {
  auto [it, inserted] =
      disks_.emplace(id, std::make_unique<VirtualDisk>(id, capacity_blocks, block_size));
  STANK_ASSERT_MSG(inserted, "duplicate disk id");
  return *it->second;
}

VirtualDisk& SanFabric::disk(DiskId id) {
  auto it = disks_.find(id);
  STANK_ASSERT_MSG(it != disks_.end(), "unknown disk");
  return *it->second;
}

const VirtualDisk& SanFabric::disk(DiskId id) const {
  auto it = disks_.find(id);
  STANK_ASSERT_MSG(it != disks_.end(), "unknown disk");
  return *it->second;
}

sim::Duration SanFabric::service_delay(NodeId initiator) {
  sim::Duration d = cfg_.latency;
  if (cfg_.jitter.ns > 0) {
    d += sim::Duration{rng_.uniform_int(0, cfg_.jitter.ns)};
  }
  auto it = cfg_.initiator_delay.find(initiator);
  if (it != cfg_.initiator_delay.end()) {
    d += it->second;
  }
  return d;
}

void SanFabric::submit(IoRequest req, IoCallback cb) {
  STANK_ASSERT(cb != nullptr);
  ++stats_.ios_submitted;

  if (!reach_.can_reach(req.initiator, req.disk)) {
    ++stats_.ios_failed_partition;
    recycle_buf(std::move(req.data));  // command lost before reaching the disk
    // The initiator observes a timeout, not an instant failure.
    engine_->schedule_after(cfg_.error_timeout, [cb = std::move(cb)]() {
      cb(IoResult{Status{ErrorCode::kIoError}, {}});
    });
    return;
  }
  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    recycle_buf(std::move(req.data));
    engine_->schedule_after(cfg_.error_timeout, [cb = std::move(cb)]() {
      cb(IoResult{Status{ErrorCode::kIoError}, {}});
    });
    return;
  }

  const sim::Duration delay = service_delay(req.initiator);
  engine_->schedule_after(delay, [this, req = std::move(req), cb = std::move(cb)]() mutable {
    // A partition that formed while the command was in flight also kills it.
    if (!reach_.can_reach(req.initiator, req.disk)) {
      ++stats_.ios_failed_partition;
      recycle_buf(std::move(req.data));
      cb(IoResult{Status{ErrorCode::kIoError}, {}});
      return;
    }
    auto it = disks_.find(req.disk);
    STANK_ASSERT_MSG(it != disks_.end(), "I/O to unknown disk");
    IoResult result = it->second->execute(req);
    ++stats_.ios_completed;
    if (result.status.is_ok()) {
      stats_.bytes_transferred += req.op == IoOp::kWrite ? req.data.size() : result.data.size();
      if (on_io) {
        on_io(req, result, engine_->now());
      }
    } else if (result.status.error() == ErrorCode::kFenced) {
      ++stats_.ios_failed_fenced;
    }
    // The disk copied a write payload into its blocks; the buffer is ours.
    recycle_buf(std::move(req.data));
    cb(std::move(result));
  });
}

void SanFabric::submit_admin(AdminRequest req, AdminCallback cb) {
  STANK_ASSERT(cb != nullptr);
  ++stats_.admin_ops;

  if (!reach_.can_reach(req.requester, req.disk)) {
    engine_->schedule_after(cfg_.error_timeout,
                            [cb = std::move(cb)]() { cb(Status{ErrorCode::kIoError}); });
    return;
  }

  const sim::Duration delay = service_delay(req.requester);
  engine_->schedule_after(delay, [this, req, cb = std::move(cb)]() {
    if (!reach_.can_reach(req.requester, req.disk)) {
      cb(Status{ErrorCode::kIoError});
      return;
    }
    auto it = disks_.find(req.disk);
    STANK_ASSERT_MSG(it != disks_.end(), "admin to unknown disk");
    if (req.op == AdminOp::kFence) {
      it->second->fence(req.target);
    } else {
      it->second->unfence(req.target, req.new_key);
    }
    cb(Status::ok());
  });
}

}  // namespace stank::storage
