// A dumb shared block device.
//
// Holds a sparse array of fixed-size blocks and a fence list of initiators
// whose I/O it must reject. It keeps no locks, no leases, no views — per the
// paper, drives "cannot execute non-storage code".
#pragma once

#include <optional>
#include <unordered_map>

#include "common/strong_id.hpp"
#include "storage/io.hpp"

namespace stank::storage {

class VirtualDisk {
 public:
  VirtualDisk(DiskId id, BlockAddr capacity_blocks, std::uint32_t block_size);

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] BlockAddr capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }

  // Executes one I/O synchronously (the SAN fabric models latency around
  // this call). Enforces the fence list and bounds.
  [[nodiscard]] IoResult execute(const IoRequest& req);

  // Admin path. Three per-initiator states:
  //   no entry        — accept any command (the default),
  //   blocked         — accept none (fenced),
  //   keyed(k)        — accept only commands carrying io_key == k.
  void fence(NodeId initiator) { keys_[initiator] = std::nullopt; }
  // new_key == 0 restores accept-any; otherwise only that key is honored,
  // which permanently locks out commands issued under older registrations.
  void unfence(NodeId initiator, std::uint64_t new_key = 0) {
    if (new_key == 0) {
      keys_.erase(initiator);
    } else {
      keys_[initiator] = new_key;
    }
  }
  [[nodiscard]] bool is_fenced(NodeId initiator) const {
    auto it = keys_.find(initiator);
    return it != keys_.end() && !it->second.has_value();
  }
  [[nodiscard]] std::size_t fenced_count() const {
    std::size_t n = 0;
    for (const auto& [node, key] : keys_) {
      if (!key.has_value()) ++n;
    }
    return n;
  }

  // Omniscient access for the verifier and tests only: reads the current
  // content of a block without going through the SAN. Returns an empty
  // buffer for never-written blocks.
  [[nodiscard]] Bytes peek(BlockAddr addr) const;
  [[nodiscard]] bool ever_written(BlockAddr addr) const { return blocks_.contains(addr); }

  // Statistics a real drive would expose.
  [[nodiscard]] std::uint64_t reads_served() const { return reads_; }
  [[nodiscard]] std::uint64_t writes_served() const { return writes_; }
  [[nodiscard]] std::uint64_t fenced_rejections() const { return fence_rejects_; }
  // Rejections attributed to one initiator — the byzantine harness uses this
  // to credit the trusted base with the writes each misbehavior lost.
  [[nodiscard]] std::uint64_t fenced_rejections(NodeId initiator) const {
    auto it = rejects_by_initiator_.find(initiator);
    return it == rejects_by_initiator_.end() ? 0 : it->second;
  }

 private:
  DiskId id_;
  BlockAddr capacity_;
  std::uint32_t block_size_;
  std::unordered_map<BlockAddr, Bytes> blocks_;
  // nullopt = blocked; value = required io_key.
  std::unordered_map<NodeId, std::optional<std::uint64_t>> keys_;
  std::unordered_map<NodeId, std::uint64_t> rejects_by_initiator_;
  std::uint64_t reads_{0};
  std::uint64_t writes_{0};
  std::uint64_t fence_rejects_{0};
};

}  // namespace stank::storage
