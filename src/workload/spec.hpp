// Synthetic workload parameters.
//
// The paper defers workload measurement to future work ("measurement of
// modern file system workloads are required to experimentally verify our
// design", section 6); these synthetic mixes are the stand-in: a pool of
// preallocated files, Zipf-popularity access, a read/write mix, and
// exponential think times per client.
#pragma once

#include <cstdint>

namespace stank::workload {

// Canonical access patterns, stressing different parts of the lock protocol:
//   kRandomZipf        popularity-skewed random block I/O (default)
//   kSequential        every client scans files/blocks in order (backup-like)
//   kProducerConsumer  client 0 writes, everyone else reads the same pool
//                      (maximum demand/downgrade churn)
//   kPrivate           client i touches only files f with f % clients == i
//                      (no sharing: locks acquired once, then pure cache)
enum class Pattern : std::uint8_t {
  kRandomZipf = 0,
  kSequential,
  kProducerConsumer,
  kPrivate,
};

[[nodiscard]] constexpr const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kRandomZipf: return "random-zipf";
    case Pattern::kSequential: return "sequential";
    case Pattern::kProducerConsumer: return "producer-consumer";
    case Pattern::kPrivate: return "private-files";
  }
  return "?";
}

struct WorkloadSpec {
  Pattern pattern{Pattern::kRandomZipf};
  std::uint32_t num_clients{4};
  std::uint32_t num_files{16};
  std::uint32_t file_blocks{16};       // preallocated size of each file, in blocks
  double read_fraction{0.7};           // remaining ops are block writes
  double mean_interarrival_s{0.050};   // per-client exponential think time
  double zipf_s{0.8};                  // file popularity skew (0 = uniform)
  double run_seconds{60.0};            // active workload window
  // Quiet period after the run for recovery, phase-4 flushes and final
  // syncs; <= 0 picks a default derived from the lease period.
  double settle_seconds{-1.0};
  std::uint64_t seed{1};
};

}  // namespace stank::workload
