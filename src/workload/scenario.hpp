// Scenario: one complete simulated Storage Tank installation plus a workload
// driver, failure injector, and verifier.
//
// This is the single entry point the examples and experiment benches build
// on. A scenario owns the engine, both networks, the disks, the server, the
// clients (each with an independently rate-skewed clock inside the epsilon
// band), the omniscient history recorder, and a per-client open/lock/read/
// write op generator. run() executes setup -> workload+failures -> settle ->
// consistency check and returns every number the tables need.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "metrics/histogram.hpp"
#include "net/control_net.hpp"
#include "obs/sampler.hpp"
#include "obs/watchdog.hpp"
#include "server/server.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "storage/san.hpp"
#include "verify/checker.hpp"
#include "verify/history.hpp"
#include "workload/failures.hpp"
#include "workload/spec.hpp"

namespace stank::workload {

struct ScenarioConfig {
  WorkloadSpec workload;
  core::LeaseConfig lease;
  server::RecoveryMode recovery{server::RecoveryMode::kLeaseAndFence};
  core::LeaseStrategy strategy{core::LeaseStrategy::kStorageTank};
  client::CoherenceMode coherence{client::CoherenceMode::kLocks};
  client::DataPath data_path{client::DataPath::kDirectSan};
  net::NetConfig control_net;
  storage::SanConfig san;
  protocol::TransportConfig transport;
  std::uint32_t block_size{256};
  std::uint64_t disk_blocks{1u << 16};
  std::uint32_t num_disks{1};
  FailurePlan failures;
  // Post-restart grace period forwarded to the server; 0 = its safe default
  // tau(1+eps).
  sim::LocalDuration recovery_grace{sim::LocalDuration{0}};
  bool heal_at_settle{true};
  bool enable_trace{false};
  // Clock-rate assignment inside [1/(1+eps), 1+eps]: 0 random per node,
  // +1 clients slow / server fast (adversarial for availability),
  // -1 clients fast / server slow (adversarial for safety margins),
  // +2 ideal (all clocks exactly rate 1 — for benches that compare local
  //    and global timestamps directly).
  int clock_skew_mode{0};

  // --- Assumption-violation knobs (tools/fuzz_safety negative control) ----
  // The paper's safety guarantee rests on two assumptions; these knobs break
  // them on purpose so the checker's teeth can be demonstrated.
  //
  // Lease period the CLIENTS believe in (tau_c); 0 inherits lease.tau, which
  // always remains the server's tau_s. Theorem 3.1 needs tau_c <= tau_s; a
  // client trusting tau_c >= tau_s(1+eps) keeps serving its cache after the
  // server has provably-expired the lease and stolen the locks.
  sim::LocalDuration client_tau{sim::LocalDuration{0}};
  // Multiplier applied to every client's drawn clock rate. 1.0 keeps all
  // rates inside the legal band; values below 1/(1+eps) make client clocks
  // run slower than rate synchronization allows, stretching tau_c in real
  // time beyond what the server's tau_s(1+eps) wait covers.
  double client_rate_scale{1.0};

  // --- Adversarial clients (tools/fuzz_safety --byzantine) ----------------
  // Client index -> misbehavior set. Marked clients are recorded in the
  // history so the checker's split verdict (DESIGN.md §13) can separate
  // honest-client safety from self-inflicted byzantine damage.
  std::map<std::size_t, client::ByzantineSpec> byzantine;
  // Override for the server's demand compliance timeout; 0 keeps the
  // ServerConfig default. Byzantine episodes shorten it so an
  // ack-without-release stall escalates to fence+steal within the run.
  sim::LocalDuration demand_timeout{sim::LocalDuration{0}};
};

struct ScenarioResult {
  verify::ViolationSummary violations;
  std::vector<verify::Violation> violation_list;
  // The same list bucketed by victim (DESIGN.md §13). With no byzantine
  // clients configured, honest_violations == violation_list.
  std::vector<verify::Violation> honest_violations;
  std::vector<verify::Violation> byzantine_violations;

  std::uint64_t reads_ok{0};
  std::uint64_t writes_ok{0};
  std::uint64_t ops_failed{0};

  metrics::Counters server;
  metrics::Counters clients;  // summed across clients
  net::NetStats net;
  storage::SanStats san;
  // SAN commands the fence list rejected, summed over disks, per initiator.
  // For a byzantine run this is the count of attacks the trusted base (the
  // disks' fence lists) absorbed — the fuzzer reports it per misbehavior.
  std::map<NodeId, std::uint64_t> fence_rejects_by_initiator;

  // Peak lease bookkeeping at the server (sampled), and at the end.
  std::size_t max_lease_state_bytes{0};
  std::size_t final_lease_state_bytes{0};

  metrics::Histogram op_latency_ms;
  // The same population split by lease state: ops that ran entirely inside
  // lease phases 1/2 vs. ops that overlapped a suspect/expiry disruption.
  // The fig4 p99 of the combined track is dominated by the recovery tail;
  // these two tracks separate protocol steady-state cost from failure cost.
  metrics::Histogram op_latency_steady_ms;
  metrics::Histogram op_latency_recovery_ms;
  double sim_seconds{0.0};
  std::uint64_t engine_events{0};

  // Flight-recorder events lost to ring overwrite (0 when untraced). A
  // nonzero count on a violating run means the retained trace window may
  // not reach back to the root cause.
  std::uint64_t trace_dropped{0};
  // Invariant-watchdog threshold crossings during the run (0 when untraced).
  std::uint64_t watchdog_trips{0};

  // One-line final verdict: consistency outcome, op counts, and the network
  // summary (what the fabric did to the traffic explains a bad run).
  [[nodiscard]] std::string verdict_line() const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // The standard pipeline.
  ScenarioResult run();

  // Piecewise control for bespoke drivers (figure benches, examples).
  void setup();                 // builds nodes, preallocates, registers, opens
  void run_generators();        // starts the op generators (ends at run_seconds)
  void run_until_s(double t_s); // advance simulated time
  ScenarioResult finish();      // settle, final sync, consistency check

  // --- Access -------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] server::Server& server() { return *server_; }
  [[nodiscard]] client::Client& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }
  [[nodiscard]] net::ControlNet& control_net() { return *net_; }
  [[nodiscard]] storage::SanFabric& san() { return *san_; }
  [[nodiscard]] sim::TraceLog& trace() { return trace_; }
  // The typed flight recorder behind the trace log (always present; only fed
  // when cfg.enable_trace attached it to the nodes).
  [[nodiscard]] obs::Recorder& recorder() { return trace_.recorder(); }
  // Null unless cfg.enable_trace armed it alongside the sampler.
  [[nodiscard]] obs::Watchdog* watchdog() { return watchdog_.get(); }
  [[nodiscard]] verify::HistoryRecorder& history() { return history_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] NodeId server_node() const;
  [[nodiscard]] NodeId client_node(std::size_t i) const;
  [[nodiscard]] FileId file_id(std::size_t file_idx) const { return file_ids_.at(file_idx); }
  [[nodiscard]] client::Fd fd(std::size_t client_idx, std::size_t file_idx) const;

  // Next version for a block, drawn under the caller's lock (see the
  // generator): strictly increasing per (file, block).
  std::uint64_t next_version(FileId file, std::uint64_t block);

  // Applies one failure event immediately (the plan scheduler uses this).
  void apply_failure(const FailureEvent& ev);

 private:
  struct ClientDriver {
    std::size_t index{0};
    bool running{false};
    std::map<std::size_t, client::Fd> fds;  // file idx -> fd
    sim::Rng rng{0};
    std::uint64_t cursor{0};  // sequential patterns: absolute block position
  };
  // Picks (file, block, is_read) for this arrival under the configured
  // pattern.
  struct OpChoice {
    std::size_t file_idx{0};
    std::uint64_t block{0};
    bool is_read{true};
  };
  OpChoice choose_op(ClientDriver& d);

  void build();
  void open_all_files(std::size_t ci, std::function<void()> done);
  void schedule_next_op(std::size_t ci);
  void issue_op(std::size_t ci);
  void do_write(std::size_t ci, std::size_t fi, std::uint64_t block);
  void do_read(std::size_t ci, std::size_t fi, std::uint64_t block);
  // Records a completed op's latency into the combined histogram and into
  // the steady/recovery split, based on whether client ci's disruption token
  // still matches its issue-time snapshot.
  void note_op_latency(std::size_t ci, std::uint64_t issue_token, sim::SimTime t0);
  void sample_lease_state();
  [[nodiscard]] double now_s() const { return engine_.now().seconds(); }
  [[nodiscard]] bool workload_over() const;

  ScenarioConfig cfg_;
  sim::Engine engine_;
  sim::Rng rng_;
  sim::TraceLog trace_;
  // Null unless cfg_.enable_trace; the same gate the nodes use, so latency
  // spans cost one branch in untraced benches.
  obs::Recorder* rec_{nullptr};
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  verify::HistoryRecorder history_;

  std::unique_ptr<net::ControlNet> net_;
  std::unique_ptr<storage::SanFabric> san_;
  std::unique_ptr<server::Server> server_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<ClientDriver> drivers_;
  std::vector<FileId> file_ids_;
  std::map<std::pair<FileId, std::uint64_t>, std::uint64_t> versions_;

  std::uint64_t reads_ok_{0};
  std::uint64_t writes_ok_{0};
  std::uint64_t ops_failed_{0};
  metrics::Histogram op_latency_ms_;
  metrics::Histogram op_latency_steady_ms_;
  metrics::Histogram op_latency_recovery_ms_;
  std::size_t max_lease_bytes_{0};
  bool setup_done_{false};
  double settle_seconds_{0.0};
};

}  // namespace stank::workload
