#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"
#include "common/byte_pool.hpp"
#include "common/log.hpp"

namespace stank::workload {

namespace {

constexpr std::uint32_t kServerNode = 1;
constexpr std::uint32_t kClientBase = 100;

std::string file_path(std::size_t i) { return "/data/f" + std::to_string(i); }

}  // namespace

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.workload.seed) {
  cfg_.lease.validate();
  settle_seconds_ = cfg_.workload.settle_seconds > 0.0
                        ? cfg_.workload.settle_seconds
                        : std::max(5.0, 3.0 * cfg_.lease.tau.seconds());
}

Scenario::~Scenario() = default;

NodeId Scenario::server_node() const { return NodeId{kServerNode}; }

NodeId Scenario::client_node(std::size_t i) const {
  return NodeId{static_cast<std::uint32_t>(kClientBase + i)};
}

client::Fd Scenario::fd(std::size_t client_idx, std::size_t file_idx) const {
  return drivers_.at(client_idx).fds.at(file_idx);
}

std::uint64_t Scenario::next_version(FileId file, std::uint64_t block) {
  return ++versions_[{file, block}];
}

std::string ScenarioResult::verdict_line() const {
  char head[128];
  if (violations.total() == 0) {
    std::snprintf(head, sizeof(head), "verdict: CONSISTENT");
  } else {
    std::snprintf(head, sizeof(head),
                  "verdict: %zu VIOLATION(S) [stale=%zu lost=%zu order=%zu]",
                  violations.total(), violations.stale_reads, violations.lost_updates,
                  violations.write_order);
  }
  char ops[96];
  std::snprintf(ops, sizeof(ops), " | ops %llur/%lluw ok, %llu failed | net ",
                static_cast<unsigned long long>(reads_ok),
                static_cast<unsigned long long>(writes_ok),
                static_cast<unsigned long long>(ops_failed));
  std::string line = std::string(head) + ops + net.summary();
  // Telemetry caveats: a trace that overwrote events cannot prove where a
  // bad run started, and watchdog trips mean an invariant probe left its
  // band mid-run — both belong on the one line people actually read.
  if (trace_dropped > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " | trace dropped=%llu",
                  static_cast<unsigned long long>(trace_dropped));
    line += buf;
  }
  if (watchdog_trips > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " | watchdog trips=%llu",
                  static_cast<unsigned long long>(watchdog_trips));
    line += buf;
  }
  return line;
}

void Scenario::build() {
  net_ = std::make_unique<net::ControlNet>(engine_, rng_.fork(1), cfg_.control_net);
  san_ = std::make_unique<storage::SanFabric>(engine_, rng_.fork(2), cfg_.san);
  san_->on_io = [this](const storage::IoRequest& rq, const storage::IoResult& rs,
                       sim::SimTime t) { history_.on_disk_io(rq, rs, t, cfg_.block_size); };

  std::vector<DiskId> disks;
  for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
    const DiskId id{d + 1};
    san_->add_disk(id, cfg_.disk_blocks, cfg_.block_size);
    disks.push_back(id);
  }

  // Clock rates: any two nodes must be mutually rate-synchronized within
  // epsilon, so individual rates live in [1/sqrt(1+eps), sqrt(1+eps)].
  const double eps = cfg_.lease.epsilon;
  const double hi = std::sqrt(1.0 + eps);
  const double lo = 1.0 / hi;
  auto draw_rate = [&](bool is_server) {
    switch (cfg_.clock_skew_mode) {
      case -1: return is_server ? hi : lo;  // safety-boundary: server fast, clients slow
      case +1: return is_server ? lo : hi;  // availability-worst: server slow, clients fast
      case +2: return 1.0;                  // ideal clocks
      default: return lo + (hi - lo) * rng_.uniform();
    }
  };

  server::ServerConfig scfg;
  scfg.id = server_node();
  scfg.lease = cfg_.lease;
  scfg.recovery = cfg_.recovery;
  scfg.strategy = cfg_.strategy;
  scfg.transport = cfg_.transport;
  scfg.block_size = cfg_.block_size;
  scfg.data_disks = disks;
  scfg.recovery_grace = cfg_.recovery_grace;
  if (cfg_.demand_timeout.ns > 0) {
    scfg.demand_timeout = cfg_.demand_timeout;
  }
  server_ = std::make_unique<server::Server>(engine_, *net_, *san_,
                                             sim::LocalClock(draw_rate(true)), scfg,
                                             cfg_.enable_trace ? &trace_ : nullptr);

  for (std::uint32_t c = 0; c < cfg_.workload.num_clients; ++c) {
    client::ClientConfig ccfg;
    ccfg.id = client_node(c);
    ccfg.server = server_node();
    ccfg.lease = cfg_.lease;
    if (cfg_.client_tau.ns > 0) {
      // Assumption-violation knob: the client's contract disagrees with the
      // server's (see ScenarioConfig::client_tau).
      ccfg.lease.tau = cfg_.client_tau;
    }
    ccfg.strategy = cfg_.strategy;
    ccfg.coherence = cfg_.coherence;
    ccfg.data_path = cfg_.data_path;
    ccfg.transport = cfg_.transport;
    ccfg.block_size = cfg_.block_size;
    if (auto bit = cfg_.byzantine.find(c); bit != cfg_.byzantine.end() && bit->second.any()) {
      ccfg.byzantine = bit->second;
      history_.mark_byzantine(client_node(c));
    }
    clients_.push_back(std::make_unique<client::Client>(
        engine_, *net_, *san_, sim::LocalClock(draw_rate(false) * cfg_.client_rate_scale),
        ccfg, cfg_.enable_trace ? &trace_ : nullptr));
  }

  drivers_.resize(clients_.size());
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    drivers_[c].index = c;
    drivers_[c].rng = rng_.fork(1000 + c);
  }

  if (cfg_.enable_trace) {
    rec_ = &trace_.recorder();
    rec_->bind_engine(engine_);
    net_->set_recorder(rec_);
    // Time-series probes, snapshotted on the lease-state sampling timer.
    sampler_ = std::make_unique<obs::Sampler>(*rec_);
    sampler_->add_probe("lease_state_bytes",
                        [this]() { return static_cast<double>(server_->lease_state_bytes()); });
    sampler_->add_probe("held_files",
                        [this]() { return static_cast<double>(server_->locks().held_files()); });
    if (cfg_.strategy == core::LeaseStrategy::kStorageTank) {
      sampler_->add_probe("suspect_clients", [this]() {
        return static_cast<double>(server_->authority().suspect_count());
      });
    }
    sampler_->add_delta_probe(
        "net_sent", [this]() { return static_cast<double>(net_->stats().sent); });
    sampler_->add_delta_probe(
        "net_delivered", [this]() { return static_cast<double>(net_->stats().delivered); });
    sampler_->add_delta_probe("net_dropped", [this]() {
      const net::NetStats& s = net_->stats();
      return static_cast<double>(s.dropped_partition + s.dropped_random + s.dropped_burst +
                                 s.dropped_detached);
    });

    // Invariant watchdog, evaluated on the same lease-timer cadence as the
    // sampler (sample_lease_state). It never schedules engine events of its
    // own, so arming it cannot perturb the event sequence.
    watchdog_ = std::make_unique<obs::Watchdog>(*rec_);
    const auto n = static_cast<double>(cfg_.workload.num_clients);
    if (cfg_.strategy == core::LeaseStrategy::kStorageTank) {
      // More than half the population simultaneously suspect means the
      // failure detector is melting down, not detecting failures.
      watchdog_->add_probe(
          "suspect_clients",
          [this]() { return static_cast<double>(server_->authority().suspect_count()); },
          0.0, std::max(1.0, n / 2.0));
      // Lease-phase residency drift: clients stuck in the disruption phases
      // (suspect/flush/expired) outside an injected failure episode.
      watchdog_->add_probe(
          "clients_disrupted",
          [this]() {
            std::size_t disrupted = 0;
            for (const auto& cl : clients_) {
              if (static_cast<std::uint64_t>(cl->lease_phase()) >= 3) ++disrupted;
            }
            return static_cast<double>(disrupted);
          },
          0.0, std::max(1.0, n / 2.0));
    }
    // Any ring overwrite between two evaluations is an anomaly worth a
    // typed event: a violating run's trace may have lost its root cause.
    watchdog_->add_rate_probe(
        "trace_dropped", [this]() { return static_cast<double>(rec_->dropped_events()); },
        0.0);
    // Lock-convoy bound: the whole population queued four deep is a convoy,
    // not contention.
    watchdog_->add_probe(
        "lock_waiters",
        [this]() { return static_cast<double>(server_->locks().queued_waiters()); }, 0.0,
        std::max(4.0, 4.0 * n));
  }
}

void Scenario::setup() {
  STANK_ASSERT(!setup_done_);
  setup_done_ = true;
  build();

  // Preallocate the file pool so sizes and extents are stable.
  for (std::uint32_t f = 0; f < cfg_.workload.num_files; ++f) {
    auto res = server_->preallocate(
        file_path(f), static_cast<std::uint64_t>(cfg_.workload.file_blocks) * cfg_.block_size);
    STANK_ASSERT_MSG(res.ok(), "preallocation failed: disk too small for the file pool?");
    file_ids_.push_back(res.value());
  }

  server_->start();

  for (std::size_t c = 0; c < clients_.size(); ++c) {
    client::Client& cl = *clients_[c];
    cl.on_registered = [this, c]() { open_all_files(c, []() {}); };
    cl.start();
  }

  // Failure plan.
  for (const auto& ev : cfg_.failures.events) {
    engine_.schedule_at(sim::SimTime{} + sim::seconds_d(ev.at_s),
                        [this, ev]() { apply_failure(ev); });
  }

  // Lease-state sampler.
  sample_lease_state();
}

void Scenario::open_all_files(std::size_t ci, std::function<void()> done) {
  // Sequentially (re-)open every pool file; fds are replaced wholesale.
  auto fds = std::make_shared<std::map<std::size_t, client::Fd>>();
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  // The continuation callback holds the strong reference that keeps `step`
  // alive while an open is in flight; the closure itself only holds a weak
  // one, so the chain is freed when it ends instead of leaking as a cycle.
  *step = [this, ci, fds, wstep = std::weak_ptr(step), done_shared](std::size_t fi) {
    if (fi >= cfg_.workload.num_files) {
      drivers_[ci].fds = *fds;
      (*done_shared)();
      return;
    }
    clients_[ci]->open(file_path(fi), /*create=*/false,
                       [ci, fi, fds, step = wstep.lock()](Result<client::Fd> res) {
                         if (res.ok() && step) {
                           (*fds)[fi] = res.value();
                           (*step)(fi + 1);
                         }
                         // On failure (partition mid-open): leave fds partial;
                         // the next registration retriggers the sweep.
                       });
  };
  (*step)(0);
}

void Scenario::run_generators() {
  for (auto& d : drivers_) {
    d.running = true;
    schedule_next_op(d.index);
  }
}

bool Scenario::workload_over() const { return now_s() >= cfg_.workload.run_seconds; }

void Scenario::schedule_next_op(std::size_t ci) {
  ClientDriver& d = drivers_[ci];
  const double wait = d.rng.exponential(cfg_.workload.mean_interarrival_s);
  engine_.schedule_after(sim::seconds_d(wait), [this, ci]() { issue_op(ci); });
}

void Scenario::issue_op(std::size_t ci) {
  ClientDriver& d = drivers_[ci];
  if (!d.running || workload_over()) {
    d.running = false;
    return;
  }
  schedule_next_op(ci);  // open-loop arrivals: survive dropped callbacks

  client::Client& cl = *clients_[ci];
  if (cl.crashed() || d.fds.size() < cfg_.workload.num_files) {
    return;  // machine down or files not (re-)opened yet; skip this arrival
  }

  const OpChoice op = choose_op(d);
  if (op.is_read) {
    do_read(ci, op.file_idx, op.block);
  } else {
    do_write(ci, op.file_idx, op.block);
  }
}

Scenario::OpChoice Scenario::choose_op(ClientDriver& d) {
  const WorkloadSpec& w = cfg_.workload;
  OpChoice op;
  switch (w.pattern) {
    case Pattern::kRandomZipf:
      op.file_idx = d.rng.zipf(w.num_files, w.zipf_s);
      op.block = static_cast<std::uint64_t>(d.rng.uniform_int(0, w.file_blocks - 1));
      op.is_read = d.rng.uniform() < w.read_fraction;
      break;
    case Pattern::kSequential: {
      // Walk the whole pool block by block, wrapping around.
      const std::uint64_t total =
          static_cast<std::uint64_t>(w.num_files) * w.file_blocks;
      const std::uint64_t pos = d.cursor++ % total;
      op.file_idx = static_cast<std::size_t>(pos / w.file_blocks);
      op.block = pos % w.file_blocks;
      op.is_read = d.rng.uniform() < w.read_fraction;
      break;
    }
    case Pattern::kProducerConsumer:
      op.file_idx = d.rng.zipf(w.num_files, w.zipf_s);
      op.block = static_cast<std::uint64_t>(d.rng.uniform_int(0, w.file_blocks - 1));
      // Client 0 produces; everyone else consumes.
      op.is_read = d.index != 0;
      break;
    case Pattern::kPrivate: {
      // Client i owns the files congruent to i; nobody else touches them.
      const std::uint32_t owned =
          (w.num_files + w.num_clients - 1) / w.num_clients;
      const auto nth = static_cast<std::uint32_t>(
          d.rng.uniform_int(0, std::max<std::int64_t>(0, owned - 1)));
      std::size_t fi = d.index + static_cast<std::size_t>(nth) * w.num_clients;
      if (fi >= w.num_files) fi = d.index % w.num_files;
      op.file_idx = fi;
      op.block = static_cast<std::uint64_t>(d.rng.uniform_int(0, w.file_blocks - 1));
      op.is_read = d.rng.uniform() < w.read_fraction;
      break;
    }
  }
  return op;
}

void Scenario::note_op_latency(std::size_t ci, std::uint64_t issue_token, sim::SimTime t0) {
  const double ms = (engine_.now() - t0).millis();
  op_latency_ms_.add(ms);
  // Token unchanged since issue => the op never overlapped a suspect/expiry
  // window on its client: its latency is pure protocol steady-state cost.
  const bool steady = clients_[ci]->disruption_token() == issue_token;
  (steady ? op_latency_steady_ms_ : op_latency_recovery_ms_).add(ms);
  if (rec_ != nullptr) {
    rec_->span(obs::SpanKind::kOpLatency, ms);
    rec_->span(steady ? obs::SpanKind::kOpLatencySteady : obs::SpanKind::kOpLatencyRecovery,
               ms);
  }
}

void Scenario::do_write(std::size_t ci, std::size_t fi, std::uint64_t block) {
  ClientDriver& d = drivers_[ci];
  client::Client& cl = *clients_[ci];
  const client::Fd fd = d.fds.at(fi);
  const FileId file = file_ids_.at(fi);
  const NodeId node = client_node(ci);
  const sim::SimTime t0 = engine_.now();
  const std::uint64_t tok = cl.disruption_token();

  auto perform = [this, ci, fd, file, block, node, t0, tok]() {
    client::Client& cl2 = *clients_[ci];
    const std::uint64_t version = next_version(file, block);
    verify::Stamp stamp{file, block, version, node};
    Bytes data = verify::make_stamped_block(cfg_.block_size, stamp);
    cl2.write(fd, block * cfg_.block_size, std::move(data),
              [this, ci, stamp, node, t0, tok](Status st) {
                if (st.is_ok()) {
                  ++writes_ok_;
                  history_.on_buffered_write(engine_.now(), node, stamp);
                  note_op_latency(ci, tok, t0);
                } else {
                  ++ops_failed_;
                }
              });
  };

  if (cfg_.coherence == client::CoherenceMode::kNfsPoll) {
    // No locks in NFS mode; versions are drawn at issue time, which is
    // exactly why unsynchronized writers can interleave badly.
    perform();
    return;
  }
  cl.lock(fd, protocol::LockMode::kExclusive, [this, perform](Status st) {
    if (!st.is_ok()) {
      ++ops_failed_;
      return;
    }
    perform();
  });
}

void Scenario::do_read(std::size_t ci, std::size_t fi, std::uint64_t block) {
  ClientDriver& d = drivers_[ci];
  client::Client& cl = *clients_[ci];
  const client::Fd fd = d.fds.at(fi);
  const FileId file = file_ids_.at(fi);
  const NodeId node = client_node(ci);
  const sim::SimTime t0 = engine_.now();
  const std::uint64_t tok = cl.disruption_token();

  cl.read(fd, block * cfg_.block_size, cfg_.block_size,
          [this, ci, file, block, node, t0, tok](Result<Bytes> res) {
            if (!res.ok() || res.value().size() != cfg_.block_size) {
              ++ops_failed_;
              return;
            }
            ++reads_ok_;
            note_op_latency(ci, tok, t0);
            auto stamp = verify::decode_stamp(res.value());
            recycle_buf(std::move(res).value());  // stamp decoded, data done
            verify::ReadRec rec;
            rec.start = t0;
            rec.end = engine_.now();
            rec.client = node;
            rec.file = file;
            rec.block = block;
            rec.observed_version = stamp ? stamp->version : 0;
            history_.on_read(rec);
          });
}

void Scenario::apply_failure(const FailureEvent& ev) {
  const std::size_t ci = ev.client_idx;
  if (ci >= clients_.size()) return;
  const NodeId node = client_node(ci);
  trace_.record(engine_.now(), node, "failure", to_string(ev.kind));

  switch (ev.kind) {
    case FailureKind::kCtrlIsolate:
      net_->reachability().sever_pair(node, server_node());
      break;
    case FailureKind::kCtrlSeverToServer:
      net_->reachability().sever(node, server_node());
      break;
    case FailureKind::kCtrlHeal:
      net_->reachability().restore_pair(node, server_node());
      break;
    case FailureKind::kSanIsolate:
      for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
        san_->reachability().sever(node, DiskId{d + 1});
      }
      break;
    case FailureKind::kSanHeal:
      for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
        san_->reachability().restore(node, DiskId{d + 1});
      }
      break;
    case FailureKind::kCrash:
      clients_[ci]->crash();
      history_.on_crash(node);
      drivers_[ci].fds.clear();
      break;
    case FailureKind::kRestart:
      if (clients_[ci]->crashed()) {
        clients_[ci]->restart();  // on_registered re-opens the file pool
      }
      break;
    case FailureKind::kSlowSan:
      san_->config().initiator_delay[node] = sim::seconds_d(ev.param_s);
      break;
    case FailureKind::kServerCrash:
      server_->crash();
      break;
    case FailureKind::kServerRestart:
      // Random plans can overlap crash/restart pairs; a restart that lands
      // while the server is already up is a no-op, not an error.
      if (!server_->started()) {
        server_->restart();
      }
      break;
    case FailureKind::kSanIsolateServer:
      // The server loses its SAN path: fence admin commands cannot reach the
      // disks and a fence->steal must hold until the path heals.
      for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
        san_->reachability().sever(server_node(), DiskId{d + 1});
      }
      break;
    case FailureKind::kSanHealServer:
      for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
        san_->reachability().restore(server_node(), DiskId{d + 1});
      }
      break;
  }
}

void Scenario::sample_lease_state() {
  max_lease_bytes_ = std::max(max_lease_bytes_, server_->lease_state_bytes());
  if (sampler_) {
    sampler_->snapshot(now_s());
  }
  if (watchdog_) {
    watchdog_->evaluate(engine_.now());
  }
  const double horizon = cfg_.workload.run_seconds + settle_seconds_;
  if (now_s() < horizon) {
    engine_.schedule_after(sim::millis(250), [this]() { sample_lease_state(); });
  }
}

void Scenario::run_until_s(double t_s) {
  engine_.run_until(sim::SimTime{} + sim::seconds_d(t_s));
}

ScenarioResult Scenario::run() {
  setup();
  run_generators();
  run_until_s(cfg_.workload.run_seconds);
  return finish();
}

ScenarioResult Scenario::finish() {
  const double end_run = std::max(now_s(), cfg_.workload.run_seconds);

  if (cfg_.heal_at_settle) {
    net_->reachability().heal();
    san_->reachability().heal();
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      if (clients_[c]->crashed()) {
        clients_[c]->restart();
        // A rebooted machine lost its volatile state; history already knows.
      }
    }
  }

  // Phase A: let recovery machinery (lease expiries, re-registrations,
  // phase-4 flushes, steals) run its course.
  run_until_s(end_run + 0.7 * settle_seconds_);

  // Phase B: sync sweeps until quiescent. A single final sync races with
  // long-queued ops — a lock grant delayed past the sync can still complete
  // a write and buffer dirty data with no flush opportunity left. Sweep
  // instead, and end the run on a CLEAN check: the engine stops at that
  // instant, so nothing can dirty a cache after the verdict. Ops still
  // queued at the stop never buffered anything and are invisible to the
  // checker. Grant up to one extra settle budget if dirt lingers.
  // Sweep bounds in INTEGER sim time. The double-domain form
  // (`now_s() < hard_end` with run_until targets converted through
  // seconds_d) span a truncation gap: run_until advances now_ to the
  // ns-truncated horizon, which sits just below the double it came from, so
  // the comparison stays true forever with zero progress. Harmless while
  // every client drained before the bound — a byzantine client whose stolen
  // lock strands its dirty pages rides the sweep all the way there and spun
  // here (found by fuzz_safety --byzantine, ack-without-release).
  const sim::SimTime hard_end_t = sim::SimTime{} + sim::seconds_d(end_run + 2.0 * settle_seconds_);
  const sim::Duration sweep_step = sim::seconds_d(0.1 * settle_seconds_);
  bool clean = false;
  while (!clean && engine_.now() < hard_end_t) {
    for (auto& cl : clients_) {
      if (!cl->crashed() && cl->registered() && cl->accepting() &&
          cl->dirty_pages() > 0) {
        cl->sync_all([](Status) {});
      }
    }
    engine_.run_until(std::min(engine_.now() + sweep_step, hard_end_t));
    clean = true;
    for (auto& cl : clients_) {
      if (!cl->crashed() && cl->dirty_pages() > 0) clean = false;
    }
  }

  ScenarioResult r;
  r.violation_list = verify::ConsistencyChecker(history_).check_all();
  r.violations = verify::ConsistencyChecker::summarize(r.violation_list);
  auto split = verify::ConsistencyChecker(history_).check_all_split();
  r.honest_violations = std::move(split.honest);
  r.byzantine_violations = std::move(split.byzantine);
  r.reads_ok = reads_ok_;
  r.writes_ok = writes_ok_;
  r.ops_failed = ops_failed_;
  r.server = server_->counters();
  for (auto& cl : clients_) {
    r.clients += cl->counters();
  }
  for (std::uint32_t d = 0; d < cfg_.num_disks; ++d) {
    const auto& disk = san_->disk(DiskId{d + 1});
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
      const NodeId node = client_node(ci);
      if (const auto n = disk.fenced_rejections(node); n > 0) {
        r.fence_rejects_by_initiator[node] += n;
      }
    }
  }
  r.net = net_->stats();
  r.san = san_->stats();
  r.max_lease_state_bytes = std::max(max_lease_bytes_, server_->lease_state_bytes());
  r.final_lease_state_bytes = server_->lease_state_bytes();
  r.op_latency_ms = op_latency_ms_;
  r.op_latency_steady_ms = op_latency_steady_ms_;
  r.op_latency_recovery_ms = op_latency_recovery_ms_;
  r.sim_seconds = now_s();
  r.engine_events = engine_.events_executed();
  r.trace_dropped = rec_ != nullptr ? rec_->dropped_events() : 0;
  r.watchdog_trips = watchdog_ != nullptr ? watchdog_->trips() : 0;
  return r;
}

}  // namespace stank::workload
