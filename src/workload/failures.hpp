// Failure injection schedules.
//
// Failures are the whole subject of the paper: control-network partitions
// (symmetric and asymmetric), SAN partitions, client crashes, and slow
// clients. A FailurePlan is a deterministic list of timed events the
// Scenario applies to the fabrics and nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/spec.hpp"

namespace stank::workload {

enum class FailureKind : std::uint8_t {
  kCtrlIsolate,       // cut client <-> server on the control network (both ways)
  kCtrlHeal,
  kCtrlSeverToServer, // asymmetric: client -> server direction only
  kSanIsolate,        // cut client -> disks on the SAN
  kSanHeal,
  kCrash,             // fail-stop: volatile state lost
  kRestart,           // reboot a crashed client
  kSlowSan,           // add extra SAN service delay for this initiator
  kServerCrash,       // the metadata/lock server fails (volatile state lost)
  kServerRestart,     // new server incarnation; grace period for reassertion
  kSanIsolateServer,  // cut SERVER -> disks on the SAN (fence admins fail)
  kSanHealServer,
};

[[nodiscard]] constexpr const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::kCtrlIsolate: return "ctrl-isolate";
    case FailureKind::kCtrlHeal: return "ctrl-heal";
    case FailureKind::kCtrlSeverToServer: return "ctrl-sever-to-server";
    case FailureKind::kSanIsolate: return "san-isolate";
    case FailureKind::kSanHeal: return "san-heal";
    case FailureKind::kCrash: return "crash";
    case FailureKind::kRestart: return "restart";
    case FailureKind::kSlowSan: return "slow-san";
    case FailureKind::kServerCrash: return "server-crash";
    case FailureKind::kServerRestart: return "server-restart";
    case FailureKind::kSanIsolateServer: return "san-isolate-server";
    case FailureKind::kSanHealServer: return "san-heal-server";
  }
  return "?";
}

struct FailureEvent {
  double at_s{0.0};
  FailureKind kind{FailureKind::kCtrlIsolate};
  std::uint32_t client_idx{0};
  double param_s{0.0};  // kSlowSan: added delay in seconds
};

struct FailurePlan {
  std::vector<FailureEvent> events;

  FailurePlan& add(double at_s, FailureKind kind, std::uint32_t client_idx,
                   double param_s = 0.0) {
    events.push_back(FailureEvent{at_s, kind, client_idx, param_s});
    return *this;
  }

  [[nodiscard]] static FailurePlan none() { return {}; }

  // A control-network partition of one client over [from_s, to_s); to_s < 0
  // leaves it partitioned for the rest of the run.
  [[nodiscard]] static FailurePlan ctrl_partition(std::uint32_t client_idx, double from_s,
                                                  double to_s = -1.0);

  // Which failure classes random() may draw from. SAN cuts strand dirty data
  // by design (storage-subsystem failures are outside the paper's protocol
  // scope, section 1), so include them only when that loss is the point.
  struct RandomMix {
    bool ctrl_partitions{true};
    bool asymmetric_partitions{true};
    bool crashes{true};
    bool san_partitions{false};
    // Server crash + restart pairs (section 6 recovery under load). Off by
    // default: benches written against the client-failure mix keep their
    // event schedules.
    bool server_restarts{false};
    // Server -> disks SAN cuts (healed): fence admin commands fail while the
    // cut holds, exercising the fence-retry / held-steal path. Off by
    // default for the same schedule-stability reason.
    bool server_san_partitions{false};
  };

  // `count` random failures over the middle of the run: partitions (healed
  // after a random interval), crashes (restarted), SAN cuts.
  [[nodiscard]] static FailurePlan random(sim::Rng& rng, const WorkloadSpec& spec,
                                          std::size_t count, RandomMix mix);
  [[nodiscard]] static FailurePlan random(sim::Rng& rng, const WorkloadSpec& spec,
                                          std::size_t count) {
    return random(rng, spec, count, RandomMix{});
  }
};

}  // namespace stank::workload
