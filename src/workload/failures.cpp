#include "workload/failures.hpp"

#include <algorithm>

namespace stank::workload {

FailurePlan FailurePlan::ctrl_partition(std::uint32_t client_idx, double from_s, double to_s) {
  FailurePlan p;
  p.add(from_s, FailureKind::kCtrlIsolate, client_idx);
  if (to_s >= 0.0) {
    p.add(to_s, FailureKind::kCtrlHeal, client_idx);
  }
  return p;
}

FailurePlan FailurePlan::random(sim::Rng& rng, const WorkloadSpec& spec, std::size_t count,
                                RandomMix mix) {
  std::vector<FailureKind> kinds;
  if (mix.ctrl_partitions) kinds.push_back(FailureKind::kCtrlIsolate);
  if (mix.asymmetric_partitions) kinds.push_back(FailureKind::kCtrlSeverToServer);
  if (mix.crashes) kinds.push_back(FailureKind::kCrash);
  if (mix.san_partitions) kinds.push_back(FailureKind::kSanIsolate);
  if (mix.server_restarts) kinds.push_back(FailureKind::kServerCrash);
  if (mix.server_san_partitions) kinds.push_back(FailureKind::kSanIsolateServer);

  FailurePlan p;
  if (kinds.empty()) return p;
  const double lo = 0.10 * spec.run_seconds;
  const double hi = 0.70 * spec.run_seconds;
  for (std::size_t i = 0; i < count; ++i) {
    const double at = lo + (hi - lo) * rng.uniform();
    const auto client =
        static_cast<std::uint32_t>(rng.uniform_int(0, spec.num_clients - 1));
    const double hold = 0.05 * spec.run_seconds +
                        0.20 * spec.run_seconds * rng.uniform();
    const double end = std::min(at + hold, spec.run_seconds * 0.95);
    switch (kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))]) {
      case FailureKind::kCtrlIsolate:
        p.add(at, FailureKind::kCtrlIsolate, client);
        p.add(end, FailureKind::kCtrlHeal, client);
        break;
      case FailureKind::kCtrlSeverToServer:
        p.add(at, FailureKind::kCtrlSeverToServer, client);
        p.add(end, FailureKind::kCtrlHeal, client);
        break;
      case FailureKind::kCrash:
        p.add(at, FailureKind::kCrash, client);
        p.add(end, FailureKind::kRestart, client);
        break;
      case FailureKind::kSanIsolate:
        p.add(at, FailureKind::kSanIsolate, client);
        p.add(end, FailureKind::kSanHeal, client);
        break;
      case FailureKind::kSanIsolateServer:
        p.add(at, FailureKind::kSanIsolateServer, 0);
        p.add(end, FailureKind::kSanHealServer, 0);
        break;
      case FailureKind::kServerCrash:
        // Bound the downtime: past-horizon restarts would leave the whole
        // installation dead through settle.
        p.add(at, FailureKind::kServerCrash, 0);
        p.add(std::min(at + 0.1 * spec.run_seconds + hold * 0.5, spec.run_seconds * 0.95),
              FailureKind::kServerRestart, 0);
        break;
      default:
        break;
    }
  }
  std::sort(p.events.begin(), p.events.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.at_s < b.at_s; });
  return p;
}

}  // namespace stank::workload
