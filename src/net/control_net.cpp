#include "net/control_net.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/assert.hpp"

namespace stank::net {

namespace {
std::atomic<std::uint64_t> g_datagrams_sent{0};
}  // namespace

std::string NetStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu delivered=%llu drop[part=%llu rand=%llu burst=%llu detach=%llu] "
                "dup=%llu reorder=%llu bursts=%llu bytes=%llu",
                static_cast<unsigned long long>(sent), static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped_partition),
                static_cast<unsigned long long>(dropped_random),
                static_cast<unsigned long long>(dropped_burst),
                static_cast<unsigned long long>(dropped_detached),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(reordered),
                static_cast<unsigned long long>(burst_episodes),
                static_cast<unsigned long long>(bytes));
  return buf;
}

ControlNet::ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg)
    : engine_(&engine), rng_(rng), cfg_(cfg) {}

ControlNet::~ControlNet() { g_datagrams_sent.fetch_add(stats_.sent, std::memory_order_relaxed); }

std::uint64_t ControlNet::global_datagrams_sent() {
  return g_datagrams_sent.load(std::memory_order_relaxed);
}

void ControlNet::attach(NodeId node, Handler handler) {
  STANK_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ControlNet::detach(NodeId node) { handlers_.erase(node); }

void ControlNet::send(NodeId from, NodeId to, Bytes datagram) {
  ++stats_.sent;
  stats_.bytes += datagram.size();

  if (!reach_.can_reach(from, to)) {
    ++stats_.dropped_partition;
    note_drop(from, to, obs::DropCause::kPartition);
    return;
  }

  // Gilbert–Elliott burst loss: step the chain once per send, then apply the
  // bad-state loss. The chain steps even for packets independent loss would
  // later eat, so the burst pattern is a property of the channel, not of the
  // surviving traffic.
  if (cfg_.ge_good_to_bad > 0.0) {
    if (!ge_bad_) {
      if (rng_.bernoulli(cfg_.ge_good_to_bad)) {
        ge_bad_ = true;
        ++stats_.burst_episodes;
      }
    } else if (rng_.bernoulli(cfg_.ge_bad_to_good)) {
      ge_bad_ = false;
    }
    if (ge_bad_ && rng_.bernoulli(cfg_.burst_loss)) {
      ++stats_.dropped_burst;
      note_drop(from, to, obs::DropCause::kBurst);
      return;
    }
  }

  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++stats_.dropped_random;
    note_drop(from, to, obs::DropCause::kRandom);
    return;
  }

  // Duplication: geometric number of extra copies (a duplicated copy can
  // itself be duplicated, as in a routing loop), each with its own latency.
  while (cfg_.dup_probability > 0.0 && rng_.bernoulli(cfg_.dup_probability)) {
    ++stats_.duplicated;
    if (rec_ != nullptr) {
      rec_->record(engine_->now(), from, obs::EventKind::kNetDup, to.value());
    }
    deliver_copy(from, to, datagram);  // copies the buffer
  }
  deliver_copy(from, to, std::move(datagram));
}

void ControlNet::note_drop(NodeId from, NodeId to, obs::DropCause cause) {
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), from, obs::EventKind::kNetDrop, to.value(),
                 static_cast<std::uint64_t>(cause));
  }
}

void ControlNet::deliver_copy(NodeId from, NodeId to, Bytes datagram) {
  sim::Duration delay = cfg_.latency;
  if (cfg_.jitter.ns > 0) {
    delay += sim::Duration{rng_.uniform_int(0, cfg_.jitter.ns)};
  }
  if (cfg_.reorder_probability > 0.0 && cfg_.reorder_spike.ns > 0 &&
      rng_.bernoulli(cfg_.reorder_probability)) {
    // An independent spike this copy alone suffers: everything sent after it
    // with the base delay arrives first.
    delay += sim::Duration{rng_.uniform_int(0, cfg_.reorder_spike.ns)};
    ++stats_.reordered;
    if (rec_ != nullptr) {
      rec_->record(engine_->now(), from, obs::EventKind::kNetReorder, to.value(),
                   static_cast<std::uint64_t>((delay - cfg_.latency).ns));
    }
  }

  engine_->schedule_after(delay, [this, from, to, dg = std::move(datagram)]() mutable {
    // Partition formed while in flight?
    if (!reach_.can_reach(from, to)) {
      ++stats_.dropped_partition;
      note_drop(from, to, obs::DropCause::kPartition);
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      note_drop(from, to, obs::DropCause::kDetached);
      return;
    }
    ++stats_.delivered;
    it->second(from, std::move(dg));
  });
}

}  // namespace stank::net
