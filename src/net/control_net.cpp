#include "net/control_net.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "common/byte_pool.hpp"
#include "net/sharded_net.hpp"

namespace stank::net {

namespace {

std::atomic<std::uint64_t> g_datagrams_sent{0};

}  // namespace

std::string NetStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu delivered=%llu drop[part=%llu rand=%llu burst=%llu detach=%llu] "
                "dup=%llu reorder=%llu bursts=%llu bytes=%llu",
                static_cast<unsigned long long>(sent), static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped_partition),
                static_cast<unsigned long long>(dropped_random),
                static_cast<unsigned long long>(dropped_burst),
                static_cast<unsigned long long>(dropped_detached),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(reordered),
                static_cast<unsigned long long>(burst_episodes),
                static_cast<unsigned long long>(bytes));
  return buf;
}

ControlNet::ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg)
    : engine_(&engine), rng_(rng), cfg_(cfg) {}

ControlNet::~ControlNet() {
  g_datagrams_sent.fetch_add(stats_.sent, std::memory_order_relaxed);
  // Donate still-queued buffers: the engine may die with traffic in flight.
  for (auto& [node, q] : queues_) {
    for (Item& it : q.items) recycle_buf(std::move(it.bytes));
  }
}

std::uint64_t ControlNet::global_datagrams_sent() {
  return g_datagrams_sent.load(std::memory_order_relaxed);
}

Bytes ControlNet::take_buf() { return stank::take_buf(); }

void ControlNet::recycle_buf(Bytes&& b) { stank::recycle_buf(std::move(b)); }

void ControlNet::bind_shard(ShardedNet* owner, unsigned shard) {
  sharded_ = owner;
  shard_ = shard;
}

void ControlNet::attach(NodeId node, Handler handler) {
  STANK_ASSERT(handler != nullptr);
  if (sharded_ != nullptr) sharded_->note_attach(node, shard_);
  handlers_[node] = std::move(handler);
}

void ControlNet::detach(NodeId node) { handlers_.erase(node); }

void ControlNet::send(NodeId from, NodeId to, Bytes datagram) {
  ++stats_.sent;
  stats_.bytes += datagram.size();

  if (!reach_.can_reach(from, to)) {
    ++stats_.dropped_partition;
    note_drop(from, to, obs::DropCause::kPartition);
    recycle_buf(std::move(datagram));
    return;
  }

  // Gilbert–Elliott burst loss: step the chain once per send, then apply the
  // bad-state loss. The chain steps even for packets independent loss would
  // later eat, so the burst pattern is a property of the channel, not of the
  // surviving traffic.
  if (cfg_.ge_good_to_bad > 0.0) {
    if (!ge_bad_) {
      if (rng_.bernoulli(cfg_.ge_good_to_bad)) {
        ge_bad_ = true;
        ++stats_.burst_episodes;
      }
    } else if (rng_.bernoulli(cfg_.ge_bad_to_good)) {
      ge_bad_ = false;
    }
    if (ge_bad_ && rng_.bernoulli(cfg_.burst_loss)) {
      ++stats_.dropped_burst;
      note_drop(from, to, obs::DropCause::kBurst);
      recycle_buf(std::move(datagram));
      return;
    }
  }

  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++stats_.dropped_random;
    note_drop(from, to, obs::DropCause::kRandom);
    recycle_buf(std::move(datagram));
    return;
  }

  // Duplication: geometric number of extra copies (a duplicated copy can
  // itself be duplicated, as in a routing loop), each with its own latency.
  while (cfg_.dup_probability > 0.0 && rng_.bernoulli(cfg_.dup_probability)) {
    ++stats_.duplicated;
    if (rec_ != nullptr) {
      rec_->record(engine_->now(), from, obs::EventKind::kNetDup, to.value());
    }
    enqueue_copy(from, to, datagram);  // copies the buffer
  }
  enqueue_copy(from, to, std::move(datagram));
}

void ControlNet::note_drop(NodeId from, NodeId to, obs::DropCause cause) {
  if (rec_ != nullptr) {
    rec_->record(engine_->now(), from, obs::EventKind::kNetDrop, to.value(),
                 static_cast<std::uint64_t>(cause));
  }
}

void ControlNet::enqueue_copy(NodeId from, NodeId to, Bytes datagram) {
  sim::Duration delay = cfg_.latency;
  if (cfg_.jitter.ns > 0) {
    delay += sim::Duration{rng_.uniform_int(0, cfg_.jitter.ns)};
  }
  if (cfg_.reorder_probability > 0.0 && cfg_.reorder_spike.ns > 0 &&
      rng_.bernoulli(cfg_.reorder_probability)) {
    // An independent spike this copy alone suffers: everything sent after it
    // with the base delay arrives first.
    delay += sim::Duration{rng_.uniform_int(0, cfg_.reorder_spike.ns)};
    ++stats_.reordered;
    if (rec_ != nullptr) {
      rec_->record(engine_->now(), from, obs::EventKind::kNetReorder, to.value(),
                   static_cast<std::uint64_t>((delay - cfg_.latency).ns));
    }
  }

  const sim::SimTime at = engine_->now() + delay;
  if (sharded_ != nullptr) {
    // Route by the static placement directory; unplaced nodes fall back to
    // the local queue, where the drain drops them as detached — the same
    // fate a serial net gives a send to a node that never attached.
    const unsigned dst_shard = sharded_->owner_of(to, shard_);
    if (dst_shard != shard_) {
      sharded_->post(shard_, dst_shard,
                     ShardedNet::CrossItem{at, next_item_seq_++, shard_, from, to,
                                           std::move(datagram)});
      return;
    }
  }
  DestQueue& q = queues_[to];
  q.items.push_back(Item{at, next_item_seq_++, from, std::move(datagram)});
  const std::int64_t slot_ns = bucket_of(at);
  if (slot_ns < q.armed_ns) arm(q, to, slot_ns);
}

void ControlNet::inject(NodeId from, NodeId to, sim::SimTime at, Bytes datagram) {
  STANK_ASSERT_MSG(at >= engine_->now(), "cross-shard arrival in this shard's past");
  DestQueue& q = queues_[to];
  q.items.push_back(Item{at, next_item_seq_++, from, std::move(datagram)});
  const std::int64_t slot_ns = bucket_of(at);
  if (slot_ns < q.armed_ns) arm(q, to, slot_ns);
}

void ControlNet::arm(DestQueue& q, NodeId to, std::int64_t slot_ns) {
  if (q.armed_ns != kNotArmed) engine_->cancel(q.timer);
  q.armed_ns = slot_ns;
  q.timer = engine_->schedule_at(sim::SimTime{slot_ns}, [this, to]() { drain(to); });
}

void ControlNet::deliver(Item& item, NodeId to) {
  // Partition formed while in flight? Receiver crashed mid-batch? Checked
  // per packet, exactly as the unbatched fabric did at each delivery event.
  if (!reach_.can_reach(item.from, to)) {
    ++stats_.dropped_partition;
    note_drop(item.from, to, obs::DropCause::kPartition);
    recycle_buf(std::move(item.bytes));
    return;
  }
  // Re-found per packet: a handler can detach nodes (crash handling) or
  // attach new ones, and any attach can rehash the table.
  Handler* h = handlers_.find(to);
  if (h == nullptr) {
    ++stats_.dropped_detached;
    note_drop(item.from, to, obs::DropCause::kDetached);
    recycle_buf(std::move(item.bytes));
    return;
  }
  ++stats_.delivered;
  (*h)(item.from, item.bytes);
  recycle_buf(std::move(item.bytes));
}

void ControlNet::drain(NodeId to) {
  DestQueue* q = queues_.find(to);
  if (q == nullptr) return;
  q->armed_ns = kNotArmed;
  const std::int64_t now_ns = engine_->now().ns;

  // Request/response traffic drains one packet at a time; deliver it without
  // touching the scratch batch. (The queue itself must be emptied first: the
  // handler can send to this destination and rehash queues_.)
  if (q->items.size() == 1 && q->items.begin()->at.ns <= now_ns) {
    Item item = std::move(*q->items.begin());
    q->items.clear();
    deliver(item, to);
    q = queues_.find(to);
    if (q == nullptr || q->items.empty()) return;
    std::int64_t min_slot = kNotArmed;
    for (const Item& it : q->items) min_slot = std::min(min_slot, bucket_of(it.at));
    if (min_slot < q->armed_ns) arm(*q, to, min_slot);
    return;
  }

  // Pull everything due into the scratch batch, compacting the remainder in
  // place. Any item with at <= now is due: its bucket edge is <= the edge
  // this timer fired at.
  drain_scratch_.clear();
  Item* keep = q->items.begin();
  for (Item* it = q->items.begin(); it != q->items.end(); ++it) {
    if (it->at.ns <= now_ns) {
      drain_scratch_.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  q->items.erase(keep, q->items.end());

  // Exact historical delivery order within the batch. Request/response
  // traffic drains one packet at a time (nothing co-timed to sort); only
  // storm-style convergence pays for the ordering.
  if (drain_scratch_.size() > 1) {
    std::sort(drain_scratch_.begin(), drain_scratch_.end(), [](const Item& a, const Item& b) {
      if (a.at.ns != b.at.ns) return a.at.ns < b.at.ns;
      return a.seq < b.seq;
    });
  }

  for (Item& item : drain_scratch_) {
    deliver(item, to);
  }
  drain_scratch_.clear();

  // Re-arm for the earliest remaining bucket. Handlers may have sent (and
  // armed) new traffic — even to this destination — and any insert can
  // rehash queues_, so re-find before touching the queue again.
  q = queues_.find(to);
  if (q == nullptr || q->items.empty()) return;
  std::int64_t min_slot = kNotArmed;
  for (const Item& item : q->items) {
    min_slot = std::min(min_slot, bucket_of(item.at));
  }
  if (min_slot < q->armed_ns) arm(*q, to, min_slot);
}

}  // namespace stank::net
