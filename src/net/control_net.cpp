#include "net/control_net.hpp"

#include <atomic>
#include <utility>

#include "common/assert.hpp"

namespace stank::net {

namespace {
std::atomic<std::uint64_t> g_datagrams_sent{0};
}  // namespace

ControlNet::ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg)
    : engine_(&engine), rng_(rng), cfg_(cfg) {}

ControlNet::~ControlNet() { g_datagrams_sent.fetch_add(stats_.sent, std::memory_order_relaxed); }

std::uint64_t ControlNet::global_datagrams_sent() {
  return g_datagrams_sent.load(std::memory_order_relaxed);
}

void ControlNet::attach(NodeId node, Handler handler) {
  STANK_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ControlNet::detach(NodeId node) { handlers_.erase(node); }

void ControlNet::send(NodeId from, NodeId to, Bytes datagram) {
  ++stats_.sent;
  stats_.bytes += datagram.size();

  if (!reach_.can_reach(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++stats_.dropped_random;
    return;
  }

  sim::Duration delay = cfg_.latency;
  if (cfg_.jitter.ns > 0) {
    delay += sim::Duration{rng_.uniform_int(0, cfg_.jitter.ns)};
  }

  engine_->schedule_after(delay, [this, from, to, dg = std::move(datagram)]() mutable {
    // Partition formed while in flight?
    if (!reach_.can_reach(from, to)) {
      ++stats_.dropped_partition;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    ++stats_.delivered;
    it->second(from, std::move(dg));
  });
}

}  // namespace stank::net
