#include "net/control_net.hpp"

#include <atomic>
#include <utility>

#include "common/assert.hpp"

namespace stank::net {

namespace {
std::atomic<std::uint64_t> g_datagrams_sent{0};
}  // namespace

ControlNet::ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg)
    : engine_(&engine), rng_(rng), cfg_(cfg) {}

ControlNet::~ControlNet() { g_datagrams_sent.fetch_add(stats_.sent, std::memory_order_relaxed); }

std::uint64_t ControlNet::global_datagrams_sent() {
  return g_datagrams_sent.load(std::memory_order_relaxed);
}

void ControlNet::attach(NodeId node, Handler handler) {
  STANK_ASSERT(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void ControlNet::detach(NodeId node) { handlers_.erase(node); }

void ControlNet::send(NodeId from, NodeId to, Bytes datagram) {
  ++stats_.sent;
  stats_.bytes += datagram.size();

  if (!reach_.can_reach(from, to)) {
    ++stats_.dropped_partition;
    return;
  }

  // Gilbert–Elliott burst loss: step the chain once per send, then apply the
  // bad-state loss. The chain steps even for packets independent loss would
  // later eat, so the burst pattern is a property of the channel, not of the
  // surviving traffic.
  if (cfg_.ge_good_to_bad > 0.0) {
    if (!ge_bad_) {
      if (rng_.bernoulli(cfg_.ge_good_to_bad)) {
        ge_bad_ = true;
        ++stats_.burst_episodes;
      }
    } else if (rng_.bernoulli(cfg_.ge_bad_to_good)) {
      ge_bad_ = false;
    }
    if (ge_bad_ && rng_.bernoulli(cfg_.burst_loss)) {
      ++stats_.dropped_burst;
      return;
    }
  }

  if (cfg_.drop_probability > 0.0 && rng_.bernoulli(cfg_.drop_probability)) {
    ++stats_.dropped_random;
    return;
  }

  // Duplication: geometric number of extra copies (a duplicated copy can
  // itself be duplicated, as in a routing loop), each with its own latency.
  while (cfg_.dup_probability > 0.0 && rng_.bernoulli(cfg_.dup_probability)) {
    ++stats_.duplicated;
    deliver_copy(from, to, datagram);  // copies the buffer
  }
  deliver_copy(from, to, std::move(datagram));
}

void ControlNet::deliver_copy(NodeId from, NodeId to, Bytes datagram) {
  sim::Duration delay = cfg_.latency;
  if (cfg_.jitter.ns > 0) {
    delay += sim::Duration{rng_.uniform_int(0, cfg_.jitter.ns)};
  }
  if (cfg_.reorder_probability > 0.0 && cfg_.reorder_spike.ns > 0 &&
      rng_.bernoulli(cfg_.reorder_probability)) {
    // An independent spike this copy alone suffers: everything sent after it
    // with the base delay arrives first.
    delay += sim::Duration{rng_.uniform_int(0, cfg_.reorder_spike.ns)};
    ++stats_.reordered;
  }

  engine_->schedule_after(delay, [this, from, to, dg = std::move(datagram)]() mutable {
    // Partition formed while in flight?
    if (!reach_.can_reach(from, to)) {
      ++stats_.dropped_partition;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    ++stats_.delivered;
    it->second(from, std::move(dg));
  });
}

}  // namespace stank::net
