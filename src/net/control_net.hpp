// The control network: a connection-less datagram fabric between clients and
// servers (paper section 3: "the protocol operates in a connection-less
// network environment, where messages are datagrams").
//
// Datagrams are byte buffers (the protocol codec produces them), delivery
// takes a sampled latency, packets can be dropped randomly, and a directed
// Reachability relation models arbitrary — including asymmetric — partitions.
// A packet must be deliverable both when it is sent and when it arrives;
// a partition that forms mid-flight eats it.
//
// Beyond independent loss, the fabric models the full misbehaviour a
// datagram network is allowed (and the protocol's dedup/epoch machinery was
// written for):
//  * duplication   — a sent datagram is delivered more than once, each copy
//                    with its own sampled latency;
//  * reordering    — an independent per-datagram delay spike violates FIFO:
//                    later sends overtake the spiked packet;
//  * bursty loss   — a two-state Gilbert–Elliott chain (good/bad channel)
//                    drops runs of consecutive packets, the pattern real
//                    congestion produces and independent loss cannot.
// All of it is driven by the net's own forked sim RNG, so a seed reproduces
// the identical delivery schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/strong_id.hpp"
#include "net/reachability.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stank::net {

struct NetConfig {
  sim::Duration latency{sim::micros(200)};  // one-way base latency
  sim::Duration jitter{sim::micros(50)};    // uniform extra in [0, jitter]
  double drop_probability{0.0};             // random loss, independent per datagram

  // Duplication: each surviving datagram spawns an extra copy with this
  // probability (the copy may itself duplicate again — a geometric tail,
  // like a routing loop). Each copy samples its own latency.
  double dup_probability{0.0};

  // Reordering: with this probability a datagram's delivery is delayed by an
  // extra uniform spike in [0, reorder_spike] on top of latency+jitter.
  // Because every other packet keeps the base delay, a spiked packet is
  // overtaken — FIFO is violated, not merely jittered.
  double reorder_probability{0.0};
  sim::Duration reorder_spike{sim::millis(5)};

  // Bursty loss: two-state Gilbert–Elliott channel. The chain steps once per
  // send; in the bad state packets drop with burst_loss probability.
  // ge_good_to_bad == 0 disables the model entirely.
  double ge_good_to_bad{0.0};   // P(good -> bad) per datagram
  double ge_bad_to_good{0.1};   // P(bad -> good) per datagram
  double burst_loss{1.0};       // loss probability while in the bad state

  // True if any of the adversarial knobs beyond drop+partition are active.
  [[nodiscard]] bool adversarial() const {
    return dup_probability > 0.0 || reorder_probability > 0.0 || ge_good_to_bad > 0.0;
  }
};

struct NetStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_partition{0};
  std::uint64_t dropped_random{0};
  std::uint64_t dropped_burst{0};
  std::uint64_t dropped_detached{0};
  std::uint64_t duplicated{0};   // extra copies injected
  std::uint64_t reordered{0};    // datagrams given a FIFO-violating spike
  std::uint64_t burst_episodes{0};  // good->bad transitions of the GE chain
  std::uint64_t bytes{0};

  // One-line human summary — what the fabric did to the traffic. Used by the
  // Scenario verdict line and the fuzzer's replay header: a verdict without
  // the loss/dup/reorder counts hides *why* a run went sideways.
  [[nodiscard]] std::string summary() const;
};

class ControlNet {
 public:
  // Receives the datagram by value: delivery MOVES the buffer to the final
  // handler, so a frame is allocated once at encode and never copied.
  // Handlers that only inspect it can still bind `const Bytes&`.
  using Handler = std::function<void(NodeId from, Bytes datagram)>;

  ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg = {});
  ~ControlNet();
  ControlNet(const ControlNet&) = delete;
  ControlNet& operator=(const ControlNet&) = delete;

  // Registers a node's receive handler. A node that detaches (crash) loses
  // all in-flight traffic addressed to it.
  void attach(NodeId node, Handler handler);
  void detach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const { return handlers_.contains(node); }

  // Fire-and-forget datagram send; loss is silent, exactly like UDP.
  void send(NodeId from, NodeId to, Bytes datagram);

  [[nodiscard]] Reachability<NodeId>& reachability() { return reach_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  void set_config(NetConfig cfg) { cfg_ = cfg; }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }

  // Attaches the flight recorder: drops, duplications and reorder spikes
  // become typed events (node = sender) so a trace shows what the fabric
  // did to the traffic, not just what survived.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  // Process-wide total of datagrams sent by nets that have been destroyed;
  // accumulated only in ~ControlNet (bench reporting, no hot-path cost).
  [[nodiscard]] static std::uint64_t global_datagrams_sent();

 private:
  void deliver_copy(NodeId from, NodeId to, Bytes datagram);
  void note_drop(NodeId from, NodeId to, obs::DropCause cause);

  sim::Engine* engine_;
  sim::Rng rng_;
  NetConfig cfg_;
  obs::Recorder* rec_{nullptr};
  Reachability<NodeId> reach_;
  std::unordered_map<NodeId, Handler> handlers_;
  NetStats stats_;
  bool ge_bad_{false};  // Gilbert–Elliott channel state (false = good)
};

}  // namespace stank::net
