// The control network: a connection-less datagram fabric between clients and
// servers (paper section 3: "the protocol operates in a connection-less
// network environment, where messages are datagrams").
//
// Datagrams are byte buffers (the protocol codec produces them), delivery
// takes a sampled latency, packets can be dropped randomly, and a directed
// Reachability relation models arbitrary — including asymmetric — partitions.
// A packet must be deliverable both when it is sent and when it arrives;
// a partition that forms mid-flight eats it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/strong_id.hpp"
#include "net/reachability.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stank::net {

struct NetConfig {
  sim::Duration latency{sim::micros(200)};  // one-way base latency
  sim::Duration jitter{sim::micros(50)};    // uniform extra in [0, jitter]
  double drop_probability{0.0};             // random loss, independent per datagram
};

struct NetStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_partition{0};
  std::uint64_t dropped_random{0};
  std::uint64_t dropped_detached{0};
  std::uint64_t bytes{0};
};

class ControlNet {
 public:
  // Receives the datagram by value: delivery MOVES the buffer to the final
  // handler, so a frame is allocated once at encode and never copied.
  // Handlers that only inspect it can still bind `const Bytes&`.
  using Handler = std::function<void(NodeId from, Bytes datagram)>;

  ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg = {});
  ~ControlNet();
  ControlNet(const ControlNet&) = delete;
  ControlNet& operator=(const ControlNet&) = delete;

  // Registers a node's receive handler. A node that detaches (crash) loses
  // all in-flight traffic addressed to it.
  void attach(NodeId node, Handler handler);
  void detach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const { return handlers_.contains(node); }

  // Fire-and-forget datagram send; loss is silent, exactly like UDP.
  void send(NodeId from, NodeId to, Bytes datagram);

  [[nodiscard]] Reachability<NodeId>& reachability() { return reach_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  void set_config(NetConfig cfg) { cfg_ = cfg; }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }

  // Process-wide total of datagrams sent by nets that have been destroyed;
  // accumulated only in ~ControlNet (bench reporting, no hot-path cost).
  [[nodiscard]] static std::uint64_t global_datagrams_sent();

 private:
  sim::Engine* engine_;
  sim::Rng rng_;
  NetConfig cfg_;
  Reachability<NodeId> reach_;
  std::unordered_map<NodeId, Handler> handlers_;
  NetStats stats_;
};

}  // namespace stank::net
