// The control network: a connection-less datagram fabric between clients and
// servers (paper section 3: "the protocol operates in a connection-less
// network environment, where messages are datagrams").
//
// Datagrams are byte buffers (the protocol codec produces them), delivery
// takes a sampled latency, packets can be dropped randomly, and a directed
// Reachability relation models arbitrary — including asymmetric — partitions.
// A packet must be deliverable both when it is sent and when it arrives;
// a partition that forms mid-flight eats it.
//
// Beyond independent loss, the fabric models the full misbehaviour a
// datagram network is allowed (and the protocol's dedup/epoch machinery was
// written for):
//  * duplication   — a sent datagram is delivered more than once, each copy
//                    with its own sampled latency;
//  * reordering    — an independent per-datagram delay spike violates FIFO:
//                    later sends overtake the spiked packet;
//  * bursty loss   — a two-state Gilbert–Elliott chain (good/bad channel)
//                    drops runs of consecutive packets, the pattern real
//                    congestion produces and independent loss cannot.
// All of it is driven by the net's own forked sim RNG, so a seed reproduces
// the identical delivery schedule.
//
// Delivery is BATCHED: instead of one engine event per in-flight datagram,
// the net keeps a pending queue per destination and schedules one drain
// event per (destination, delivery-time bucket). A renewal storm of N
// keepalives converging on the server costs one timer, one clock read and
// one heap pop instead of N. Per-packet semantics are untouched because
// every loss/dup/reorder/GE decision and every latency sample is drawn at
// send time in the exact historical RNG order, and the drain replays the
// queued packets sorted by their exact (arrival time, send sequence) — only
// the timer firing is coalesced, rounded up to the bucket edge (default
// 10us against a 200us base latency, well inside jitter).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/small_vec.hpp"
#include "common/strong_id.hpp"
#include "net/reachability.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stank::net {

class ShardedNet;

struct NetConfig {
  sim::Duration latency{sim::micros(200)};  // one-way base latency
  sim::Duration jitter{sim::micros(50)};    // uniform extra in [0, jitter]
  double drop_probability{0.0};             // random loss, independent per datagram

  // Duplication: each surviving datagram spawns an extra copy with this
  // probability (the copy may itself duplicate again — a geometric tail,
  // like a routing loop). Each copy samples its own latency.
  double dup_probability{0.0};

  // Reordering: with this probability a datagram's delivery is delayed by an
  // extra uniform spike in [0, reorder_spike] on top of latency+jitter.
  // Because every other packet keeps the base delay, a spiked packet is
  // overtaken — FIFO is violated, not merely jittered.
  double reorder_probability{0.0};
  sim::Duration reorder_spike{sim::millis(5)};

  // Bursty loss: two-state Gilbert–Elliott channel. The chain steps once per
  // send; in the bad state packets drop with burst_loss probability.
  // ge_good_to_bad == 0 disables the model entirely.
  double ge_good_to_bad{0.0};   // P(good -> bad) per datagram
  double ge_bad_to_good{0.1};   // P(bad -> good) per datagram
  double burst_loss{1.0};       // loss probability while in the bad state

  // Arrival times are rounded UP to the next multiple of this bucket so
  // co-timed datagrams to one node share a single drain event. Rounding only
  // ever delays a packet (legal in a datagram network) by < one bucket;
  // 1ns disables coalescing entirely.
  sim::Duration delivery_bucket{sim::micros(10)};

  // True if any of the adversarial knobs beyond drop+partition are active.
  [[nodiscard]] bool adversarial() const {
    return dup_probability > 0.0 || reorder_probability > 0.0 || ge_good_to_bad > 0.0;
  }
};

struct NetStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_partition{0};
  std::uint64_t dropped_random{0};
  std::uint64_t dropped_burst{0};
  std::uint64_t dropped_detached{0};
  std::uint64_t duplicated{0};   // extra copies injected
  std::uint64_t reordered{0};    // datagrams given a FIFO-violating spike
  std::uint64_t burst_episodes{0};  // good->bad transitions of the GE chain
  std::uint64_t bytes{0};

  // One-line human summary — what the fabric did to the traffic. Used by the
  // Scenario verdict line and the fuzzer's replay header: a verdict without
  // the loss/dup/reorder counts hides *why* a run went sideways.
  [[nodiscard]] std::string summary() const;
};

class ControlNet {
 public:
  // Receives the datagram by mutable reference: the buffer belongs to the
  // net, which recycles it into the thread-local pool after the handler
  // returns. Handlers that only inspect it can still bind `const Bytes&`;
  // a handler that wants to keep the payload moves out of the reference.
  using Handler = std::function<void(NodeId from, Bytes& datagram)>;

  ControlNet(sim::Engine& engine, sim::Rng rng, NetConfig cfg = {});
  ~ControlNet();
  ControlNet(const ControlNet&) = delete;
  ControlNet& operator=(const ControlNet&) = delete;

  // Registers a node's receive handler. A node that detaches (crash) loses
  // all in-flight traffic addressed to it.
  void attach(NodeId node, Handler handler);
  void detach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const { return handlers_.contains(node); }

  // Fire-and-forget datagram send; loss is silent, exactly like UDP.
  void send(NodeId from, NodeId to, Bytes datagram);

  // Pooled encode scratch: returns an empty buffer whose capacity was
  // recycled from a previously delivered datagram, so the steady-state
  // encode/send/deliver cycle allocates nothing once warm. Thin aliases for
  // the process-wide thread-local pool in common/byte_pool.hpp (shared with
  // the disk and cache paths), kept so transport call sites read naturally.
  [[nodiscard]] static Bytes take_buf();
  static void recycle_buf(Bytes&& b);

  [[nodiscard]] Reachability<NodeId>& reachability() { return reach_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }

  void set_config(NetConfig cfg) { cfg_ = cfg; }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }

  // Attaches the flight recorder: drops, duplications and reorder spikes
  // become typed events (node = sender) so a trace shows what the fabric
  // did to the traffic, not just what survived.
  void set_recorder(obs::Recorder* rec) { rec_ = rec; }

  // Process-wide total of datagrams sent by nets that have been destroyed;
  // accumulated only in ~ControlNet (bench reporting, no hot-path cost).
  [[nodiscard]] static std::uint64_t global_datagrams_sent();

  // --- Sharded operation (installed by ShardedNet) ------------------------
  // Marks this net as shard `shard` of a sharded fabric. send() then routes
  // datagrams whose destination lives on another shard into the owner's SPSC
  // mailbox instead of the local destination queue; every loss/dup/reorder
  // draw and the latency sample still happen here, at send time, in this
  // shard's historical RNG order.
  void bind_shard(ShardedNet* owner, unsigned shard);

  // Barrier-time insertion of a cross-shard datagram that already carries
  // its sampled arrival time. Only ShardedNet::deliver calls this, on the
  // destination shard's worker, strictly between windows; the item gets a
  // fresh local sequence number so injection order (arrival time, source
  // shard, source sequence — pre-sorted by the caller) is preserved through
  // the drain's (arrival, seq) sort.
  void inject(NodeId from, NodeId to, sim::SimTime at, Bytes datagram);

 private:
  // One queued in-flight datagram. `at` is the exact sampled arrival
  // instant (pre-bucketing) and `seq` the global send order — the pair
  // reproduces the per-packet delivery order the unbatched fabric had.
  struct Item {
    sim::SimTime at{};
    std::uint64_t seq{0};
    NodeId from{};
    Bytes bytes;
  };
  // Pending deliveries for one destination plus its single armed drain
  // timer. armed_ns is the bucket edge the timer fires at (kNotArmed when
  // no timer is pending); keeping exactly one timer per destination, always
  // for the earliest bucket, is the whole batching win.
  struct DestQueue {
    SmallVec<Item, 4> items;
    sim::TimerId timer{0};
    std::int64_t armed_ns{kNotArmed};
  };
  static constexpr std::int64_t kNotArmed = INT64_MAX;

  void enqueue_copy(NodeId from, NodeId to, Bytes datagram);
  void deliver(Item& item, NodeId to);
  void drain(NodeId to);
  void arm(DestQueue& q, NodeId to, std::int64_t slot_ns);
  [[nodiscard]] std::int64_t bucket_of(sim::SimTime at) const {
    const std::int64_t b = cfg_.delivery_bucket.ns;
    if (b <= 1) return at.ns;
    return (at.ns + b - 1) / b * b;
  }
  void note_drop(NodeId from, NodeId to, obs::DropCause cause);

  sim::Engine* engine_;
  sim::Rng rng_;
  NetConfig cfg_;
  // Non-null when this net is one shard of a ShardedNet.
  ShardedNet* sharded_{nullptr};
  unsigned shard_{0};
  obs::Recorder* rec_{nullptr};
  Reachability<NodeId> reach_;
  FlatMap<NodeId, Handler> handlers_;
  FlatMap<NodeId, DestQueue> queues_;
  std::vector<Item> drain_scratch_;  // reused batch buffer, never shrunk
  std::uint64_t next_item_seq_{0};
  NetStats stats_;
  bool ge_bad_{false};  // Gilbert–Elliott channel state (false = good)
};

}  // namespace stank::net
