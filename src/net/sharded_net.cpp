#include "net/sharded_net.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/byte_pool.hpp"

namespace stank::net {

ShardedNet::ShardedNet(sim::ShardedEngine& engine, sim::Rng root, NetConfig cfg)
    : engine_(&engine) {
  const unsigned k = engine.shard_count();
  STANK_ASSERT_MSG(k == 1 || cfg.latency >= engine.window(),
                   "conservative sync needs cross-shard latency >= window");
  nets_.reserve(k);
  for (unsigned s = 0; s < k; ++s) {
    nets_.push_back(std::make_unique<ControlNet>(engine.shard(s), root.fork(s + 1), cfg));
    nets_.back()->bind_shard(this, s);
  }
  mail_.resize(static_cast<std::size_t>(k) * k);
  merge_scratch_.resize(k);
  engine.set_exchange(this);
}

ShardedNet::~ShardedNet() {
  engine_->set_exchange(nullptr);
  // Traffic can die in a mailbox if the run ends with datagrams in flight;
  // donate the buffers like ~ControlNet does for its queues.
  for (auto& box : mail_) {
    for (CrossItem& it : box.items) recycle_buf(std::move(it.bytes));
  }
}

void ShardedNet::place(NodeId node, unsigned shard) {
  STANK_ASSERT(shard < shard_count());
  std::uint32_t* existing = directory_.find(node);
  if (existing != nullptr) {
    STANK_ASSERT_MSG(*existing == shard, "node re-placed on a different shard");
    return;
  }
  directory_[node] = shard;
}

void ShardedNet::note_attach(NodeId node, unsigned shard) {
  if (shard_count() == 1) return;  // no directory needed, no cross traffic
  // The directory must be immutable during the run (it is read lock-free by
  // every shard), so mid-run attach — client start(), crash/restart — is
  // only legal for nodes placed up front.
  const std::uint32_t* s = directory_.find(node);
  STANK_ASSERT_MSG(s != nullptr && *s == shard,
                   "sharded run: place() every node on its shard before running");
}

void ShardedNet::set_counters(obs::Counters* c) {
  ctr_ = c;
  if (c == nullptr) return;
  const unsigned k = shard_count();
  xshard_to_.clear();
  xshard_to_.reserve(k);
  for (unsigned d = 0; d < k; ++d) {
    xshard_to_.push_back(c->add("net.xshard_to_s" + std::to_string(d)));
  }
  xshard_bytes_ = c->add("net.xshard_bytes");
  xshard_in_ = c->add("net.xshard_in");
  mail_hw_ = c->add("net.mailbox_hw", obs::Counters::Merge::kMax);
}

void ShardedNet::deliver(unsigned dst_shard, sim::SimTime window_end) {
  const unsigned k = shard_count();
  auto& scratch = merge_scratch_[dst_shard].items;
  scratch.clear();
  for (unsigned src = 0; src < k; ++src) {
    if (src == dst_shard) continue;
    auto& box = mail_[src * k + dst_shard].items;
    for (CrossItem& it : box) scratch.push_back(std::move(it));
    box.clear();
  }
  if (scratch.empty()) return;
  // deliver() runs on dst_shard's owning worker, so the consumer-side count
  // lands in the consumer's own bank — same ownership rule as post().
  if (ctr_ != nullptr) ctr_->add_to(dst_shard, xshard_in_, scratch.size());
  // Deterministic cross-shard tie-break: co-timed arrivals drain in
  // (arrival time, source shard, source sequence) order regardless of
  // worker count. The injected items receive ascending local sequence
  // numbers, so the destination's (arrival, seq) drain sort preserves it.
  std::sort(scratch.begin(), scratch.end(), [](const CrossItem& a, const CrossItem& b) {
    if (a.at.ns != b.at.ns) return a.at.ns < b.at.ns;
    if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
    return a.seq < b.seq;
  });
  ControlNet& net = *nets_[dst_shard];
  for (CrossItem& it : scratch) {
    // The conservative lookahead contract: an arrival may never land inside
    // (or before) the window its datagram was sent in.
    STANK_ASSERT_MSG(it.at >= window_end, "cross-shard arrival inside its own window");
    net.inject(it.from, it.to, it.at, std::move(it.bytes));
  }
  scratch.clear();
}

NetStats ShardedNet::stats() const {
  NetStats total;
  for (const auto& n : nets_) {
    const NetStats& s = n->stats();
    total.sent += s.sent;
    total.delivered += s.delivered;
    total.dropped_partition += s.dropped_partition;
    total.dropped_random += s.dropped_random;
    total.dropped_burst += s.dropped_burst;
    total.dropped_detached += s.dropped_detached;
    total.duplicated += s.duplicated;
    total.reordered += s.reordered;
    total.burst_episodes += s.burst_episodes;
    total.bytes += s.bytes;
  }
  return total;
}

void ShardedNet::set_config(const NetConfig& cfg) {
  STANK_ASSERT_MSG(shard_count() == 1 || cfg.latency >= engine_->window(),
                   "conservative sync needs cross-shard latency >= window");
  for (auto& n : nets_) n->set_config(cfg);
}

}  // namespace stank::net
