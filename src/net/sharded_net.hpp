// The sharded control fabric: one ControlNet per shard of a ShardedEngine,
// stitched together with per-(source shard, destination shard) SPSC
// mailboxes exchanged at window barriers.
//
// Node ownership is static: every node is place()d on exactly one shard
// before the run and attaches to that shard's ControlNet. A send whose
// destination lives on the sender's shard takes the ordinary serial path; a
// cross-shard send performs ALL of its random draws (partition check, GE
// chain, loss, duplication, latency, jitter, reorder spike) on the sender's
// shard at send time — so each shard's RNG stream is a pure function of that
// shard's execution — and posts {arrival time, seq, from, to, bytes} into
// the mailbox for the destination shard. Mailboxes are lock-free: each is
// written by exactly one producer shard during the window and drained by
// exactly one consumer shard at the barrier, with the barrier itself
// providing the happens-before edge (see rt/barrier.hpp).
//
// At the barrier, the destination shard merges all inbound mailboxes in
// (arrival time, source shard, source sequence) order and injects them into
// its ControlNet's per-destination delivery queues with fresh local sequence
// numbers, so co-timed cross-shard arrivals drain in exactly that order —
// deterministic across worker-thread counts. The conservative lookahead
// contract (no arrival may land inside the window it was sent in) is
// asserted per datagram: it holds whenever the base one-way latency is at
// least the engine's window, which the constructor checks.
//
// With one shard the mailboxes are never touched and shard(0) behaves
// exactly like a standalone ControlNet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/strong_id.hpp"
#include "net/control_net.hpp"
#include "obs/counters.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_engine.hpp"

namespace stank::net {

class ShardedNet final : public sim::ShardExchange {
 public:
  // Shard s's ControlNet is built on engine.shard(s) with RNG stream
  // root.fork(s + 1) — shard 0 of a K=1 fabric draws the same stream as the
  // conventional single ControlNet construction (root.fork(1)).
  ShardedNet(sim::ShardedEngine& engine, sim::Rng root, NetConfig cfg = {});
  ~ShardedNet() override;

  ShardedNet(const ShardedNet&) = delete;
  ShardedNet& operator=(const ShardedNet&) = delete;

  [[nodiscard]] unsigned shard_count() const { return static_cast<unsigned>(nets_.size()); }
  [[nodiscard]] ControlNet& shard(unsigned s) { return *nets_[s]; }

  // Declares that `node` lives on `shard`. Required for every node before
  // the run when shard_count() > 1 (the directory is read concurrently by
  // all shards during windows, so it must be immutable while running).
  void place(NodeId node, unsigned shard);
  [[nodiscard]] unsigned owner_of(NodeId node, unsigned fallback) const {
    const std::uint32_t* s = directory_.find(node);
    return s != nullptr ? *s : fallback;
  }

  // ShardExchange: drains every mailbox destined for dst_shard, merges in
  // (arrival, source shard, source seq) order, injects into the shard net.
  void deliver(unsigned dst_shard, sim::SimTime window_end) override;

  // Aggregate of the per-shard fabrics' counters.
  [[nodiscard]] NetStats stats() const;

  // Applies a config to every shard fabric (setup-time only).
  void set_config(const NetConfig& cfg);

  // Arms mailbox telemetry: per-(src,dst) exchange volume, cross-shard
  // bytes, and a mailbox-depth high-water gauge, all written into the
  // producing shard's bank (plus an injected-count in the consumer's).
  // Registers K + 4 counters; call before the registry's freeze(). Dark
  // cost is the single `ctr_ != nullptr` branch in post().
  void set_counters(obs::Counters* c);
  // Merged mailbox-depth high-water across shards; 0 until armed. Safe to
  // read between runs (or from a snapshot hook).
  [[nodiscard]] std::uint64_t mailbox_high_water() const {
    return ctr_ != nullptr ? ctr_->merged(mail_hw_) : 0;
  }

 private:
  friend class ControlNet;

  struct CrossItem {
    sim::SimTime at;        // exact sampled arrival instant (pre-bucketing)
    std::uint64_t seq;      // source shard's send sequence
    std::uint32_t src_shard;
    NodeId from;
    NodeId to;
    Bytes bytes;
  };
  // One SPSC mailbox, padded so two producers appending to adjacent
  // mailboxes never contend on a cache line.
  struct alignas(64) Mailbox {
    std::vector<CrossItem> items;
  };

  // Called by shard src's ControlNet during a window (hot path: one vector
  // push_back, no locks, no atomics; the counter sites are plain stores
  // into shard src's own bank behind one dark branch).
  void post(unsigned src, unsigned dst, CrossItem item) {
    const std::size_t nbytes = item.bytes.size();
    auto& box = mail_[src * shard_count() + dst].items;
    box.push_back(std::move(item));
    if (ctr_ != nullptr) {
      ctr_->add_to(src, xshard_to_[dst], 1);
      ctr_->add_to(src, xshard_bytes_, nbytes);
      ctr_->gauge_max(src, mail_hw_, box.size());
    }
  }
  // Attach-time placement check (see ControlNet::attach).
  void note_attach(NodeId node, unsigned shard);

  sim::ShardedEngine* engine_;
  std::vector<std::unique_ptr<ControlNet>> nets_;
  std::vector<Mailbox> mail_;  // [src * K + dst]; diagonal unused
  // Per-destination-shard merge scratch, reused across barriers.
  std::vector<Mailbox> merge_scratch_;
  FlatMap<NodeId, std::uint32_t> directory_;

  // Telemetry (null = dark). xshard_to_[d] is incremented in the SOURCE
  // shard's bank, so slot (s, xshard_to_[d]) is the full (src,dst) exchange
  // volume matrix.
  obs::Counters* ctr_{nullptr};
  std::vector<obs::Counters::Id> xshard_to_;
  obs::Counters::Id xshard_bytes_;
  obs::Counters::Id xshard_in_;
  obs::Counters::Id mail_hw_;
};

}  // namespace stank::net
