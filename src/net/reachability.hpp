// Directed reachability between endpoints of one network.
//
// Section 2 of the paper is explicit that with two networks, partitions are
// asymmetric in general: A may reach B while B cannot reach A, and views
// V(A) != V(B). We therefore model reachability as a directed relation with
// individually severable edges, plus conveniences for the common symmetric
// cases.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace stank::net {

// Src and Dst are strong id types (NodeId, DiskId, ...).
template <typename Src, typename Dst = Src>
class Reachability {
 public:
  // Everything is reachable by default.
  [[nodiscard]] bool can_reach(Src from, Dst to) const {
    return !severed_.contains({from, to});
  }

  // Cuts delivery in one direction only (asymmetric partition).
  void sever(Src from, Dst to) { severed_.insert({from, to}); }
  void restore(Src from, Dst to) { severed_.erase({from, to}); }

  // Cuts both directions between a pair (only meaningful when Src == Dst).
  void sever_pair(Src a, Dst b)
    requires std::same_as<Src, Dst>
  {
    sever(a, b);
    sever(Src{b}, Dst{a});
  }
  void restore_pair(Src a, Dst b)
    requires std::same_as<Src, Dst>
  {
    restore(a, b);
    restore(Src{b}, Dst{a});
  }

  // Symmetric partition into groups: members of different groups cannot
  // reach each other in either direction.
  void partition(const std::vector<std::vector<Src>>& groups)
    requires std::same_as<Src, Dst>
  {
    for (std::size_t i = 0; i < groups.size(); ++i) {
      for (std::size_t j = 0; j < groups.size(); ++j) {
        if (i == j) continue;
        for (Src a : groups[i]) {
          for (Src b : groups[j]) {
            sever(a, b);
          }
        }
      }
    }
  }

  // Isolates one endpoint from a set of peers, both directions.
  void isolate(Src node, const std::vector<Dst>& peers) {
    for (Dst p : peers) {
      sever(node, p);
      if constexpr (std::same_as<Src, Dst>) {
        sever(p, node);
      }
    }
  }

  // Restores full connectivity.
  void heal() { severed_.clear(); }

  [[nodiscard]] std::size_t severed_edges() const { return severed_.size(); }
  [[nodiscard]] bool fully_connected() const { return severed_.empty(); }

 private:
  std::set<std::pair<Src, Dst>> severed_;
};

}  // namespace stank::net
