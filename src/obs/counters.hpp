// Shard-aware counter/gauge registry for the parallel runtime.
//
// The flight recorder (recorder.hpp) sees per-node protocol events; this
// registry sees the parallel engine itself — barrier waits, mailbox depths,
// window load, idle skips. Requirements that shaped it:
//
//   * Data-path cost: a plain u64 add into a shard-private, cache-line-
//     aligned bank. Zero atomics, zero allocation, zero branches beyond the
//     owner's single `if (ctr_ != nullptr)` dark gate.
//   * Thread safety by construction, not by locking: shard s's bank is only
//     ever written by the worker that owns shard s during a window. Reads
//     from other threads happen exclusively at barrier-protected points
//     (between the snapshot barrier pair, or after the parallel_for join),
//     where the barrier's acq_rel rendezvous provides the happens-before.
//   * Determinism: the registry observes; it never schedules engine events
//     and never draws randomness, so an armed run executes the exact same
//     event sequence as a dark one (the digest tests pin this).
//
// Lifecycle: register every counter (add/add_hist), then freeze(shards) —
// one aligned allocation for all banks — then increment. Registration after
// freeze is a programming error and asserts.
//
// Histograms are kHistBuckets consecutive slots per bank holding log2-bucket
// counts (bucket b counts values in [2^(b-1), 2^b), bucket 0 counts zero).
// Good enough for p50/p99 of barrier wait times without a float in sight.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "obs/recorder.hpp"

namespace stank::obs {

class Counters {
 public:
  // How per-shard slots combine into one fleet-wide value.
  enum class Merge : std::uint8_t {
    kSum,  // volumes and totals
    kMax,  // high-water marks and gauges
  };

  struct Id {
    std::uint32_t slot{UINT32_MAX};
    [[nodiscard]] bool valid() const { return slot != UINT32_MAX; }
  };
  struct HistId {
    std::uint32_t base{UINT32_MAX};
    [[nodiscard]] bool valid() const { return base != UINT32_MAX; }
  };

  static constexpr std::size_t kHistBuckets = 32;

  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  // -- registration (before freeze) ----------------------------------------
  Id add(std::string name, Merge merge = Merge::kSum) {
    STANK_ASSERT_MSG(!frozen(), "register counters before freeze()");
    const Id id{slots_used_};
    defs_.push_back(Def{std::move(name), merge, slots_used_, 1});
    slots_used_ += 1;
    return id;
  }

  HistId add_hist(std::string name) {
    STANK_ASSERT_MSG(!frozen(), "register counters before freeze()");
    const HistId id{slots_used_};
    defs_.push_back(Def{std::move(name), Merge::kSum, slots_used_,
                        static_cast<std::uint32_t>(kHistBuckets)});
    slots_used_ += static_cast<std::uint32_t>(kHistBuckets);
    return id;
  }

  // Allocates one zeroed bank per shard, each starting on its own cache
  // line. The only allocation the registry ever performs.
  void freeze(unsigned shards) {
    STANK_ASSERT_MSG(!frozen(), "freeze() is one-shot");
    STANK_ASSERT_MSG(shards >= 1, "need at least one shard");
    shards_ = shards;
    stride_ = ((slots_used_ + kLineSlots - 1) / kLineSlots) * kLineSlots;
    if (stride_ == 0) stride_ = kLineSlots;
    raw_.assign(stride_ * shards + kLineSlots, 0);
    const auto addr = reinterpret_cast<std::uintptr_t>(raw_.data());
    const std::uintptr_t misaligned = addr % 64;
    base_ = raw_.data() + (misaligned == 0 ? 0 : (64 - misaligned) / sizeof(std::uint64_t));
  }

  [[nodiscard]] bool frozen() const { return base_ != nullptr; }
  [[nodiscard]] unsigned shard_count() const { return shards_; }
  [[nodiscard]] std::size_t def_count() const { return defs_.size(); }

  // -- data path (shard-owner thread only) ---------------------------------
  void add_to(unsigned shard, Id id, std::uint64_t v = 1) { bank(shard)[id.slot] += v; }

  void gauge_max(unsigned shard, Id id, std::uint64_t v) {
    std::uint64_t& s = bank(shard)[id.slot];
    if (v > s) s = v;
  }

  void record_hist(unsigned shard, HistId h, std::uint64_t value) {
    bank(shard)[h.base + bucket_of(value)] += 1;
  }

  // Bulk-folds externally bucketed counts (the barrier's per-worker
  // WaitStats use the same log2 bucketing) into a histogram's bank.
  void add_hist_count(unsigned shard, HistId h, unsigned bucket, std::uint64_t n) {
    bank(shard)[h.base + bucket] += n;
  }

  // -- control path (barrier-protected or post-join only) ------------------
  [[nodiscard]] std::uint64_t value(unsigned shard, Id id) const {
    return bank(shard)[id.slot];
  }

  [[nodiscard]] std::uint64_t merged(Id id) const {
    const Def& d = def_of(id.slot);
    std::uint64_t acc = bank(0)[id.slot];
    for (unsigned s = 1; s < shards_; ++s) acc = merge2(d.merge, acc, bank(s)[id.slot]);
    return acc;
  }

  [[nodiscard]] static std::uint64_t merge2(Merge m, std::uint64_t a, std::uint64_t b) {
    return m == Merge::kSum ? a + b : (a > b ? a : b);
  }

  [[nodiscard]] std::uint64_t hist_count(HistId h) const {
    std::uint64_t n = 0;
    for (unsigned s = 0; s < shards_; ++s) {
      for (std::size_t b = 0; b < kHistBuckets; ++b) n += bank(s)[h.base + b];
    }
    return n;
  }

  // Quantile estimate over the merged log2 buckets: returns the midpoint of
  // the bucket holding rank q*total (upper bound for bucket 0 = 0). Exact
  // enough for a p50/p99 wait-time column; the buckets are the resolution.
  [[nodiscard]] std::uint64_t hist_quantile(HistId h, double q) const {
    std::uint64_t buckets[kHistBuckets] = {};
    std::uint64_t total = 0;
    for (unsigned s = 0; s < shards_; ++s) {
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        buckets[b] += bank(s)[h.base + b];
        total += bank(s)[h.base + b];
      }
    }
    if (total == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) return bucket_mid(b);
    }
    return bucket_mid(kHistBuckets - 1);
  }

  // Zeroes every slot; banks and definitions survive. Control path.
  void reset() {
    for (auto& v : raw_) v = 0;
  }

  // fn(name, merge, id, is_hist) per definition, registration order.
  template <typename Fn>
  void visit_defs(Fn&& fn) const {
    for (const Def& d : defs_) {
      fn(d.name, d.merge, Id{d.slot}, d.slots == kHistBuckets);
    }
  }

  // Appends one series point per (scalar definition, shard) to the
  // recorder — "ctr/<name>/s<k>" — plus the merged value as "ctr/<name>",
  // and p50/p99 points for histogram definitions. This is how counters ride
  // the existing trace format: no new binary sections, and the Chrome
  // exporter's series -> counter-track path turns each per-shard series
  // into its own Perfetto counter track for free. Control path only.
  void emit_series(Recorder& rec, double t_s) const {
    for (const Def& d : defs_) {
      if (d.slots == kHistBuckets) {
        const HistId h{d.slot};
        rec.sample("ctr/" + d.name + "/p50", t_s,
                   static_cast<double>(hist_quantile(h, 0.50)));
        rec.sample("ctr/" + d.name + "/p99", t_s,
                   static_cast<double>(hist_quantile(h, 0.99)));
        continue;
      }
      const Id id{d.slot};
      for (unsigned s = 0; s < shards_; ++s) {
        rec.sample("ctr/" + d.name + "/s" + std::to_string(s), t_s,
                   static_cast<double>(value(s, id)));
      }
      rec.sample("ctr/" + d.name, t_s, static_cast<double>(merged(id)));
    }
  }

  // Name lookup for tools/tests; linear scan, control path.
  [[nodiscard]] Id find(const std::string& name) const {
    for (const Def& d : defs_) {
      if (d.slots == 1 && d.name == name) return Id{d.slot};
    }
    return Id{};
  }
  [[nodiscard]] HistId find_hist(const std::string& name) const {
    for (const Def& d : defs_) {
      if (d.slots == kHistBuckets && d.name == name) return HistId{d.slot};
    }
    return HistId{};
  }

  [[nodiscard]] static unsigned bucket_of(std::uint64_t v) {
    const unsigned width = static_cast<unsigned>(std::bit_width(v));
    return width < kHistBuckets ? width : kHistBuckets - 1;
  }

  [[nodiscard]] static std::uint64_t bucket_mid(std::size_t b) {
    if (b == 0) return 0;
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    return lo + lo / 2;
  }

 private:
  static constexpr std::size_t kLineSlots = 64 / sizeof(std::uint64_t);

  struct Def {
    std::string name;
    Merge merge;
    std::uint32_t slot;
    std::uint32_t slots;  // 1 scalar, kHistBuckets histogram
  };

  [[nodiscard]] std::uint64_t* bank(unsigned shard) {
    return base_ + static_cast<std::size_t>(shard) * stride_;
  }
  [[nodiscard]] const std::uint64_t* bank(unsigned shard) const {
    return base_ + static_cast<std::size_t>(shard) * stride_;
  }

  [[nodiscard]] const Def& def_of(std::uint32_t slot) const {
    for (const Def& d : defs_) {
      if (slot >= d.slot && slot < d.slot + d.slots) return d;
    }
    STANK_ASSERT_MSG(false, "unknown counter slot");
    return defs_.front();
  }

  std::vector<Def> defs_;
  std::uint32_t slots_used_{0};
  std::vector<std::uint64_t> raw_;  // over-allocated; base_ is 64B-aligned
  std::uint64_t* base_{nullptr};
  std::size_t stride_{0};  // slots per bank, rounded to a cache line
  unsigned shards_{0};
};

}  // namespace stank::obs
