#include "obs/export.hpp"

#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace stank::obs {

namespace {

// Synthetic pid for counter tracks; real nodes use their own id. Node 0 is
// never allocated by scenarios (servers/clients start at 1).
constexpr std::uint32_t kMetricsPid = 0;

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c)
             << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

[[nodiscard]] double to_us(sim::SimTime t) { return static_cast<double>(t.ns) / 1e3; }

[[nodiscard]] const char* lock_mode_name(std::uint64_t m) {
  switch (m) {
    case 0: return "none";
    case 1: return "shared";
    case 2: return "exclusive";
    default: return "?";
  }
}

[[nodiscard]] const char* standing_name(std::uint64_t s) {
  switch (s) {
    case 0: return "good";
    case 1: return "suspect";
    case 2: return "failed";
    default: return "?";
  }
}

struct Sep {
  bool first{true};
  void next(std::ostream& os) {
    if (!first) os << ",\n";
    first = false;
  }
};

}  // namespace

std::string detail_string(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kLeasePhase:
      os << lease_phase_name(e.a) << " -> " << lease_phase_name(e.b);
      break;
    case EventKind::kReqSend:
    case EventKind::kReqRetransmit:
    case EventKind::kAckRecv:
    case EventKind::kNackRecv:
    case EventKind::kReqTimeout:
    case EventKind::kServerMsgRecv:
    case EventKind::kServerMsgDup:
      os << "msg=" << e.a;
      if (e.b != 0) os << " b=" << e.b;
      break;
    case EventKind::kReqRecv:
    case EventKind::kReqReplay:
    case EventKind::kAckSend:
    case EventKind::kNackSend:
    case EventKind::kServerMsgSend:
    case EventKind::kServerMsgRetransmit:
    case EventKind::kServerMsgAcked:
    case EventKind::kDeliveryFailure:
      os << "msg=" << e.a << " client=n" << e.b;
      break;
    case EventKind::kStandingChange:
      os << "client=n" << e.a << " standing=" << standing_name(e.b);
      break;
    case EventKind::kStealTimerArm:
      os << "client=n" << e.a << " wait=" << static_cast<double>(e.b) / 1e6 << "ms";
      break;
    case EventKind::kLockSteal:
      os << "client=n" << e.a;
      break;
    case EventKind::kLockGrant:
    case EventKind::kLockQueue:
    case EventKind::kLockDemand:
    case EventKind::kLockRelease:
      os << "file=f" << e.a << " mode=" << lock_mode_name(e.b);
      break;
    case EventKind::kLockStolen:
      os << "file=f" << e.a;
      break;
    case EventKind::kRegister:
      os << "epoch=" << e.a;
      break;
    case EventKind::kNetDrop:
      os << "to=n" << e.a << " cause=";
      switch (static_cast<DropCause>(e.b)) {
        case DropCause::kPartition: os << "partition"; break;
        case DropCause::kRandom: os << "random"; break;
        case DropCause::kBurst: os << "burst"; break;
        case DropCause::kDetached: os << "detached"; break;
        default: os << "?";
      }
      break;
    case EventKind::kNetDup:
    case EventKind::kNetReorder:
      os << "to=n" << e.a;
      break;
    case EventKind::kWatchdogTrip:
    case EventKind::kWatchdogClear: {
      double v = 0.0;
      static_assert(sizeof(v) == sizeof(e.b));
      std::memcpy(&v, &e.b, sizeof(v));
      os << "probe=" << e.a << " value=" << v;
      break;
    }
    case EventKind::kLeaseRenew:
    case EventKind::kKeepaliveSend:
    case EventKind::kLeaseExpire:
    case EventKind::kFence:
    case EventKind::kUnfence:
    case EventKind::kCrash:
    case EventKind::kRestart:
    case EventKind::kAnnotation:
    case EventKind::kNone:
    case EventKind::kCount_:
      if (e.a != 0 || e.b != 0) os << "a=" << e.a << " b=" << e.b;
      break;
  }
  return os.str();
}

void write_chrome_trace(const Recorder& rec, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  Sep sep;

  // Process/thread naming metadata. Node 0 is the omniscient observer (the
  // watchdog records there) and doubles as the metrics pid; it gets the
  // watchdog instant track instead of the per-node protocol tracks.
  bool have_watchdog_node = false;
  for (NodeId node : rec.nodes()) {
    if (node.value() == kMetricsPid) {
      have_watchdog_node = true;
      continue;
    }
    sep.next(os);
    os << R"({"name":"process_name","ph":"M","pid":)" << node.value()
       << R"(,"args":{"name":"n)" << node.value() << "\"}}";
    sep.next(os);
    os << R"({"name":"thread_name","ph":"M","pid":)" << node.value()
       << R"(,"tid":0,"args":{"name":"lease phases"}})";
    sep.next(os);
    os << R"({"name":"thread_name","ph":"M","pid":)" << node.value()
       << R"(,"tid":1,"args":{"name":"events"}})";
  }
  if (!rec.series().empty() || have_watchdog_node) {
    sep.next(os);
    os << R"({"name":"process_name","ph":"M","pid":)" << kMetricsPid
       << R"(,"args":{"name":"metrics"}})";
  }
  if (have_watchdog_node) {
    sep.next(os);
    os << R"({"name":"thread_name","ph":"M","pid":)" << kMetricsPid
       << R"(,"tid":3,"args":{"name":"watchdog"}})";
  }

  // Lease-phase residency slices + instants, per node.
  for (NodeId node : rec.nodes()) {
    std::uint64_t open_phase = 0;  // no-lease
    sim::SimTime open_since{};
    sim::SimTime last{};
    bool have_open = false;
    rec.visit_node(node, [&](const Event& e) {
      last = e.at;
      if (e.kind == EventKind::kLeasePhase) {
        if (have_open) {
          sep.next(os);
          os << R"({"name":")" << lease_phase_name(open_phase)
             << R"(","cat":"lease-phase","ph":"X","ts":)" << to_us(open_since)
             << ",\"dur\":" << to_us(e.at) - to_us(open_since) << ",\"pid\":" << node.value()
             << ",\"tid\":0}";
        }
        open_phase = e.b;
        open_since = e.at;
        have_open = true;
        return;
      }
      sep.next(os);
      if (e.kind == EventKind::kWatchdogTrip || e.kind == EventKind::kWatchdogClear) {
        // Global-scope instants on the metrics process: a trip should be
        // visible across the whole timeline, not buried in one node's lane.
        os << R"({"name":")" << to_string(e.kind)
           << R"(","cat":"watchdog","ph":"i","ts":)" << to_us(e.at)
           << R"(,"s":"g","pid":)" << kMetricsPid << ",\"tid\":3,\"args\":{\"detail\":\"";
        json_escape(os, detail_string(e));
        os << "\"}}";
        return;
      }
      os << R"({"name":")" << to_string(e.kind) << R"(","cat":"event","ph":"i","ts":)"
         << to_us(e.at) << R"(,"s":"t","pid":)" << node.value() << ",\"tid\":1,\"args\":{\"a\":"
         << e.a << ",\"b\":" << e.b << ",\"detail\":\"";
      json_escape(os, detail_string(e));
      os << "\"}}";
    });
    if (have_open) {
      // The run ended inside a phase; close the slice at the node's last
      // event so the residency is visible rather than silently dropped.
      sep.next(os);
      os << R"({"name":")" << lease_phase_name(open_phase)
         << R"(","cat":"lease-phase","ph":"X","ts":)" << to_us(open_since)
         << ",\"dur\":" << to_us(last) - to_us(open_since) << ",\"pid\":" << node.value()
         << ",\"tid\":0}";
    }
  }

  // Legacy string annotations.
  for (const auto& a : rec.annotations()) {
    sep.next(os);
    os << R"({"name":")";
    json_escape(os, a.category);
    os << R"(","cat":"annotation","ph":"i","ts":)" << to_us(a.at) << R"(,"s":"t","pid":)"
       << a.node.value() << ",\"tid\":2,\"args\":{\"detail\":\"";
    json_escape(os, a.detail);
    os << "\"}}";
  }

  // Sampled time series as counter tracks.
  for (const auto& s : rec.series()) {
    for (const auto& p : s.points) {
      sep.next(os);
      os << R"({"name":")";
      json_escape(os, s.name);
      os << R"(","ph":"C","ts":)" << p.t_s * 1e6 << ",\"pid\":" << kMetricsPid
         << ",\"args\":{\"value\":" << p.value << "}}";
    }
  }

  os << "\n]}\n";
}

void write_timeline(const Recorder& rec, std::ostream& os, bool filter_node, NodeId node) {
  const auto emit = [&os](const Event& e) {
    // StrongId streams as two insertions ("n" + value), so setw would pad
    // only the prefix; render it to one string first.
    std::ostringstream ns;
    ns << e.node;
    os << std::fixed << std::setprecision(6) << std::setw(12) << e.at.seconds() << "s  "
       << std::left << std::setw(7) << ns.str() << std::setw(22) << to_string(e.kind)
       << std::right << "  " << detail_string(e) << "\n";
  };
  if (filter_node) {
    rec.visit_node(node, emit);
  } else {
    rec.visit_merged(emit);
  }
}

}  // namespace stank::obs
