#include "obs/watchdog.hpp"

#include <bit>
#include <cstdio>

namespace stank::obs {

std::uint32_t Watchdog::add_probe(std::string name, std::function<double()> fn,
                                  double min, double max) {
  const auto id = static_cast<std::uint32_t>(probes_.size());
  Probe p;
  p.name = std::move(name);
  p.fn = std::move(fn);
  p.lo = min;
  p.hi = max;
  probes_.push_back(std::move(p));
  return id;
}

std::uint32_t Watchdog::add_rate_probe(std::string name, std::function<double()> fn,
                                       double max_delta) {
  const auto id = static_cast<std::uint32_t>(probes_.size());
  Probe p;
  p.name = std::move(name);
  p.fn = std::move(fn);
  p.lo = -std::numeric_limits<double>::infinity();
  p.hi = max_delta;
  p.is_rate = true;
  probes_.push_back(std::move(p));
  return id;
}

void Watchdog::evaluate(sim::SimTime at) {
  for (std::uint32_t i = 0; i < probes_.size(); ++i) {
    Probe& p = probes_[i];
    double v = p.fn();
    if (p.is_rate) {
      const double cur = v;
      if (!p.primed) {
        p.primed = true;
        p.prev = cur;
        continue;
      }
      v = cur - p.prev;
      p.prev = cur;
    }
    const bool violated = v < p.lo || v > p.hi;
    if (violated && !p.tripped) {
      p.tripped = true;
      ++trips_;
      rec_->record(at, NodeId{0}, EventKind::kWatchdogTrip, i,
                   std::bit_cast<std::uint64_t>(v));
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s value=%g legal=[%g, %g]%s", p.name.c_str(),
                    v, p.lo, p.hi, p.is_rate ? " (delta per eval)" : "");
      rec_->annotate(at, NodeId{0}, "watchdog", buf);
    } else if (!violated && p.tripped) {
      p.tripped = false;
      rec_->record(at, NodeId{0}, EventKind::kWatchdogClear, i,
                   std::bit_cast<std::uint64_t>(v));
    }
  }
}

}  // namespace stank::obs
