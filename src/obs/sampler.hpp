// Periodic time-series sampling: a registry of named probes snapshotted
// into the recorder's series. The owner decides the cadence (Scenario hooks
// it into its existing lease-state sampling timer); the sampler itself holds
// no timer so it stays engine-agnostic.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/recorder.hpp"

namespace stank::obs {

class Sampler {
 public:
  explicit Sampler(Recorder& rec) : rec_(&rec) {}

  // Absolute gauge: the probe's value is recorded as-is.
  void add_probe(std::string name, std::function<double()> probe) {
    probes_.push_back(Probe{std::move(name), std::move(probe), false, 0.0});
  }

  // Monotone-counter probe: records the delta since the previous snapshot,
  // so cumulative stats (NetStats) plot as rates instead of ramps.
  void add_delta_probe(std::string name, std::function<double()> probe) {
    probes_.push_back(Probe{std::move(name), std::move(probe), true, 0.0});
  }

  [[nodiscard]] std::size_t probe_count() const { return probes_.size(); }

  // Samples every probe at global time t_s (seconds).
  void snapshot(double t_s) {
    for (auto& p : probes_) {
      const double v = p.fn();
      if (p.delta) {
        rec_->sample(p.name, t_s, v - p.prev);
        p.prev = v;
      } else {
        rec_->sample(p.name, t_s, v);
      }
    }
  }

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
    bool delta{false};
    double prev{0.0};
  };

  Recorder* rec_;
  std::vector<Probe> probes_;
};

}  // namespace stank::obs
