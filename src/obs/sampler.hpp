// Periodic time-series sampling: a registry of named probes snapshotted
// into the recorder's series. The owner decides the cadence (Scenario hooks
// it into its existing lease-state sampling timer); the sampler itself holds
// no timer so it stays engine-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/engine.hpp"

namespace stank::obs {

class Sampler {
 public:
  explicit Sampler(Recorder& rec) : rec_(&rec) {}

  // Absolute gauge: the probe's value is recorded as-is.
  void add_probe(std::string name, std::function<double()> probe) {
    probes_.push_back(Probe{std::move(name), std::move(probe), false, 0.0});
  }

  // Monotone-counter probe: records the delta since the previous snapshot,
  // so cumulative stats (NetStats) plot as rates instead of ramps.
  void add_delta_probe(std::string name, std::function<double()> probe) {
    probes_.push_back(Probe{std::move(name), std::move(probe), true, 0.0});
  }

  [[nodiscard]] std::size_t probe_count() const { return probes_.size(); }

  // Samples every probe at global time t_s (seconds).
  void snapshot(double t_s) {
    for (auto& p : probes_) {
      const double v = p.fn();
      if (p.delta) {
        rec_->sample(p.name, t_s, v - p.prev);
        p.prev = v;
      } else {
        rec_->sample(p.name, t_s, v);
      }
    }
  }

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
    bool delta{false};
    double prev{0.0};
  };

  Recorder* rec_;
  std::vector<Probe> probes_;
};

// Drives `sampler.snapshot()` on a fixed cadence from an engine: the
// self-rescheduling timer the serial Scenario builds by hand, packaged so a
// sharded run can attach one sampler per shard engine (each shard's
// recorder is private to its worker; merge the series afterwards with
// Recorder::absorb_series_from). The chain stops itself at `until_s` — the
// scheduled event holds the only strong reference, so nothing leaks.
//
// NOTE: this schedules engine events, so it perturbs events_executed() and
// with it the determinism digest. Sampling is a "bright" diagnostic mode;
// the dark-mode counters/watchdog path never uses it.
inline void attach_periodic(sim::Engine& engine, Sampler& sampler, sim::Duration every,
                            double until_s) {
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&engine, &sampler, every, until_s, weak = std::weak_ptr(tick)]() {
    sampler.snapshot(engine.now().seconds());
    if (engine.now().seconds() < until_s) {
      if (auto strong = weak.lock()) {
        engine.schedule_after(every, [strong]() { (*strong)(); });
      }
    }
  };
  engine.schedule_after(every, [tick]() { (*tick)(); });
}

}  // namespace stank::obs
