// Online invariant watchdog: registered probes evaluated on an existing
// cadence, threshold crossings recorded as typed flight-recorder events.
//
// The watchdog owns NO timer and schedules NO engine events — that is the
// point. Scheduling would change events_executed() and break the armed ==
// dark determinism digest. Instead the owner calls evaluate() from a cadence
// that already exists: Scenario hooks it into its 250ms lease-state sampling
// timer (the lease-timer cadence the paper's failure detection runs on), and
// bench_swarm calls it from the sharded engine's barrier snapshot hook,
// where every other worker is parked and all shard state is
// happens-before-visible.
//
// Probes are edge-triggered: one kWatchdogTrip when the value leaves its
// legal band, one kWatchdogClear when it returns. A trip also records a
// string annotation carrying the probe name and bound — allocation is fine
// there, anomalies are rare by definition.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace stank::obs {

class Watchdog {
 public:
  explicit Watchdog(Recorder& rec) : rec_(&rec) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Legal band is [min, max] inclusive; outside it the probe trips.
  std::uint32_t add_probe(std::string name, std::function<double()> fn,
                          double min = -std::numeric_limits<double>::infinity(),
                          double max = std::numeric_limits<double>::infinity());

  // Rate probe over a monotone counter: trips when the counter grows by
  // more than max_delta between consecutive evaluations. max_delta = 0
  // means "any growth at all is an anomaly" (e.g. recorder ring drops).
  std::uint32_t add_rate_probe(std::string name, std::function<double()> fn,
                               double max_delta);

  // Evaluates every probe at simulated time `at`. Call from an existing
  // cadence only; never schedule an event for this.
  void evaluate(sim::SimTime at);

  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::size_t probe_count() const { return probes_.size(); }
  [[nodiscard]] const std::string& probe_name(std::uint32_t id) const {
    return probes_[id].name;
  }
  [[nodiscard]] bool tripped(std::uint32_t id) const { return probes_[id].tripped; }

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
    double lo{0.0};
    double hi{0.0};
    bool is_rate{false};
    bool primed{false};  // rate probes skip their first evaluation
    double prev{0.0};
    bool tripped{false};
  };

  Recorder* rec_;
  std::vector<Probe> probes_;
  std::uint64_t trips_{0};
};

}  // namespace stank::obs
