#include "obs/trace_log.hpp"

#include <iomanip>

namespace stank::obs {

std::vector<TraceEvent> TraceLog::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  visit(category, [&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<TraceEvent> TraceLog::by_node(NodeId node) const {
  std::vector<TraceEvent> out;
  visit_node(node, [&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

const TraceEvent* TraceLog::find(const std::string& category, const std::string& needle) const {
  for (const auto& e : events()) {
    if (e.category == category && e.detail.find(needle) != std::string::npos) {
      return &e;
    }
  }
  return nullptr;
}

std::size_t TraceLog::count(const std::string& category, const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& e : events()) {
    if (e.category == category && e.detail.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

void TraceLog::clear() { rec_->clear_annotations(); }

void TraceLog::print(std::ostream& os) const {
  for (const auto& e : events()) {
    os << std::fixed << std::setprecision(6) << e.at.seconds() << "s  " << e.node << "  ["
       << e.category << "] " << e.detail << "\n";
  }
}

}  // namespace stank::obs
