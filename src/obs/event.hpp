// Typed flight-recorder events.
//
// The string TraceLog is great for test assertions but costs a heap string
// per event, which rules it out on the hot path. The recorder's native unit
// is instead a fixed 32-byte POD: an event kind from a closed taxonomy, the
// node it happened on, and two u64 payload words whose meaning the kind
// defines. No strings, no allocation, no formatting — writing one is a
// bounds check and a struct store into a per-node ring.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/strong_id.hpp"
#include "sim/time.hpp"

namespace stank::obs {

// The closed event taxonomy. Payload word conventions are noted per kind;
// unlisted words are zero. Append new kinds at the end of their section —
// the numeric value is part of the binary trace format.
enum class EventKind : std::uint16_t {
  kNone = 0,

  // -- client transport -- (node = client)
  kReqSend,             // a = msg id, b = request-body variant index
  kReqRetransmit,       // a = msg id, b = transmission count so far
  kAckRecv,             // a = msg id
  kNackRecv,            // a = msg id
  kReqTimeout,          // a = msg id, b = transmissions when abandoned
  kServerMsgRecv,       // a = msg id
  kServerMsgDup,        // a = msg id (suppressed duplicate, re-ACKed)

  // -- server transport -- (node = server; a = msg id, b = client node)
  kReqRecv,             // aux = request-body variant index
  kReqReplay,           // duplicate request answered from the reply cache
  kAckSend,
  kNackSend,
  kServerMsgSend,       // aux = server-body variant index
  kServerMsgRetransmit, // aux = transmission count so far
  kServerMsgAcked,
  kDeliveryFailure,     // retries exhausted; lease timeout starts

  // -- client lease agent -- (node = client)
  kLeasePhase,          // a = phase left, b = phase entered (LeasePhase values)
  kLeaseRenew,          // a = renewal local time ns
  kKeepaliveSend,
  kLeaseExpire,

  // -- server lease authority -- (node = server, a = client node)
  kStandingChange,      // b = new ClientStanding value
  kStealTimerArm,       // b = server-wait local duration ns
  kLockSteal,           // server fenced + stole the client's locks

  // -- lock manager -- (node = requesting/holding client)
  kLockGrant,           // a = file id, b = mode granted
  kLockQueue,           // a = file id, b = mode wanted
  kLockDemand,          // a = file id, b = max mode holder may retain
  kLockRelease,         // a = file id, b = mode retained after release
  kLockStolen,          // a = file id (this holder lost it to a steal)

  // -- sessions / fencing -- (node = the client affected)
  kRegister,            // a = epoch granted
  kFence,
  kUnfence,
  kCrash,
  kRestart,

  // -- network fabric -- (node = sender, a = destination node)
  kNetDrop,             // b = DropCause
  kNetDup,              // b = extra copies injected
  kNetReorder,          // b = spike delay ns

  // A string annotation recorded through the legacy TraceLog adapter lives
  // in the side channel; this marker only appears in merged export views.
  kAnnotation,

  // -- invariant watchdog -- (node = 0, the omniscient observer;
  //    a = probe index, b = bit_cast<u64> of the offending double value)
  kWatchdogTrip,   // a probe left its legal band (edge-triggered)
  kWatchdogClear,  // the probe returned to its band

  kCount_,
};

// Payload word b of kNetDrop.
enum class DropCause : std::uint8_t {
  kPartition = 0,
  kRandom = 1,
  kBurst = 2,
  kDetached = 3,
};

[[nodiscard]] constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kReqSend: return "req-send";
    case EventKind::kReqRetransmit: return "req-retransmit";
    case EventKind::kAckRecv: return "ack-recv";
    case EventKind::kNackRecv: return "nack-recv";
    case EventKind::kReqTimeout: return "req-timeout";
    case EventKind::kServerMsgRecv: return "server-msg-recv";
    case EventKind::kServerMsgDup: return "server-msg-dup";
    case EventKind::kReqRecv: return "req-recv";
    case EventKind::kReqReplay: return "req-replay";
    case EventKind::kAckSend: return "ack-send";
    case EventKind::kNackSend: return "nack-send";
    case EventKind::kServerMsgSend: return "server-msg-send";
    case EventKind::kServerMsgRetransmit: return "server-msg-retransmit";
    case EventKind::kServerMsgAcked: return "server-msg-acked";
    case EventKind::kDeliveryFailure: return "delivery-failure";
    case EventKind::kLeasePhase: return "lease-phase";
    case EventKind::kLeaseRenew: return "lease-renew";
    case EventKind::kKeepaliveSend: return "keepalive-send";
    case EventKind::kLeaseExpire: return "lease-expire";
    case EventKind::kStandingChange: return "standing-change";
    case EventKind::kStealTimerArm: return "steal-timer-arm";
    case EventKind::kLockSteal: return "lock-steal";
    case EventKind::kLockGrant: return "lock-grant";
    case EventKind::kLockQueue: return "lock-queue";
    case EventKind::kLockDemand: return "lock-demand";
    case EventKind::kLockRelease: return "lock-release";
    case EventKind::kLockStolen: return "lock-stolen";
    case EventKind::kRegister: return "register";
    case EventKind::kFence: return "fence";
    case EventKind::kUnfence: return "unfence";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kNetDrop: return "net-drop";
    case EventKind::kNetDup: return "net-dup";
    case EventKind::kNetReorder: return "net-reorder";
    case EventKind::kAnnotation: return "annotation";
    case EventKind::kWatchdogTrip: return "watchdog-trip";
    case EventKind::kWatchdogClear: return "watchdog-clear";
    case EventKind::kCount_: break;
  }
  return "?";
}

// Lease-phase names, mirroring core::LeasePhase by value. Kept here (not by
// including core) so exporters and the trace_dump tool can name phases
// without pulling the protocol stack into the obs layer.
[[nodiscard]] constexpr const char* lease_phase_name(std::uint64_t phase) {
  switch (phase) {
    case 0: return "no-lease";
    case 1: return "active";
    case 2: return "renewal";
    case 3: return "suspect";
    case 4: return "flush";
    case 5: return "expired";
    default: return "?";
  }
}

// One recorded event. Global sim time: the recorder is an omniscient
// observer, like the TraceLog before it; per-node local clocks appear only
// inside payload words where a kind says so.
struct Event {
  sim::SimTime at{};
  NodeId node{};
  EventKind kind{EventKind::kNone};
  std::uint16_t aux{0};  // small secondary payload (e.g. peer node id)
  std::uint64_t a{0};
  std::uint64_t b{0};
};

static_assert(sizeof(Event) == 32, "Event is the binary trace format; keep it packed");
static_assert(std::is_trivially_copyable_v<Event>);

// Span taxonomy: named latency populations, each an exact Histogram of
// milliseconds. Closed like EventKind; the numeric value is part of the
// binary trace format.
enum class SpanKind : std::uint8_t {
  kRequestRtt = 0,   // client: first send -> ACK/NACK (local ms)
  kLockAcquire,      // client: lock() call -> grant/denial callback (local ms)
  kPhaseActive,      // lease phase-1 residency (global ms)
  kPhaseRenewal,     // lease phase-2 residency
  kPhaseSuspect,     // lease phase-3 residency
  kPhaseFlush,       // lease phase-4 residency
  kStealRecovery,    // server: locks stolen -> client re-registered (local ms)
  kOpLatency,        // workload: op issued -> completed (global ms)
  kOpLatencySteady,    // ops that ran entirely in lease phases 1/2
  kOpLatencyRecovery,  // ops that overlapped a suspect/expiry disruption
  kCount_,
};

[[nodiscard]] constexpr const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRequestRtt: return "request-rtt";
    case SpanKind::kLockAcquire: return "lock-acquire";
    case SpanKind::kPhaseActive: return "phase-active";
    case SpanKind::kPhaseRenewal: return "phase-renewal";
    case SpanKind::kPhaseSuspect: return "phase-suspect";
    case SpanKind::kPhaseFlush: return "phase-flush";
    case SpanKind::kStealRecovery: return "steal-recovery";
    case SpanKind::kOpLatency: return "op-latency";
    case SpanKind::kOpLatencySteady: return "op-latency-steady";
    case SpanKind::kOpLatencyRecovery: return "op-latency-recovery";
    case SpanKind::kCount_: break;
  }
  return "?";
}

constexpr std::size_t kEventKindCount = static_cast<std::size_t>(EventKind::kCount_);
constexpr std::size_t kSpanKindCount = static_cast<std::size_t>(SpanKind::kCount_);

}  // namespace stank::obs
