#include "obs/recorder.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace stank::obs {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'N', 'K', 'T', 'R', 'C', '1'};
// Element-count sanity bound for load(): rejects counts that only a
// corrupted stream could produce before they turn into giant allocations.
constexpr std::uint64_t kMaxLoadCount = 1ull << 32;

template <typename T>
void wr(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
[[nodiscard]] bool rd(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

void wr_str(std::ostream& os, const std::string& s) {
  wr(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] bool rd_str(std::istream& is, std::string& s) {
  std::uint32_t len = 0;
  if (!rd(is, len)) return false;
  s.resize(len);
  is.read(s.data(), static_cast<std::streamsize>(len));
  return is.good() || (len == 0 && !is.bad());
}

}  // namespace

Recorder::Recorder(RecorderConfig cfg) : cfg_(cfg) { STANK_ASSERT(cfg_.ring_capacity > 0); }

void Recorder::Ring::push(const Event& e, std::size_t cap) {
  if (buf.size() < cap) {
    buf.push_back(e);
    return;
  }
  buf[head] = e;
  head = (head + 1) % buf.size();
  ++dropped;
}

void Recorder::record(sim::SimTime at, NodeId node, EventKind kind, std::uint64_t a,
                      std::uint64_t b, std::uint16_t aux) {
  Event e;
  e.at = at;
  e.node = node;
  e.kind = kind;
  e.aux = aux;
  e.a = a;
  e.b = b;
  rings_[node].push(e, cfg_.ring_capacity);
}

void Recorder::record_now(NodeId node, EventKind kind, std::uint64_t a, std::uint64_t b,
                          std::uint16_t aux) {
  STANK_ASSERT_MSG(engine_ != nullptr, "record_now needs bind_engine()");
  record(engine_->now(), node, kind, a, b, aux);
}

void Recorder::sample(const std::string& name, double t_s, double value) {
  for (auto& s : series_) {
    if (s.name == name) {
      s.points.push_back({t_s, value});
      return;
    }
  }
  series_.push_back(Series{name, {{t_s, value}}});
}

void Recorder::absorb_series_from(const Recorder& other) {
  for (const Series& src : other.series_) {
    Series* dst = nullptr;
    for (auto& s : series_) {
      if (s.name == src.name) {
        dst = &s;
        break;
      }
    }
    if (dst == nullptr) {
      series_.push_back(src);
      continue;
    }
    // Both inputs are time-sorted (engine time is monotone and snapshots
    // stamp in order), so a stable merge keeps the result sorted.
    std::vector<SeriesPoint> merged;
    merged.reserve(dst->points.size() + src.points.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < dst->points.size() && j < src.points.size()) {
      if (src.points[j].t_s < dst->points[i].t_s) {
        merged.push_back(src.points[j++]);
      } else {
        merged.push_back(dst->points[i++]);
      }
    }
    while (i < dst->points.size()) merged.push_back(dst->points[i++]);
    while (j < src.points.size()) merged.push_back(src.points[j++]);
    dst->points = std::move(merged);
  }
}

void Recorder::annotate(sim::SimTime at, NodeId node, std::string category, std::string detail) {
  annotations_.push_back(Annotation{at, node, std::move(category), std::move(detail)});
}

std::size_t Recorder::total_events() const {
  std::size_t n = 0;
  for (const auto& [node, ring] : rings_) n += ring.buf.size();
  return n;
}

std::uint64_t Recorder::dropped_events() const {
  std::uint64_t n = 0;
  for (const auto& [node, ring] : rings_) n += ring.dropped;
  return n;
}

std::vector<NodeId> Recorder::nodes() const {
  std::vector<NodeId> out;
  out.reserve(rings_.size());
  for (const auto& [node, ring] : rings_) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

void Recorder::visit_node(NodeId node, const std::function<void(const Event&)>& fn) const {
  const Ring* ring = rings_.find(node);
  if (ring == nullptr || ring->buf.empty()) return;
  const std::size_t n = ring->buf.size();
  for (std::size_t i = 0; i < n; ++i) {
    fn(ring->buf[(ring->head + i) % n]);
  }
}

void Recorder::visit_merged(const std::function<void(const Event&)>& fn) const {
  // K-way merge over the per-node rings, each already time-sorted (engine
  // time is monotone). Ties break toward the lower node id so merged order
  // is deterministic across runs.
  struct Cursor {
    NodeId node;
    const Ring* ring;
    std::size_t i{0};
    [[nodiscard]] const Event& at() const {
      return ring->buf[(ring->head + i) % ring->buf.size()];
    }
  };
  std::vector<Cursor> cursors;
  cursors.reserve(rings_.size());
  for (const auto& [node, ring] : rings_) {
    if (!ring.buf.empty()) cursors.push_back(Cursor{node, &ring});
  }
  std::sort(cursors.begin(), cursors.end(),
            [](const Cursor& a, const Cursor& b) { return a.node < b.node; });
  while (true) {
    Cursor* best = nullptr;
    for (auto& c : cursors) {
      if (c.i >= c.ring->buf.size()) continue;
      if (best == nullptr || c.at().at < best->at().at) best = &c;
    }
    if (best == nullptr) return;
    fn(best->at());
    ++best->i;
  }
}

void Recorder::visit_merged_across(const std::vector<const Recorder*>& recs,
                                   const std::function<void(const Event&)>& fn) {
  struct Cursor {
    NodeId node;
    std::size_t rec;  // position in `recs`, the final tie-break
    const Ring* ring;
    std::size_t i{0};
    [[nodiscard]] const Event& at() const {
      return ring->buf[(ring->head + i) % ring->buf.size()];
    }
  };
  std::vector<Cursor> cursors;
  for (std::size_t r = 0; r < recs.size(); ++r) {
    if (recs[r] == nullptr) continue;
    for (const auto& [node, ring] : recs[r]->rings_) {
      if (!ring.buf.empty()) cursors.push_back(Cursor{node, r, &ring});
    }
  }
  std::sort(cursors.begin(), cursors.end(), [](const Cursor& a, const Cursor& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.rec < b.rec;
  });
  while (true) {
    Cursor* best = nullptr;
    for (auto& c : cursors) {
      if (c.i >= c.ring->buf.size()) continue;
      if (best == nullptr || c.at().at < best->at().at) best = &c;
    }
    if (best == nullptr) return;
    fn(best->at());
    ++best->i;
  }
}

void Recorder::clear() {
  rings_.clear();
  for (auto& h : spans_) h.clear();
  series_.clear();
  annotations_.clear();
}

void Recorder::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));

  const auto node_ids = nodes();
  wr(os, static_cast<std::uint64_t>(node_ids.size()));
  for (NodeId node : node_ids) {
    const Ring& ring = *rings_.find(node);
    wr(os, node.value());
    wr(os, ring.dropped);
    wr(os, static_cast<std::uint64_t>(ring.buf.size()));
    // Written oldest-first so the ring round-trips normalized (head = 0).
    visit_node(node, [&os](const Event& e) { wr(os, e); });
  }

  wr(os, static_cast<std::uint64_t>(annotations_.size()));
  for (const auto& a : annotations_) {
    wr(os, a.at.ns);
    wr(os, a.node.value());
    wr_str(os, a.category);
    wr_str(os, a.detail);
  }

  wr(os, static_cast<std::uint64_t>(series_.size()));
  for (const auto& s : series_) {
    wr_str(os, s.name);
    wr(os, static_cast<std::uint64_t>(s.points.size()));
    for (const auto& p : s.points) {
      wr(os, p.t_s);
      wr(os, p.value);
    }
  }

  wr(os, static_cast<std::uint64_t>(kSpanKindCount));
  for (const auto& h : spans_) {
    wr(os, static_cast<std::uint64_t>(h.samples().size()));
    for (double v : h.samples()) wr(os, v);
  }
}

bool Recorder::load(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;

  clear();

  std::uint64_t ring_count = 0;
  if (!rd(is, ring_count) || ring_count > kMaxLoadCount) return false;
  for (std::uint64_t r = 0; r < ring_count; ++r) {
    std::uint32_t node_val = 0;
    std::uint64_t dropped = 0;
    std::uint64_t count = 0;
    if (!rd(is, node_val) || !rd(is, dropped) || !rd(is, count) || count > kMaxLoadCount) {
      return false;
    }
    Ring& ring = rings_[NodeId{node_val}];
    ring.dropped = dropped;
    ring.buf.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      Event e;
      if (!rd(is, e)) return false;
      ring.buf.push_back(e);
    }
  }

  std::uint64_t ann_count = 0;
  if (!rd(is, ann_count) || ann_count > kMaxLoadCount) return false;
  for (std::uint64_t i = 0; i < ann_count; ++i) {
    Annotation a;
    std::uint32_t node_val = 0;
    if (!rd(is, a.at.ns) || !rd(is, node_val) || !rd_str(is, a.category) ||
        !rd_str(is, a.detail)) {
      return false;
    }
    a.node = NodeId{node_val};
    annotations_.push_back(std::move(a));
  }

  std::uint64_t series_count = 0;
  if (!rd(is, series_count) || series_count > kMaxLoadCount) return false;
  for (std::uint64_t i = 0; i < series_count; ++i) {
    Series s;
    std::uint64_t n = 0;
    if (!rd_str(is, s.name) || !rd(is, n) || n > kMaxLoadCount) return false;
    s.points.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t j = 0; j < n; ++j) {
      SeriesPoint p;
      if (!rd(is, p.t_s) || !rd(is, p.value)) return false;
      s.points.push_back(p);
    }
    series_.push_back(std::move(s));
  }

  std::uint64_t span_kinds = 0;
  if (!rd(is, span_kinds)) return false;
  for (std::uint64_t k = 0; k < span_kinds; ++k) {
    std::uint64_t n = 0;
    if (!rd(is, n) || n > kMaxLoadCount) return false;
    for (std::uint64_t j = 0; j < n; ++j) {
      double v = 0.0;
      if (!rd(is, v)) return false;
      // Span kinds beyond what this build knows are skipped, not errors:
      // newer traces stay loadable.
      if (k < kSpanKindCount) spans_[static_cast<std::size_t>(k)].add(v);
    }
  }
  return true;
}

}  // namespace stank::obs
