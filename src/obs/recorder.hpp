// The flight recorder: per-node ring buffers of typed events, span latency
// histograms, sampled time series, and a string-annotation side channel for
// the legacy TraceLog.
//
// A component holds a `Recorder*` that is null in steady state; every
// instrumentation site is `if (rec_) rec_->record(...)` — one predictable
// branch when detached, a struct store into a preallocated ring when
// attached. Rings are bounded: a long run keeps the most recent
// `ring_capacity` events per node (the flight-recorder property) and counts
// what it overwrote.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "metrics/histogram.hpp"
#include "obs/event.hpp"

namespace stank::sim {
class Engine;
}  // namespace stank::sim

namespace stank::obs {

// A string event recorded through the legacy TraceLog adapter. Kept out of
// the binary rings — strings are exactly what the typed path exists to
// avoid — but stamped in the same global time frame so exports can merge
// the two streams.
struct Annotation {
  sim::SimTime at;
  NodeId node;
  std::string category;
  std::string detail;
};

// One point of a named time series (sampled metric).
struct SeriesPoint {
  double t_s{0.0};  // global sim time, seconds
  double value{0.0};
};

struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

struct RecorderConfig {
  // Max typed events retained per node; older events are overwritten and
  // counted as dropped. 16Ki events x 32 B = 512 KiB per node at the cap;
  // rings grow geometrically so small runs stay small.
  std::size_t ring_capacity{1u << 14};
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig cfg = {});

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Gives clock-less components (LockManager) a timestamp source, and
  // record_now() callers their stamp. Idempotent; all components of one
  // simulation share one engine.
  void bind_engine(const sim::Engine& engine) { engine_ = &engine; }

  void record(sim::SimTime at, NodeId node, EventKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint16_t aux = 0);
  // Stamps the bound engine's current time. Requires bind_engine().
  void record_now(NodeId node, EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                  std::uint16_t aux = 0);

  // Spans: latency samples in milliseconds, bucketed by kind.
  void span(SpanKind kind, double ms) { spans_[static_cast<std::size_t>(kind)].add(ms); }
  [[nodiscard]] const metrics::Histogram& span_hist(SpanKind kind) const {
    return spans_[static_cast<std::size_t>(kind)];
  }

  // Time series: append a sample to the named series (created on first use).
  void sample(const std::string& name, double t_s, double value);
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  // Merges another recorder's series into this one's, keeping each merged
  // series time-sorted (stable for equal timestamps: this recorder's points
  // first, then the absorbed ones, then by the order of absorb calls). The
  // sharded engine gives every shard its own recorder/sampler; this folds
  // their series into one recorder before save().
  void absorb_series_from(const Recorder& other);

  // Legacy string channel.
  void annotate(sim::SimTime at, NodeId node, std::string category, std::string detail);
  [[nodiscard]] const std::vector<Annotation>& annotations() const { return annotations_; }
  // Clears only the string channel (TraceLog::clear semantics); the typed
  // rings, spans and series survive.
  void clear_annotations() { annotations_.clear(); }

  // -- queries --
  [[nodiscard]] std::size_t total_events() const;
  // Events overwritten by ring wrap, across all nodes.
  [[nodiscard]] std::uint64_t dropped_events() const;
  // Nodes with at least one typed event, ascending.
  [[nodiscard]] std::vector<NodeId> nodes() const;
  // Visits one node's retained events oldest-first.
  void visit_node(NodeId node, const std::function<void(const Event&)>& fn) const;
  // Visits every retained event merged into global time order (k-way merge;
  // each ring is already time-sorted because engine time is monotone).
  void visit_merged(const std::function<void(const Event&)>& fn) const;
  // Merges the rings of several recorders into one global timeline — the
  // sharded engine gives every shard its own recorder (rings are not
  // thread-safe), and this reassembles the run for export/inspection. Ties
  // break by (node id, recorder position) so the merged order is a pure
  // function of the recorded events.
  static void visit_merged_across(const std::vector<const Recorder*>& recs,
                                  const std::function<void(const Event&)>& fn);

  void clear();

  // Binary flight-recorder file ("STNKTRC1"): rings, annotations, series,
  // and span samples. load() replaces this recorder's contents; returns
  // false on a short or foreign stream.
  void save(std::ostream& os) const;
  [[nodiscard]] bool load(std::istream& is);

 private:
  struct Ring {
    std::vector<Event> buf;   // grows to cfg.ring_capacity, then wraps
    std::size_t head{0};      // index of the oldest event once wrapped
    std::uint64_t dropped{0};

    void push(const Event& e, std::size_t cap);
  };

  const sim::Engine* engine_{nullptr};
  RecorderConfig cfg_;
  FlatMap<NodeId, Ring> rings_;
  std::array<metrics::Histogram, kSpanKindCount> spans_;
  std::vector<Series> series_;
  std::vector<Annotation> annotations_;
};

}  // namespace stank::obs
