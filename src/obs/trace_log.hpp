// The legacy string trace API, now a thin adapter over the typed Recorder.
//
// Tests and examples assert on human-readable category/detail strings; the
// hot path records typed events. Both live in one Recorder: TraceLog writes
// the recorder's annotation channel, so a single artifact carries the typed
// rings AND the strings, and exports interleave them by timestamp.
//
// A default-constructed TraceLog owns its recorder (the common test setup:
// `sim::TraceLog trace;` then pass `&trace` around). Constructing from an
// existing Recorder adapts it without owning (Scenario shares one recorder
// between the typed instrumentation and this adapter).
#pragma once

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strong_id.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"

namespace stank::obs {

// Streams its arguments into one string. Lazy trace sinks call this inside a
// deferred format callable, so the stream machinery runs only when a TraceLog
// is actually attached; steady-state runs pay a single null check per event.
template <typename... Parts>
[[nodiscard]] std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << std::forward<Parts>(parts));
  return os.str();
}

// The legacy event shape. Annotation already has exactly the fields the old
// TraceEvent had, so the adapter can hand out the recorder's storage without
// copying.
using TraceEvent = Annotation;

class TraceLog {
 public:
  TraceLog() : owned_(std::make_unique<Recorder>()), rec_(owned_.get()) {}
  explicit TraceLog(Recorder& shared) : rec_(&shared) {}

  void record(sim::SimTime at, NodeId node, std::string category, std::string detail) {
    rec_->annotate(at, node, std::move(category), std::move(detail));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return rec_->annotations(); }

  // Non-copying queries: visits matching events in record order.
  template <typename Fn>
  void visit(const std::string& category, Fn&& fn) const {
    for (const auto& e : events()) {
      if (e.category == category) fn(e);
    }
  }
  template <typename Fn>
  void visit_node(NodeId node, Fn&& fn) const {
    for (const auto& e : events()) {
      if (e.node == node) fn(e);
    }
  }

  // Copying filters, kept for callers that want a materialized subsequence.
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;
  [[nodiscard]] std::vector<TraceEvent> by_node(NodeId node) const;

  // First event whose category matches and whose detail contains `needle`;
  // returns nullptr if absent.
  [[nodiscard]] const TraceEvent* find(const std::string& category,
                                       const std::string& needle) const;
  [[nodiscard]] std::size_t count(const std::string& category, const std::string& needle) const;

  void clear();
  void print(std::ostream& os) const;

  // The typed recorder behind this log. Components accept a `TraceLog*` for
  // the string API and pull the recorder from it for typed events, so one
  // constructor argument attaches both.
  [[nodiscard]] Recorder& recorder() { return *rec_; }
  [[nodiscard]] const Recorder& recorder() const { return *rec_; }

 private:
  std::unique_ptr<Recorder> owned_;  // null when adapting a shared recorder
  Recorder* rec_;
};

}  // namespace stank::obs
