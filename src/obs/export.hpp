// Trace exporters: Chrome/Perfetto trace-event JSON and a plain-text
// per-node timeline. Both are cold-path renderers over a Recorder; nothing
// here is ever called during simulation.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/recorder.hpp"

namespace stank::obs {

// Renders the recorder as Chrome trace-event JSON (the "JSON Array Format"
// both chrome://tracing and ui.perfetto.dev load). Mapping:
//  * each node becomes a process (pid = node id) named "n<id>";
//  * kLeasePhase events per node are folded into complete "X" duration
//    slices on a "lease phases" track, one slice per phase residency;
//  * every other typed event is an instant ("i") on an "events" track;
//  * legacy string annotations are instants on an "annotations" track;
//  * sampled time series become "C" counter events under a synthetic
//    "metrics" process.
void write_chrome_trace(const Recorder& rec, std::ostream& os);

// Human-readable merged timeline: one line per event in global time order,
// with payload words decoded per kind. node filter: pass a default NodeId{}
// plus filter=false for "all nodes".
void write_timeline(const Recorder& rec, std::ostream& os, bool filter_node = false,
                    NodeId node = NodeId{});

// Pretty-prints one event's payload (e.g. "active -> renewal" for a
// kLeasePhase event). Shared by the timeline and the trace_dump CLI.
[[nodiscard]] std::string detail_string(const Event& e);

}  // namespace stank::obs
