// The paper's central scenario (Figure 2 + Section 3).
//
// Client 0 holds an exclusive lock with DIRTY cached data when the control
// network partitions it from the server. Client 1 then asks for the same
// lock. Watch the protocol save the day:
//
//   * the server's lock demand to client 0 goes undelivered -> client 0 is
//     declared suspect, a tau(1+eps) timer starts, and no ACK will reach
//     client 0 again;
//   * client 0, hearing nothing, walks its lease phases: keep-alives
//     (phase 2), quiesce (phase 3), and — crucially — FLUSHES its dirty data
//     over the still-healthy SAN (phase 4) before its lease expires;
//   * only after the timer (provably later than the client's own expiry,
//     Theorem 3.1) does the server fence client 0, steal the lock, and grant
//     it to client 1 — who then reads the newest data from the shared disk;
//   * when the partition heals, client 0 re-registers under a fresh epoch.
//
// Build & run:  ./build/examples/partition_recovery [trace-out]
//
// Pass a path to also save the binary flight trace; render it with
// tools/trace_dump (and `--chrome` for ui.perfetto.dev).
#include <cstdio>
#include <fstream>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

using namespace stank;

int main(int argc, char** argv) {
  workload::ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 8;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(10);
  cfg.lease.epsilon = 1e-4;
  cfg.recovery = server::RecoveryMode::kLeaseAndFence;
  cfg.enable_trace = true;

  workload::Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);

  const std::uint32_t bs = cfg.block_size;
  const FileId file = sc.file_id(0);
  auto& c0 = sc.client(0);
  auto& c1 = sc.client(1);
  const client::Fd fd0 = sc.fd(0, 0);
  const client::Fd fd1 = sc.fd(1, 0);

  // Client 0 buffers a dirty write under an exclusive lock.
  c0.lock(fd0, protocol::LockMode::kExclusive, [&](Status) {
    verify::Stamp stamp{file, 0, 1, c0.id()};
    c0.write(fd0, 0, verify::make_stamped_block(bs, stamp), [](Status) {});
  });
  sc.run_until_s(2.0);
  std::printf("t=2.0s  c0 holds %s with %zu dirty page(s)\n",
              protocol::to_string(c0.lock_mode(fd0)), c0.cache().dirty_count());

  // Control network partitions client 0 from the server. The SAN is fine.
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
  std::printf("t=2.0s  control network partitioned: c0 <-/-> server\n");

  // Client 1 wants the file for writing.
  bool c1_granted = false;
  double c1_grant_time = 0.0;
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    c1.lock(fd1, protocol::LockMode::kExclusive, [&](Status st) {
      c1_granted = st.is_ok();
      c1_grant_time = sc.engine().now().seconds();
    });
  });

  // Run past the lease machinery.
  sc.run_until_s(30.0);

  std::printf("t=30s   c1 exclusive lock granted: %s at t=%.3fs\n",
              c1_granted ? "yes" : "NO", c1_grant_time);
  std::printf("        c0 lease phase: %s, dirty pages left: %zu\n",
              to_string(c0.lease_phase()), c0.cache().dirty_count());

  // What does client 1 read? It must see client 0's flushed write.
  c1.read(fd1, 0, bs, [&](Result<Bytes> res) {
    auto stamp = res.ok() ? verify::decode_stamp(res.value()) : std::nullopt;
    std::printf("        c1 reads block 0: version=%llu (written by n%u) -- %s\n",
                stamp ? static_cast<unsigned long long>(stamp->version) : 0ULL,
                stamp ? stamp->writer.value() : 0U,
                stamp && stamp->version == 1 ? "dirty data SURVIVED the partition"
                                             : "DATA LOST");
  });
  sc.run_until_s(31.0);

  // Heal; client 0 re-registers under a fresh epoch.
  sc.control_net().reachability().heal();
  sc.run_until_s(40.0);
  std::printf("t=40s   partition healed; c0 re-registered: %s (phase %s)\n",
              c0.registered() ? "yes" : "no", to_string(c0.lease_phase()));

  std::printf("\n-- protocol trace --\n");
  for (const auto& e : sc.trace().events()) {
    if (e.category == "lease" || e.category == "lock" || e.category == "fence" ||
        e.category == "session") {
      std::printf("%8.3fs  n%-3u [%-7s] %s\n", e.at.seconds(), e.node.value(),
                  e.category.c_str(), e.detail.c_str());
    }
  }

  if (argc > 1) {
    std::ofstream f(argv[1], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "failed to open %s\n", argv[1]);
      return 1;
    }
    sc.recorder().save(f);
    std::printf("\nflight trace saved to %s (render with tools/trace_dump)\n",
                argv[1]);
  }
  return 0;
}
