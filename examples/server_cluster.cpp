// A server cluster (paper Figure 1) and per-server leases (section 3):
// "a client must have a valid lease on all servers with which it holds
// locks."
//
// One machine talks to three servers, each owning a slice of the namespace
// and its own SAN disks. A partition between the machine and ONE server
// walks only that lease down its phases — files on the other two servers
// stay fully usable throughout. We also kill and restart a server to show
// lock reassertion (section 6) keeping the machine's cache warm.
//
// Build & run:  ./build/examples/server_cluster
#include <cstdio>
#include <optional>

#include "client/machine.hpp"
#include "server/server.hpp"

using namespace stank;

int main() {
  sim::Engine engine;
  net::ControlNet net(engine, sim::Rng(1), {});
  storage::SanFabric san(engine, sim::Rng(2), {});

  // Three servers, each with its own disk.
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<NodeId> server_ids;
  for (std::uint32_t k = 0; k < 3; ++k) {
    const DiskId disk{k + 1};
    san.add_disk(disk, 4096, 256);
    server::ServerConfig scfg;
    scfg.id = NodeId{k + 1};
    scfg.lease.tau = sim::local_seconds(6);
    scfg.block_size = 256;
    scfg.data_disks = {disk};
    servers.push_back(
        std::make_unique<server::Server>(engine, net, san, sim::LocalClock(1.0), scfg));
    servers.back()->start();
    server_ids.push_back(scfg.id);
  }

  client::MachineConfig mcfg;
  mcfg.base_id = NodeId{100};
  mcfg.servers = server_ids;
  mcfg.client.lease.tau = sim::local_seconds(6);
  mcfg.client.block_size = 256;
  client::Machine m(engine, net, san, sim::LocalClock(1.0), mcfg);
  m.start();
  engine.run_until(sim::SimTime{} + sim::seconds(1));
  std::printf("machine registered with all %zu servers: %s\n", m.num_servers(),
              m.fully_registered() ? "yes" : "no");

  auto run_for = [&](double s) { engine.run_until(engine.now() + sim::seconds_d(s)); };

  // Open one file per server (picking paths that route to each).
  std::vector<client::MFd> fds(3);
  int opened = 0;
  for (std::size_t want = 0; want < 3; ++want) {
    for (int i = 0;; ++i) {
      std::string p = "/vol/f" + std::to_string(i);
      if (m.route(p) == want) {
        m.open(p, true, [&, want](Result<client::MFd> r) {
          if (r.ok()) {
            fds[want] = r.value();
            ++opened;
          }
        });
        break;
      }
    }
  }
  run_for(0.5);
  std::printf("opened %d files, routed to servers 0/1/2\n", opened);

  // Dirty data on every server's file.
  for (std::size_t k = 0; k < 3; ++k) {
    m.write(fds[k], 0, Bytes(256, static_cast<std::uint8_t>(k + 1)), [](Status) {});
  }
  run_for(0.5);
  std::printf("dirty pages across the cluster: %zu\n\n", m.total_dirty_pages());

  // --- Partition away server 0 only. ---------------------------------------
  std::printf("t=%.1fs  partitioning machine <-/-> server 0 (others healthy)\n",
              engine.now().seconds());
  net.reachability().sever_pair(NodeId{100}, NodeId{1});
  run_for(9.0);
  std::printf("        sub-lease phases: s0=%s s1=%s s2=%s\n",
              to_string(m.sub(0).lease_phase()), to_string(m.sub(1).lease_phase()),
              to_string(m.sub(2).lease_phase()));
  std::printf("        server 0's file flushed by phase 4: disk0 writes=%llu\n",
              static_cast<unsigned long long>(san.disk(DiskId{1}).writes_served()));

  // Files on servers 1 and 2 keep working through it all.
  std::optional<bool> read_ok;
  m.read(fds[1], 0, 256, [&](Result<Bytes> r) { read_ok = r.ok(); });
  run_for(0.5);
  std::printf("        read via healthy server 1 during the partition: %s\n\n",
              read_ok.value_or(false) ? "ok" : "FAILED");

  net.reachability().heal();
  run_for(10.0);
  std::printf("t=%.1fs  healed; machine fully registered again: %s\n",
              engine.now().seconds(), m.fully_registered() ? "yes" : "no");

  // --- Kill and restart server 2: lock reassertion keeps the cache. -------
  m.write(fds[2], 0, Bytes(256, 0x33), [](Status) {});
  run_for(0.5);
  std::printf("\nt=%.1fs  server 2 crashes and restarts (machine holds dirty data there)\n",
              engine.now().seconds());
  servers[2]->crash();
  servers[2]->restart();
  // A request discovers the new incarnation and triggers reassertion.
  m.read(fds[2], 0, 64, [](Result<Bytes>) {});
  run_for(2.0);
  std::printf("        sub 2 re-registered (incarnation %u), dirty pages kept: %zu\n",
              m.sub(2).server_incarnation(), m.sub(2).cache().dirty_count());
  std::printf("        lease phase on sub 2: %s — cache survived the server failure\n",
              to_string(m.sub(2).lease_phase()));
  return 0;
}
