// Section 3.3: NACKs for inconsistent clients (Figure 5).
//
// A short-lived control-network glitch makes client 0 miss a lock demand.
// By the time the network heals, the server has already begun timing out
// client 0's lease — so it must not ACK (that would renew the lease) and
// must not execute requests (the client's cache is suspect). Instead it
// NACKs. The client interprets the NACK as "I missed a message": it skips
// straight to lease phase 3, quiesces, flushes, lets the lease lapse, and
// re-registers under a fresh epoch.
//
// Build & run:  ./build/examples/transient_partition_nack
#include <cstdio>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

using namespace stank;

int main() {
  workload::ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(10);
  cfg.enable_trace = true;

  workload::Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);

  auto& c0 = sc.client(0);
  auto& c1 = sc.client(1);

  // c0 takes the lock.
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [](Status) {});
  sc.run_until_s(2.0);

  // Transient glitch: c0 unreachable for 4 seconds — long enough for the
  // server's demand (sent when c1 asks for the lock) to exhaust retries.
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
  std::printf("t=2s    transient partition begins (4s)\n");
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    c1.lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [](Status) {});
  });
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(6.0), [&]() {
    sc.control_net().reachability().heal();
    std::printf("t=6s    partition healed — c0 does not know it missed the demand\n");
  });

  sc.run_until_s(8.0);
  std::printf("t=8s    c0 NACKs observed: %llu -> lease phase now: %s\n",
              static_cast<unsigned long long>(c0.lease_agent()->nacks_seen()),
              to_string(c0.lease_phase()));

  sc.run_until_s(30.0);
  std::printf("t=30s   c0 recovered: registered=%s phase=%s (fresh epoch)\n",
              c0.registered() ? "yes" : "no", to_string(c0.lease_phase()));
  std::printf("        server NACKs sent: %llu\n",
              static_cast<unsigned long long>(sc.server().counters().nacks_sent));

  std::printf("\n-- trace --\n");
  for (const auto& e : sc.trace().events()) {
    if (e.category == "lease" || e.category == "session") {
      std::printf("%8.3fs  n%-3u [%-7s] %s\n", e.at.seconds(), e.node.value(),
                  e.category.c_str(), e.detail.c_str());
    }
  }
  return 0;
}
