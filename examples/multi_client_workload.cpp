// A realistic multi-client workload with random failure injection, fully
// verified.
//
// Eight clients hammer a shared file pool (Zipf popularity, 70% reads) while
// random control-network partitions, crashes, and SAN cuts strike. At the
// end the consistency checker replays the complete history: under the
// paper's lease+fence protocol the file system stays sequentially
// consistent through all of it.
//
// Build & run:  ./build/examples/multi_client_workload [seed]
#include <cstdio>
#include <cstdlib>

#include "workload/scenario.hpp"

using namespace stank;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  workload::ScenarioConfig cfg;
  cfg.workload.num_clients = 8;
  cfg.workload.num_files = 24;
  cfg.workload.file_blocks = 8;
  cfg.workload.read_fraction = 0.7;
  cfg.workload.mean_interarrival_s = 0.04;
  cfg.workload.run_seconds = 90.0;
  cfg.workload.seed = seed;
  cfg.lease.tau = sim::local_seconds(8);
  cfg.recovery = server::RecoveryMode::kLeaseAndFence;

  // Random failures across the run.
  sim::Rng frng(seed ^ 0xFA11FA11);
  cfg.failures = workload::FailurePlan::random(frng, cfg.workload, 6);

  std::printf("seed=%llu: %zu failure events scheduled:\n",
              static_cast<unsigned long long>(seed), cfg.failures.events.size());
  for (const auto& ev : cfg.failures.events) {
    std::printf("  t=%6.2fs  client %u  %s\n", ev.at_s, ev.client_idx, to_string(ev.kind));
  }

  workload::Scenario sc(cfg);
  auto r = sc.run();

  std::printf("\n-- results --\n");
  std::printf("ops: %llu reads, %llu writes ok; %llu failed/rejected\n",
              static_cast<unsigned long long>(r.reads_ok),
              static_cast<unsigned long long>(r.writes_ok),
              static_cast<unsigned long long>(r.ops_failed));
  std::printf("op latency: p50=%.2fms p99=%.2fms\n", r.op_latency_ms.quantile(0.5),
              r.op_latency_ms.quantile(0.99));
  std::printf("server: %llu txns, %llu lock grants, %llu demands, %llu steals, %llu fences\n",
              static_cast<unsigned long long>(r.server.transactions),
              static_cast<unsigned long long>(r.server.lock_grants),
              static_cast<unsigned long long>(r.server.lock_demands),
              static_cast<unsigned long long>(r.server.lock_steals),
              static_cast<unsigned long long>(r.server.fences_issued));
  std::printf("lease: server ops=%llu, peak state=%zuB; client keep-alives=%llu\n",
              static_cast<unsigned long long>(r.server.lease_ops), r.max_lease_state_bytes,
              static_cast<unsigned long long>(r.clients.lease_only_msgs));
  std::printf("network: %llu datagrams (%llu dropped by partitions)\n",
              static_cast<unsigned long long>(r.net.sent),
              static_cast<unsigned long long>(r.net.dropped_partition));

  std::printf("\n-- consistency verdict --\n");
  std::printf("stale reads:   %zu\n", r.violations.stale_reads);
  std::printf("lost updates:  %zu\n", r.violations.lost_updates);
  std::printf("write races:   %zu\n", r.violations.write_order);
  for (const auto& v : r.violation_list) {
    std::printf("  [%s] t=%.3fs %s\n", to_string(v.kind), v.at.seconds(), v.detail.c_str());
  }
  if (r.violations.total() == 0) {
    std::printf("history is sequentially consistent: the lease protocol held.\n");
  }
  std::printf("%s\n", r.verdict_line().c_str());
  return r.violations.total() == 0 ? 0 : 1;
}
