// Section 2.1 made executable: why fencing alone is not enough.
//
// The same failure is injected twice — client 0 is partitioned from the
// server while holding an exclusive lock over dirty cached data, and client
// 1 keeps reading and writing the file — under two recovery policies:
//
//   fence-only     the server fences client 0 and steals its lock at once
//                  (the "currently accepted solution" the paper critiques);
//   lease+fence    the paper's protocol: wait out tau(1+eps) first.
//
// The consistency checker then reports what each policy did to the data:
// fence-only strands client 0's dirty pages (lost update) and lets its local
// processes keep reading a stale cache (stale reads); the lease protocol
// produces a clean history.
//
// Build & run:  ./build/examples/fencing_vs_lease
#include <cstdio>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

using namespace stank;

namespace {

verify::ViolationSummary run_policy(server::RecoveryMode recovery) {
  workload::ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(8);
  cfg.recovery = recovery;

  workload::Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);

  const std::uint32_t bs = cfg.block_size;
  const FileId file = sc.file_id(0);
  auto& c0 = sc.client(0);
  auto& c1 = sc.client(1);

  // c0 buffers dirty versions of blocks 0 AND 1 under its exclusive lock.
  // Block 0 will be overwritten by c1; block 1 exists only in c0's cache —
  // if recovery strands it, that is a lost update.
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
    for (std::uint64_t b : {0ULL, 1ULL}) {
      const std::uint64_t v = sc.next_version(file, b);
      verify::Stamp st{file, b, v, c0.id()};
      c0.write(sc.fd(0, 0), b * bs, verify::make_stamped_block(bs, st), [&, st](Status ok) {
        if (ok.is_ok()) sc.history().on_buffered_write(sc.engine().now(), c0.id(), st);
      });
    }
  });
  sc.run_until_s(2.0);

  // Partition c0 from the server (control network only).
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());

  // c1 writes the same block at t=3s — the server must revoke c0's lock.
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    c1.lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [&](Status st) {
      if (!st.is_ok()) return;
      const std::uint64_t v = sc.next_version(file, 0);
      verify::Stamp stamp{file, 0, v, c1.id()};
      c1.write(sc.fd(1, 0), 0, verify::make_stamped_block(bs, stamp), [&, stamp](Status ok) {
        if (ok.is_ok()) sc.history().on_buffered_write(sc.engine().now(), c1.id(), stamp);
        c1.fsync(sc.fd(1, 0), [](Status) {});
      });
    });
  });

  // Meanwhile c0's local processes keep reading their (possibly stale)
  // cache: every 500 ms until its lease machinery stops it.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&, tick]() {
    if (c0.accepting()) {
      const sim::SimTime t0 = sc.engine().now();
      c0.read(sc.fd(0, 0), 0, bs, [&, t0](Result<Bytes> res) {
        if (!res.ok() || res.value().size() != bs) return;
        auto stamp = verify::decode_stamp(res.value());
        verify::ReadRec rec;
        rec.start = t0;
        rec.end = sc.engine().now();
        rec.client = c0.id();
        rec.file = file;
        rec.block = 0;
        rec.observed_version = stamp ? stamp->version : 0;
        sc.history().on_read(rec);
      });
    }
    sc.engine().schedule_after(sim::millis(500), [tick]() { (*tick)(); });
  };
  (*tick)();

  sc.run_until_s(40.0);
  auto result = sc.finish();
  return result.violations;
}

}  // namespace

int main() {
  std::printf("Injected failure: control-network partition of a client holding dirty,\n"
              "exclusively-locked data, while another client updates the same block.\n\n");
  std::printf("%-12s | %-11s | %-11s | %-12s\n", "policy", "stale-reads", "lost-updates",
              "write-races");
  std::printf("-------------|-------------|-------------|-------------\n");
  for (auto mode : {server::RecoveryMode::kFenceOnly, server::RecoveryMode::kLeaseAndFence}) {
    auto v = run_policy(mode);
    std::printf("%-12s | %11zu | %11zu | %12zu\n", to_string(mode), v.stale_reads,
                v.lost_updates, v.write_order);
  }
  std::printf("\nFencing alone violates both guarantees; the lease protocol preserves them\n"
              "at the cost of waiting out tau(1+eps) before the steal.\n");
  return 0;
}
