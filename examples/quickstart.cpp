// Quickstart: a minimal Storage Tank installation.
//
// One server, two clients, one SAN disk. Client 1 writes a block (write-back
// cached under an exclusive lock); client 2 then reads the same block. The
// read forces the server to demand client 1's lock down, which flushes the
// dirty block to the shared disk — so client 2 observes the newest data even
// though no data ever passed through the server.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

using namespace stank;

int main() {
  workload::ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 8;
  cfg.workload.run_seconds = 30.0;
  cfg.lease.tau = sim::local_seconds(10);
  cfg.enable_trace = true;

  workload::Scenario sc(cfg);
  sc.setup();

  // Let registration and opens complete.
  sc.run_until_s(1.0);
  std::printf("clients registered: c0=%d c1=%d\n", sc.client(0).registered(),
              sc.client(1).registered());

  const std::uint32_t bs = cfg.block_size;
  const FileId file = sc.file_id(0);

  // Client 0 writes block 3 under an exclusive lock (stays in its cache).
  auto& c0 = sc.client(0);
  const client::Fd fd0 = sc.fd(0, 0);
  c0.lock(fd0, protocol::LockMode::kExclusive, [&](Status st) {
    std::printf("c0 lock X: %s\n", to_string(st.error()));
    verify::Stamp stamp{file, 3, 1, c0.id()};
    c0.write(fd0, 3 * bs, verify::make_stamped_block(bs, stamp), [&](Status wst) {
      std::printf("c0 write block 3: %s (dirty pages now: %zu)\n", to_string(wst.error()),
                  c0.cache().dirty_count());
    });
  });
  sc.run_until_s(2.0);

  // Client 1 reads block 3: the server demands c0's lock, c0 flushes, c1
  // reads the new version directly from the disk.
  auto& c1 = sc.client(1);
  const client::Fd fd1 = sc.fd(1, 0);
  c1.read(fd1, 3 * bs, bs, [&](Result<Bytes> res) {
    if (!res.ok()) {
      std::printf("c1 read failed: %s\n", to_string(res.error()));
      return;
    }
    auto stamp = verify::decode_stamp(res.value());
    std::printf("c1 read block 3: version=%llu writer=n%u\n",
                stamp ? static_cast<unsigned long long>(stamp->version) : 0ULL,
                stamp ? stamp->writer.value() : 0U);
  });
  sc.run_until_s(4.0);

  std::printf("c0 lock on file after demand: %s\n",
              protocol::to_string(c0.lock_mode(fd0)));
  std::printf("server lease state bytes during all of this: %zu (lease ops: %llu)\n",
              sc.server().lease_state_bytes(),
              static_cast<unsigned long long>(sc.server().counters().lease_ops));

  std::printf("\n-- trace (lock/lease events) --\n");
  for (const auto& e : sc.trace().events()) {
    if (e.category == "lock" || e.category == "lease") {
      std::printf("%8.3fs  n%-3u [%s] %s\n", e.at.seconds(), e.node.value(), e.category.c_str(),
                  e.detail.c_str());
    }
  }
  return 0;
}
