# Empty dependencies file for lease_protocol_test.
# This may be replaced when dependencies are built.
