file(REMOVE_RECURSE
  "CMakeFiles/lease_protocol_test.dir/lease_protocol_test.cpp.o"
  "CMakeFiles/lease_protocol_test.dir/lease_protocol_test.cpp.o.d"
  "lease_protocol_test"
  "lease_protocol_test.pdb"
  "lease_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
