file(REMOVE_RECURSE
  "CMakeFiles/server_recovery_test.dir/server_recovery_test.cpp.o"
  "CMakeFiles/server_recovery_test.dir/server_recovery_test.cpp.o.d"
  "server_recovery_test"
  "server_recovery_test.pdb"
  "server_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
