# Empty compiler generated dependencies file for recovery_modes_test.
# This may be replaced when dependencies are built.
