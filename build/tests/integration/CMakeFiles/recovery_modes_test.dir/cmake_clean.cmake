file(REMOVE_RECURSE
  "CMakeFiles/recovery_modes_test.dir/recovery_modes_test.cpp.o"
  "CMakeFiles/recovery_modes_test.dir/recovery_modes_test.cpp.o.d"
  "recovery_modes_test"
  "recovery_modes_test.pdb"
  "recovery_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
