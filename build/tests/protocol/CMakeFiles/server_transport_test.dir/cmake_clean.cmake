file(REMOVE_RECURSE
  "CMakeFiles/server_transport_test.dir/server_transport_test.cpp.o"
  "CMakeFiles/server_transport_test.dir/server_transport_test.cpp.o.d"
  "server_transport_test"
  "server_transport_test.pdb"
  "server_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
