# Empty dependencies file for server_transport_test.
# This may be replaced when dependencies are built.
