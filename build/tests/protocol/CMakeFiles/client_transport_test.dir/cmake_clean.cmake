file(REMOVE_RECURSE
  "CMakeFiles/client_transport_test.dir/client_transport_test.cpp.o"
  "CMakeFiles/client_transport_test.dir/client_transport_test.cpp.o.d"
  "client_transport_test"
  "client_transport_test.pdb"
  "client_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
