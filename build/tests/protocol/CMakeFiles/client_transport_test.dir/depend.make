# Empty dependencies file for client_transport_test.
# This may be replaced when dependencies are built.
