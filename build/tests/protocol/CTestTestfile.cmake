# CMake generated Testfile for 
# Source directory: /root/repo/tests/protocol
# Build directory: /root/repo/build/tests/protocol
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/protocol/codec_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/layout_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/client_transport_test[1]_include.cmake")
include("/root/repo/build/tests/protocol/server_transport_test[1]_include.cmake")
