file(REMOVE_RECURSE
  "CMakeFiles/v_lease_test.dir/v_lease_test.cpp.o"
  "CMakeFiles/v_lease_test.dir/v_lease_test.cpp.o.d"
  "v_lease_test"
  "v_lease_test.pdb"
  "v_lease_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
