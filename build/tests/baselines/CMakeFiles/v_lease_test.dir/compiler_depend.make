# Empty compiler generated dependencies file for v_lease_test.
# This may be replaced when dependencies are built.
