file(REMOVE_RECURSE
  "CMakeFiles/lease_math_test.dir/lease_math_test.cpp.o"
  "CMakeFiles/lease_math_test.dir/lease_math_test.cpp.o.d"
  "lease_math_test"
  "lease_math_test.pdb"
  "lease_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
