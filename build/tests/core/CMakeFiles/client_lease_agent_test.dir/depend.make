# Empty dependencies file for client_lease_agent_test.
# This may be replaced when dependencies are built.
