file(REMOVE_RECURSE
  "CMakeFiles/server_lease_authority_test.dir/server_lease_authority_test.cpp.o"
  "CMakeFiles/server_lease_authority_test.dir/server_lease_authority_test.cpp.o.d"
  "server_lease_authority_test"
  "server_lease_authority_test.pdb"
  "server_lease_authority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_lease_authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
