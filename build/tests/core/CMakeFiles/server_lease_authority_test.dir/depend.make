# Empty dependencies file for server_lease_authority_test.
# This may be replaced when dependencies are built.
