
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/counters_test.cpp" "tests/metrics/CMakeFiles/counters_test.dir/counters_test.cpp.o" "gcc" "tests/metrics/CMakeFiles/counters_test.dir/counters_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/stank_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/stank_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/stank_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/stank_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stank_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/stank_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stank_net.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stank_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/stank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stank_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
