file(REMOVE_RECURSE
  "CMakeFiles/block_alloc_test.dir/block_alloc_test.cpp.o"
  "CMakeFiles/block_alloc_test.dir/block_alloc_test.cpp.o.d"
  "block_alloc_test"
  "block_alloc_test.pdb"
  "block_alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
