# CMake generated Testfile for 
# Source directory: /root/repo/tests/workload
# Build directory: /root/repo/build/tests/workload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workload/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/workload/failures_test[1]_include.cmake")
