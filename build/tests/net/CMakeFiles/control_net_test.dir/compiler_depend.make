# Empty compiler generated dependencies file for control_net_test.
# This may be replaced when dependencies are built.
