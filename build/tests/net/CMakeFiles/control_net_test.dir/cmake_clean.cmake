file(REMOVE_RECURSE
  "CMakeFiles/control_net_test.dir/control_net_test.cpp.o"
  "CMakeFiles/control_net_test.dir/control_net_test.cpp.o.d"
  "control_net_test"
  "control_net_test.pdb"
  "control_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
