# Empty compiler generated dependencies file for theorem_property_test.
# This may be replaced when dependencies are built.
