file(REMOVE_RECURSE
  "CMakeFiles/theorem_property_test.dir/theorem_property_test.cpp.o"
  "CMakeFiles/theorem_property_test.dir/theorem_property_test.cpp.o.d"
  "theorem_property_test"
  "theorem_property_test.pdb"
  "theorem_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
