# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/property/theorem_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/workload_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/lock_manager_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/recovery_property_test[1]_include.cmake")
