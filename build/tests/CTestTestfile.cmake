# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("metrics")
subdirs("rt")
subdirs("sim")
subdirs("net")
subdirs("storage")
subdirs("protocol")
subdirs("core")
subdirs("server")
subdirs("client")
subdirs("baselines")
subdirs("verify")
subdirs("workload")
subdirs("integration")
subdirs("property")
