# CMake generated Testfile for 
# Source directory: /root/repo/tests/client
# Build directory: /root/repo/build/tests/client
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/client/cache_test[1]_include.cmake")
include("/root/repo/build/tests/client/client_test[1]_include.cmake")
include("/root/repo/build/tests/client/machine_test[1]_include.cmake")
