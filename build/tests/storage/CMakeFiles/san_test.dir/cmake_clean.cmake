file(REMOVE_RECURSE
  "CMakeFiles/san_test.dir/san_test.cpp.o"
  "CMakeFiles/san_test.dir/san_test.cpp.o.d"
  "san_test"
  "san_test.pdb"
  "san_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
