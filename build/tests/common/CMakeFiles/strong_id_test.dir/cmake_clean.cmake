file(REMOVE_RECURSE
  "CMakeFiles/strong_id_test.dir/strong_id_test.cpp.o"
  "CMakeFiles/strong_id_test.dir/strong_id_test.cpp.o.d"
  "strong_id_test"
  "strong_id_test.pdb"
  "strong_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strong_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
