# Empty dependencies file for strong_id_test.
# This may be replaced when dependencies are built.
