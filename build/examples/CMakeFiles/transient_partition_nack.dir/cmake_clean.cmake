file(REMOVE_RECURSE
  "CMakeFiles/transient_partition_nack.dir/transient_partition_nack.cpp.o"
  "CMakeFiles/transient_partition_nack.dir/transient_partition_nack.cpp.o.d"
  "transient_partition_nack"
  "transient_partition_nack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_partition_nack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
