# Empty dependencies file for transient_partition_nack.
# This may be replaced when dependencies are built.
