# Empty dependencies file for fencing_vs_lease.
# This may be replaced when dependencies are built.
