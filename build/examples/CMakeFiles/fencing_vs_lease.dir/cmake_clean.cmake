file(REMOVE_RECURSE
  "CMakeFiles/fencing_vs_lease.dir/fencing_vs_lease.cpp.o"
  "CMakeFiles/fencing_vs_lease.dir/fencing_vs_lease.cpp.o.d"
  "fencing_vs_lease"
  "fencing_vs_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fencing_vs_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
