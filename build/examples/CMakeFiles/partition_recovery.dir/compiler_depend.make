# Empty compiler generated dependencies file for partition_recovery.
# This may be replaced when dependencies are built.
