file(REMOVE_RECURSE
  "CMakeFiles/partition_recovery.dir/partition_recovery.cpp.o"
  "CMakeFiles/partition_recovery.dir/partition_recovery.cpp.o.d"
  "partition_recovery"
  "partition_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
