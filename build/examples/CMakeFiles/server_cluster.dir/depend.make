# Empty dependencies file for server_cluster.
# This may be replaced when dependencies are built.
