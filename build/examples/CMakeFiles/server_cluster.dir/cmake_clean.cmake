file(REMOVE_RECURSE
  "CMakeFiles/server_cluster.dir/server_cluster.cpp.o"
  "CMakeFiles/server_cluster.dir/server_cluster.cpp.o.d"
  "server_cluster"
  "server_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
