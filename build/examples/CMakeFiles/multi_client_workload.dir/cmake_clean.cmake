file(REMOVE_RECURSE
  "CMakeFiles/multi_client_workload.dir/multi_client_workload.cpp.o"
  "CMakeFiles/multi_client_workload.dir/multi_client_workload.cpp.o.d"
  "multi_client_workload"
  "multi_client_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_client_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
