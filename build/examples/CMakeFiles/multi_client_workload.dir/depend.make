# Empty dependencies file for multi_client_workload.
# This may be replaced when dependencies are built.
