file(REMOVE_RECURSE
  "../bench/bench_t3_availability"
  "../bench/bench_t3_availability.pdb"
  "CMakeFiles/bench_t3_availability.dir/bench_t3_availability.cpp.o"
  "CMakeFiles/bench_t3_availability.dir/bench_t3_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
