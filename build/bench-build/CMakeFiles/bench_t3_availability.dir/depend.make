# Empty dependencies file for bench_t3_availability.
# This may be replaced when dependencies are built.
