file(REMOVE_RECURSE
  "../bench/bench_t8_workloads"
  "../bench/bench_t8_workloads.pdb"
  "CMakeFiles/bench_t8_workloads.dir/bench_t8_workloads.cpp.o"
  "CMakeFiles/bench_t8_workloads.dir/bench_t8_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
