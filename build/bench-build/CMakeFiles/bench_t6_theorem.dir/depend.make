# Empty dependencies file for bench_t6_theorem.
# This may be replaced when dependencies are built.
