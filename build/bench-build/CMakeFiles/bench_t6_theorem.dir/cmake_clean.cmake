file(REMOVE_RECURSE
  "../bench/bench_t6_theorem"
  "../bench/bench_t6_theorem.pdb"
  "CMakeFiles/bench_t6_theorem.dir/bench_t6_theorem.cpp.o"
  "CMakeFiles/bench_t6_theorem.dir/bench_t6_theorem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_theorem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
