file(REMOVE_RECURSE
  "../bench/bench_t5_server_txn"
  "../bench/bench_t5_server_txn.pdb"
  "CMakeFiles/bench_t5_server_txn.dir/bench_t5_server_txn.cpp.o"
  "CMakeFiles/bench_t5_server_txn.dir/bench_t5_server_txn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_server_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
