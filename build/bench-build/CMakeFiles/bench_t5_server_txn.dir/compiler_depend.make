# Empty compiler generated dependencies file for bench_t5_server_txn.
# This may be replaced when dependencies are built.
