file(REMOVE_RECURSE
  "../bench/bench_fig5_nack"
  "../bench/bench_fig5_nack.pdb"
  "CMakeFiles/bench_fig5_nack.dir/bench_fig5_nack.cpp.o"
  "CMakeFiles/bench_fig5_nack.dir/bench_fig5_nack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
