# Empty compiler generated dependencies file for bench_t4_safety.
# This may be replaced when dependencies are built.
