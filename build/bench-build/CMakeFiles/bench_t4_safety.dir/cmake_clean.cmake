file(REMOVE_RECURSE
  "../bench/bench_t4_safety"
  "../bench/bench_t4_safety.pdb"
  "CMakeFiles/bench_t4_safety.dir/bench_t4_safety.cpp.o"
  "CMakeFiles/bench_t4_safety.dir/bench_t4_safety.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
