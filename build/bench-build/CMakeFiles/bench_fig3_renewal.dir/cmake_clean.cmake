file(REMOVE_RECURSE
  "../bench/bench_fig3_renewal"
  "../bench/bench_fig3_renewal.pdb"
  "CMakeFiles/bench_fig3_renewal.dir/bench_fig3_renewal.cpp.o"
  "CMakeFiles/bench_fig3_renewal.dir/bench_fig3_renewal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_renewal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
