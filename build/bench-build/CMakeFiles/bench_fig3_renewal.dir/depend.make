# Empty dependencies file for bench_fig3_renewal.
# This may be replaced when dependencies are built.
