file(REMOVE_RECURSE
  "../bench/bench_fig4_phases"
  "../bench/bench_fig4_phases.pdb"
  "CMakeFiles/bench_fig4_phases.dir/bench_fig4_phases.cpp.o"
  "CMakeFiles/bench_fig4_phases.dir/bench_fig4_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
