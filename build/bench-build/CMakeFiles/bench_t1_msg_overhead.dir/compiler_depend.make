# Empty compiler generated dependencies file for bench_t1_msg_overhead.
# This may be replaced when dependencies are built.
