file(REMOVE_RECURSE
  "../bench/bench_t1_msg_overhead"
  "../bench/bench_t1_msg_overhead.pdb"
  "CMakeFiles/bench_t1_msg_overhead.dir/bench_t1_msg_overhead.cpp.o"
  "CMakeFiles/bench_t1_msg_overhead.dir/bench_t1_msg_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_msg_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
