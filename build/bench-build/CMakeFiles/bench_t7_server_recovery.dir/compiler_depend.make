# Empty compiler generated dependencies file for bench_t7_server_recovery.
# This may be replaced when dependencies are built.
