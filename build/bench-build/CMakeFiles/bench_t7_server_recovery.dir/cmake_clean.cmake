file(REMOVE_RECURSE
  "../bench/bench_t7_server_recovery"
  "../bench/bench_t7_server_recovery.pdb"
  "CMakeFiles/bench_t7_server_recovery.dir/bench_t7_server_recovery.cpp.o"
  "CMakeFiles/bench_t7_server_recovery.dir/bench_t7_server_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_server_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
