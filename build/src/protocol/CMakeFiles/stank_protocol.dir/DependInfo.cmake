
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/client_transport.cpp" "src/protocol/CMakeFiles/stank_protocol.dir/client_transport.cpp.o" "gcc" "src/protocol/CMakeFiles/stank_protocol.dir/client_transport.cpp.o.d"
  "/root/repo/src/protocol/codec.cpp" "src/protocol/CMakeFiles/stank_protocol.dir/codec.cpp.o" "gcc" "src/protocol/CMakeFiles/stank_protocol.dir/codec.cpp.o.d"
  "/root/repo/src/protocol/server_transport.cpp" "src/protocol/CMakeFiles/stank_protocol.dir/server_transport.cpp.o" "gcc" "src/protocol/CMakeFiles/stank_protocol.dir/server_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stank_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/stank_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
