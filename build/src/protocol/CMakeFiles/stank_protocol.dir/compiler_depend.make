# Empty compiler generated dependencies file for stank_protocol.
# This may be replaced when dependencies are built.
