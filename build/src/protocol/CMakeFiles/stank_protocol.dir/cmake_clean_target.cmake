file(REMOVE_RECURSE
  "libstank_protocol.a"
)
