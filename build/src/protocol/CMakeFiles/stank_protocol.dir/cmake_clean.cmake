file(REMOVE_RECURSE
  "CMakeFiles/stank_protocol.dir/client_transport.cpp.o"
  "CMakeFiles/stank_protocol.dir/client_transport.cpp.o.d"
  "CMakeFiles/stank_protocol.dir/codec.cpp.o"
  "CMakeFiles/stank_protocol.dir/codec.cpp.o.d"
  "CMakeFiles/stank_protocol.dir/server_transport.cpp.o"
  "CMakeFiles/stank_protocol.dir/server_transport.cpp.o.d"
  "libstank_protocol.a"
  "libstank_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
