file(REMOVE_RECURSE
  "libstank_server.a"
)
