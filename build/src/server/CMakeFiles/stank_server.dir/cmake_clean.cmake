file(REMOVE_RECURSE
  "CMakeFiles/stank_server.dir/block_alloc.cpp.o"
  "CMakeFiles/stank_server.dir/block_alloc.cpp.o.d"
  "CMakeFiles/stank_server.dir/lock_manager.cpp.o"
  "CMakeFiles/stank_server.dir/lock_manager.cpp.o.d"
  "CMakeFiles/stank_server.dir/metadata.cpp.o"
  "CMakeFiles/stank_server.dir/metadata.cpp.o.d"
  "CMakeFiles/stank_server.dir/server.cpp.o"
  "CMakeFiles/stank_server.dir/server.cpp.o.d"
  "libstank_server.a"
  "libstank_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
