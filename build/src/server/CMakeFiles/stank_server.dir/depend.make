# Empty dependencies file for stank_server.
# This may be replaced when dependencies are built.
