
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/block_alloc.cpp" "src/server/CMakeFiles/stank_server.dir/block_alloc.cpp.o" "gcc" "src/server/CMakeFiles/stank_server.dir/block_alloc.cpp.o.d"
  "/root/repo/src/server/lock_manager.cpp" "src/server/CMakeFiles/stank_server.dir/lock_manager.cpp.o" "gcc" "src/server/CMakeFiles/stank_server.dir/lock_manager.cpp.o.d"
  "/root/repo/src/server/metadata.cpp" "src/server/CMakeFiles/stank_server.dir/metadata.cpp.o" "gcc" "src/server/CMakeFiles/stank_server.dir/metadata.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/server/CMakeFiles/stank_server.dir/server.cpp.o" "gcc" "src/server/CMakeFiles/stank_server.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stank_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stank_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/stank_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/stank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stank_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
