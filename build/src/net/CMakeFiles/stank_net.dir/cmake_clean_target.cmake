file(REMOVE_RECURSE
  "libstank_net.a"
)
