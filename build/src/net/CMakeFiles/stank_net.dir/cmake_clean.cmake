file(REMOVE_RECURSE
  "CMakeFiles/stank_net.dir/control_net.cpp.o"
  "CMakeFiles/stank_net.dir/control_net.cpp.o.d"
  "libstank_net.a"
  "libstank_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
