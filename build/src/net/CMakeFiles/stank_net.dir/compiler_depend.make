# Empty compiler generated dependencies file for stank_net.
# This may be replaced when dependencies are built.
