# Empty compiler generated dependencies file for stank_verify.
# This may be replaced when dependencies are built.
