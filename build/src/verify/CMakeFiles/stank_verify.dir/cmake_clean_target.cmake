file(REMOVE_RECURSE
  "libstank_verify.a"
)
