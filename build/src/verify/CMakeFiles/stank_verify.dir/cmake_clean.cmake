file(REMOVE_RECURSE
  "CMakeFiles/stank_verify.dir/checker.cpp.o"
  "CMakeFiles/stank_verify.dir/checker.cpp.o.d"
  "CMakeFiles/stank_verify.dir/history.cpp.o"
  "CMakeFiles/stank_verify.dir/history.cpp.o.d"
  "libstank_verify.a"
  "libstank_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
