file(REMOVE_RECURSE
  "CMakeFiles/stank_core.dir/client_lease_agent.cpp.o"
  "CMakeFiles/stank_core.dir/client_lease_agent.cpp.o.d"
  "CMakeFiles/stank_core.dir/server_lease_authority.cpp.o"
  "CMakeFiles/stank_core.dir/server_lease_authority.cpp.o.d"
  "libstank_core.a"
  "libstank_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
