# Empty dependencies file for stank_core.
# This may be replaced when dependencies are built.
