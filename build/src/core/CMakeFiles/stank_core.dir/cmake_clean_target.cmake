file(REMOVE_RECURSE
  "libstank_core.a"
)
