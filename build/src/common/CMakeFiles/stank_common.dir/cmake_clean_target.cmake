file(REMOVE_RECURSE
  "libstank_common.a"
)
