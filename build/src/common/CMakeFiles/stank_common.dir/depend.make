# Empty dependencies file for stank_common.
# This may be replaced when dependencies are built.
