file(REMOVE_RECURSE
  "CMakeFiles/stank_common.dir/bytes.cpp.o"
  "CMakeFiles/stank_common.dir/bytes.cpp.o.d"
  "CMakeFiles/stank_common.dir/log.cpp.o"
  "CMakeFiles/stank_common.dir/log.cpp.o.d"
  "CMakeFiles/stank_common.dir/table.cpp.o"
  "CMakeFiles/stank_common.dir/table.cpp.o.d"
  "libstank_common.a"
  "libstank_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
