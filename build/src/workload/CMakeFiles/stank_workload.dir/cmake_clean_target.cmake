file(REMOVE_RECURSE
  "libstank_workload.a"
)
