file(REMOVE_RECURSE
  "CMakeFiles/stank_workload.dir/failures.cpp.o"
  "CMakeFiles/stank_workload.dir/failures.cpp.o.d"
  "CMakeFiles/stank_workload.dir/scenario.cpp.o"
  "CMakeFiles/stank_workload.dir/scenario.cpp.o.d"
  "libstank_workload.a"
  "libstank_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
