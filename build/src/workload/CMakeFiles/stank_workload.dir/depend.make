# Empty dependencies file for stank_workload.
# This may be replaced when dependencies are built.
