file(REMOVE_RECURSE
  "libstank_metrics.a"
)
