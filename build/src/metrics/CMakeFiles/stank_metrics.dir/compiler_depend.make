# Empty compiler generated dependencies file for stank_metrics.
# This may be replaced when dependencies are built.
