file(REMOVE_RECURSE
  "CMakeFiles/stank_metrics.dir/histogram.cpp.o"
  "CMakeFiles/stank_metrics.dir/histogram.cpp.o.d"
  "libstank_metrics.a"
  "libstank_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
