
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/heartbeat.cpp" "src/baselines/CMakeFiles/stank_baselines.dir/heartbeat.cpp.o" "gcc" "src/baselines/CMakeFiles/stank_baselines.dir/heartbeat.cpp.o.d"
  "/root/repo/src/baselines/v_lease.cpp" "src/baselines/CMakeFiles/stank_baselines.dir/v_lease.cpp.o" "gcc" "src/baselines/CMakeFiles/stank_baselines.dir/v_lease.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/stank_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
