file(REMOVE_RECURSE
  "CMakeFiles/stank_baselines.dir/heartbeat.cpp.o"
  "CMakeFiles/stank_baselines.dir/heartbeat.cpp.o.d"
  "CMakeFiles/stank_baselines.dir/v_lease.cpp.o"
  "CMakeFiles/stank_baselines.dir/v_lease.cpp.o.d"
  "libstank_baselines.a"
  "libstank_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
