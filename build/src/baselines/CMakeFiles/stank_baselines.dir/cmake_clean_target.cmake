file(REMOVE_RECURSE
  "libstank_baselines.a"
)
