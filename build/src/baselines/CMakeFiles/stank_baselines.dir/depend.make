# Empty dependencies file for stank_baselines.
# This may be replaced when dependencies are built.
