file(REMOVE_RECURSE
  "CMakeFiles/stank_client.dir/cache.cpp.o"
  "CMakeFiles/stank_client.dir/cache.cpp.o.d"
  "CMakeFiles/stank_client.dir/client.cpp.o"
  "CMakeFiles/stank_client.dir/client.cpp.o.d"
  "CMakeFiles/stank_client.dir/machine.cpp.o"
  "CMakeFiles/stank_client.dir/machine.cpp.o.d"
  "libstank_client.a"
  "libstank_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
