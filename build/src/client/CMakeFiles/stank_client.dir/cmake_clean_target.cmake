file(REMOVE_RECURSE
  "libstank_client.a"
)
