# Empty dependencies file for stank_client.
# This may be replaced when dependencies are built.
