
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/san.cpp" "src/storage/CMakeFiles/stank_storage.dir/san.cpp.o" "gcc" "src/storage/CMakeFiles/stank_storage.dir/san.cpp.o.d"
  "/root/repo/src/storage/virtual_disk.cpp" "src/storage/CMakeFiles/stank_storage.dir/virtual_disk.cpp.o" "gcc" "src/storage/CMakeFiles/stank_storage.dir/virtual_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stank_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stank_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
