# Empty dependencies file for stank_storage.
# This may be replaced when dependencies are built.
