file(REMOVE_RECURSE
  "libstank_storage.a"
)
