file(REMOVE_RECURSE
  "CMakeFiles/stank_storage.dir/san.cpp.o"
  "CMakeFiles/stank_storage.dir/san.cpp.o.d"
  "CMakeFiles/stank_storage.dir/virtual_disk.cpp.o"
  "CMakeFiles/stank_storage.dir/virtual_disk.cpp.o.d"
  "libstank_storage.a"
  "libstank_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
