file(REMOVE_RECURSE
  "CMakeFiles/stank_sim.dir/engine.cpp.o"
  "CMakeFiles/stank_sim.dir/engine.cpp.o.d"
  "CMakeFiles/stank_sim.dir/rng.cpp.o"
  "CMakeFiles/stank_sim.dir/rng.cpp.o.d"
  "CMakeFiles/stank_sim.dir/trace.cpp.o"
  "CMakeFiles/stank_sim.dir/trace.cpp.o.d"
  "libstank_sim.a"
  "libstank_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stank_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
