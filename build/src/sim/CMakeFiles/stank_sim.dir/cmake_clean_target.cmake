file(REMOVE_RECURSE
  "libstank_sim.a"
)
