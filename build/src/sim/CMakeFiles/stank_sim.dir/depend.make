# Empty dependencies file for stank_sim.
# This may be replaced when dependencies are built.
