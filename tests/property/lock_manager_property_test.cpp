// Randomized operation sequences against the lock manager: invariants must
// hold after every step, and a model of "who may hold what" must agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "server/lock_manager.hpp"
#include "sim/rng.hpp"

namespace stank::server {
namespace {

using protocol::LockMode;

class LockManagerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockManagerFuzz, InvariantsHoldUnderRandomOps) {
  sim::Rng rng(GetParam());
  LockManager lm;
  const int kClients = 5;
  const int kFiles = 4;

  auto client = [&](int i) { return NodeId{static_cast<std::uint32_t>(100 + i)}; };
  auto file = [&](int i) { return FileId{static_cast<std::uint32_t>(1 + i)}; };

  for (int step = 0; step < 5000; ++step) {
    const NodeId c = client(static_cast<int>(rng.uniform_int(0, kClients - 1)));
    const FileId f = file(static_cast<int>(rng.uniform_int(0, kFiles - 1)));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        (void)lm.acquire(c, f, LockMode::kShared);
        break;
      case 1:
        (void)lm.acquire(c, f, LockMode::kExclusive);
        break;
      case 2:
        (void)lm.set_mode(c, f, LockMode::kNone);
        break;
      case 3:
        (void)lm.set_mode(c, f, LockMode::kShared);
        break;
      default:
        if (rng.bernoulli(0.3)) {
          (void)lm.steal_all(c);
        } else {
          (void)lm.cancel_waiter(c, f);
        }
        break;
    }
    ASSERT_TRUE(lm.invariants_hold()) << "seed " << GetParam() << " step " << step;
  }
}

TEST_P(LockManagerFuzz, GrantsAreAlwaysCompatibleWithHolders) {
  sim::Rng rng(GetParam() ^ 0xABCDEF);
  LockManager lm;
  auto client = [&](int i) { return NodeId{static_cast<std::uint32_t>(100 + i)}; };
  const FileId f{1};

  for (int step = 0; step < 3000; ++step) {
    const NodeId c = client(static_cast<int>(rng.uniform_int(0, 3)));
    LockManager::Update upd;
    if (rng.bernoulli(0.5)) {
      (void)lm.acquire(c, f, rng.bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive);
    } else {
      upd = lm.set_mode(c, f, rng.bernoulli(0.5) ? LockMode::kNone : LockMode::kShared);
    }
    // Every grant handed out must be compatible with every current holder.
    for (const auto& g : upd.grants) {
      for (const auto& [holder, mode] : lm.holders(f)) {
        if (holder != g.client) {
          ASSERT_TRUE(protocol::compatible(g.mode, mode))
              << "granted " << protocol::to_string(g.mode) << " while " << holder << " holds "
              << protocol::to_string(mode);
        }
      }
    }
  }
}

// Model-based fuzz: a shadow FIFO queue per file plus brute-force recomputes
// of the reverse index must agree with the lock manager after EVERY op,
// including demand compliance (a holder answering demanded_mode() with the
// prescribed downgrade).
TEST_P(LockManagerFuzz, FifoQueueAndReverseIndexMatchModel) {
  sim::Rng rng(GetParam() ^ 0x5EEDF00Du);
  LockManager lm;
  const int kClients = 5;
  const int kFiles = 3;

  auto client = [&](int i) { return NodeId{static_cast<std::uint32_t>(100 + i)}; };
  auto file = [&](int i) { return FileId{static_cast<std::uint32_t>(1 + i)}; };

  // Shadow model: the expected waiter queue of each file, in FIFO order.
  std::map<FileId, std::vector<NodeId>> queue;

  // Every grant pumped out of the table must come off the FRONT of its
  // file's queue, in order — that IS the FIFO guarantee.
  auto consume_grants = [&](const std::vector<LockManager::Grant>& grants) {
    for (const auto& g : grants) {
      auto& q = queue[g.file];
      ASSERT_FALSE(q.empty()) << "grant to " << g.client << " with empty model queue";
      ASSERT_EQ(q.front(), g.client) << "grant out of FIFO order on file " << g.file;
      q.erase(q.begin());
    }
  };

  for (int step = 0; step < 4000; ++step) {
    const NodeId c = client(static_cast<int>(rng.uniform_int(0, kClients - 1)));
    const FileId f = file(static_cast<int>(rng.uniform_int(0, kFiles - 1)));
    switch (rng.uniform_int(0, 4)) {
      case 0: {  // acquire
        const LockMode m = rng.bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
        auto res = lm.acquire(c, f, m);
        if (res.outcome == LockManager::AcquireOutcome::kQueued) {
          auto& q = queue[f];
          if (std::find(q.begin(), q.end(), c) == q.end()) q.push_back(c);
        }
        break;
      }
      case 1: {  // voluntary release / downgrade
        const LockMode m = rng.bernoulli(0.5) ? LockMode::kNone : LockMode::kShared;
        auto upd = lm.set_mode(c, f, m);
        consume_grants(upd.grants);
        break;
      }
      case 2: {  // demand compliance: downgrade exactly as far as demanded
        if (auto dm = lm.demanded_mode(c, f)) {
          auto upd = lm.set_mode(c, f, *dm);
          consume_grants(upd.grants);
        }
        break;
      }
      case 3: {  // cancel a queued request
        auto& q = queue[f];
        q.erase(std::remove(q.begin(), q.end(), c), q.end());
        auto upd = lm.cancel_waiter(c, f);
        consume_grants(upd.grants);
        break;
      }
      default: {  // steal: the client vanishes from every queue, then pumps
        for (auto& [qf, q] : queue) {
          q.erase(std::remove(q.begin(), q.end(), c), q.end());
        }
        auto res = lm.steal_all(c);
        consume_grants(res.update.grants);
        break;
      }
    }

    ASSERT_TRUE(lm.invariants_hold()) << "seed " << GetParam() << " step " << step;

    // The real queues must equal the model, entry for entry.
    std::size_t live_files = 0;
    for (int fi = 0; fi < kFiles; ++fi) {
      const FileId ff = file(fi);
      const auto ws = lm.waiters_of(ff);
      const auto& q = queue[ff];
      ASSERT_EQ(ws.size(), q.size()) << "file " << ff << " step " << step;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        ASSERT_EQ(ws[i].client, q[i]) << "file " << ff << " pos " << i;
      }
      if (!lm.holders(ff).empty() || !ws.empty()) ++live_files;
    }
    // gc left no empty records behind.
    ASSERT_EQ(lm.held_files(), live_files) << "step " << step;

    // Reverse index vs a brute-force recomputation over the whole table.
    for (int ci = 0; ci < kClients; ++ci) {
      const NodeId cc = client(ci);
      std::vector<FileId> expect;
      for (int fi = 0; fi < kFiles; ++fi) {
        const FileId ff = file(fi);
        for (const auto& [h, m] : lm.holders(ff)) {
          if (h == cc) expect.push_back(ff);
        }
      }
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(lm.files_of(cc), expect) << "client " << cc << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 12345u));

}  // namespace
}  // namespace stank::server
