// Randomized operation sequences against the lock manager: invariants must
// hold after every step, and a model of "who may hold what" must agree.
#include <gtest/gtest.h>

#include <map>

#include "server/lock_manager.hpp"
#include "sim/rng.hpp"

namespace stank::server {
namespace {

using protocol::LockMode;

class LockManagerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockManagerFuzz, InvariantsHoldUnderRandomOps) {
  sim::Rng rng(GetParam());
  LockManager lm;
  const int kClients = 5;
  const int kFiles = 4;

  auto client = [&](int i) { return NodeId{static_cast<std::uint32_t>(100 + i)}; };
  auto file = [&](int i) { return FileId{static_cast<std::uint32_t>(1 + i)}; };

  for (int step = 0; step < 5000; ++step) {
    const NodeId c = client(static_cast<int>(rng.uniform_int(0, kClients - 1)));
    const FileId f = file(static_cast<int>(rng.uniform_int(0, kFiles - 1)));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        (void)lm.acquire(c, f, LockMode::kShared);
        break;
      case 1:
        (void)lm.acquire(c, f, LockMode::kExclusive);
        break;
      case 2:
        (void)lm.set_mode(c, f, LockMode::kNone);
        break;
      case 3:
        (void)lm.set_mode(c, f, LockMode::kShared);
        break;
      default:
        if (rng.bernoulli(0.3)) {
          (void)lm.steal_all(c);
        } else {
          (void)lm.cancel_waiter(c, f);
        }
        break;
    }
    ASSERT_TRUE(lm.invariants_hold()) << "seed " << GetParam() << " step " << step;
  }
}

TEST_P(LockManagerFuzz, GrantsAreAlwaysCompatibleWithHolders) {
  sim::Rng rng(GetParam() ^ 0xABCDEF);
  LockManager lm;
  auto client = [&](int i) { return NodeId{static_cast<std::uint32_t>(100 + i)}; };
  const FileId f{1};

  for (int step = 0; step < 3000; ++step) {
    const NodeId c = client(static_cast<int>(rng.uniform_int(0, 3)));
    LockManager::Update upd;
    if (rng.bernoulli(0.5)) {
      (void)lm.acquire(c, f, rng.bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive);
    } else {
      upd = lm.set_mode(c, f, rng.bernoulli(0.5) ? LockMode::kNone : LockMode::kShared);
    }
    // Every grant handed out must be compatible with every current holder.
    for (const auto& g : upd.grants) {
      for (const auto& [holder, mode] : lm.holders(f)) {
        if (holder != g.client) {
          ASSERT_TRUE(protocol::compatible(g.mode, mode))
              << "granted " << protocol::to_string(g.mode) << " while " << holder << " holds "
              << protocol::to_string(mode);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 12345u));

}  // namespace
}  // namespace stank::server
