// Property sweep for Theorem 3.1: across epsilon values, adversarial clock
// placements and network latencies, the server NEVER steals locks before the
// partitioned client's own lease has expired — and the full run stays
// sequentially consistent.
#include <gtest/gtest.h>

#include <tuple>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using workload::Scenario;
using workload::ScenarioConfig;

// (epsilon, clock_skew_mode, one-way latency microseconds)
using Param = std::tuple<double, int, int>;

class TheoremSweep : public ::testing::TestWithParam<Param> {};

TEST_P(TheoremSweep, StealNeverPrecedesClientExpiry) {
  const auto [eps, skew_mode, latency_us] = GetParam();

  ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(5);
  cfg.lease.epsilon = eps;
  cfg.clock_skew_mode = skew_mode;
  cfg.control_net.latency = sim::micros(latency_us);
  cfg.control_net.jitter = sim::micros(latency_us / 2);
  cfg.enable_trace = true;

  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  const FileId file = sc.file_id(0);

  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
    verify::Stamp st{file, 0, 1, c0.id()};
    c0.write(sc.fd(0, 0), 0, verify::make_stamped_block(cfg.block_size, st), [](Status) {});
  });
  sc.run_until_s(2.0);
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(2.5), [&]() {
    sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [](Status) {});
  });
  sc.run_until_s(30.0);

  double steal_at = -1, expired_at = -1, flush_at = -1;
  for (const auto& e : sc.trace().events()) {
    if (e.category == "lock" && e.detail.find("stole") != std::string::npos) {
      steal_at = e.at.seconds();
    }
    if (e.category == "lease" && e.node == c0.id() &&
        e.detail.find("lease expired") != std::string::npos) {
      expired_at = e.at.seconds();
    }
  }
  for (const auto& w : sc.history().disk_writes()) {
    if (w.initiator == c0.id()) {
      flush_at = w.at.seconds();
    }
  }

  ASSERT_GT(steal_at, 0.0) << "no steal happened";
  ASSERT_GT(expired_at, 0.0) << "client lease never expired";
  // Theorem 3.1 in the omniscient frame:
  EXPECT_GT(steal_at, expired_at);
  // The dirty data made it out before the steal.
  ASSERT_GT(flush_at, 0.0);
  EXPECT_LT(flush_at, steal_at);
  // And the overall history stayed clean.
  EXPECT_TRUE(verify::ConsistencyChecker(sc.history()).check_all().empty());
}

std::string theorem_param_name(const ::testing::TestParamInfo<Param>& info) {
  const double eps = std::get<0>(info.param);
  const int skew = std::get<1>(info.param);
  const int lat = std::get<2>(info.param);
  std::string name = "eps" + std::to_string(static_cast<int>(eps * 1e6)) + "ppm";
  name += skew == 0 ? "_rand" : (skew > 0 ? "_availworst" : "_safetyedge");
  name += "_lat" + std::to_string(lat) + "us";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonSkewLatencyGrid, TheoremSweep,
    ::testing::Combine(
        // epsilon: from tight modern clocks to sloppy 5e-2 parts.
        ::testing::Values(1e-6, 1e-4, 1e-3, 1e-2, 5e-2),
        // clock placement: random, availability-worst, safety-boundary.
        ::testing::Values(0, +1, -1),
        // one-way control-network latency.
        ::testing::Values(50, 500, 5000)),
    theorem_param_name);

}  // namespace
}  // namespace stank
