// Property sweep: randomized workloads with randomized in-scope failures
// must stay sequentially consistent under the paper's protocol, for every
// seed and every lease strategy.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/scenario.hpp"

namespace stank {
namespace {

using workload::FailurePlan;
using workload::Scenario;
using workload::ScenarioConfig;

using Param = std::tuple<std::uint64_t, core::LeaseStrategy>;

class WorkloadSweep : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadSweep, RandomFailuresStaySequentiallyConsistent) {
  const auto [seed, strategy] = GetParam();

  ScenarioConfig cfg;
  cfg.workload.num_clients = 5;
  cfg.workload.num_files = 8;
  cfg.workload.file_blocks = 4;
  cfg.workload.read_fraction = 0.55;
  cfg.workload.mean_interarrival_s = 0.04;
  cfg.workload.run_seconds = 40.0;
  cfg.workload.seed = seed;
  cfg.lease.tau = sim::local_seconds(6);
  cfg.lease.epsilon = 1e-3;
  cfg.strategy = strategy;
  cfg.control_net.drop_probability = 0.002;  // a little background loss too

  sim::Rng frng(seed * 7919 + 13);
  cfg.failures = FailurePlan::random(frng, cfg.workload, 4);

  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.write_order, 0u) << "unsynchronized writers raced";
  EXPECT_EQ(r.violations.stale_reads, 0u) << "a process read stale data";
  EXPECT_EQ(r.violations.lost_updates, 0u) << "acknowledged data vanished";
  EXPECT_GT(r.reads_ok + r.writes_ok, 100u) << "workload barely ran";
}

std::string workload_param_name(const ::testing::TestParamInfo<Param>& info) {
  const std::uint64_t seed = std::get<0>(info.param);
  const core::LeaseStrategy strategy = std::get<1>(info.param);
  std::string name =
      strategy == core::LeaseStrategy::kStorageTank ? "stank" : "frangipani";
  name += "_seed" + std::to_string(seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, WorkloadSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(core::LeaseStrategy::kStorageTank,
                                         core::LeaseStrategy::kFrangipani)),
    workload_param_name);

// Background packet loss alone (no partitions) must not break anything nor
// trigger spurious lease expiries at sensible loss rates.
class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, RandomLossIsHarmless) {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 3;
  cfg.workload.num_files = 4;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 30.0;
  cfg.lease.tau = sim::local_seconds(6);
  cfg.control_net.drop_probability = GetParam();
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.reads_ok + r.writes_ok, 50u);
}

std::string loss_param_name(const ::testing::TestParamInfo<double>& info) {
  return "loss" + std::to_string(static_cast<int>(info.param * 1000)) + "permille";
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep, ::testing::Values(0.001, 0.01, 0.05),
                         loss_param_name);

}  // namespace
}  // namespace stank
