// Property sweep over server failures: whatever the crash timing, the
// downtime, and the workload seed, the protocol must stay sequentially
// consistent — and with short downtimes the clients' caches must survive
// via lock reassertion.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/scenario.hpp"

namespace stank {
namespace {

using workload::Scenario;
using workload::ScenarioConfig;

// (seed, crash time seconds, downtime seconds)
using Param = std::tuple<std::uint64_t, double, double>;

class ServerCrashSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ServerCrashSweep, AlwaysSequentiallyConsistent) {
  const auto [seed, crash_at, downtime] = GetParam();

  ScenarioConfig cfg;
  cfg.workload.num_clients = 4;
  cfg.workload.num_files = 6;
  cfg.workload.file_blocks = 4;
  cfg.workload.read_fraction = 0.55;
  cfg.workload.mean_interarrival_s = 0.04;
  cfg.workload.run_seconds = 40.0;
  cfg.workload.seed = seed;
  cfg.lease.tau = sim::local_seconds(6);
  cfg.failures.add(crash_at, workload::FailureKind::kServerCrash, 0);
  cfg.failures.add(crash_at + downtime, workload::FailureKind::kServerRestart, 0);

  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.write_order, 0u);
  EXPECT_EQ(r.violations.stale_reads, 0u);
  EXPECT_EQ(r.violations.lost_updates, 0u);
  EXPECT_GT(r.reads_ok + r.writes_ok, 100u);
  // Everyone is back in business by the end.
  for (std::size_t c = 0; c < sc.num_clients(); ++c) {
    EXPECT_TRUE(sc.client(c).registered()) << "client " << c;
  }
}

std::string crash_param_name(const ::testing::TestParamInfo<Param>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) + "_crash" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) + "ds_down" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) + "ds";
}

INSTANTIATE_TEST_SUITE_P(CrashTimingGrid, ServerCrashSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(5.0, 15.0, 25.0),
                                            ::testing::Values(0.2, 2.0, 8.0)),
                         crash_param_name);

// Combined server crash + client-side failures in the same run.
class CombinedFailureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombinedFailureSweep, ServerAndClientFailuresTogether) {
  const std::uint64_t seed = GetParam();
  ScenarioConfig cfg;
  cfg.workload.num_clients = 5;
  cfg.workload.num_files = 8;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 50.0;
  cfg.workload.seed = seed;
  cfg.lease.tau = sim::local_seconds(6);
  // A client partition overlapping a server failure.
  cfg.failures.add(10.0, workload::FailureKind::kCtrlIsolate, 1);
  cfg.failures.add(14.0, workload::FailureKind::kServerCrash, 0);
  cfg.failures.add(15.5, workload::FailureKind::kServerRestart, 0);
  cfg.failures.add(30.0, workload::FailureKind::kCtrlHeal, 1);
  cfg.failures.add(35.0, workload::FailureKind::kCrash, 2);
  cfg.failures.add(40.0, workload::FailureKind::kRestart, 2);

  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.reads_ok + r.writes_ok, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedFailureSweep, ::testing::Values(1u, 7u, 42u, 99u));

}  // namespace
}  // namespace stank
