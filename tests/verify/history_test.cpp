#include "verify/history.hpp"

#include <gtest/gtest.h>

namespace stank::verify {
namespace {

storage::IoRequest stamped_write(NodeId who, storage::BlockAddr addr, FileId file,
                                 std::uint64_t block, std::uint64_t version,
                                 std::uint32_t count = 1, std::uint32_t bs = 64) {
  storage::IoRequest r;
  r.initiator = who;
  r.disk = DiskId{1};
  r.op = storage::IoOp::kWrite;
  r.addr = addr;
  r.count = count;
  for (std::uint32_t i = 0; i < count; ++i) {
    Bytes b = make_stamped_block(bs, Stamp{file, block + i, version, who});
    r.data.insert(r.data.end(), b.begin(), b.end());
  }
  return r;
}

TEST(History, RecordsStampedDiskWrites) {
  HistoryRecorder h;
  auto req = stamped_write(NodeId{100}, 10, FileId{1}, 3, 7);
  h.on_disk_io(req, storage::IoResult{Status::ok(), {}}, sim::SimTime{100}, 64);
  ASSERT_EQ(h.disk_writes().size(), 1u);
  EXPECT_EQ(h.disk_writes()[0].stamp.version, 7u);
  EXPECT_EQ(h.disk_writes()[0].addr, 10u);
  EXPECT_EQ(h.disk_writes()[0].at.ns, 100);
}

TEST(History, IgnoresReadsFailuresAndUnstamped) {
  HistoryRecorder h;
  auto w = stamped_write(NodeId{100}, 0, FileId{1}, 0, 1);
  // Failed write: not recorded.
  h.on_disk_io(w, storage::IoResult{Status{ErrorCode::kFenced}, {}}, sim::SimTime{1}, 64);
  // Read: not recorded.
  auto r = w;
  r.op = storage::IoOp::kRead;
  h.on_disk_io(r, storage::IoResult{Status::ok(), w.data}, sim::SimTime{2}, 64);
  // Unstamped write: not recorded.
  storage::IoRequest plain = w;
  plain.data.assign(64, 0xEE);
  h.on_disk_io(plain, storage::IoResult{Status::ok(), {}}, sim::SimTime{3}, 64);
  EXPECT_TRUE(h.disk_writes().empty());
}

TEST(History, MultiBlockWriteRecordsEachBlock) {
  HistoryRecorder h;
  auto req = stamped_write(NodeId{100}, 20, FileId{2}, 5, 3, /*count=*/3);
  h.on_disk_io(req, storage::IoResult{Status::ok(), {}}, sim::SimTime{9}, 64);
  ASSERT_EQ(h.disk_writes().size(), 3u);
  EXPECT_EQ(h.disk_writes()[1].addr, 21u);
  EXPECT_EQ(h.disk_writes()[1].stamp.block, 6u);
}

TEST(History, DiskVersionAtTime) {
  HistoryRecorder h;
  auto w1 = stamped_write(NodeId{100}, 0, FileId{1}, 0, 1);
  auto w2 = stamped_write(NodeId{101}, 0, FileId{1}, 0, 2);
  h.on_disk_io(w1, storage::IoResult{Status::ok(), {}}, sim::SimTime{10}, 64);
  h.on_disk_io(w2, storage::IoResult{Status::ok(), {}}, sim::SimTime{20}, 64);
  const HistoryRecorder::BlockKey key{FileId{1}, 0};
  EXPECT_EQ(h.disk_version_at(key, sim::SimTime{5}), 0u);
  EXPECT_EQ(h.disk_version_at(key, sim::SimTime{10}), 1u);
  EXPECT_EQ(h.disk_version_at(key, sim::SimTime{15}), 1u);
  EXPECT_EQ(h.disk_version_at(key, sim::SimTime{25}), 2u);
}

TEST(History, BufferedWritesReadsAndCrashes) {
  HistoryRecorder h;
  h.on_buffered_write(sim::SimTime{1}, NodeId{100}, Stamp{FileId{1}, 0, 1, NodeId{100}});
  ReadRec rec;
  rec.start = sim::SimTime{2};
  rec.end = sim::SimTime{3};
  rec.client = NodeId{101};
  rec.file = FileId{1};
  rec.block = 0;
  rec.observed_version = 1;
  h.on_read(rec);
  h.on_crash(NodeId{100});
  EXPECT_EQ(h.buffered_writes().size(), 1u);
  EXPECT_EQ(h.reads().size(), 1u);
  EXPECT_TRUE(h.crashed().contains(NodeId{100}));
}

TEST(History, AllBlocksUnionsSources) {
  HistoryRecorder h;
  h.on_buffered_write(sim::SimTime{1}, NodeId{100}, Stamp{FileId{1}, 0, 1, NodeId{100}});
  auto w = stamped_write(NodeId{100}, 0, FileId{2}, 5, 1);
  h.on_disk_io(w, storage::IoResult{Status::ok(), {}}, sim::SimTime{2}, 64);
  ReadRec rec;
  rec.client = NodeId{101};
  rec.file = FileId{3};
  rec.block = 9;
  h.on_read(rec);
  auto keys = h.all_blocks();
  EXPECT_EQ(keys.size(), 3u);
  EXPECT_TRUE(keys.contains({FileId{1}, 0}));
  EXPECT_TRUE(keys.contains({FileId{2}, 5}));
  EXPECT_TRUE(keys.contains({FileId{3}, 9}));
}

TEST(History, ClearEmpties) {
  HistoryRecorder h;
  h.on_crash(NodeId{1});
  h.clear();
  EXPECT_TRUE(h.crashed().empty());
}

}  // namespace
}  // namespace stank::verify
