#include "verify/stamp.hpp"

#include <gtest/gtest.h>

namespace stank::verify {
namespace {

TEST(Stamp, RoundTrip) {
  Stamp s{FileId{7}, 42, 9001, NodeId{103}};
  Bytes b = make_stamped_block(128, s);
  ASSERT_EQ(b.size(), 128u);
  auto d = decode_stamp(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, s);
}

TEST(Stamp, MinimalBlockSize) {
  Stamp s{FileId{1}, 0, 1, NodeId{100}};
  Bytes b = make_stamped_block(static_cast<std::uint32_t>(kStampBytes), s);
  EXPECT_EQ(b.size(), kStampBytes);
  EXPECT_EQ(decode_stamp(b), s);
}

TEST(Stamp, UnstampedBlockDecodesToNothing) {
  EXPECT_FALSE(decode_stamp(Bytes(64, 0)).has_value());
  EXPECT_FALSE(decode_stamp(Bytes(64, 0xFF)).has_value());
  EXPECT_FALSE(decode_stamp(Bytes{}).has_value());
  EXPECT_FALSE(decode_stamp(Bytes(4, 0x4B)).has_value());  // too short
}

TEST(Stamp, FillerIsDeterministic) {
  Stamp s{FileId{1}, 3, 5, NodeId{100}};
  EXPECT_EQ(make_stamped_block(256, s), make_stamped_block(256, s));
  // Different versions produce different blocks even beyond the header.
  Stamp s2 = s;
  s2.version = 6;
  EXPECT_NE(make_stamped_block(256, s), make_stamped_block(256, s2));
}

TEST(Stamp, CorruptedMagicRejected) {
  Stamp s{FileId{1}, 0, 1, NodeId{100}};
  Bytes b = make_stamped_block(64, s);
  b[0] ^= 0xFF;
  EXPECT_FALSE(decode_stamp(b).has_value());
}

}  // namespace
}  // namespace stank::verify
