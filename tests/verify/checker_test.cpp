#include "verify/checker.hpp"

#include <gtest/gtest.h>

namespace stank::verify {
namespace {

const FileId kF{1};
const NodeId kA{100}, kB{101};

void disk_write(HistoryRecorder& h, NodeId who, std::uint64_t block, std::uint64_t version,
                std::int64_t at_ns) {
  storage::IoRequest r;
  r.initiator = who;
  r.disk = DiskId{1};
  r.op = storage::IoOp::kWrite;
  r.addr = block;
  r.count = 1;
  r.data = make_stamped_block(64, Stamp{kF, block, version, who});
  h.on_disk_io(r, storage::IoResult{Status::ok(), {}}, sim::SimTime{at_ns}, 64);
}

void buffered(HistoryRecorder& h, NodeId who, std::uint64_t block, std::uint64_t version,
              std::int64_t at_ns) {
  h.on_buffered_write(sim::SimTime{at_ns}, who, Stamp{kF, block, version, who});
}

void read(HistoryRecorder& h, NodeId who, std::uint64_t block, std::uint64_t observed,
          std::int64_t start_ns, std::int64_t end_ns) {
  ReadRec r;
  r.start = sim::SimTime{start_ns};
  r.end = sim::SimTime{end_ns};
  r.client = who;
  r.file = kF;
  r.block = block;
  r.observed_version = observed;
  h.on_read(r);
}

TEST(Checker, CleanHistoryHasNoViolations) {
  HistoryRecorder h;
  buffered(h, kA, 0, 1, 10);
  disk_write(h, kA, 0, 1, 20);
  read(h, kB, 0, 1, 30, 31);
  buffered(h, kB, 0, 2, 40);
  disk_write(h, kB, 0, 2, 50);
  read(h, kA, 0, 2, 60, 61);
  ConsistencyChecker c(h);
  EXPECT_TRUE(c.check_all().empty());
}

TEST(Checker, DetectsWriteOrderRegression) {
  HistoryRecorder h;
  disk_write(h, kB, 0, 2, 10);
  disk_write(h, kA, 0, 1, 20);  // older version lands later: a race
  ConsistencyChecker c(h);
  auto v = c.check_write_order();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kWriteOrderRegression);
  EXPECT_EQ(v[0].at.ns, 20);
}

TEST(Checker, RewriteOfSameVersionIsNotARegression) {
  HistoryRecorder h;
  disk_write(h, kA, 0, 1, 10);
  disk_write(h, kA, 0, 1, 20);  // flush retry
  EXPECT_TRUE(ConsistencyChecker(h).check_write_order().empty());
}

TEST(Checker, RegressionsPerBlockIndependent) {
  HistoryRecorder h;
  disk_write(h, kA, 0, 5, 10);
  disk_write(h, kB, 1, 1, 20);  // a different block at v1: fine
  disk_write(h, kA, 1, 2, 30);
  EXPECT_TRUE(ConsistencyChecker(h).check_write_order().empty());
}

TEST(Checker, DetectsStaleRead) {
  HistoryRecorder h;
  disk_write(h, kA, 0, 3, 10);
  read(h, kB, 0, 2, 20, 21);  // observes v2 although disk held v3 at start
  auto v = ConsistencyChecker(h).check_stale_reads();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kStaleRead);
}

TEST(Checker, ReadAheadOfDiskIsFine) {
  // Reading one's own buffered (newer) data is legal.
  HistoryRecorder h;
  disk_write(h, kA, 0, 1, 10);
  read(h, kA, 0, 5, 20, 21);
  EXPECT_TRUE(ConsistencyChecker(h).check_stale_reads().empty());
}

TEST(Checker, ConcurrentWriteLandingAfterReadStartIsFine) {
  HistoryRecorder h;
  read(h, kB, 0, 0, 5, 30);     // read starts before any write
  disk_write(h, kA, 0, 1, 10);  // lands mid-read
  EXPECT_TRUE(ConsistencyChecker(h).check_stale_reads().empty());
}

TEST(Checker, DetectsLostUpdate) {
  HistoryRecorder h;
  buffered(h, kA, 0, 1, 10);
  // Never reaches the disk; kA never crashed.
  auto v = ConsistencyChecker(h).check_lost_updates();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, ViolationKind::kLostUpdate);
}

TEST(Checker, CrashExcusesUnflushedData) {
  HistoryRecorder h;
  buffered(h, kA, 0, 1, 10);
  h.on_crash(kA);
  EXPECT_TRUE(ConsistencyChecker(h).check_lost_updates().empty());
}

TEST(Checker, SupersededBufferedWriteNotLost) {
  HistoryRecorder h;
  buffered(h, kA, 0, 1, 10);  // never flushed...
  buffered(h, kB, 0, 2, 20);
  disk_write(h, kB, 0, 2, 30);  // ...but a newer version IS on disk
  EXPECT_TRUE(ConsistencyChecker(h).check_lost_updates().empty());
}

TEST(Checker, FinalDiskStateOlderThanBufferedIsLost) {
  HistoryRecorder h;
  buffered(h, kA, 0, 1, 10);
  disk_write(h, kA, 0, 1, 20);
  buffered(h, kA, 0, 2, 30);  // v2 buffered after the flush, never hardened
  auto v = ConsistencyChecker(h).check_lost_updates();
  ASSERT_EQ(v.size(), 1u);
}

TEST(Checker, SummarizeCounts) {
  HistoryRecorder h;
  disk_write(h, kB, 0, 2, 10);
  disk_write(h, kA, 0, 1, 20);
  read(h, kB, 1, 0, 30, 31);
  disk_write(h, kA, 1, 1, 25);
  buffered(h, kA, 2, 1, 5);
  ConsistencyChecker c(h);
  auto all = c.check_all();
  auto s = ConsistencyChecker::summarize(all);
  EXPECT_EQ(s.write_order, 1u);
  EXPECT_EQ(s.stale_reads, 1u);
  EXPECT_EQ(s.lost_updates, 1u);
  EXPECT_EQ(s.total(), 3u);
}

TEST(Checker, EmptyHistoryClean) {
  HistoryRecorder h;
  EXPECT_TRUE(ConsistencyChecker(h).check_all().empty());
}

// Split verdict (DESIGN.md §13): each violation kind names its victim, and
// the victim's byzantine mark decides the bucket.

TEST(Checker, SplitVictimIsOverwrittenWriterForWriteOrder) {
  HistoryRecorder h;
  h.mark_byzantine(kB);
  disk_write(h, kB, 0, 2, 10);
  disk_write(h, kA, 0, 1, 20);  // kA's late flush clobbers kB's newer data
  auto s = ConsistencyChecker(h).check_all_split();
  EXPECT_TRUE(s.honest.empty());  // the overwritten writer (kB) is byzantine
  ASSERT_EQ(s.byzantine.size(), 1u);
  EXPECT_EQ(s.byzantine[0].victim, kB);
}

TEST(Checker, SplitVictimIsReaderForStaleRead) {
  HistoryRecorder h;
  h.mark_byzantine(kA);
  disk_write(h, kA, 0, 3, 10);
  read(h, kB, 0, 2, 20, 21);  // honest kB observes stale data
  auto s = ConsistencyChecker(h).check_all_split();
  ASSERT_EQ(s.honest.size(), 1u);  // the reader is the victim, and is honest
  EXPECT_EQ(s.honest[0].victim, kB);
  EXPECT_TRUE(s.byzantine.empty());
}

TEST(Checker, SplitVictimIsBufferingClientForLostUpdate) {
  HistoryRecorder h;
  h.mark_byzantine(kA);
  buffered(h, kA, 0, 1, 10);  // byzantine kA buffers and never flushes
  auto s = ConsistencyChecker(h).check_all_split();
  EXPECT_TRUE(s.honest.empty());
  ASSERT_EQ(s.byzantine.size(), 1u);
  EXPECT_EQ(s.byzantine[0].victim, kA);
}

TEST(Checker, SplitWithNoByzantineMatchesCheckAll) {
  HistoryRecorder h;
  disk_write(h, kB, 0, 2, 10);
  disk_write(h, kA, 0, 1, 20);
  read(h, kB, 1, 0, 30, 31);
  disk_write(h, kA, 1, 1, 25);
  buffered(h, kA, 2, 1, 5);
  ConsistencyChecker c(h);
  auto s = c.check_all_split();
  EXPECT_TRUE(s.byzantine.empty());
  EXPECT_EQ(s.honest.size(), c.check_all().size());
}

}  // namespace
}  // namespace stank::verify
