#include "obs/trace_log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace stank::obs {
namespace {

TEST(TraceLogAdapter, SharedRecorderIsNotCopied) {
  Recorder rec;
  TraceLog log(rec);
  log.record(sim::SimTime{1}, NodeId{1}, "lease", "x");
  // The adapter wrote straight into the shared recorder's annotation
  // channel, and events() hands that storage back without copying.
  ASSERT_EQ(rec.annotations().size(), 1u);
  EXPECT_EQ(&log.events(), &rec.annotations());
  rec.annotate(sim::SimTime{2}, NodeId{2}, "lock", "y");
  EXPECT_EQ(log.events().size(), 2u);
}

TEST(TraceLogAdapter, OwnedRecorderWhenDefaultConstructed) {
  TraceLog log;
  log.record(sim::SimTime{1}, NodeId{1}, "a", "b");
  EXPECT_EQ(log.recorder().annotations().size(), 1u);
  EXPECT_EQ(&log.events(), &log.recorder().annotations());
}

TEST(TraceLogAdapter, VisitFiltersByCategoryInOrder) {
  TraceLog log;
  log.record(sim::SimTime{1}, NodeId{1}, "lease", "first");
  log.record(sim::SimTime{2}, NodeId{1}, "lock", "other");
  log.record(sim::SimTime{3}, NodeId{2}, "lease", "second");

  std::vector<std::string> seen;
  log.visit("lease", [&](const TraceEvent& e) { seen.push_back(e.detail); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_EQ(seen[1], "second");
}

TEST(TraceLogAdapter, VisitNodeFilters) {
  TraceLog log;
  log.record(sim::SimTime{1}, NodeId{1}, "a", "x");
  log.record(sim::SimTime{2}, NodeId{2}, "a", "y");
  std::size_t n = 0;
  log.visit_node(NodeId{2}, [&](const TraceEvent&) { ++n; });
  EXPECT_EQ(n, 1u);
}

TEST(TraceLogAdapter, ClearLeavesTypedEventsIntact) {
  Recorder rec;
  TraceLog log(rec);
  rec.record(sim::SimTime{1}, NodeId{1}, EventKind::kReqSend, 5);
  log.record(sim::SimTime{2}, NodeId{1}, "lease", "x");
  log.clear();
  // The legacy clear() semantics: only the string channel empties; the
  // typed flight-recorder rings survive.
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(rec.total_events(), 1u);
}

TEST(CatHelper, StreamsArgumentsTogether) {
  EXPECT_EQ(cat("client ", NodeId{7}, " took ", 3, " locks"), "client n7 took 3 locks");
}

}  // namespace
}  // namespace stank::obs
