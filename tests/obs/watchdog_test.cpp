// obs::Watchdog: edge-triggered trip/clear recording, typed event payloads
// (probe index + bit_cast'd value), rate-probe priming, and the guarantee
// that a healthy probe records nothing at all.
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"
#include "obs/recorder.hpp"

namespace stank::obs {
namespace {

std::vector<Event> watchdog_events(const Recorder& rec) {
  std::vector<Event> out;
  rec.visit_node(NodeId{0}, [&](const Event& e) {
    if (e.kind == EventKind::kWatchdogTrip || e.kind == EventKind::kWatchdogClear) {
      out.push_back(e);
    }
  });
  return out;
}

TEST(Watchdog, HealthyProbeRecordsNothing) {
  Recorder rec;
  Watchdog wd(rec);
  double v = 5.0;
  wd.add_probe("inside", [&v] { return v; }, 0.0, 10.0);
  for (int i = 0; i < 20; ++i) wd.evaluate(sim::SimTime{i * 1'000'000});
  EXPECT_EQ(wd.trips(), 0u);
  EXPECT_TRUE(watchdog_events(rec).empty());
}

TEST(Watchdog, EdgeTriggeredTripAndClear) {
  Recorder rec;
  Watchdog wd(rec);
  double v = 5.0;
  const std::uint32_t id = wd.add_probe("band", [&v] { return v; }, 0.0, 10.0);

  wd.evaluate(sim::SimTime{1});  // healthy
  v = 42.0;
  wd.evaluate(sim::SimTime{2});  // trips
  wd.evaluate(sim::SimTime{3});  // still out of band: no second trip event
  EXPECT_TRUE(wd.tripped(id));
  v = 3.0;
  wd.evaluate(sim::SimTime{4});  // clears
  wd.evaluate(sim::SimTime{5});  // healthy again: nothing
  EXPECT_FALSE(wd.tripped(id));
  EXPECT_EQ(wd.trips(), 1u);

  const auto evs = watchdog_events(rec);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, EventKind::kWatchdogTrip);
  EXPECT_EQ(evs[0].a, id);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(evs[0].b), 42.0);
  EXPECT_EQ(evs[1].kind, EventKind::kWatchdogClear);
  EXPECT_EQ(evs[1].a, id);
}

TEST(Watchdog, BoundsAreInclusive) {
  Recorder rec;
  Watchdog wd(rec);
  double v = 10.0;
  wd.add_probe("edge", [&v] { return v; }, 0.0, 10.0);
  wd.evaluate(sim::SimTime{1});  // exactly the max: legal
  EXPECT_EQ(wd.trips(), 0u);
  v = 10.0001;
  wd.evaluate(sim::SimTime{2});
  EXPECT_EQ(wd.trips(), 1u);
}

TEST(Watchdog, RatePrimingSkipsFirstEvaluation) {
  Recorder rec;
  Watchdog wd(rec);
  double counter = 1000.0;  // large initial value must NOT look like a burst
  const std::uint32_t id = wd.add_rate_probe("drops", [&counter] { return counter; }, 0.0);

  wd.evaluate(sim::SimTime{1});  // priming: records baseline, cannot trip
  EXPECT_EQ(wd.trips(), 0u);
  wd.evaluate(sim::SimTime{2});  // delta 0: healthy
  EXPECT_EQ(wd.trips(), 0u);
  counter += 1.0;
  wd.evaluate(sim::SimTime{3});  // any growth with max_delta=0 trips
  EXPECT_EQ(wd.trips(), 1u);
  EXPECT_TRUE(wd.tripped(id));
  wd.evaluate(sim::SimTime{4});  // growth stopped: clears
  EXPECT_FALSE(wd.tripped(id));

  const auto evs = watchdog_events(rec);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, EventKind::kWatchdogTrip);
  EXPECT_EQ(evs[1].kind, EventKind::kWatchdogClear);
}

TEST(Watchdog, MultipleProbesTripIndependently) {
  Recorder rec;
  Watchdog wd(rec);
  double a = 0.0;
  double b = 0.0;
  const std::uint32_t ia = wd.add_probe("a", [&a] { return a; }, 0.0, 1.0);
  const std::uint32_t ib = wd.add_probe("b", [&b] { return b; }, 0.0, 1.0);
  EXPECT_EQ(wd.probe_count(), 2u);
  EXPECT_EQ(wd.probe_name(ia), "a");
  EXPECT_EQ(wd.probe_name(ib), "b");

  a = 2.0;
  wd.evaluate(sim::SimTime{1});
  EXPECT_TRUE(wd.tripped(ia));
  EXPECT_FALSE(wd.tripped(ib));
  b = 2.0;
  a = 0.5;
  wd.evaluate(sim::SimTime{2});
  EXPECT_FALSE(wd.tripped(ia));
  EXPECT_TRUE(wd.tripped(ib));
  EXPECT_EQ(wd.trips(), 2u);
}

}  // namespace
}  // namespace stank::obs
