#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/engine.hpp"

namespace stank::obs {
namespace {

std::vector<Event> collect_node(const Recorder& rec, NodeId node) {
  std::vector<Event> out;
  rec.visit_node(node, [&](const Event& e) { out.push_back(e); });
  return out;
}

TEST(Recorder, EventIs32BytesAndTrivial) {
  EXPECT_EQ(sizeof(Event), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Event>);
}

TEST(Recorder, RecordAndVisitNodeInOrder) {
  Recorder rec;
  rec.record(sim::SimTime{10}, NodeId{1}, EventKind::kReqSend, 100);
  rec.record(sim::SimTime{20}, NodeId{1}, EventKind::kAckRecv, 100);
  rec.record(sim::SimTime{15}, NodeId{2}, EventKind::kReqRecv, 100, 1);

  const auto n1 = collect_node(rec, NodeId{1});
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].kind, EventKind::kReqSend);
  EXPECT_EQ(n1[0].a, 100u);
  EXPECT_EQ(n1[1].kind, EventKind::kAckRecv);
  EXPECT_EQ(rec.total_events(), 3u);
  EXPECT_EQ(rec.dropped_events(), 0u);
  const auto ids = rec.nodes();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], NodeId{1});
  EXPECT_EQ(ids[1], NodeId{2});
}

TEST(Recorder, RingWrapsKeepingMostRecentAndCountsDropped) {
  Recorder rec(RecorderConfig{8});
  for (std::int64_t i = 0; i < 20; ++i) {
    rec.record(sim::SimTime{i}, NodeId{1}, EventKind::kReqSend,
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.total_events(), 8u);
  EXPECT_EQ(rec.dropped_events(), 12u);
  const auto kept = collect_node(rec, NodeId{1});
  ASSERT_EQ(kept.size(), 8u);
  // The flight-recorder property: the LAST 8 events survive, oldest-first.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(kept[i].a, 12u + i);
    EXPECT_EQ(kept[i].at.ns, static_cast<std::int64_t>(12 + i));
  }
}

TEST(Recorder, MergedVisitIsGloballyTimeOrderedWithNodeTieBreak) {
  Recorder rec;
  rec.record(sim::SimTime{5}, NodeId{2}, EventKind::kReqRecv);
  rec.record(sim::SimTime{1}, NodeId{1}, EventKind::kReqSend);
  rec.record(sim::SimTime{5}, NodeId{1}, EventKind::kAckRecv);  // tie with n2@5
  rec.record(sim::SimTime{9}, NodeId{2}, EventKind::kAckSend);

  std::vector<Event> merged;
  rec.visit_merged([&](const Event& e) { merged.push_back(e); });
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].at.ns, merged[i].at.ns);
  }
  // Equal timestamps break toward the lower node id, deterministically.
  EXPECT_EQ(merged[1].node, NodeId{1});
  EXPECT_EQ(merged[2].node, NodeId{2});
}

TEST(Recorder, SpansFeedHistograms) {
  Recorder rec;
  rec.span(SpanKind::kRequestRtt, 1.0);
  rec.span(SpanKind::kRequestRtt, 3.0);
  rec.span(SpanKind::kLockAcquire, 7.0);
  EXPECT_EQ(rec.span_hist(SpanKind::kRequestRtt).count(), 2u);
  EXPECT_DOUBLE_EQ(rec.span_hist(SpanKind::kRequestRtt).max(), 3.0);
  EXPECT_EQ(rec.span_hist(SpanKind::kLockAcquire).count(), 1u);
  EXPECT_EQ(rec.span_hist(SpanKind::kOpLatency).count(), 0u);
}

TEST(Recorder, SeriesAppendByName) {
  Recorder rec;
  rec.sample("held_files", 0.25, 3.0);
  rec.sample("held_files", 0.50, 5.0);
  rec.sample("net_sent", 0.25, 10.0);
  ASSERT_EQ(rec.series().size(), 2u);
  const Series& s = rec.series()[0];
  EXPECT_EQ(s.name, "held_files");
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points[1].t_s, 0.50);
  EXPECT_DOUBLE_EQ(s.points[1].value, 5.0);
}

TEST(Recorder, RecordNowStampsBoundEngineTime) {
  sim::Engine eng;
  Recorder rec;
  rec.bind_engine(eng);
  eng.schedule_at(sim::SimTime{5000}, [&]() {
    rec.record_now(NodeId{3}, EventKind::kLockGrant, 42, 2);
  });
  eng.run_until(sim::SimTime{10000});
  const auto evs = collect_node(rec, NodeId{3});
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].at.ns, 5000);
  EXPECT_EQ(evs[0].a, 42u);
}

TEST(Recorder, SaveLoadRoundTripsEverything) {
  Recorder rec(RecorderConfig{8});
  for (std::int64_t i = 0; i < 12; ++i) {  // wraps: load must see normalized ring
    rec.record(sim::SimTime{i}, NodeId{1}, EventKind::kReqSend,
               static_cast<std::uint64_t>(i));
  }
  rec.record(sim::SimTime{3}, NodeId{7}, EventKind::kLeasePhase, 1, 2);
  rec.annotate(sim::SimTime{4}, NodeId{1}, "lease", "phase 3: quiesced");
  rec.sample("held_files", 0.25, 3.0);
  rec.span(SpanKind::kRequestRtt, 1.5);
  rec.span(SpanKind::kRequestRtt, 2.5);

  std::stringstream buf;
  rec.save(buf);

  Recorder back;
  ASSERT_TRUE(back.load(buf));
  EXPECT_EQ(back.total_events(), rec.total_events());
  EXPECT_EQ(back.dropped_events(), 4u);

  const auto orig = collect_node(rec, NodeId{1});
  const auto got = collect_node(back, NodeId{1});
  ASSERT_EQ(got.size(), orig.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at.ns, orig[i].at.ns);
    EXPECT_EQ(got[i].a, orig[i].a);
    EXPECT_EQ(got[i].kind, orig[i].kind);
  }

  ASSERT_EQ(back.annotations().size(), 1u);
  EXPECT_EQ(back.annotations()[0].detail, "phase 3: quiesced");
  ASSERT_EQ(back.series().size(), 1u);
  EXPECT_DOUBLE_EQ(back.series()[0].points[0].value, 3.0);
  EXPECT_EQ(back.span_hist(SpanKind::kRequestRtt).count(), 2u);
  EXPECT_DOUBLE_EQ(back.span_hist(SpanKind::kRequestRtt).quantile(1.0), 2.5);
}

TEST(Recorder, LoadRejectsForeignStream) {
  Recorder rec;
  std::stringstream buf("definitely not a trace file");
  EXPECT_FALSE(rec.load(buf));
  std::stringstream empty;
  EXPECT_FALSE(rec.load(empty));
}

TEST(Recorder, LoadRejectsTruncatedStream) {
  Recorder rec;
  rec.record(sim::SimTime{1}, NodeId{1}, EventKind::kReqSend);
  std::stringstream buf;
  rec.save(buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  Recorder back;
  EXPECT_FALSE(back.load(cut));
}

TEST(Recorder, VisitMergedAcrossInterleavesByTimeWithStableTieBreak) {
  // Per-shard recorders from a sharded run: the static merge must produce one
  // time-ordered stream, breaking ties by (node, recorder index) so the result
  // is independent of which shard recorded what first.
  Recorder shard0;
  Recorder shard1;
  shard0.record(sim::SimTime{30}, NodeId{1}, EventKind::kReqSend, 100);
  shard0.record(sim::SimTime{10}, NodeId{2}, EventKind::kReqSend, 101);
  shard1.record(sim::SimTime{20}, NodeId{3}, EventKind::kReqSend, 102);
  shard1.record(sim::SimTime{30}, NodeId{3}, EventKind::kReqSend, 103);

  std::vector<std::pair<std::int64_t, std::uint64_t>> got;
  Recorder::visit_merged_across({&shard0, &shard1}, [&](const Event& e) {
    got.emplace_back(e.at.ns, e.a);
  });
  const std::vector<std::pair<std::int64_t, std::uint64_t>> want = {
      {10, 101}, {20, 102}, {30, 100}, {30, 103}};
  EXPECT_EQ(got, want);

  // Null entries and empty recorders are skipped, not dereferenced.
  Recorder empty;
  std::size_t n = 0;
  Recorder::visit_merged_across({nullptr, &empty, &shard1}, [&](const Event&) { ++n; });
  EXPECT_EQ(n, 2u);
}

// Per-shard samplers each write to their shard's recorder; on save the shards
// merge into one. The merge must be time-sorted per series, stable on ties
// (destination points first), and must create series the destination lacks.
TEST(Recorder, AbsorbSeriesFromMergesTimeSorted) {
  Recorder dst;
  Recorder src;
  dst.sample("shared", 1.0, 10.0);
  dst.sample("shared", 3.0, 30.0);
  src.sample("shared", 2.0, 20.0);
  src.sample("shared", 3.0, 31.0);  // tie at t=3: dst's point must precede
  src.sample("only_src", 0.5, 5.0);

  dst.absorb_series_from(src);

  const Series* shared = nullptr;
  const Series* only = nullptr;
  for (const Series& s : dst.series()) {
    if (s.name == "shared") shared = &s;
    if (s.name == "only_src") only = &s;
  }
  ASSERT_NE(shared, nullptr);
  ASSERT_NE(only, nullptr);
  ASSERT_EQ(shared->points.size(), 4u);
  EXPECT_DOUBLE_EQ(shared->points[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(shared->points[1].t_s, 2.0);
  EXPECT_DOUBLE_EQ(shared->points[2].t_s, 3.0);
  EXPECT_DOUBLE_EQ(shared->points[2].value, 30.0);  // dst first on the tie
  EXPECT_DOUBLE_EQ(shared->points[3].value, 31.0);
  ASSERT_EQ(only->points.size(), 1u);
  EXPECT_DOUBLE_EQ(only->points[0].value, 5.0);

  // Source is untouched.
  EXPECT_EQ(src.series().size(), 2u);
}

TEST(Recorder, ClearEmptiesEverything) {
  Recorder rec;
  rec.record(sim::SimTime{1}, NodeId{1}, EventKind::kReqSend);
  rec.annotate(sim::SimTime{1}, NodeId{1}, "a", "b");
  rec.span(SpanKind::kRequestRtt, 1.0);
  rec.sample("x", 0.0, 1.0);
  rec.clear();
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_TRUE(rec.annotations().empty());
  EXPECT_TRUE(rec.series().empty());
  EXPECT_EQ(rec.span_hist(SpanKind::kRequestRtt).count(), 0u);
}

}  // namespace
}  // namespace stank::obs
