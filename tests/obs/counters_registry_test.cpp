// obs::Counters: registration/freeze lifecycle, the shard-banked data path,
// merge semantics (kSum vs kMax), merge associativity across arbitrary shard
// groupings (what makes snapshot-and-merge safe regardless of how banks are
// folded), log2 histogram bucketing/quantiles, and the series-emission naming
// contract the Chrome exporter's counter tracks depend on.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace stank::obs {
namespace {

TEST(CountersRegistry, RegisterFreezeIncrementReadback) {
  Counters c;
  const Counters::Id a = c.add("a");
  const Counters::Id hw = c.add("hw", Counters::Merge::kMax);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(hw.valid());
  EXPECT_FALSE(c.frozen());
  c.freeze(4);
  EXPECT_TRUE(c.frozen());
  EXPECT_EQ(c.shard_count(), 4u);

  c.add_to(0, a, 3);
  c.add_to(2, a, 5);
  c.add_to(2, a);  // default +1
  c.gauge_max(1, hw, 7);
  c.gauge_max(1, hw, 4);  // lower value must not regress the gauge
  c.gauge_max(3, hw, 9);

  EXPECT_EQ(c.value(0, a), 3u);
  EXPECT_EQ(c.value(1, a), 0u);
  EXPECT_EQ(c.value(2, a), 6u);
  EXPECT_EQ(c.merged(a), 9u);   // kSum
  EXPECT_EQ(c.value(1, hw), 7u);
  EXPECT_EQ(c.merged(hw), 9u);  // kMax

  c.reset();
  EXPECT_EQ(c.merged(a), 0u);
  EXPECT_EQ(c.merged(hw), 0u);
}

// The fleet-wide value must not depend on how per-shard banks are grouped
// when folding: merge2(merge2(s0,s1), merge2(s2,s3)) == fold left-to-right.
// This is what lets the engine fold worker-local partials in any join order.
TEST(CountersRegistry, MergeAssociativityAcrossShardGroupings) {
  for (unsigned shards : {2u, 3u, 4u, 8u}) {
    Counters c;
    const Counters::Id sum = c.add("sum");
    const Counters::Id mx = c.add("mx", Counters::Merge::kMax);
    c.freeze(shards);
    for (unsigned s = 0; s < shards; ++s) {
      c.add_to(s, sum, 10 * (s + 1) + (s % 3));
      c.gauge_max(s, mx, (s * 37) % 101);
    }

    for (const auto [m, id] :
         {std::pair{Counters::Merge::kSum, sum}, std::pair{Counters::Merge::kMax, mx}}) {
      // Left fold.
      std::uint64_t left = c.value(0, id);
      for (unsigned s = 1; s < shards; ++s) left = Counters::merge2(m, left, c.value(s, id));
      // Pairwise tree fold.
      std::vector<std::uint64_t> level;
      for (unsigned s = 0; s < shards; ++s) level.push_back(c.value(s, id));
      while (level.size() > 1) {
        std::vector<std::uint64_t> next;
        for (std::size_t i = 0; i < level.size(); i += 2) {
          next.push_back(i + 1 < level.size() ? Counters::merge2(m, level[i], level[i + 1])
                                              : level[i]);
        }
        level = std::move(next);
      }
      EXPECT_EQ(left, level[0]) << "shards=" << shards;
      EXPECT_EQ(c.merged(id), left) << "shards=" << shards;
    }
  }
}

TEST(CountersRegistry, HistogramBucketingAndQuantiles) {
  EXPECT_EQ(Counters::bucket_of(0), 0u);
  EXPECT_EQ(Counters::bucket_of(1), 1u);  // [1,2)
  EXPECT_EQ(Counters::bucket_of(2), 2u);  // [2,4)
  EXPECT_EQ(Counters::bucket_of(3), 2u);
  EXPECT_EQ(Counters::bucket_of(4), 3u);
  EXPECT_EQ(Counters::bucket_of(UINT64_MAX), Counters::kHistBuckets - 1);
  EXPECT_EQ(Counters::bucket_mid(0), 0u);
  EXPECT_EQ(Counters::bucket_mid(3), 6u);  // [4,8) -> 6

  Counters c;
  const Counters::HistId h = c.add_hist("wait");
  c.freeze(2);
  // 90 small values on shard 0, 10 large on shard 1: p50 lands in the small
  // bucket, p99 in the large one, and counts merge across shards.
  for (int i = 0; i < 90; ++i) c.record_hist(0, h, 100);    // bucket 7: [64,128)
  for (int i = 0; i < 10; ++i) c.record_hist(1, h, 5000);   // bucket 13: [4096,8192)
  EXPECT_EQ(c.hist_count(h), 100u);
  EXPECT_EQ(c.hist_quantile(h, 0.50), Counters::bucket_mid(7));
  EXPECT_EQ(c.hist_quantile(h, 0.99), Counters::bucket_mid(13));
  EXPECT_EQ(c.hist_quantile(h, 0.0), Counters::bucket_mid(7));

  // Bulk fold (the barrier WaitStats path) adds into the same buckets.
  c.add_hist_count(0, h, 13, 5);
  EXPECT_EQ(c.hist_count(h), 105u);
}

TEST(CountersRegistry, EmitSeriesNamingContract) {
  Counters c;
  const Counters::Id ev = c.add("engine.events");
  const Counters::HistId h = c.add_hist("barrier.wait_ns");
  c.freeze(2);
  c.add_to(0, ev, 4);
  c.add_to(1, ev, 6);
  c.record_hist(0, h, 100);

  Recorder rec;
  c.emit_series(rec, 1.5);

  auto find = [&rec](const std::string& name) -> const Series* {
    for (const Series& s : rec.series()) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const Series* s0 = find("ctr/engine.events/s0");
  const Series* s1 = find("ctr/engine.events/s1");
  const Series* merged = find("ctr/engine.events");
  const Series* p50 = find("ctr/barrier.wait_ns/p50");
  const Series* p99 = find("ctr/barrier.wait_ns/p99");
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(merged, nullptr);
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  ASSERT_EQ(s0->points.size(), 1u);
  EXPECT_DOUBLE_EQ(s0->points[0].t_s, 1.5);
  EXPECT_DOUBLE_EQ(s0->points[0].value, 4.0);
  EXPECT_DOUBLE_EQ(s1->points[0].value, 6.0);
  EXPECT_DOUBLE_EQ(merged->points[0].value, 10.0);
}

TEST(CountersRegistry, FindByName) {
  Counters c;
  const Counters::Id a = c.add("net.mailbox_hw", Counters::Merge::kMax);
  const Counters::HistId h = c.add_hist("barrier.wait_ns");
  c.freeze(1);
  EXPECT_EQ(c.find("net.mailbox_hw").slot, a.slot);
  EXPECT_FALSE(c.find("nope").valid());
  EXPECT_FALSE(c.find("barrier.wait_ns").valid());  // hist is not a scalar
  EXPECT_EQ(c.find_hist("barrier.wait_ns").base, h.base);
  EXPECT_FALSE(c.find_hist("net.mailbox_hw").valid());
}

// Banks must start on their own cache line so one shard's increments never
// ping-pong another shard's line.
TEST(CountersRegistry, BankAlignment) {
  Counters c;
  for (int i = 0; i < 11; ++i) c.add("c" + std::to_string(i));
  c.freeze(8);
  for (unsigned s = 0; s < 8; ++s) {
    c.add_to(s, c.find("c0"), s + 1);
  }
  // Distinct banks: writes landed where reads look.
  for (unsigned s = 0; s < 8; ++s) {
    EXPECT_EQ(c.value(s, c.find("c0")), s + 1);
  }
  EXPECT_EQ(c.merged(c.find("c0")), 36u);
}

}  // namespace
}  // namespace stank::obs
