#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/client_lease_agent.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using obs::Event;
using obs::EventKind;
using obs::Recorder;

// Crude structural JSON check: brackets/braces balance and never go
// negative. Catches broken separators and unterminated objects without a
// JSON parser dependency.
bool balanced_json(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (esc) {
      esc = false;
      continue;
    }
    if (in_str) {
      if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_str;
}

TEST(ChromeTrace, FoldsPhaseEventsIntoSlices) {
  Recorder rec;
  // no-lease -> active at 1us, active -> renewal at 3us, plus an instant.
  rec.record(sim::SimTime{1000}, NodeId{7}, EventKind::kLeasePhase, 0, 1);
  rec.record(sim::SimTime{2000}, NodeId{7}, EventKind::kReqSend, 11);
  rec.record(sim::SimTime{3000}, NodeId{7}, EventKind::kLeasePhase, 1, 2);

  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();

  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Process metadata for the node.
  EXPECT_NE(json.find(R"("name":"n7")"), std::string::npos);
  // A complete "active" residency slice: starts at 1us, 2us long.
  EXPECT_NE(json.find(R"("name":"active","cat":"lease-phase","ph":"X","ts":1,"dur":2)"),
            std::string::npos);
  // The renewal slice is open at the end of the trace; it closes at the
  // node's last event rather than vanishing.
  EXPECT_NE(json.find(R"("name":"renewal","cat":"lease-phase")"), std::string::npos);
  // The instant event rides on the events track.
  EXPECT_NE(json.find(R"("name":"req-send")"), std::string::npos);
}

TEST(ChromeTrace, EmitsAnnotationsAndCounters) {
  Recorder rec;
  rec.record(sim::SimTime{500}, NodeId{3}, EventKind::kRegister, 1);
  rec.annotate(sim::SimTime{1000}, NodeId{3}, "lease", "phase 3: \"quiesced\"\n");
  rec.sample("held_files", 0.5, 4.0);

  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();

  EXPECT_TRUE(balanced_json(json)) << json;
  // Annotation with escaped quote and newline.
  EXPECT_NE(json.find(R"(phase 3: \"quiesced\"\n)"), std::string::npos);
  // Counter track under the synthetic metrics process.
  EXPECT_NE(json.find(R"("name":"metrics")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find("held_files"), std::string::npos);
}

TEST(Timeline, RendersMergedAndFiltered) {
  Recorder rec;
  rec.record(sim::SimTime{1000}, NodeId{1}, EventKind::kReqSend, 5);
  rec.record(sim::SimTime{2000}, NodeId{2}, EventKind::kReqRecv, 5, 1);

  std::ostringstream all;
  obs::write_timeline(rec, all);
  EXPECT_NE(all.str().find("req-send"), std::string::npos);
  EXPECT_NE(all.str().find("req-recv"), std::string::npos);

  std::ostringstream one;
  obs::write_timeline(rec, one, /*filter_node=*/true, NodeId{2});
  EXPECT_EQ(one.str().find("req-send"), std::string::npos);
  EXPECT_NE(one.str().find("req-recv"), std::string::npos);
}

TEST(DetailString, DecodesPayloadsPerKind) {
  Event e;
  e.kind = EventKind::kLeasePhase;
  e.a = 1;
  e.b = 3;
  EXPECT_EQ(obs::detail_string(e), "active -> suspect");
  e.kind = EventKind::kLockGrant;
  e.a = 9;
  e.b = 2;
  EXPECT_EQ(obs::detail_string(e), "file=f9 mode=exclusive");
  e.kind = EventKind::kNetDrop;
  e.a = 1;
  e.b = static_cast<std::uint64_t>(obs::DropCause::kBurst);
  EXPECT_EQ(obs::detail_string(e), "to=n1 cause=burst");
}

// The acceptance scenario: a Figure-4 ride-down (isolated client walks
// active -> renewal -> suspect -> flush -> expired). The typed recorder, the
// legacy TraceLog strings, and the Perfetto export must tell the SAME story.
class Fig4Export : public ::testing::Test {
 protected:
  static workload::Scenario& scenario() {
    static workload::Scenario* sc = []() {
      workload::ScenarioConfig cfg;
      cfg.workload.num_clients = 1;
      cfg.workload.num_files = 1;
      cfg.workload.file_blocks = 4;
      cfg.workload.run_seconds = 40.0;
      cfg.lease.tau = sim::local_seconds(10);
      cfg.enable_trace = true;
      auto* s = new workload::Scenario(std::move(cfg));
      s->setup();
      s->run_until_s(5.0);
      s->control_net().reachability().sever_pair(s->client_node(0), s->server_node());
      s->run_until_s(40.0);
      return s;
    }();
    return *sc;
  }
};

TEST_F(Fig4Export, TypedPhaseEventsMatchTraceLogOrdering) {
  auto& sc = scenario();
  const NodeId victim = sc.client_node(0);

  // Typed story: the kLeasePhase transitions recorded on the victim.
  std::vector<std::pair<std::int64_t, std::uint64_t>> typed;  // (t, to-phase)
  sc.recorder().visit_node(victim, [&](const Event& e) {
    if (e.kind == EventKind::kLeasePhase) typed.emplace_back(e.at.ns, e.b);
  });
  ASSERT_FALSE(typed.empty());

  // It must contain suspect -> flush -> expired, in order (the ride-down).
  auto find_phase = [&](core::LeasePhase p) {
    return std::find_if(typed.begin(), typed.end(), [&](const auto& t) {
      return t.second == static_cast<std::uint64_t>(p);
    });
  };
  const auto suspect = find_phase(core::LeasePhase::kSuspect);
  const auto flush = find_phase(core::LeasePhase::kFlush);
  const auto expired = find_phase(core::LeasePhase::kExpired);
  ASSERT_NE(suspect, typed.end());
  ASSERT_NE(flush, typed.end());
  ASSERT_NE(expired, typed.end());
  EXPECT_LT(suspect->first, flush->first);
  EXPECT_LT(flush->first, expired->first);

  // String story: the legacy TraceLog annotations the integration tests
  // assert on. Each marker must carry the SAME timestamp as its typed twin.
  const auto* quiesced = sc.trace().find("lease", "quiesced");
  const auto* flushing = sc.trace().find("lease", "flushing dirty data");
  const auto* lapse = sc.trace().find("lease", "lease expired");
  ASSERT_NE(quiesced, nullptr);
  ASSERT_NE(flushing, nullptr);
  ASSERT_NE(lapse, nullptr);
  EXPECT_EQ(quiesced->at.ns, suspect->first);
  EXPECT_EQ(flushing->at.ns, flush->first);
  EXPECT_EQ(lapse->at.ns, expired->first);
}

TEST_F(Fig4Export, ChromeExportCarriesTheRideDown) {
  auto& sc = scenario();
  std::ostringstream os;
  obs::write_chrome_trace(sc.recorder(), os);
  const std::string json = os.str();

  EXPECT_TRUE(balanced_json(json));
  const std::string victim = "n" + std::to_string(sc.client_node(0).value());
  EXPECT_NE(json.find("\"name\":\"" + victim + "\""), std::string::npos);
  // Residency slices for every ride-down phase.
  for (const char* phase : {"active", "suspect", "flush", "expired"}) {
    EXPECT_NE(json.find(std::string(R"("name":")") + phase + R"(","cat":"lease-phase")"),
              std::string::npos)
        << "missing slice for phase " << phase;
  }
  // The sampler's series became counter tracks.
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find("lease_state_bytes"), std::string::npos);
}

TEST_F(Fig4Export, SpansMeasuredTheProtocol) {
  auto& sc = scenario();
  const Recorder& rec = sc.recorder();
  // The client exchanged messages before the partition: RTT spans exist and
  // are positive.
  const auto& rtt = rec.span_hist(obs::SpanKind::kRequestRtt);
  ASSERT_GT(rtt.count(), 0u);
  EXPECT_GT(rtt.min(), 0.0);
  // Phase residency spans: the active phase was lived in at least once.
  EXPECT_GT(rec.span_hist(obs::SpanKind::kPhaseActive).count(), 0u);
  // And the ride-down closed suspect + flush residencies.
  EXPECT_GT(rec.span_hist(obs::SpanKind::kPhaseSuspect).count(), 0u);
  EXPECT_GT(rec.span_hist(obs::SpanKind::kPhaseFlush).count(), 0u);
}

}  // namespace
}  // namespace stank
