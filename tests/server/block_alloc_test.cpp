#include "server/block_alloc.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace stank::server {
namespace {

TEST(BlockAllocator, SimpleAllocate) {
  BlockAllocator a(DiskId{1}, 100);
  auto r = a.allocate(10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].start, 0u);
  EXPECT_EQ(r.value()[0].count, 10u);
  EXPECT_EQ(a.free_blocks(), 90u);
  EXPECT_TRUE(a.invariants_hold());
}

TEST(BlockAllocator, ZeroAllocationIsEmpty) {
  BlockAllocator a(DiskId{1}, 100);
  auto r = a.allocate(0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  EXPECT_EQ(a.free_blocks(), 100u);
}

TEST(BlockAllocator, ExhaustionReturnsNoSpaceAtomically) {
  BlockAllocator a(DiskId{1}, 100);
  ASSERT_TRUE(a.allocate(90).ok());
  auto r = a.allocate(11);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), ErrorCode::kNoSpace);
  EXPECT_EQ(a.free_blocks(), 10u);  // nothing partially taken
  EXPECT_TRUE(a.allocate(10).ok());
  EXPECT_EQ(a.free_blocks(), 0u);
}

TEST(BlockAllocator, ReleaseCoalescesAdjacentRuns) {
  BlockAllocator a(DiskId{1}, 100);
  auto r1 = a.allocate(10);
  auto r2 = a.allocate(10);
  auto r3 = a.allocate(10);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  a.release(r1.value());
  a.release(r3.value());
  // r3 [20,30) coalesces with the tail [30,100): runs are [0,10) and [20,100).
  EXPECT_EQ(a.free_runs(), 2u);
  a.release(r2.value());
  EXPECT_EQ(a.free_runs(), 1u);  // fully coalesced back to one run
  EXPECT_EQ(a.free_blocks(), 100u);
  EXPECT_TRUE(a.invariants_hold());
}

TEST(BlockAllocator, FragmentedAllocationSplitsAcrossRuns) {
  BlockAllocator a(DiskId{1}, 30);
  auto r1 = a.allocate(10);  // [0,10)
  auto r2 = a.allocate(10);  // [10,20)
  ASSERT_TRUE(a.allocate(10).ok());  // [20,30)
  a.release(r1.value());
  a.release(r2.value());
  // Free: [0,20). Wait—those coalesce. Make real fragmentation:
  BlockAllocator b(DiskId{1}, 30);
  auto x1 = b.allocate(10);
  auto x2 = b.allocate(10);
  auto x3 = b.allocate(10);
  ASSERT_TRUE(x1.ok() && x2.ok() && x3.ok());
  b.release(x1.value());
  b.release(x3.value());  // free: [0,10) and [20,30), hole at [10,20)
  auto big = b.allocate(15);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().size(), 2u);
  std::uint64_t total = 0;
  for (const auto& e : big.value()) total += e.count;
  EXPECT_EQ(total, 15u);
  EXPECT_TRUE(b.invariants_hold());
}

TEST(BlockAllocator, PartialExtentRelease) {
  BlockAllocator a(DiskId{1}, 100);
  auto r = a.allocate(20);
  ASSERT_TRUE(r.ok());
  // Release only the tail half.
  protocol::Extent tail{DiskId{1}, 10, 10};
  a.release({tail});
  EXPECT_EQ(a.free_blocks(), 90u);
  EXPECT_TRUE(a.invariants_hold());
}

TEST(BlockAllocatorDeathTest, DoubleFreeDetected) {
  BlockAllocator a(DiskId{1}, 100);
  auto r = a.allocate(10);
  ASSERT_TRUE(r.ok());
  a.release(r.value());
  EXPECT_DEATH(a.release(r.value()), "double free");
}

TEST(BlockAllocatorDeathTest, ForeignDiskExtentRejected) {
  BlockAllocator a(DiskId{1}, 100);
  EXPECT_DEATH(a.release({protocol::Extent{DiskId{2}, 0, 5}}), "different disk");
}

TEST(BlockAllocator, CheckerboardReleaseCoalescesBothNeighbours) {
  // Carve the whole disk into 64 one-block extents, free the even-indexed
  // ones (maximal fragmentation: 32 isolated runs), then free the odd ones.
  // Each odd release is flanked by free runs on BOTH sides, so it must merge
  // left and right in a single call; any missed merge leaves >1 run behind.
  constexpr std::uint64_t kBlocks = 64;
  BlockAllocator a(DiskId{1}, kBlocks);
  std::vector<std::vector<protocol::Extent>> singles;
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    auto r = a.allocate(1);
    ASSERT_TRUE(r.ok());
    singles.push_back(std::move(r).value());
  }
  EXPECT_EQ(a.free_blocks(), 0u);
  for (std::uint64_t i = 0; i < kBlocks; i += 2) a.release(singles[i]);
  EXPECT_EQ(a.free_runs(), kBlocks / 2);
  ASSERT_TRUE(a.invariants_hold());
  for (std::uint64_t i = 1; i < kBlocks; i += 2) {
    a.release(singles[i]);
    ASSERT_TRUE(a.invariants_hold()) << "after releasing block " << i;
  }
  EXPECT_EQ(a.free_blocks(), kBlocks);
  EXPECT_EQ(a.free_runs(), 1u);  // one fully coalesced run, no fragmentation
}

TEST(BlockAllocator, RandomAllocFreeKeepsInvariants) {
  sim::Rng rng(77);
  BlockAllocator a(DiskId{1}, 4096);
  std::vector<std::vector<protocol::Extent>> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      auto r = a.allocate(static_cast<std::uint64_t>(rng.uniform_int(1, 64)));
      if (r.ok()) {
        live.push_back(std::move(r).value());
      }
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      a.release(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_TRUE(a.invariants_hold()) << "at step " << step;
  }
  for (const auto& e : live) a.release(e);
  EXPECT_EQ(a.free_blocks(), 4096u);
  EXPECT_EQ(a.free_runs(), 1u);
}

}  // namespace
}  // namespace stank::server
