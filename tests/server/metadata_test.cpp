#include "server/metadata.hpp"

#include <gtest/gtest.h>

namespace stank::server {
namespace {

TEST(Metadata, CreateAndLookup) {
  Metadata md;
  auto r = md.open("/a/b", true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(md.lookup("/a/b"), r.value());
  EXPECT_EQ(md.file_count(), 1u);
}

TEST(Metadata, OpenWithoutCreateFailsForMissing) {
  Metadata md;
  auto r = md.open("/missing", false);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), ErrorCode::kNotFound);
}

TEST(Metadata, OpenIsIdempotentForExisting) {
  Metadata md;
  auto a = md.open("/f", true);
  auto b = md.open("/f", true);
  auto c = md.open("/f", false);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());
  EXPECT_EQ(md.file_count(), 1u);
}

TEST(Metadata, DistinctPathsDistinctIds) {
  Metadata md;
  auto a = md.open("/x", true);
  auto b = md.open("/y", true);
  EXPECT_NE(a.value(), b.value());
}

TEST(Metadata, FindReturnsInode) {
  Metadata md;
  auto id = md.open("/f", true).value();
  Inode* inode = md.find(id);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->id, id);
  EXPECT_EQ(inode->attr.size, 0u);
  EXPECT_EQ(md.find(FileId{9999}), nullptr);
}

TEST(Metadata, RemoveDropsFile) {
  Metadata md;
  auto id = md.open("/f", true).value();
  EXPECT_TRUE(md.remove("/f").is_ok());
  EXPECT_EQ(md.find(id), nullptr);
  EXPECT_FALSE(md.lookup("/f").has_value());
  EXPECT_EQ(md.remove("/f").error(), ErrorCode::kNotFound);
}

TEST(Metadata, TouchBumpsVersionAndMtime) {
  Metadata md;
  auto id = md.open("/f", true).value();
  Inode* inode = md.find(id);
  const auto v0 = inode->attr.meta_version;
  md.touch(*inode, 12345);
  EXPECT_EQ(inode->attr.meta_version, v0 + 1);
  EXPECT_EQ(inode->attr.mtime_ns, 12345u);
}

TEST(Metadata, AllocatedBlocksSumsExtents) {
  Inode inode;
  EXPECT_EQ(inode.allocated_blocks(), 0u);
  inode.extents.push_back(protocol::Extent{DiskId{1}, 0, 10});
  inode.extents.push_back(protocol::Extent{DiskId{1}, 50, 6});
  EXPECT_EQ(inode.allocated_blocks(), 16u);
}

}  // namespace
}  // namespace stank::server
