#include "server/server.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "protocol/codec.hpp"

namespace stank::server {
namespace {

using protocol::Frame;
using protocol::FrameKind;
using protocol::LockMode;

// Drives the real Server through the datagram layer with a scripted client.
struct Fixture {
  sim::Engine engine;
  net::ControlNet net;
  storage::SanFabric san;
  std::unique_ptr<Server> server;
  std::vector<Frame> rx;  // everything the fake client received
  std::uint64_t next_msg{1};
  std::uint32_t epoch{0};
  bool auto_ack_server_msgs{true};

  explicit Fixture(ServerConfig cfg = make_cfg()) : net(engine, sim::Rng(1), {}),
                                                    san(engine, sim::Rng(2), {}) {
    san.add_disk(DiskId{1}, 1024, 64);
    server = std::make_unique<Server>(engine, net, san, sim::LocalClock(1.0), cfg);
    server->start();
    attach_client(NodeId{100});
  }

  static ServerConfig make_cfg() {
    ServerConfig cfg;
    cfg.id = NodeId{1};
    cfg.lease.tau = sim::local_seconds(5);
    cfg.lease.epsilon = 0.01;
    cfg.block_size = 64;
    cfg.data_disks = {DiskId{1}};
    cfg.demand_timeout = sim::local_seconds(3);
    return cfg;
  }

  void attach_client(NodeId id) {
    net.attach(id, [this, id](NodeId from, const Bytes& dg) {
      auto f = protocol::decode(dg);
      ASSERT_TRUE(f.has_value());
      rx.push_back(*f);
      if (f->kind == FrameKind::kServerMsg && auto_ack_server_msgs) {
        Frame ack;
        ack.kind = FrameKind::kClientAck;
        ack.sender = id;
        ack.msg_id = f->msg_id;
        ack.epoch = f->epoch;
        net.send(id, from, protocol::encode(ack));
      }
    });
  }

  // Sends a request and runs the sim until its reply arrives (or 2s pass).
  std::optional<Frame> call(protocol::RequestBody body, NodeId from = NodeId{100},
                            std::optional<std::uint32_t> use_epoch = std::nullopt) {
    Frame f;
    f.kind = FrameKind::kRequest;
    f.sender = from;
    f.msg_id = MsgId{next_msg++};
    f.epoch = use_epoch.value_or(epoch);
    f.body = std::move(body);
    const MsgId id = f.msg_id;
    net.send(from, NodeId{1}, protocol::encode(f));
    const auto deadline = engine.now() + sim::seconds(2);
    while (engine.now() < deadline) {
      for (const auto& r : rx) {
        if ((r.kind == FrameKind::kAck || r.kind == FrameKind::kNack) && r.msg_id == id) {
          return r;
        }
      }
      if (!engine.step()) break;
    }
    for (const auto& r : rx) {
      if ((r.kind == FrameKind::kAck || r.kind == FrameKind::kNack) && r.msg_id == id) {
        return r;
      }
    }
    return std::nullopt;
  }

  void do_register(NodeId from = NodeId{100}) {
    auto r = call(protocol::RegisterReq{}, from);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->kind, FrameKind::kAck);
    epoch = std::get<protocol::RegisterReply>(std::get<protocol::ReplyBody>(r->body)).epoch;
  }

  void run_for(double s) { engine.run_until(engine.now() + sim::seconds_d(s)); }
};

TEST(Server, RejectsUnregisteredClients) {
  Fixture f;
  auto r = f.call(protocol::KeepAliveReq{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kNack);
}

TEST(Server, RegisterAssignsEpoch) {
  Fixture f;
  f.do_register();
  EXPECT_EQ(f.epoch, 1u);
  EXPECT_TRUE(f.server->session_valid(NodeId{100}));
  auto r = f.call(protocol::KeepAliveReq{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kAck);
}

TEST(Server, StaleEpochNacked) {
  Fixture f;
  f.do_register();
  f.do_register();  // epoch 2
  auto r = f.call(protocol::KeepAliveReq{}, NodeId{100}, 1u);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kNack);
}

// A byzantine client replaying its own recorded datagrams from an earlier
// session must bounce off the epoch gate even when every OTHER credential in
// the frame (generation, grant cookie) is genuine. Without this, a release
// captured in session 1 could tear down state re-established in session 2.
TEST(Server, ReplayedOldSessionReleaseRejected) {
  Fixture f;
  f.do_register();
  const auto old_epoch = f.epoch;
  auto file = f.server->preallocate("/f", 64).value();
  auto r = f.call(protocol::LockReq{file, LockMode::kExclusive});
  const auto& rep = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r->body));
  ASSERT_TRUE(rep.granted);

  f.do_register();  // session 2; the lock itself survives re-registration
  ASSERT_NE(f.epoch, old_epoch);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);

  // Replay of the genuine release datagram, stamped with the dead epoch.
  auto replayed =
      f.call(protocol::UnlockReq{file, LockMode::kNone, rep.gen, rep.cookie}, NodeId{100},
             old_epoch);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->kind, FrameKind::kNack);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);

  // The same body under the live epoch is honored.
  f.call(protocol::UnlockReq{file, LockMode::kNone, rep.gen, rep.cookie});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kNone);
}

TEST(Server, OpenCreatesFile) {
  Fixture f;
  f.do_register();
  auto r = f.call(protocol::OpenReq{"/new", true});
  ASSERT_TRUE(r.has_value());
  const auto& rep = std::get<protocol::OpenReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.attr.size, 0u);
  auto r2 = f.call(protocol::OpenReq{"/new", false});
  const auto& rep2 = std::get<protocol::OpenReply>(std::get<protocol::ReplyBody>(r2->body));
  EXPECT_EQ(rep2.file, rep.file);
}

TEST(Server, OpenMissingWithoutCreateErrs) {
  Fixture f;
  f.do_register();
  auto r = f.call(protocol::OpenReq{"/nope", false});
  const auto& err = std::get<protocol::ErrReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(err.code, ErrorCode::kNotFound);
}

TEST(Server, SetSizeAllocatesExtents) {
  Fixture f;
  f.do_register();
  auto open = f.call(protocol::OpenReq{"/f", true});
  const auto file =
      std::get<protocol::OpenReply>(std::get<protocol::ReplyBody>(open->body)).file;
  auto r = f.call(protocol::SetSizeReq{file, 640, false});  // 10 blocks of 64
  const auto& rep = std::get<protocol::AttrReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.attr.size, 640u);
  std::uint64_t blocks = 0;
  for (const auto& e : rep.extents) blocks += e.count;
  EXPECT_EQ(blocks, 10u);
}

TEST(Server, GrowOnlySetSizeIgnoresShrink) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 640).value();
  auto r = f.call(protocol::SetSizeReq{file, 64, false});
  const auto& rep = std::get<protocol::AttrReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.attr.size, 640u);  // unchanged
}

TEST(Server, TruncateShrinksAndFreesBlocks) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 640).value();
  auto r = f.call(protocol::SetSizeReq{file, 64, true});
  const auto& rep = std::get<protocol::AttrReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.attr.size, 64u);
  std::uint64_t blocks = 0;
  for (const auto& e : rep.extents) blocks += e.count;
  EXPECT_EQ(blocks, 1u);
}

TEST(Server, SetSizeBeyondDiskErrsNoSpace) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 0).value();
  auto r = f.call(protocol::SetSizeReq{file, 1024 * 64 + 1, false});
  const auto& err = std::get<protocol::ErrReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(err.code, ErrorCode::kNoSpace);
}

TEST(Server, LockGrantImmediate) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  auto r = f.call(protocol::LockReq{file, LockMode::kExclusive});
  const auto& rep = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_TRUE(rep.granted);
  EXPECT_EQ(rep.mode, LockMode::kExclusive);
  EXPECT_GT(rep.gen, 0u);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);
}

TEST(Server, ConflictingLockQueuedAndDemandIssued) {
  Fixture f;
  f.attach_client(NodeId{101});
  f.do_register(NodeId{100});
  const auto epoch100 = f.epoch;
  f.do_register(NodeId{101});
  const auto epoch101 = f.epoch;

  auto file = f.server->preallocate("/f", 64).value();
  f.epoch = epoch100;
  auto r1 = f.call(protocol::LockReq{file, LockMode::kExclusive}, NodeId{100});
  const auto& rep1 = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r1->body));
  ASSERT_TRUE(rep1.granted);
  const auto cookie100 = rep1.cookie;

  f.epoch = epoch101;
  auto r2 = f.call(protocol::LockReq{file, LockMode::kExclusive}, NodeId{101});
  EXPECT_FALSE(std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r2->body)).granted);
  f.run_for(0.01);

  // A demand went to client 100.
  bool saw_demand = false;
  std::uint32_t demand_gen = 0;
  for (const auto& fr : f.rx) {
    if (fr.kind == FrameKind::kServerMsg) {
      if (const auto* d =
              std::get_if<protocol::LockDemand>(&std::get<protocol::ServerBody>(fr.body))) {
        saw_demand = true;
        demand_gen = d->gen;
        EXPECT_EQ(d->max_mode, LockMode::kNone);
      }
    }
  }
  ASSERT_TRUE(saw_demand);

  // 100 complies; 101 receives the grant.
  f.epoch = epoch100;
  f.call(protocol::DemandDoneReq{file, LockMode::kNone, demand_gen, cookie100}, NodeId{100});
  f.run_for(0.01);
  bool saw_grant = false;
  for (const auto& fr : f.rx) {
    if (fr.kind == FrameKind::kServerMsg) {
      if (const auto* g =
              std::get_if<protocol::LockGrant>(&std::get<protocol::ServerBody>(fr.body))) {
        saw_grant = true;
        EXPECT_EQ(g->mode, LockMode::kExclusive);
      }
    }
  }
  EXPECT_TRUE(saw_grant);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{101}, file), LockMode::kExclusive);
}

TEST(Server, StaleGenDemandDoneIgnored) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  auto r = f.call(protocol::LockReq{file, LockMode::kExclusive});
  const auto gen = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r->body)).gen;
  // Compliance with a bogus (older) generation must not release the lock.
  f.call(protocol::DemandDoneReq{file, LockMode::kNone, gen - 1});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);
}

TEST(Server, StaleGenUnlockIgnored) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  auto r = f.call(protocol::LockReq{file, LockMode::kExclusive});
  const auto& rep = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r->body));
  const auto gen = rep.gen;
  f.call(protocol::UnlockReq{file, LockMode::kNone, gen + 5, rep.cookie});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);
  f.call(protocol::UnlockReq{file, LockMode::kNone, gen, rep.cookie});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kNone);
}

// Regression for the forged-release hole found by `fuzz_safety --byzantine`
// (forge-lock-claims): lock generations are small counters an attacker can
// guess, so a gen match alone must not authorize a release. An UnlockReq or
// DemandDoneReq with the correct generation but the wrong per-grant cookie
// has to be dropped, or a forger can release a victim's lock while the real
// grant is still in flight to it.
TEST(Server, ForgedReleaseWithGuessedGenRejected) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  auto r = f.call(protocol::LockReq{file, LockMode::kExclusive});
  const auto& rep = std::get<protocol::LockReply>(std::get<protocol::ReplyBody>(r->body));
  ASSERT_TRUE(rep.granted);
  ASSERT_NE(rep.cookie, 0u);

  // Correct gen, forged cookie: both release paths must be no-ops.
  f.call(protocol::UnlockReq{file, LockMode::kNone, rep.gen, rep.cookie ^ 0xdeadbeefull});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);
  f.call(protocol::DemandDoneReq{file, LockMode::kNone, rep.gen, rep.cookie ^ 0x1234ull});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);

  // The genuine cookie still works.
  f.call(protocol::UnlockReq{file, LockMode::kNone, rep.gen, rep.cookie});
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kNone);
}

TEST(Server, UndeliverableDemandStartsLeaseTimeoutThenStealsAndFences) {
  Fixture f;
  f.attach_client(NodeId{101});
  f.do_register(NodeId{100});
  const auto e100 = f.epoch;
  f.do_register(NodeId{101});
  const auto e101 = f.epoch;
  auto file = f.server->preallocate("/f", 64).value();
  f.epoch = e100;
  f.call(protocol::LockReq{file, LockMode::kExclusive}, NodeId{100});

  // 100 drops off the control network.
  f.net.reachability().sever_pair(NodeId{100}, NodeId{1});
  f.epoch = e101;
  f.call(protocol::LockReq{file, LockMode::kExclusive}, NodeId{101});

  // Retries exhaust (~2s), then tau(1+eps) = 5.05s.
  f.run_for(3.0);
  EXPECT_TRUE(f.server->authority().is_suspect(NodeId{100}));
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);  // honored!
  f.run_for(6.0);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kNone);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{101}, file), LockMode::kExclusive);
  EXPECT_TRUE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));
  EXPECT_FALSE(f.server->session_valid(NodeId{100}));
  EXPECT_EQ(f.server->counters().lock_steals, 1u);
  EXPECT_EQ(f.server->counters().fences_issued, 1u);
}

TEST(Server, ReregisterAfterStealUnfences) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  f.call(protocol::LockReq{file, LockMode::kExclusive});
  f.server->inject_delivery_failure(NodeId{100});
  f.run_for(6.0);
  EXPECT_TRUE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));

  auto r = f.call(protocol::RegisterReq{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kAck);
  const auto new_epoch =
      std::get<protocol::RegisterReply>(std::get<protocol::ReplyBody>(r->body)).epoch;
  EXPECT_EQ(new_epoch, 2u);
  f.run_for(0.01);
  EXPECT_FALSE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));
}

TEST(Server, RegisterNackedWhileTimerRuns) {
  Fixture f;
  f.do_register();
  f.server->inject_delivery_failure(NodeId{100});
  auto r = f.call(protocol::RegisterReq{});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kNack);  // conservative protocol
}

TEST(Server, NaiveStealActsImmediately) {
  auto cfg = Fixture::make_cfg();
  cfg.recovery = RecoveryMode::kNaiveSteal;
  Fixture f(cfg);
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  f.call(protocol::LockReq{file, LockMode::kExclusive});
  f.server->inject_delivery_failure(NodeId{100});
  f.run_for(0.01);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kNone);
  EXPECT_FALSE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));  // no fence
}

TEST(Server, NoRecoveryHonorsLocksForever) {
  auto cfg = Fixture::make_cfg();
  cfg.recovery = RecoveryMode::kNoRecovery;
  Fixture f(cfg);
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  f.call(protocol::LockReq{file, LockMode::kExclusive});
  f.server->inject_delivery_failure(NodeId{100});
  f.run_for(60.0);
  EXPECT_EQ(f.server->locks().mode_of(NodeId{100}, file), LockMode::kExclusive);
  EXPECT_EQ(f.server->counters().lock_steals, 0u);
}

TEST(Server, DataShippingReadsAndWrites) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 0).value();
  Bytes payload(100, 0x5A);
  auto w = f.call(protocol::WriteDataReq{file, 10, payload});
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(std::holds_alternative<protocol::OkReply>(std::get<protocol::ReplyBody>(w->body)));

  auto r = f.call(protocol::ReadDataReq{file, 10, 100});
  const auto& rep = std::get<protocol::DataReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.data, payload);
  EXPECT_EQ(f.server->counters().server_data_bytes, 200u);
}

TEST(Server, DataShippingReadClampsAtEof) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 0).value();
  f.call(protocol::WriteDataReq{file, 0, Bytes(50, 1)});
  auto r = f.call(protocol::ReadDataReq{file, 40, 100});
  const auto& rep = std::get<protocol::DataReply>(std::get<protocol::ReplyBody>(r->body));
  EXPECT_EQ(rep.data.size(), 10u);
}

TEST(Server, KeepAliveIsNotATransaction) {
  Fixture f;
  f.do_register();
  const auto before = f.server->counters().transactions;
  f.call(protocol::KeepAliveReq{});
  EXPECT_EQ(f.server->counters().transactions, before);
}

TEST(Server, StorageTankServerKeepsZeroLeaseState) {
  Fixture f;
  f.do_register();
  auto file = f.server->preallocate("/f", 64).value();
  f.call(protocol::LockReq{file, LockMode::kExclusive});
  for (int i = 0; i < 20; ++i) {
    f.call(protocol::KeepAliveReq{});
    f.call(protocol::GetAttrReq{file});
  }
  EXPECT_EQ(f.server->lease_state_bytes(), 0u);
  EXPECT_EQ(f.server->counters().lease_ops, 0u);
}

TEST(Server, FrangipaniServerTracksHeartbeats) {
  auto cfg = Fixture::make_cfg();
  cfg.strategy = LeaseStrategy::kFrangipani;
  Fixture f(cfg);
  f.do_register();
  EXPECT_GT(f.server->lease_state_bytes(), 0u);  // one table entry already
  const auto ops_before = f.server->counters().lease_ops;
  f.call(protocol::KeepAliveReq{});
  EXPECT_GT(f.server->counters().lease_ops, ops_before);
}

TEST(Server, VLeaseServerTracksPerObjectLeases) {
  auto cfg = Fixture::make_cfg();
  cfg.strategy = LeaseStrategy::kVLeases;
  Fixture f(cfg);
  f.do_register();
  auto fa = f.server->preallocate("/a", 64).value();
  auto fb = f.server->preallocate("/b", 64).value();
  f.call(protocol::LockReq{fa, LockMode::kShared});
  const auto one = f.server->lease_state_bytes();
  EXPECT_GT(one, 0u);
  f.call(protocol::LockReq{fb, LockMode::kShared});
  EXPECT_GT(f.server->lease_state_bytes(), one);
  f.call(protocol::RenewObjReq{fa});
  EXPECT_GT(f.server->counters().lease_ops, 0u);
}

}  // namespace
}  // namespace stank::server
