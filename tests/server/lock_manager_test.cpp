#include "server/lock_manager.hpp"

#include <gtest/gtest.h>

namespace stank::server {
namespace {

using protocol::LockMode;

const NodeId kA{100}, kB{101}, kC{102};
const FileId kF{1}, kG{2};

TEST(LockManager, SharedGrantsCoexist) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(kA, kF, LockMode::kShared).outcome,
            LockManager::AcquireOutcome::kGranted);
  EXPECT_EQ(lm.acquire(kB, kF, LockMode::kShared).outcome,
            LockManager::AcquireOutcome::kGranted);
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kShared);
  EXPECT_EQ(lm.mode_of(kB, kF), LockMode::kShared);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, ExclusiveExcludes) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  auto res = lm.acquire(kB, kF, LockMode::kShared);
  EXPECT_EQ(res.outcome, LockManager::AcquireOutcome::kQueued);
  ASSERT_EQ(res.demands.size(), 1u);
  EXPECT_EQ(res.demands[0].holder, kA);
  EXPECT_EQ(res.demands[0].file, kF);
  // A shared waiter lets the holder keep shared.
  EXPECT_EQ(res.demands[0].max_mode, LockMode::kShared);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, ExclusiveWaiterDemandsNone) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kShared);
  auto res = lm.acquire(kC, kF, LockMode::kExclusive);
  EXPECT_EQ(res.outcome, LockManager::AcquireOutcome::kQueued);
  ASSERT_EQ(res.demands.size(), 2u);
  for (const auto& d : res.demands) {
    EXPECT_EQ(d.max_mode, LockMode::kNone);
  }
}

TEST(LockManager, AlreadyHeldAtOrAboveRequested) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  EXPECT_EQ(lm.acquire(kA, kF, LockMode::kShared).outcome,
            LockManager::AcquireOutcome::kAlreadyHeld);
  EXPECT_EQ(lm.acquire(kA, kF, LockMode::kExclusive).outcome,
            LockManager::AcquireOutcome::kAlreadyHeld);
}

TEST(LockManager, ReleaseGrantsWaiter) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kExclusive);
  auto upd = lm.set_mode(kA, kF, LockMode::kNone);
  ASSERT_EQ(upd.grants.size(), 1u);
  EXPECT_EQ(upd.grants[0].client, kB);
  EXPECT_EQ(upd.grants[0].mode, LockMode::kExclusive);
  EXPECT_EQ(lm.mode_of(kB, kF), LockMode::kExclusive);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, DowngradeToSharedAdmitsSharedWaiters) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kShared);
  lm.acquire(kC, kF, LockMode::kShared);
  auto upd = lm.set_mode(kA, kF, LockMode::kShared);
  EXPECT_EQ(upd.grants.size(), 2u);
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kShared);
  EXPECT_EQ(lm.mode_of(kB, kF), LockMode::kShared);
  EXPECT_EQ(lm.mode_of(kC, kF), LockMode::kShared);
}

TEST(LockManager, StrictFifoPreventsWriterStarvation) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kExclusive);  // queued
  // A later shared request must queue BEHIND the exclusive waiter even
  // though it is compatible with the current holder.
  auto res = lm.acquire(kC, kF, LockMode::kShared);
  EXPECT_EQ(res.outcome, LockManager::AcquireOutcome::kQueued);
  // A releases: B gets X first; C still waits.
  auto upd = lm.set_mode(kA, kF, LockMode::kNone);
  ASSERT_EQ(upd.grants.size(), 1u);
  EXPECT_EQ(upd.grants[0].client, kB);
  EXPECT_EQ(lm.mode_of(kC, kF), LockMode::kNone);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, UpgradeSoleHolderGrantedImmediately) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  EXPECT_EQ(lm.acquire(kA, kF, LockMode::kExclusive).outcome,
            LockManager::AcquireOutcome::kGranted);
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kExclusive);
}

TEST(LockManager, UpgradeWithPeersQueuesAndDemands) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kShared);
  auto res = lm.acquire(kA, kF, LockMode::kExclusive);
  EXPECT_EQ(res.outcome, LockManager::AcquireOutcome::kQueued);
  ASSERT_EQ(res.demands.size(), 1u);
  EXPECT_EQ(res.demands[0].holder, kB);
  // B releases: A's upgrade completes.
  auto upd = lm.set_mode(kB, kF, LockMode::kNone);
  ASSERT_EQ(upd.grants.size(), 1u);
  EXPECT_EQ(upd.grants[0].client, kA);
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kExclusive);
}

TEST(LockManager, CrossUpgradeResolvesWithoutDeadlock) {
  // Both S holders request X: the demands ask each to drop; compliance
  // serializes them through the FIFO queue.
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kShared);
  auto ra = lm.acquire(kA, kF, LockMode::kExclusive);
  auto rb = lm.acquire(kB, kF, LockMode::kExclusive);
  EXPECT_EQ(ra.outcome, LockManager::AcquireOutcome::kQueued);
  EXPECT_EQ(rb.outcome, LockManager::AcquireOutcome::kQueued);
  // B complies with A's demand (drops S).
  auto upd1 = lm.set_mode(kB, kF, LockMode::kNone);
  ASSERT_EQ(upd1.grants.size(), 1u);
  EXPECT_EQ(upd1.grants[0].client, kA);
  EXPECT_EQ(upd1.grants[0].mode, LockMode::kExclusive);
  // The new head waiter (B:X) now demands A down.
  ASSERT_FALSE(upd1.demands.empty());
  EXPECT_EQ(upd1.demands[0].holder, kA);
  // A complies: B gets X.
  auto upd2 = lm.set_mode(kA, kF, LockMode::kNone);
  ASSERT_EQ(upd2.grants.size(), 1u);
  EXPECT_EQ(upd2.grants[0].client, kB);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, DuplicateDemandsNotRepeated) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  auto r1 = lm.acquire(kB, kF, LockMode::kExclusive);
  EXPECT_EQ(r1.demands.size(), 1u);
  // A second conflicting request does not re-demand the same holder.
  auto r2 = lm.acquire(kC, kF, LockMode::kExclusive);
  EXPECT_TRUE(r2.demands.empty());
}

TEST(LockManager, DeeperDemandIssuedWhenNeeded) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  auto r1 = lm.acquire(kB, kF, LockMode::kShared);  // demand: down to S
  ASSERT_EQ(r1.demands.size(), 1u);
  EXPECT_EQ(r1.demands[0].max_mode, LockMode::kShared);
  // A complies to S; B granted. Now C wants X: A and B must go to None.
  auto upd = lm.set_mode(kA, kF, LockMode::kShared);
  ASSERT_EQ(upd.grants.size(), 1u);
  auto r2 = lm.acquire(kC, kF, LockMode::kExclusive);
  EXPECT_EQ(r2.demands.size(), 2u);
  for (const auto& d : r2.demands) {
    EXPECT_EQ(d.max_mode, LockMode::kNone);
  }
}

TEST(LockManager, WaiterDeduplicatedAtStrongestMode) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kExclusive);  // upgrade the queued request
  EXPECT_EQ(lm.waiter_count(kF), 1u);
  auto upd = lm.set_mode(kA, kF, LockMode::kNone);
  ASSERT_EQ(upd.grants.size(), 1u);
  EXPECT_EQ(upd.grants[0].mode, LockMode::kExclusive);
}

TEST(LockManager, CancelWaiterRemovesFromQueue) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kExclusive);
  auto cupd = lm.cancel_waiter(kB, kF);
  EXPECT_TRUE(cupd.grants.empty());
  EXPECT_EQ(lm.waiter_count(kF), 0u);
  auto upd = lm.set_mode(kA, kF, LockMode::kNone);
  EXPECT_TRUE(upd.grants.empty());
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, StealReleasesEverythingOfClient) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kA, kG, LockMode::kShared);
  lm.acquire(kB, kF, LockMode::kExclusive);  // waits on kA
  auto res = lm.steal_all(kA);
  EXPECT_EQ(res.affected.size(), 2u);
  ASSERT_EQ(res.update.grants.size(), 1u);
  EXPECT_EQ(res.update.grants[0].client, kB);
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kNone);
  EXPECT_EQ(lm.mode_of(kA, kG), LockMode::kNone);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, StealRemovesQueuedRequestsToo) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kExclusive);  // B waits
  auto res = lm.steal_all(kB);
  EXPECT_EQ(res.affected.size(), 1u);
  EXPECT_TRUE(res.update.grants.empty());
  EXPECT_EQ(lm.waiter_count(kF), 0u);
}

TEST(LockManager, StealOfUnknownClientIsEmpty) {
  LockManager lm;
  auto res = lm.steal_all(kC);
  EXPECT_TRUE(res.affected.empty());
  EXPECT_TRUE(res.update.grants.empty());
}

TEST(LockManager, FilesOfListsHeldFiles) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.acquire(kA, kG, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kShared);
  auto files = lm.files_of(kA);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], kF);
  EXPECT_EQ(files[1], kG);
}

TEST(LockManager, DemandedModeAccessor) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  EXPECT_FALSE(lm.demanded_mode(kA, kF).has_value());
  lm.acquire(kB, kF, LockMode::kShared);
  ASSERT_TRUE(lm.demanded_mode(kA, kF).has_value());
  EXPECT_EQ(*lm.demanded_mode(kA, kF), LockMode::kShared);
  // Compliance clears it.
  lm.set_mode(kA, kF, LockMode::kShared);
  EXPECT_FALSE(lm.demanded_mode(kA, kF).has_value());
}

TEST(LockManager, UpgradeViaSetModeIgnored) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  lm.set_mode(kA, kF, LockMode::kExclusive);  // not an upgrade path
  EXPECT_EQ(lm.mode_of(kA, kF), LockMode::kShared);
}

TEST(LockManager, SetModeOnNonHolderStillPumps) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kExclusive);
  lm.acquire(kB, kF, LockMode::kShared);
  lm.steal_all(kA);
  // A's late DemandDone arrives after the steal: must not corrupt state.
  auto upd = lm.set_mode(kA, kF, LockMode::kNone);
  EXPECT_TRUE(upd.grants.empty());
  EXPECT_EQ(lm.mode_of(kB, kF), LockMode::kShared);
  EXPECT_TRUE(lm.invariants_hold());
}

TEST(LockManager, GcEmptiesTable) {
  LockManager lm;
  lm.acquire(kA, kF, LockMode::kShared);
  EXPECT_EQ(lm.held_files(), 1u);
  lm.set_mode(kA, kF, LockMode::kNone);
  EXPECT_EQ(lm.held_files(), 0u);
}

TEST(LockManagerDeathTest, AcquireNoneAborts) {
  LockManager lm;
  EXPECT_DEATH(lm.acquire(kA, kF, LockMode::kNone), "release");
}

}  // namespace
}  // namespace stank::server
