#include "workload/failures.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace stank::workload {
namespace {

TEST(FailurePlan, NoneIsEmpty) { EXPECT_TRUE(FailurePlan::none().events.empty()); }

TEST(FailurePlan, CtrlPartitionWithHeal) {
  auto p = FailurePlan::ctrl_partition(2, 10.0, 20.0);
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].kind, FailureKind::kCtrlIsolate);
  EXPECT_EQ(p.events[0].client_idx, 2u);
  EXPECT_DOUBLE_EQ(p.events[0].at_s, 10.0);
  EXPECT_EQ(p.events[1].kind, FailureKind::kCtrlHeal);
}

TEST(FailurePlan, PermanentPartitionHasNoHeal) {
  auto p = FailurePlan::ctrl_partition(0, 5.0);
  EXPECT_EQ(p.events.size(), 1u);
}

TEST(FailurePlan, AddChains) {
  FailurePlan p;
  p.add(1.0, FailureKind::kCrash, 0).add(2.0, FailureKind::kRestart, 0);
  EXPECT_EQ(p.events.size(), 2u);
}

TEST(FailurePlan, RandomIsSortedAndPaired) {
  sim::Rng rng(5);
  WorkloadSpec spec;
  spec.num_clients = 4;
  spec.run_seconds = 100.0;
  auto p = FailurePlan::random(rng, spec, 10);
  EXPECT_EQ(p.events.size(), 20u);  // every injection has a matching recovery
  EXPECT_TRUE(std::is_sorted(p.events.begin(), p.events.end(),
                             [](const FailureEvent& a, const FailureEvent& b) {
                               return a.at_s < b.at_s;
                             }));
  for (const auto& e : p.events) {
    EXPECT_LT(e.client_idx, 4u);
    EXPECT_GE(e.at_s, 0.0);
    EXPECT_LE(e.at_s, 95.0);
  }
}

TEST(FailurePlan, RandomDeterministicPerSeed) {
  WorkloadSpec spec;
  sim::Rng a(7), b(7);
  auto pa = FailurePlan::random(a, spec, 5);
  auto pb = FailurePlan::random(b, spec, 5);
  ASSERT_EQ(pa.events.size(), pb.events.size());
  for (std::size_t i = 0; i < pa.events.size(); ++i) {
    EXPECT_EQ(pa.events[i].kind, pb.events[i].kind);
    EXPECT_DOUBLE_EQ(pa.events[i].at_s, pb.events[i].at_s);
  }
}

TEST(FailurePlan, MixExcludesSanCutsByDefault) {
  sim::Rng rng(11);
  WorkloadSpec spec;
  auto p = FailurePlan::random(rng, spec, 50);
  for (const auto& e : p.events) {
    EXPECT_NE(e.kind, FailureKind::kSanIsolate);
    EXPECT_NE(e.kind, FailureKind::kSanHeal);
  }
}

TEST(FailurePlan, MixCanBeRestricted) {
  sim::Rng rng(11);
  WorkloadSpec spec;
  FailurePlan::RandomMix mix;
  mix.ctrl_partitions = false;
  mix.asymmetric_partitions = false;
  mix.crashes = true;
  auto p = FailurePlan::random(rng, spec, 20, mix);
  for (const auto& e : p.events) {
    EXPECT_TRUE(e.kind == FailureKind::kCrash || e.kind == FailureKind::kRestart);
  }
}

TEST(FailurePlan, EmptyMixYieldsNothing) {
  sim::Rng rng(1);
  WorkloadSpec spec;
  FailurePlan::RandomMix mix;
  mix.ctrl_partitions = mix.asymmetric_partitions = mix.crashes = false;
  EXPECT_TRUE(FailurePlan::random(rng, spec, 10, mix).events.empty());
}

TEST(FailureKind, AllKindsNamed) {
  for (int i = 0; i <= static_cast<int>(FailureKind::kSlowSan); ++i) {
    EXPECT_STRNE(to_string(static_cast<FailureKind>(i)), "?");
  }
}

}  // namespace
}  // namespace stank::workload
