#include "workload/scenario.hpp"

using stank::workload::Pattern;

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "rt/parallel.hpp"

namespace stank::workload {
namespace {

ScenarioConfig small_cfg() {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 3;
  cfg.workload.num_files = 4;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 10.0;
  cfg.workload.mean_interarrival_s = 0.05;
  cfg.workload.settle_seconds = 8.0;
  cfg.lease.tau = sim::local_seconds(4);
  return cfg;
}

TEST(Scenario, FailureFreeRunIsCleanAndPassive) {
  Scenario sc(small_cfg());
  auto r = sc.run();
  EXPECT_GT(r.reads_ok + r.writes_ok, 100u);
  EXPECT_EQ(r.ops_failed, 0u);
  EXPECT_EQ(r.violations.total(), 0u);
  // The paper's claims in one assertion block:
  EXPECT_EQ(r.server.lease_ops, 0u);
  EXPECT_EQ(r.max_lease_state_bytes, 0u);
  EXPECT_EQ(r.server.lock_steals, 0u);
  EXPECT_EQ(r.server.server_data_bytes, 0u);  // no data through the server
}

TEST(Scenario, SweepAggregatesIdenticalAcrossThreadCounts) {
  // The bench sweeps fan independent simulations across cores with results
  // landing in index-addressed vectors; the aggregates must be bit-identical
  // whether the sweep ran on 1 thread or many.
  using Agg = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;
  auto sweep = [](unsigned threads) {
    const std::vector<std::uint32_t> client_counts = {2, 3, 4};
    return rt::parallel_map<Agg>(
        client_counts.size(),
        [&](std::size_t i) {
          ScenarioConfig cfg;
          cfg.workload.num_clients = client_counts[i];
          cfg.workload.num_files = 4;
          cfg.workload.file_blocks = 2;
          cfg.workload.run_seconds = 5.0;
          cfg.workload.mean_interarrival_s = 0.05;
          cfg.lease.tau = sim::local_seconds(4);
          auto r = Scenario(cfg).run();
          return Agg{r.reads_ok, r.writes_ok, r.net.sent, r.server.transactions};
        },
        threads);
  };
  const auto serial = sweep(1);
  const auto parallel4 = sweep(4);
  const auto parallel16 = sweep(16);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel16);
}

TEST(Scenario, DeterministicAcrossRuns) {
  auto r1 = Scenario(small_cfg()).run();
  auto r2 = Scenario(small_cfg()).run();
  EXPECT_EQ(r1.reads_ok, r2.reads_ok);
  EXPECT_EQ(r1.writes_ok, r2.writes_ok);
  EXPECT_EQ(r1.net.sent, r2.net.sent);
  EXPECT_EQ(r1.engine_events, r2.engine_events);
}

TEST(Scenario, SeedsChangeTheSchedule) {
  auto cfg2 = small_cfg();
  cfg2.workload.seed = 99;
  auto r1 = Scenario(small_cfg()).run();
  auto r2 = Scenario(cfg2).run();
  EXPECT_NE(r1.net.sent, r2.net.sent);
}

TEST(Scenario, SurvivesCtrlPartitionWithLeaseProtocol) {
  auto cfg = small_cfg();
  cfg.workload.run_seconds = 20.0;
  cfg.failures = FailurePlan::ctrl_partition(0, 5.0, 15.0);
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GE(r.server.lock_steals, 0u);
  // The partitioned client's ops failed or were rejected for a while.
  EXPECT_GT(r.ops_failed, 0u);
}

TEST(Scenario, NaiveStealCorruptsUnderPartition) {
  auto cfg = small_cfg();
  cfg.workload.run_seconds = 20.0;
  cfg.workload.read_fraction = 0.3;  // write-heavy to provoke conflicts
  cfg.recovery = server::RecoveryMode::kNaiveSteal;
  cfg.failures = FailurePlan::ctrl_partition(0, 5.0, 15.0);
  Scenario sc(cfg);
  auto r = sc.run();
  // The strawman breaks at least one guarantee.
  EXPECT_GT(r.violations.total(), 0u);
}

TEST(Scenario, CrashAndRestartRecovers) {
  auto cfg = small_cfg();
  cfg.workload.run_seconds = 20.0;
  cfg.failures.add(5.0, FailureKind::kCrash, 1).add(10.0, FailureKind::kRestart, 1);
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  // The crashed client resumed work after restart.
  EXPECT_TRUE(sc.client(1).registered());
}

TEST(Scenario, PiecewiseDriving) {
  Scenario sc(small_cfg());
  sc.setup();
  sc.run_until_s(1.0);
  for (std::size_t i = 0; i < sc.num_clients(); ++i) {
    EXPECT_TRUE(sc.client(i).registered());
  }
  // Drive a manual op through the scenario accessors.
  bool read_done = false;
  sc.client(0).read(sc.fd(0, 0), 0, sc.config().block_size, [&](Result<Bytes> r) {
    read_done = r.ok();
  });
  sc.run_until_s(1.5);
  EXPECT_TRUE(read_done);
  auto res = sc.finish();
  EXPECT_EQ(res.violations.total(), 0u);
}

TEST(Scenario, VersionsMonotonePerBlock) {
  Scenario sc(small_cfg());
  sc.setup();
  const FileId f = sc.file_id(0);
  EXPECT_EQ(sc.next_version(f, 0), 1u);
  EXPECT_EQ(sc.next_version(f, 0), 2u);
  EXPECT_EQ(sc.next_version(f, 1), 1u);
}

TEST(Scenario, FrangipaniStrategyRunsClean) {
  auto cfg = small_cfg();
  cfg.strategy = core::LeaseStrategy::kFrangipani;
  auto r = Scenario(cfg).run();
  EXPECT_EQ(r.violations.total(), 0u);
  // Heartbeats flowed and the server kept per-client lease state.
  EXPECT_GT(r.clients.lease_only_msgs, 0u);
  EXPECT_GT(r.server.lease_ops, 0u);
  EXPECT_GT(r.max_lease_state_bytes, 0u);
}

TEST(Scenario, VLeaseStrategyRunsClean) {
  auto cfg = small_cfg();
  cfg.strategy = core::LeaseStrategy::kVLeases;
  auto r = Scenario(cfg).run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.clients.lease_only_msgs, 0u);
  EXPECT_GT(r.max_lease_state_bytes, 0u);
}

TEST(Scenario, ServerShippedDataPathMovesBytesThroughServer) {
  auto cfg = small_cfg();
  cfg.data_path = client::DataPath::kServerShipped;
  auto r = Scenario(cfg).run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.server.server_data_bytes, 0u);
}

TEST(Scenario, NfsPollModeViolatesCoherence) {
  auto cfg = small_cfg();
  cfg.workload.run_seconds = 20.0;
  cfg.workload.read_fraction = 0.5;
  cfg.coherence = client::CoherenceMode::kNfsPoll;
  cfg.data_path = client::DataPath::kServerShipped;
  auto r = Scenario(cfg).run();
  // NFS attribute polling cannot keep caches coherent (paper section 5).
  EXPECT_GT(r.violations.total(), 0u);
}

TEST(Scenario, PrivatePatternGeneratesNoDemands) {
  auto cfg = small_cfg();
  cfg.workload.pattern = Pattern::kPrivate;
  cfg.workload.num_clients = 3;
  cfg.workload.num_files = 6;
  auto r = Scenario(cfg).run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_EQ(r.server.lock_demands, 0u);  // no sharing, no revocation
  EXPECT_GT(r.reads_ok + r.writes_ok, 50u);
}

TEST(Scenario, ProducerConsumerPatternRunsClean) {
  auto cfg = small_cfg();
  cfg.workload.pattern = Pattern::kProducerConsumer;
  auto r = Scenario(cfg).run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.server.lock_demands, 0u);  // constant writer/reader handoffs
  EXPECT_GT(r.reads_ok, 0u);
  EXPECT_GT(r.writes_ok, 0u);
}

TEST(Scenario, SequentialPatternCoversWholePool) {
  auto cfg = small_cfg();
  cfg.workload.pattern = Pattern::kSequential;
  cfg.workload.read_fraction = 0.0;  // pure write scan
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  // Every block of every file was eventually written by someone.
  std::size_t blocks_touched = sc.history().all_blocks().size();
  EXPECT_EQ(blocks_touched,
            static_cast<std::size_t>(cfg.workload.num_files) * cfg.workload.file_blocks);
}

TEST(Scenario, SlowSanFailureApplies) {
  auto cfg = small_cfg();
  cfg.failures.add(2.0, FailureKind::kSlowSan, 0, /*param_s=*/0.05);
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);  // slowness alone must not break safety
}

}  // namespace
}  // namespace stank::workload
