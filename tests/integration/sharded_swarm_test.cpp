// Full-stack determinism of the sharded engine: real clients, servers,
// lease renewals, lock traffic, and SAN I/O on a ShardedEngine + ShardedNet.
//
// Two contracts are pinned here:
//  * A fixed (seed, K) run is bit-identical — same per-client op outcomes,
//    same network counters, same recorded trace streams — at every worker
//    thread count (the scheduler may only change WHERE a shard runs, never
//    what it computes).
//  * K=1 reproduces the plain serial Engine + ControlNet stack exactly,
//    event for event, so growing a deployment to shards is not a behaviour
//    change until K > 1.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "client/client.hpp"
#include "net/control_net.hpp"
#include "net/sharded_net.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "server/server.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/trace.hpp"
#include "storage/san.hpp"

namespace stank {
namespace {

constexpr std::uint32_t kServerBase = 1;
constexpr std::uint32_t kClientBase = 100;
constexpr std::uint32_t kClients = 24;
constexpr std::size_t kFiles = 16;
constexpr double kRunS = 3.0;

core::LeaseConfig mini_lease() {
  core::LeaseConfig lease;
  lease.tau = sim::local_seconds(1);  // several renewal rounds inside kRunS
  return lease;
}

// Everything a run produces that determinism must preserve.
struct RunResult {
  std::vector<std::uint64_t> member_ok;      // per client, index order
  std::vector<std::uint64_t> member_failed;  // per client, index order
  std::uint64_t events_executed{0};
  std::uint64_t net_sent{0};
  std::uint64_t net_delivered{0};
  std::uint64_t net_bytes{0};
  // The merged typed trace, flattened: (t, node, kind, a, b, aux) per event.
  std::vector<std::uint64_t> trace;

  bool operator==(const RunResult&) const = default;
};

void flatten_trace(const std::vector<const obs::Recorder*>& recs, std::vector<std::uint64_t>& out) {
  obs::Recorder::visit_merged_across(recs, [&](const obs::Event& e) {
    out.push_back(static_cast<std::uint64_t>(e.at.ns));
    out.push_back(e.node.value());
    out.push_back(static_cast<std::uint64_t>(e.kind));
    out.push_back(e.a);
    out.push_back(e.b);
    out.push_back(e.aux);
  });
}

struct Member {
  std::unique_ptr<client::Client> cl;
  client::Fd fd{0};
  sim::Rng rng{0};
  bool ready{false};
  std::uint64_t ops_ok{0};
  std::uint64_t ops_failed{0};
  unsigned shard{0};
};

// Same swarm loop as bench_swarm, shrunk: open a file, then lock/release on
// an exponential gap while lease renewals run underneath.
struct Loop {
  std::vector<Member>& members;
  sim::ShardedEngine& engine;

  void open_file(std::size_t idx) {
    Member& m = members[idx];
    char path[16];
    std::snprintf(path, sizeof(path), "f%zu", m.rng.zipf(kFiles, 0.9));
    m.cl->open(path, /*create=*/false, [this, idx](Result<client::Fd> res) {
      Member& m2 = members[idx];
      if (!res.ok()) {
        ++m2.ops_failed;
        engine.shard(m2.shard).schedule_after(sim::millis(100), [this, idx]() { open_file(idx); });
        return;
      }
      m2.fd = res.value();
      if (!m2.ready) {
        m2.ready = true;
        next(idx);
      }
    });
  }
  void next(std::size_t idx) {
    Member& m = members[idx];
    engine.shard(m.shard).schedule_after(sim::seconds_d(m.rng.exponential(0.3)),
                                         [this, idx]() { op(idx); });
  }
  void op(std::size_t idx) {
    Member& m = members[idx];
    const auto mode = m.rng.uniform() < 0.2 ? protocol::LockMode::kExclusive
                                            : protocol::LockMode::kShared;
    m.cl->lock(m.fd, mode, [this, idx](Status st) {
      Member& m2 = members[idx];
      if (!st.is_ok()) {
        ++m2.ops_failed;
        next(idx);
        return;
      }
      m2.cl->release(m2.fd, protocol::LockMode::kNone, [this, idx](Status st2) {
        (st2.is_ok() ? members[idx].ops_ok : members[idx].ops_failed)++;
        next(idx);
      });
    });
  }
};

RunResult run_sharded(unsigned k, unsigned threads, bool telemetry = false) {
  sim::ShardedEngine::Config ecfg;
  ecfg.shards = k;
  ecfg.threads = threads;
  sim::ShardedEngine engine(ecfg);
  sim::Rng root(0xDEC0DEu);
  auto fabric = std::make_unique<net::ShardedNet>(engine, root);
  (void)root.fork(1);  // the stream the fabric consumed from its copy

  // Armed telemetry must be invisible to everything RunResult captures: the
  // counters observe, the watchdog records to its own recorder (never one of
  // the per-shard trace recorders below), and neither schedules events.
  obs::Counters ctr;
  obs::Recorder wd_rec;
  std::unique_ptr<obs::Watchdog> watchdog;
  if (telemetry) {
    watchdog = std::make_unique<obs::Watchdog>(wd_rec);
    obs::Watchdog* wd = watchdog.get();
    sim::ShardedEngine::Telemetry tel;
    tel.counters = &ctr;
    tel.snapshot_every_windows = 64;
    tel.on_snapshot = [wd](sim::SimTime at) { wd->evaluate(at); };
    engine.set_telemetry(std::move(tel));
    fabric->set_counters(&ctr);
    ctr.freeze(k);
    watchdog->add_probe(
        "mailbox_hw",
        [f = fabric.get()] { return static_cast<double>(f->mailbox_high_water()); }, 0.0,
        1e6);
  }

  // One recorder per shard: rings are single-threaded, exactly like every
  // other piece of shard state.
  std::vector<std::unique_ptr<obs::Recorder>> recs;
  std::vector<std::unique_ptr<sim::TraceLog>> traces;
  std::vector<std::unique_ptr<storage::SanFabric>> sans;
  std::vector<std::unique_ptr<server::Server>> servers;
  const DiskId disk{1};
  for (unsigned j = 0; j < k; ++j) {
    recs.push_back(std::make_unique<obs::Recorder>());
    traces.push_back(std::make_unique<sim::TraceLog>(*recs[j]));
    sans.push_back(std::make_unique<storage::SanFabric>(engine.shard(j), root.fork(2 + j)));
    sans.back()->add_disk(disk, /*blocks=*/kFiles * 16, /*block_size=*/4096);
    fabric->place(NodeId{kServerBase + j}, j);
  }
  for (unsigned j = 0; j < k; ++j) {
    server::ServerConfig scfg;
    scfg.id = NodeId{kServerBase + j};
    scfg.lease = mini_lease();
    scfg.block_size = 4096;
    scfg.data_disks = {disk};
    servers.push_back(std::make_unique<server::Server>(engine.shard(j), fabric->shard(j),
                                                       *sans[j], sim::LocalClock(1.0), scfg,
                                                       traces[j].get()));
    for (std::size_t f = 0; f < kFiles; ++f) {
      char path[16];
      std::snprintf(path, sizeof(path), "f%zu", f);
      auto res = servers.back()->preallocate(path, 4096);
      if (!res.ok()) ADD_FAILURE() << "preallocate failed";
    }
    servers.back()->start();
  }

  std::vector<Member> members(kClients);
  Loop loop{members, engine};
  for (std::uint32_t i = 0; i < kClients; ++i) {
    const unsigned shard = (2 * i + 1) % k;
    fabric->place(NodeId{kClientBase + i}, shard);
    client::ClientConfig ccfg;
    ccfg.id = NodeId{kClientBase + i};
    ccfg.server = NodeId{kServerBase + i % k};
    ccfg.lease = mini_lease();
    ccfg.block_size = 4096;
    Member& m = members[i];
    m.shard = shard;
    m.rng = root.fork(1000 + i);
    m.cl = std::make_unique<client::Client>(engine.shard(shard), fabric->shard(shard),
                                            *sans[shard], sim::LocalClock(1.0), ccfg,
                                            traces[shard].get());
    m.cl->on_registered = [&loop, i]() { loop.open_file(i); };
    const double start_at = 0.001 + 0.2 * m.rng.uniform();
    engine.shard(shard).schedule_after(sim::seconds_d(start_at),
                                       [&members, i]() { members[i].cl->start(); });
  }

  engine.run_until(sim::SimTime{} + sim::seconds_d(kRunS));

  RunResult r;
  for (const Member& m : members) {
    r.member_ok.push_back(m.ops_ok);
    r.member_failed.push_back(m.ops_failed);
  }
  r.events_executed = engine.events_executed();
  const net::NetStats st = fabric->stats();
  r.net_sent = st.sent;
  r.net_delivered = st.delivered;
  r.net_bytes = st.bytes;
  std::vector<const obs::Recorder*> rec_ptrs;
  for (const auto& rp : recs) rec_ptrs.push_back(rp.get());
  flatten_trace(rec_ptrs, r.trace);
  return r;
}

// The identical workload on the plain serial stack (Engine + ControlNet),
// mirroring run_sharded(k=1)'s RNG stream layout exactly.
RunResult run_plain_serial() {
  sim::Engine engine;
  sim::Rng root(0xDEC0DEu);
  auto fabric = std::make_unique<net::ControlNet>(engine, root.fork(1));
  auto rec = std::make_unique<obs::Recorder>();
  auto trace = std::make_unique<sim::TraceLog>(*rec);
  auto san = std::make_unique<storage::SanFabric>(engine, root.fork(2));
  const DiskId disk{1};
  san->add_disk(disk, /*blocks=*/kFiles * 16, /*block_size=*/4096);

  server::ServerConfig scfg;
  scfg.id = NodeId{kServerBase};
  scfg.lease = mini_lease();
  scfg.block_size = 4096;
  scfg.data_disks = {disk};
  auto server = std::make_unique<server::Server>(engine, *fabric, *san, sim::LocalClock(1.0),
                                                 scfg, trace.get());
  for (std::size_t f = 0; f < kFiles; ++f) {
    char path[16];
    std::snprintf(path, sizeof(path), "f%zu", f);
    auto res = server->preallocate(path, 4096);
    if (!res.ok()) ADD_FAILURE() << "preallocate failed";
  }
  server->start();

  // A single-shard ShardedEngine runs everything on shard 0; mirror that.
  std::vector<Member> members(kClients);
  struct SerialLoop {
    std::vector<Member>& members;
    sim::Engine& engine;
    void open_file(std::size_t idx) {
      Member& m = members[idx];
      char path[16];
      std::snprintf(path, sizeof(path), "f%zu", m.rng.zipf(kFiles, 0.9));
      m.cl->open(path, false, [this, idx](Result<client::Fd> res) {
        Member& m2 = members[idx];
        if (!res.ok()) {
          ++m2.ops_failed;
          engine.schedule_after(sim::millis(100), [this, idx]() { open_file(idx); });
          return;
        }
        m2.fd = res.value();
        if (!m2.ready) {
          m2.ready = true;
          next(idx);
        }
      });
    }
    void next(std::size_t idx) {
      Member& m = members[idx];
      engine.schedule_after(sim::seconds_d(m.rng.exponential(0.3)), [this, idx]() { op(idx); });
    }
    void op(std::size_t idx) {
      Member& m = members[idx];
      const auto mode = m.rng.uniform() < 0.2 ? protocol::LockMode::kExclusive
                                              : protocol::LockMode::kShared;
      m.cl->lock(m.fd, mode, [this, idx](Status st) {
        if (!st.is_ok()) {
          ++members[idx].ops_failed;
          next(idx);
          return;
        }
        members[idx].cl->release(members[idx].fd, protocol::LockMode::kNone,
                                 [this, idx](Status st2) {
                                   (st2.is_ok() ? members[idx].ops_ok
                                                : members[idx].ops_failed)++;
                                   next(idx);
                                 });
      });
    }
  };
  SerialLoop loop{members, engine};
  for (std::uint32_t i = 0; i < kClients; ++i) {
    client::ClientConfig ccfg;
    ccfg.id = NodeId{kClientBase + i};
    ccfg.server = NodeId{kServerBase};
    ccfg.lease = mini_lease();
    ccfg.block_size = 4096;
    Member& m = members[i];
    m.rng = root.fork(1000 + i);
    m.cl = std::make_unique<client::Client>(engine, *fabric, *san, sim::LocalClock(1.0), ccfg,
                                            trace.get());
    m.cl->on_registered = [&loop, i]() { loop.open_file(i); };
    const double start_at = 0.001 + 0.2 * m.rng.uniform();
    engine.schedule_after(sim::seconds_d(start_at), [&members, i]() { members[i].cl->start(); });
  }

  engine.run_until(sim::SimTime{} + sim::seconds_d(kRunS));

  RunResult r;
  for (const Member& m : members) {
    r.member_ok.push_back(m.ops_ok);
    r.member_failed.push_back(m.ops_failed);
  }
  r.events_executed = engine.events_executed();
  const net::NetStats st = fabric->stats();
  r.net_sent = st.sent;
  r.net_delivered = st.delivered;
  r.net_bytes = st.bytes;
  flatten_trace({rec.get()}, r.trace);
  return r;
}

TEST(ShardedSwarm, WorkloadActuallyRuns) {
  const RunResult r = run_sharded(2, 2);
  std::uint64_t total_ok = 0;
  for (std::uint64_t ok : r.member_ok) total_ok += ok;
  EXPECT_GT(total_ok, 50u) << "swarm should complete plenty of lock/release ops";
  EXPECT_GT(r.net_delivered, 0u);
  EXPECT_FALSE(r.trace.empty());
}

TEST(ShardedSwarm, BitIdenticalAcrossWorkerThreadCounts) {
  const RunResult t1 = run_sharded(2, 1);
  const RunResult t2 = run_sharded(2, 2);
  const RunResult t8 = run_sharded(2, 8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ShardedSwarm, BitIdenticalAcrossRepeats) {
  const RunResult a = run_sharded(3, 3);
  const RunResult b = run_sharded(3, 3);
  EXPECT_EQ(a, b);
}

TEST(ShardedSwarm, SingleShardMatchesPlainSerialStack) {
  const RunResult sharded = run_sharded(1, 1);
  const RunResult plain = run_plain_serial();
  EXPECT_EQ(sharded, plain);
}

// The ISSUE's core telemetry contract: arming the counter registry and the
// watchdog changes NOTHING the determinism digest folds — same member op
// outcomes, same NetStats, same events_executed, same recorded trace — at
// every worker thread count. Counters observe; they never schedule or draw.
TEST(ShardedSwarm, InstrumentedRunBitIdenticalToDark) {
  const RunResult dark = run_sharded(2, 2, /*telemetry=*/false);
  const RunResult armed1 = run_sharded(2, 1, /*telemetry=*/true);
  const RunResult armed2 = run_sharded(2, 2, /*telemetry=*/true);
  const RunResult armed8 = run_sharded(2, 8, /*telemetry=*/true);
  EXPECT_EQ(dark, armed1);
  EXPECT_EQ(dark, armed2);
  EXPECT_EQ(dark, armed8);
}

TEST(ShardedSwarm, InstrumentedK1FastPathMatchesPlainSerial) {
  const RunResult armed = run_sharded(1, 1, /*telemetry=*/true);
  const RunResult plain = run_plain_serial();
  EXPECT_EQ(armed, plain);
}

}  // namespace
}  // namespace stank
