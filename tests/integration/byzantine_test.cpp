// DESIGN.md §13: adversarial clients attack the protocol participants; the
// trusted base (the server plus the disks' fence lists) must keep HONEST
// clients safe no matter what the attacker does. Each test here drives a
// full scenario with one misbehaving client and gates on the split verdict's
// honest bucket — the byzantine client's self-inflicted damage is allowed.
//
// Scenarios are fully deterministic, but whether a particular seed's traffic
// actually creates the attack window (contention on the attacked file at the
// right moment) varies, so tests sweep a few seeds and assert over the set.
#include <gtest/gtest.h>

#include "client/byzantine.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using client::ByzantineSpec;
using server::RecoveryMode;
using workload::FailureKind;
using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig contended_cfg(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 3;
  cfg.workload.num_files = 2;
  cfg.workload.file_blocks = 4;
  cfg.workload.read_fraction = 0.3;  // write-heavy: makes clobbers observable
  cfg.workload.mean_interarrival_s = 0.04;
  cfg.workload.run_seconds = 12.0;
  cfg.workload.seed = seed;
  cfg.lease.tau = sim::local_seconds_d(2.0);
  cfg.demand_timeout = sim::local_seconds_d(1.0);
  cfg.recovery = RecoveryMode::kLeaseAndFence;
  return cfg;
}

// The write-after-expiry attacker withholds its phase-4 flush, snapshots the
// dirty cache at expiry, and pumps the stale snapshot at the SAN under its
// superseded registration. A control partition makes its lease provably
// expire mid-run.
ScenarioConfig rogue_flusher_cfg(std::uint64_t seed, RecoveryMode mode) {
  ScenarioConfig cfg = contended_cfg(seed);
  cfg.recovery = mode;
  ByzantineSpec spec;
  spec.write_after_expiry = true;
  spec.defy_quiesce = true;
  cfg.byzantine[0] = spec;
  cfg.failures.add(0.3 * cfg.workload.run_seconds, FailureKind::kCtrlIsolate, 0);
  cfg.failures.add(0.9 * cfg.workload.run_seconds, FailureKind::kCtrlHeal, 0);
  return cfg;
}

TEST(Byzantine, WriteAfterExpiryStoppedByFence) {
  std::uint64_t absorbed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Scenario sc(rogue_flusher_cfg(seed, RecoveryMode::kLeaseAndFence));
    auto r = sc.run();
    EXPECT_TRUE(r.honest_violations.empty()) << "seed " << seed;
    const auto it = r.fence_rejects_by_initiator.find(sc.client_node(0));
    if (it != r.fence_rejects_by_initiator.end()) absorbed += it->second;
  }
  // The defense must actually have been exercised: the disks rejected rogue
  // commands, they did not merely never arrive.
  EXPECT_GT(absorbed, 0u);
}

// Negative control for the test above: with fencing off (kLeaseOnly) nothing
// stops the stale snapshot landing over the new holder's data, and the
// checker must catch it as an HONEST-victim violation. This proves the fence
// list is the load-bearing defense — and that the positive test has teeth.
TEST(Byzantine, WriteAfterExpiryCorruptsWithoutFence) {
  std::size_t violated = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario sc(rogue_flusher_cfg(seed, RecoveryMode::kLeaseOnly));
    auto r = sc.run();
    if (!r.honest_violations.empty()) ++violated;
  }
  EXPECT_GT(violated, 0u);
}

// An ack-without-release attacker transport-ACKs every demand and then sits
// on the lock forever. The server's demand timeout must escalate to
// fence+steal so honest waiters make progress, with no honest-victim damage.
TEST(Byzantine, AckWithoutReleaseContainedByDemandTimeout) {
  std::uint64_t steals = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScenarioConfig cfg = contended_cfg(seed);
    ByzantineSpec spec;
    spec.ack_without_release = true;
    cfg.byzantine[0] = spec;
    Scenario sc(cfg);
    auto r = sc.run();
    EXPECT_TRUE(r.honest_violations.empty()) << "seed " << seed;
    steals += r.server.lock_steals;
  }
  // The stall was real and the timeout path fired.
  EXPECT_GT(steals, 0u);
}

// Satellite audit: the server consumes NO client-reported timestamps — lease
// renewal is driven purely by ACK arrival on the server's own clock, and the
// renewal message itself (KeepAliveReq) physically cannot carry a clock
// reading. A client lying about its send times only corrupts its OWN lease
// math (it turns itself into a slow computer); honest clients stay safe.
static_assert(std::is_empty_v<protocol::KeepAliveReq>,
              "the renewal message must not grow fields the server could be "
              "tempted to trust; lease timing is server-clock-only");

TEST(Byzantine, LieSendTimeHarmsOnlyTheLiar) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScenarioConfig cfg = contended_cfg(seed);
    // Reckless direction: the liar believes its lease lives ~tau longer
    // than it does, so it keeps serving/writing after provable expiry.
    cfg.byzantine[1] = ByzantineSpec::from_mask(
        ByzantineSpec::kLieSendTime | ByzantineSpec::kDefyQuiesce, /*skew_s=*/2.0);
    Scenario sc(cfg);
    auto r = sc.run();
    EXPECT_TRUE(r.honest_violations.empty()) << "seed " << seed;
  }
}

// With no byzantine clients configured, the split verdict degenerates to the
// plain one: everything lands in the honest bucket.
TEST(Byzantine, NoAttackersMeansBucketsCollapse) {
  ScenarioConfig cfg = contended_cfg(7);
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_TRUE(r.byzantine_violations.empty());
  EXPECT_EQ(r.honest_violations.size(), r.violation_list.size());
}

}  // namespace
}  // namespace stank
