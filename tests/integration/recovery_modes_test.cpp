// Section 2.1 / Table T4: compare recovery policies under the same injected
// failure and assert exactly which guarantees each one breaks.
#include <gtest/gtest.h>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using server::RecoveryMode;
using workload::Scenario;
using workload::ScenarioConfig;

struct Outcome {
  verify::ViolationSummary violations;
  bool waiter_granted{false};
  double grant_delay_s{-1};
};

// One client holds dirty exclusive data over blocks 0 and 1 and then drops
// into a control-network partition; another client overwrites block 0 and
// keeps re-reading it, while client 0's local process also re-reads its own
// cache. Block 1 is never touched by anyone else.
Outcome run_policy(RecoveryMode recovery, double partition_heals_at = -1.0) {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(8);
  cfg.recovery = recovery;

  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  const std::uint32_t bs = cfg.block_size;
  const FileId file = sc.file_id(0);
  auto& c0 = sc.client(0);
  auto& c1 = sc.client(1);

  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
    for (std::uint64_t b : {0ULL, 1ULL}) {
      const std::uint64_t v = sc.next_version(file, b);
      verify::Stamp st{file, b, v, c0.id()};
      c0.write(sc.fd(0, 0), b * bs, verify::make_stamped_block(bs, st),
               [&sc, st, &c0](Status ok) {
                 if (ok.is_ok()) {
                   sc.history().on_buffered_write(sc.engine().now(), c0.id(), st);
                 }
               });
    }
  });
  sc.run_until_s(2.0);
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());

  Outcome out;
  double requested_at = 3.0;
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(requested_at), [&]() {
    c1.lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [&](Status st) {
      if (!st.is_ok()) return;
      out.waiter_granted = true;
      out.grant_delay_s = sc.engine().now().seconds() - requested_at;
      const std::uint64_t v = sc.next_version(file, 0);
      verify::Stamp stamp{file, 0, v, c1.id()};
      c1.write(sc.fd(1, 0), 0, verify::make_stamped_block(bs, stamp),
               [&sc, stamp, &c1](Status ok) {
                 if (ok.is_ok()) {
                   sc.history().on_buffered_write(sc.engine().now(), c1.id(), stamp);
                   c1.fsync(sc.fd(1, 0), [](Status) {});
                 }
               });
    });
  });

  // c0's local process keeps reading block 0 from its cache.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&, wtick = std::weak_ptr(tick)]() {
    if (c0.accepting()) {
      const sim::SimTime t0 = sc.engine().now();
      c0.read(sc.fd(0, 0), 0, bs, [&, t0](Result<Bytes> r) {
        if (!r.ok() || r.value().size() != bs) return;
        auto st = verify::decode_stamp(r.value());
        verify::ReadRec rec;
        rec.start = t0;
        rec.end = sc.engine().now();
        rec.client = c0.id();
        rec.file = file;
        rec.block = 0;
        rec.observed_version = st ? st->version : 0;
        sc.history().on_read(rec);
      });
    }
    sc.engine().schedule_after(sim::millis(500), [p = wtick.lock()]() { if (p) (*p)(); });
  };
  (*tick)();

  if (partition_heals_at > 0) {
    sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(partition_heals_at),
                            [&]() { sc.control_net().reachability().heal(); });
  }
  sc.run_until_s(45.0);
  auto result = sc.finish();
  out.violations = result.violations;
  return out;
}

TEST(RecoveryModes, LeaseAndFenceIsFullySafe) {
  auto out = run_policy(RecoveryMode::kLeaseAndFence);
  EXPECT_TRUE(out.waiter_granted);
  EXPECT_EQ(out.violations.total(), 0u);
  // Availability price: roughly tau(1+eps) plus retry detection.
  EXPECT_GT(out.grant_delay_s, 8.0);
  EXPECT_LT(out.grant_delay_s, 14.0);
}

TEST(RecoveryModes, LeaseOnlyIsSafeForPartitions) {
  // Without slow-computer effects, the lease alone carries the guarantee;
  // fencing is belt-and-braces (paper section 6).
  auto out = run_policy(RecoveryMode::kLeaseOnly);
  EXPECT_TRUE(out.waiter_granted);
  EXPECT_EQ(out.violations.total(), 0u);
}

TEST(RecoveryModes, FenceOnlyStrandsDirtyDataAndServesStaleReads) {
  auto out = run_policy(RecoveryMode::kFenceOnly);
  EXPECT_TRUE(out.waiter_granted);
  // Fast recovery...
  EXPECT_LT(out.grant_delay_s, 5.0);
  // ...but both guarantees break (section 2.1):
  EXPECT_GT(out.violations.stale_reads, 0u);   // victim reads its stale cache
  EXPECT_GT(out.violations.lost_updates, 0u);  // block 1's dirty data stranded
}

TEST(RecoveryModes, NaiveStealAllowsInconsistency) {
  auto out = run_policy(RecoveryMode::kNaiveSteal);
  EXPECT_TRUE(out.waiter_granted);
  // No fence, no lease: the victim's cache is stale and/or its late flush
  // can collide with the new holder.
  EXPECT_GT(out.violations.total(), 0u);
}

TEST(RecoveryModes, NoRecoveryBlocksForever) {
  auto out = run_policy(RecoveryMode::kNoRecovery);
  EXPECT_FALSE(out.waiter_granted);  // "unavailable indefinitely" (section 2)
  EXPECT_EQ(out.violations.write_order, 0u);
}

// Section 6: "To address slow computers, we use fencing in addition to the
// lease protocol... The fence prevents late commands, from a slow computer,
// from accessing the disk after locks are stolen."
TEST(RecoveryModes, SlowClientLateWriteStoppedOnlyByFence) {
  auto run_slow = [](RecoveryMode mode) {
    ScenarioConfig cfg;
    cfg.workload.num_clients = 2;
    cfg.workload.num_files = 1;
    cfg.workload.file_blocks = 2;
    cfg.workload.run_seconds = 60.0;
    cfg.lease.tau = sim::local_seconds(5);
    cfg.recovery = mode;
    Scenario sc(cfg);
    sc.setup();
    sc.run_until_s(1.0);
    const std::uint32_t bs = cfg.block_size;
    const FileId file = sc.file_id(0);
    auto& c0 = sc.client(0);

    c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
      const std::uint64_t v = sc.next_version(file, 0);
      verify::Stamp st{file, 0, v, c0.id()};
      c0.write(sc.fd(0, 0), 0, verify::make_stamped_block(bs, st), [&sc, st, &c0](Status ok) {
        if (ok.is_ok()) sc.history().on_buffered_write(sc.engine().now(), c0.id(), st);
      });
    });
    sc.run_until_s(1.5);

    // Isolate c0 AND make its SAN path crawl: its phase-4 flush will land
    // ~25s later — long after its lease expired and the lock moved on.
    sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
    sc.apply_failure(workload::FailureEvent{1.5, workload::FailureKind::kSlowSan, 0, 25.0});

    sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(2.0), [&]() {
      sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [&](Status st) {
        if (!st.is_ok()) return;
        const std::uint64_t v = sc.next_version(file, 0);
        verify::Stamp stamp{file, 0, v, sc.client(1).id()};
        sc.client(1).write(sc.fd(1, 0), 0, verify::make_stamped_block(bs, stamp),
                           [&sc, stamp](Status ok) {
                             if (ok.is_ok()) {
                               sc.history().on_buffered_write(sc.engine().now(),
                                                              sc.client(1).id(), stamp);
                               sc.client(1).fsync(sc.fd(1, 0), [](Status) {});
                             }
                           });
      });
    });

    sc.run_until_s(45.0);
    return verify::ConsistencyChecker::summarize(
        verify::ConsistencyChecker(sc.history()).check_all());
  };

  // Lease alone cannot stop the crawling write: it lands over the new
  // holder's data.
  auto lease_only = run_slow(RecoveryMode::kLeaseOnly);
  EXPECT_GT(lease_only.write_order, 0u);

  // With the fence, the late command bounces off the disk.
  auto lease_fence = run_slow(RecoveryMode::kLeaseAndFence);
  EXPECT_EQ(lease_fence.write_order, 0u);
  EXPECT_EQ(lease_fence.stale_reads, 0u);
}

TEST(RecoveryModes, HealedPartitionStillConvergesSafely) {
  // The partition heals mid-timeout; the NACK path finishes the job.
  auto out = run_policy(RecoveryMode::kLeaseAndFence, /*heals at*/ 6.0);
  EXPECT_TRUE(out.waiter_granted);
  EXPECT_EQ(out.violations.total(), 0u);
}

}  // namespace
}  // namespace stank
