// Paper section 6: server failure and client-driven lock reassertion.
//
// "Distributed file servers, like Storage Tank, that maintain lock and
// client state must recover that state after a server failure. ... Storage
// Tank uses a combined policy of lock reassertion and hardware supported
// replication."
//
// Verifies: a quick server restart preserves client caches (locks are
// reasserted during the grace period), fresh locks are refused during
// grace, conflicting reassertions are refused, and the grace period must
// cover tau(1+eps) or a still-isolated pre-crash lock holder can collide
// with a fresh grant.
#include <gtest/gtest.h>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig base_cfg() {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 2;
  cfg.workload.file_blocks = 4;
  cfg.workload.run_seconds = 120.0;
  cfg.lease.tau = sim::local_seconds(10);
  cfg.enable_trace = true;
  return cfg;
}

TEST(ServerRecovery, QuickRestartPreservesClientCacheViaReassertion) {
  Scenario sc(base_cfg());
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  const FileId file = sc.file_id(0);
  const std::uint32_t bs = sc.config().block_size;

  // Dirty, exclusively locked data.
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
    verify::Stamp st{file, 0, 1, c0.id()};
    c0.write(sc.fd(0, 0), 0, verify::make_stamped_block(bs, st), [](Status) {});
  });
  sc.run_until_s(2.0);
  ASSERT_GT(c0.cache().dirty_count(), 0u);

  // Server fails for half a second — well inside the client's lease.
  sc.server().crash();
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(2.5),
                          [&]() { sc.server().restart(); });
  // The client's next request discovers the restart (kStaleSession).
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    c0.getattr(sc.fd(0, 0), [](Result<protocol::FileAttr>) {});
  });
  sc.run_until_s(5.0);

  // The client re-registered under the new incarnation and reasserted.
  EXPECT_TRUE(c0.registered());
  EXPECT_EQ(c0.server_incarnation(), 2u);
  EXPECT_EQ(c0.lock_mode(sc.fd(0, 0)), protocol::LockMode::kExclusive);
  EXPECT_EQ(sc.server().locks().mode_of(c0.id(), file), protocol::LockMode::kExclusive);
  // THE point of reassertion: the dirty cache survived the server failure.
  EXPECT_GT(c0.cache().dirty_count(), 0u);
  EXPECT_NE(c0.lease_phase(), core::LeasePhase::kExpired);

  // And nothing was lost end to end.
  auto r = sc.finish();
  EXPECT_EQ(r.violations.total(), 0u);
}

TEST(ServerRecovery, FreshLocksRefusedDuringGraceThenGranted) {
  auto cfg = base_cfg();
  cfg.lease.tau = sim::local_seconds(5);
  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);

  sc.server().crash();
  sc.server().restart();
  EXPECT_TRUE(sc.server().in_grace());

  // A fresh lock request during grace is asked to retry; the client-side
  // pump keeps the waiter alive and succeeds once grace ends (~5s).
  bool granted = false;
  double granted_at = -1;
  sc.client(0).lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status st) {
    granted = st.is_ok();
    granted_at = sc.engine().now().seconds();
  });
  sc.run_until_s(3.0);
  EXPECT_FALSE(granted);
  sc.run_until_s(8.0);
  EXPECT_TRUE(granted);
  EXPECT_GT(granted_at, 6.0);  // grace = tau(1+eps) from restart at ~1s
  EXPECT_FALSE(sc.server().in_grace());
}

TEST(ServerRecovery, ConflictingReassertionRefused) {
  // Force divergence: client 0 reasserts X on a file; a hand-crafted second
  // reassertion for the same file at X from client 1 must be refused.
  Scenario sc(base_cfg());
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  auto& c1 = sc.client(1);
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [](Status) {});
  // Make client 1 ALSO believe it holds X on the same file (divergent state
  // — cannot happen without a bug, which is exactly what the refusal guards).
  c1.lock(sc.fd(1, 1), protocol::LockMode::kExclusive, [](Status) {});
  sc.run_until_s(2.0);

  sc.server().crash();
  sc.server().restart();
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(2.2), [&]() {
    c0.getattr(sc.fd(0, 0), [](Result<protocol::FileAttr>) {});
    c1.getattr(sc.fd(1, 0), [](Result<protocol::FileAttr>) {});
  });
  sc.run_until_s(4.0);

  // c0 reasserted f0-X, c1 reasserted f1-X; both fine, no conflicts here.
  EXPECT_EQ(sc.server().locks().mode_of(c0.id(), sc.file_id(0)),
            protocol::LockMode::kExclusive);
  EXPECT_EQ(sc.server().locks().mode_of(c1.id(), sc.file_id(1)),
            protocol::LockMode::kExclusive);
  auto r = sc.finish();
  EXPECT_EQ(r.violations.total(), 0u);
}

TEST(ServerRecovery, WorkloadSurvivesServerFailureCleanly) {
  auto cfg = base_cfg();
  cfg.workload.num_clients = 4;
  cfg.workload.num_files = 6;
  cfg.workload.run_seconds = 40.0;
  cfg.workload.mean_interarrival_s = 0.05;
  cfg.lease.tau = sim::local_seconds(8);
  cfg.failures.add(15.0, workload::FailureKind::kServerCrash, 0);
  cfg.failures.add(16.0, workload::FailureKind::kServerRestart, 0);
  cfg.enable_trace = false;
  Scenario sc(cfg);
  auto r = sc.run();
  EXPECT_EQ(r.violations.total(), 0u);
  EXPECT_GT(r.reads_ok + r.writes_ok, 500u);
}

TEST(ServerRecovery, GraceMustCoverOutstandingLeases) {
  // The dangerous corner: a client is ISOLATED (and holds dirty data) when
  // the server dies. The restarted server has no lock state; if it grants
  // fresh locks before the isolated client's lease has run out, two writers
  // collide. With the default grace of tau(1+eps), the grant waits long
  // enough. (A too-short grace is exercised by bench_t7_server_recovery.)
  auto cfg = base_cfg();
  cfg.lease.tau = sim::local_seconds(6);
  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  const FileId file = sc.file_id(0);
  const std::uint32_t bs = sc.config().block_size;

  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
    const std::uint64_t v = sc.next_version(file, 0);
    verify::Stamp st{file, 0, v, c0.id()};
    c0.write(sc.fd(0, 0), 0, verify::make_stamped_block(bs, st), [&sc, st, &c0](Status ok) {
      if (ok.is_ok()) sc.history().on_buffered_write(sc.engine().now(), c0.id(), st);
    });
  });
  sc.run_until_s(2.0);

  // Isolate c0, then kill the server.
  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
  sc.server().crash();
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(2.5),
                          [&]() { sc.server().restart(); });

  // c1 writes the same block as soon as it can.
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [&](Status st) {
      if (!st.is_ok()) return;
      const std::uint64_t v = sc.next_version(file, 0);
      verify::Stamp stamp{file, 0, v, sc.client(1).id()};
      sc.client(1).write(sc.fd(1, 0), 0,
                         verify::make_stamped_block(bs, stamp), [&sc, stamp](Status ok) {
                           if (ok.is_ok()) {
                             sc.history().on_buffered_write(sc.engine().now(),
                                                            sc.client(1).id(), stamp);
                           }
                         });
    });
  });

  sc.run_until_s(30.0);
  auto r = sc.finish();
  // The isolated client flushed in phase 4 before its lease ran out; the
  // new grant waited out the grace; order is preserved.
  EXPECT_EQ(r.violations.total(), 0u);
}

}  // namespace
}  // namespace stank
