// End-to-end assertions of the lease protocol's guarantees across the full
// stack — the scenarios of the paper's sections 2 and 3 as executable facts.
#include <gtest/gtest.h>

#include "verify/stamp.hpp"
#include "workload/scenario.hpp"

namespace stank {
namespace {

using workload::Scenario;
using workload::ScenarioConfig;

ScenarioConfig base_cfg() {
  ScenarioConfig cfg;
  cfg.workload.num_clients = 2;
  cfg.workload.num_files = 1;
  cfg.workload.file_blocks = 8;
  cfg.workload.run_seconds = 60.0;
  cfg.lease.tau = sim::local_seconds(10);
  cfg.lease.epsilon = 1e-3;
  cfg.enable_trace = true;
  return cfg;
}

// The Figure 2 story: partitioned exclusive holder with dirty data; waiter
// eventually gets the lock; data survives.
struct PartitionStory {
  Scenario sc;
  double steal_at{-1};
  double client_expired_at{-1};
  double flush_completed_at{-1};
  double grant_at{-1};
  bool waiter_granted{false};

  explicit PartitionStory(ScenarioConfig cfg = base_cfg()) : sc(std::move(cfg)) {
    sc.setup();
    sc.run_until_s(1.0);
    auto& c0 = sc.client(0);
    const FileId file = sc.file_id(0);
    const std::uint32_t bs = sc.config().block_size;

    c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [&](Status) {
      verify::Stamp st{file, 0, 1, c0.id()};
      c0.write(sc.fd(0, 0), 0, verify::make_stamped_block(bs, st), [](Status) {});
    });
    sc.run_until_s(2.0);
    sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());

    sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
      sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [&](Status s) {
        waiter_granted = s.is_ok();
        grant_at = sc.engine().now().seconds();
      });
    });
    sc.run_until_s(40.0);

    for (const auto& e : sc.trace().events()) {
      if (e.category == "lock" && e.detail.find("stole") != std::string::npos) {
        steal_at = e.at.seconds();
      }
      if (e.category == "lease" && e.node == c0.id() &&
          e.detail.find("lease expired") != std::string::npos) {
        client_expired_at = e.at.seconds();
      }
    }
  }
};

TEST(LeaseProtocol, Theorem31_StealStrictlyAfterClientExpiry) {
  PartitionStory s;
  ASSERT_GT(s.steal_at, 0.0);
  ASSERT_GT(s.client_expired_at, 0.0);
  // The theorem, measured in the omniscient frame.
  EXPECT_GT(s.steal_at, s.client_expired_at);
}

TEST(LeaseProtocol, DirtyDataFlushedBeforeSteal) {
  PartitionStory s;
  // The victim's dirty block reached the disk (phase 4), and did so before
  // the steal.
  const auto writes = s.sc.history().disk_writes();
  ASSERT_FALSE(writes.empty());
  EXPECT_EQ(writes[0].initiator, s.sc.client_node(0));
  EXPECT_EQ(writes[0].stamp.version, 1u);
  EXPECT_LT(writes[0].at.seconds(), s.steal_at);
  EXPECT_EQ(s.sc.client(0).cache().dirty_count(), 0u);
}

TEST(LeaseProtocol, WaiterGetsLockAfterSteal) {
  PartitionStory s;
  EXPECT_TRUE(s.waiter_granted);
  EXPECT_GT(s.grant_at, s.steal_at - 0.001);
  // And the data it reads is the victim's flushed version.
  std::uint64_t observed = 0;
  s.sc.client(1).read(s.sc.fd(1, 0), 0, s.sc.config().block_size, [&](Result<Bytes> r) {
    if (r.ok()) {
      auto st = verify::decode_stamp(r.value());
      observed = st ? st->version : 0;
    }
  });
  s.sc.run_until_s(41.0);
  EXPECT_EQ(observed, 1u);
}

TEST(LeaseProtocol, VictimIsFencedAtSteal) {
  PartitionStory s;
  EXPECT_TRUE(s.sc.san().disk(DiskId{1}).is_fenced(s.sc.client_node(0)));
  // Its late I/O (slow-computer case) bounces off the disk.
  auto res = s.sc.san().disk(DiskId{1}).execute(storage::IoRequest{
      s.sc.client_node(0), DiskId{1}, storage::IoOp::kWrite, 0, 1,
      Bytes(s.sc.config().block_size, 0xEE)});
  EXPECT_EQ(res.status.error(), ErrorCode::kFenced);
}

TEST(LeaseProtocol, HealedVictimReregistersUnderFreshEpochAndIsUnfenced) {
  PartitionStory s;
  s.sc.control_net().reachability().heal();
  s.sc.run_until_s(45.0);
  EXPECT_TRUE(s.sc.client(0).registered());
  EXPECT_EQ(s.sc.server().session_epoch(s.sc.client_node(0)), 2u);
  EXPECT_FALSE(s.sc.san().disk(DiskId{1}).is_fenced(s.sc.client_node(0)));
  // And it can work again.
  bool ok = false;
  s.sc.client(0).getattr(s.sc.fd(0, 0), [&](Result<protocol::FileAttr> r) { ok = r.ok(); });
  s.sc.run_until_s(46.0);
  EXPECT_TRUE(ok);
}

TEST(LeaseProtocol, NoAckEverReachesSuspectClient) {
  PartitionStory s;
  // Heal the network while the server still bars the victim (post-steal,
  // pre-re-register is hard to catch; instead verify via counters that all
  // the victim's requests during its suspect window got NACKs, never ACKs).
  // The cleanest observable: the victim's lease agent saw NACKs only after
  // the server turned; its lease was never renewed past the partition.
  const auto& agent = *s.sc.client(0).lease_agent();
  EXPECT_LE(agent.lease_expiry().seconds(), s.steal_at);
}

TEST(LeaseProtocol, AsymmetricPartitionAlsoHandled) {
  // Only the client->server direction fails: the client still hears the
  // server's demands but its ACKs/compliance never arrive. The server must
  // still converge via the lease timeout.
  auto cfg = base_cfg();
  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [](Status) {});
  sc.run_until_s(2.0);
  sc.control_net().reachability().sever(c0.id(), sc.server_node());

  bool granted = false;
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive,
                      [&](Status s) { granted = s.is_ok(); });
  });
  sc.run_until_s(40.0);
  EXPECT_TRUE(granted);
  auto violations = verify::ConsistencyChecker(sc.history()).check_all();
  EXPECT_TRUE(violations.empty());
}

TEST(LeaseProtocol, TransientPartitionNackFlow) {
  auto cfg = base_cfg();
  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  auto& c0 = sc.client(0);
  c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [](Status) {});
  sc.run_until_s(2.0);

  sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
    sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [](Status) {});
  });
  // Heal after the demand retries exhausted but long before the lease runs
  // out: the server is now timing the victim out while the victim thinks
  // everything is fine.
  sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(6.0),
                          [&]() { sc.control_net().reachability().heal(); });
  sc.run_until_s(7.0);
  EXPECT_TRUE(sc.server().authority().is_suspect(c0.id()));

  // The victim's next message is NACKed and it enters phase 3 directly.
  sc.run_until_s(9.0);
  EXPECT_GT(c0.lease_agent()->nacks_seen(), 0u);
  EXPECT_GE(static_cast<int>(c0.lease_phase()),
            static_cast<int>(core::LeasePhase::kSuspect));

  // Full recovery: lease expires, server steals, victim re-registers.
  sc.run_until_s(30.0);
  EXPECT_TRUE(c0.registered());
  EXPECT_EQ(sc.server().session_epoch(c0.id()), 2u);
  auto violations = verify::ConsistencyChecker(sc.history()).check_all();
  EXPECT_TRUE(violations.empty());
}

// Ablation (DESIGN.md section 6): allow_early_reregister trusts a
// re-registering client's claim that its own lease has expired and steals
// immediately, instead of waiting out the rest of tau(1+eps).
TEST(LeaseProtocol, EarlyReregisterShortensRecovery) {
  auto recovery_time = [](bool early) {
    auto cfg = base_cfg();
    cfg.lease.tau = sim::local_seconds(8);
    cfg.lease.allow_early_reregister = early;
    Scenario sc(cfg);
    sc.setup();
    sc.run_until_s(1.0);
    auto& c0 = sc.client(0);
    c0.lock(sc.fd(0, 0), protocol::LockMode::kExclusive, [](Status) {});
    sc.run_until_s(2.0);

    // Transient partition long enough for the server to mark c0 suspect.
    sc.control_net().reachability().sever_pair(c0.id(), sc.server_node());
    sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(3.0), [&]() {
      sc.client(1).lock(sc.fd(1, 0), protocol::LockMode::kExclusive, [](Status) {});
    });
    sc.engine().schedule_at(sim::SimTime{} + sim::seconds_d(6.0),
                            [&]() { sc.control_net().reachability().heal(); });
    // c0 gets NACKed, rides phases to expiry (~10s), then re-registers. The
    // conservative server still NACKs the registration until its own timer
    // (~15s) runs out; the early variant accepts at once.
    sc.run_until_s(30.0);
    EXPECT_EQ(verify::ConsistencyChecker(sc.history()).check_all().size(), 0u);
    double registered_at = -1;
    for (const auto& e : sc.trace().events()) {
      if (e.node == sc.server_node() && e.category == "session" &&
          e.detail.find("client 100 registered epoch 2") != std::string::npos) {
        registered_at = e.at.seconds();
      }
    }
    return registered_at;
  };

  const double conservative = recovery_time(false);
  const double early = recovery_time(true);
  ASSERT_GT(conservative, 0.0);
  ASSERT_GT(early, 0.0);
  // The early variant readmits the client noticeably sooner, safely (the
  // client only re-registers after ITS lease truly expired).
  EXPECT_LT(early + 1.0, conservative);
}

TEST(LeaseProtocol, ServerStaysPassiveThroughItAll) {
  // Before any failure, with two busy clients, the server performs zero
  // lease work.
  auto cfg = base_cfg();
  Scenario sc(cfg);
  sc.setup();
  sc.run_until_s(1.0);
  for (int i = 0; i < 50; ++i) {
    sc.engine().schedule_at(sc.engine().now() + sim::millis(50 * (i + 1)), [&sc, i]() {
      sc.client(i % 2).getattr(sc.fd(i % 2, 0), [](Result<protocol::FileAttr>) {});
    });
  }
  sc.run_until_s(10.0);
  EXPECT_EQ(sc.server().counters().lease_ops, 0u);
  EXPECT_EQ(sc.server().lease_state_bytes(), 0u);
}

}  // namespace
}  // namespace stank
