// rt::Barrier: the rendezvous that makes the sharded engine's window
// protocol safe. These tests pin the two properties the engine relies on:
// no thread passes a barrier before every participant arrives, and the
// arrive/wait edge publishes writes made before it (acquire/release).
#include "rt/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace stank::rt {
namespace {

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier b(1);
  for (int i = 0; i < 1000; ++i) {
    b.arrive_and_wait();  // must return immediately, every phase
  }
  SUCCEED();
}

TEST(Barrier, NoThreadPassesEarly) {
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 500;
  Barrier b(kThreads);
  std::atomic<int> arrivals{0};
  std::atomic<int> violations{0};

  std::vector<std::jthread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&]() {
      for (int phase = 0; phase < kPhases; ++phase) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        b.arrive_and_wait();
        // Every participant of this phase must have arrived by now. The
        // counter is cumulative, so after phase p it reads at least
        // (p + 1) * kThreads from every thread's viewpoint.
        if (arrivals.load(std::memory_order_relaxed) <
            static_cast<int>((static_cast<unsigned>(phase) + 1) * kThreads)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        b.arrive_and_wait();  // keep phases separated, like the engine's loop
      }
    });
  }
  ts.clear();  // join
  EXPECT_EQ(violations.load(), 0);
}

TEST(Barrier, PublishesPlainWritesAcrossPhases) {
  // The engine writes next_event_ns_[s] with plain stores before the barrier
  // and reads other shards' entries after it. Model exactly that: each
  // thread writes its own cell, crosses the barrier, and checks everyone's.
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 300;
  Barrier b(kThreads);
  std::vector<std::uint64_t> cells(kThreads, 0);
  std::atomic<int> bad{0};

  std::vector<std::jthread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t]() {
      for (int phase = 1; phase <= kPhases; ++phase) {
        cells[t] = static_cast<std::uint64_t>(phase);  // plain store
        b.arrive_and_wait();
        for (unsigned o = 0; o < kThreads; ++o) {
          if (cells[o] != static_cast<std::uint64_t>(phase)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
        b.arrive_and_wait();  // nobody starts the next phase's writes early
      }
    });
  }
  ts.clear();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace stank::rt
