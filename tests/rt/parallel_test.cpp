#include "rt/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace stank::rt {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroTasksIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SingleThreadFallback) {
  int count = 0;
  parallel_for(10, [&](std::size_t) { ++count; }, /*threads=*/1);
  EXPECT_EQ(count, 10);
}

TEST(ParallelMap, CollectsInIndexOrder) {
  auto out = parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelFor, ResultsDeterministicRegardlessOfThreads) {
  auto run = [](unsigned threads) {
    std::vector<int> v(64, 0);
    parallel_for(v.size(), [&](std::size_t i) { v[i] = static_cast<int>(i) * 3; }, threads);
    return std::accumulate(v.begin(), v.end(), 0);
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(4), run(16));
}

TEST(ParallelFor, MoreTasksThanThreads) {
  std::atomic<int> count{0};
  parallel_for(10000, [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); }, 3);
  EXPECT_EQ(count.load(), 10000);
}

}  // namespace
}  // namespace stank::rt
