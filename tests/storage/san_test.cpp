#include "storage/san.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace stank::storage {
namespace {

struct Fixture {
  sim::Engine engine;
  SanFabric san;

  explicit Fixture(SanConfig cfg = SanConfig{sim::micros(500), sim::Duration{0}, 0.0,
                                             sim::millis(50), {}})
      : san(engine, sim::Rng(1), cfg) {
    san.add_disk(DiskId{1}, 256, 64);
  }

  IoResult run_io(IoRequest req) {
    std::optional<IoResult> out;
    san.submit(std::move(req), [&](IoResult r) { out = std::move(r); });
    engine.run();
    EXPECT_TRUE(out.has_value());
    return std::move(*out);
  }
};

IoRequest mk_write(BlockAddr addr, std::uint8_t fill) {
  IoRequest r;
  r.initiator = NodeId{100};
  r.disk = DiskId{1};
  r.op = IoOp::kWrite;
  r.addr = addr;
  r.count = 1;
  r.data = Bytes(64, fill);
  return r;
}

IoRequest mk_read(BlockAddr addr) {
  IoRequest r;
  r.initiator = NodeId{100};
  r.disk = DiskId{1};
  r.op = IoOp::kRead;
  r.addr = addr;
  r.count = 1;
  return r;
}

TEST(SanFabric, CompletesIoAfterServiceTime) {
  Fixture f;
  bool done = false;
  std::int64_t completion_ns = 0;
  f.san.submit(mk_write(0, 1), [&](IoResult r) {
    done = r.status.is_ok();
    completion_ns = f.engine.now().ns;
  });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(completion_ns, 500'000);
}

TEST(SanFabric, WriteVisibleToSubsequentRead) {
  Fixture f;
  ASSERT_TRUE(f.run_io(mk_write(7, 0x77)).status.is_ok());
  auto rd = f.run_io(mk_read(7));
  ASSERT_TRUE(rd.status.is_ok());
  EXPECT_EQ(rd.data, Bytes(64, 0x77));
}

TEST(SanFabric, PartitionFailsWithTimeoutDelay) {
  Fixture f;
  f.san.reachability().sever(NodeId{100}, DiskId{1});
  std::int64_t at = 0;
  Status st = Status::ok();
  f.san.submit(mk_write(0, 1), [&](IoResult r) {
    st = r.status;
    at = f.engine.now().ns;
  });
  f.engine.run();
  EXPECT_EQ(st.error(), ErrorCode::kIoError);
  EXPECT_EQ(at, 50'000'000);  // the error_timeout, not instantaneous
  EXPECT_EQ(f.san.stats().ios_failed_partition, 1u);
}

TEST(SanFabric, MidFlightPartitionFailsIo) {
  Fixture f;
  Status st = Status::ok();
  f.san.submit(mk_write(0, 1), [&](IoResult r) { st = r.status; });
  f.engine.schedule_after(sim::micros(100),
                          [&]() { f.san.reachability().sever(NodeId{100}, DiskId{1}); });
  f.engine.run();
  EXPECT_EQ(st.error(), ErrorCode::kIoError);
}

TEST(SanFabric, FencedInitiatorGetsKFenced) {
  Fixture f;
  f.san.disk(DiskId{1}).fence(NodeId{100});
  EXPECT_EQ(f.run_io(mk_write(0, 1)).status.error(), ErrorCode::kFenced);
  EXPECT_EQ(f.san.stats().ios_failed_fenced, 1u);
}

TEST(SanFabric, AdminFenceTravelsTheSan) {
  Fixture f;
  Status st{ErrorCode::kTimeout};
  f.san.submit_admin(AdminRequest{NodeId{1}, DiskId{1}, AdminOp::kFence, NodeId{100}},
                     [&](Status s) { st = s; });
  EXPECT_FALSE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));  // not yet: latency
  f.engine.run();
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));
}

TEST(SanFabric, AdminFenceFailsAcrossPartition) {
  Fixture f;
  f.san.reachability().sever(NodeId{1}, DiskId{1});
  Status st = Status::ok();
  f.san.submit_admin(AdminRequest{NodeId{1}, DiskId{1}, AdminOp::kFence, NodeId{100}},
                     [&](Status s) { st = s; });
  f.engine.run();
  EXPECT_EQ(st.error(), ErrorCode::kIoError);
  EXPECT_FALSE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));
}

TEST(SanFabric, AdminUnfence) {
  Fixture f;
  f.san.disk(DiskId{1}).fence(NodeId{100});
  f.san.submit_admin(AdminRequest{NodeId{1}, DiskId{1}, AdminOp::kUnfence, NodeId{100}},
                     [](Status) {});
  f.engine.run();
  EXPECT_FALSE(f.san.disk(DiskId{1}).is_fenced(NodeId{100}));
}

TEST(SanFabric, SlowInitiatorDelayApplied) {
  SanConfig cfg{sim::micros(500), sim::Duration{0}, 0.0, sim::millis(50), {}};
  cfg.initiator_delay[NodeId{100}] = sim::millis(20);
  Fixture f(cfg);
  std::int64_t at = 0;
  f.san.submit(mk_write(0, 1), [&](IoResult) { at = f.engine.now().ns; });
  f.engine.run();
  EXPECT_EQ(at, 20'500'000);
}

TEST(SanFabric, ObservationTapSeesSuccessfulWrites) {
  Fixture f;
  int taps = 0;
  f.san.on_io = [&](const IoRequest& rq, const IoResult& rs, sim::SimTime) {
    EXPECT_EQ(rq.op, IoOp::kWrite);
    EXPECT_TRUE(rs.status.is_ok());
    ++taps;
  };
  f.run_io(mk_write(0, 1));
  EXPECT_EQ(taps, 1);
  // Fenced I/O is not observed.
  f.san.disk(DiskId{1}).fence(NodeId{100});
  f.run_io(mk_write(1, 1));
  EXPECT_EQ(taps, 1);
}

TEST(SanFabric, StatsAccumulate) {
  Fixture f;
  f.run_io(mk_write(0, 1));
  f.run_io(mk_read(0));
  EXPECT_EQ(f.san.stats().ios_submitted, 2u);
  EXPECT_EQ(f.san.stats().ios_completed, 2u);
  EXPECT_EQ(f.san.stats().bytes_transferred, 128u);
}

}  // namespace
}  // namespace stank::storage
