#include "storage/virtual_disk.hpp"

#include <gtest/gtest.h>

namespace stank::storage {
namespace {

IoRequest write_req(NodeId who, BlockAddr addr, std::uint32_t count, std::uint8_t fill,
                    std::uint32_t bs = 64) {
  IoRequest r;
  r.initiator = who;
  r.disk = DiskId{1};
  r.op = IoOp::kWrite;
  r.addr = addr;
  r.count = count;
  r.data = Bytes(static_cast<std::size_t>(count) * bs, fill);
  return r;
}

IoRequest read_req(NodeId who, BlockAddr addr, std::uint32_t count) {
  IoRequest r;
  r.initiator = who;
  r.disk = DiskId{1};
  r.op = IoOp::kRead;
  r.addr = addr;
  r.count = count;
  return r;
}

TEST(VirtualDisk, WriteThenReadRoundTrips) {
  VirtualDisk d(DiskId{1}, 128, 64);
  auto wr = d.execute(write_req(NodeId{1}, 10, 2, 0xAA));
  ASSERT_TRUE(wr.status.is_ok());
  auto rd = d.execute(read_req(NodeId{1}, 10, 2));
  ASSERT_TRUE(rd.status.is_ok());
  EXPECT_EQ(rd.data, Bytes(128, 0xAA));
}

TEST(VirtualDisk, UnwrittenBlocksReadAsZero) {
  VirtualDisk d(DiskId{1}, 128, 64);
  auto rd = d.execute(read_req(NodeId{1}, 5, 1));
  ASSERT_TRUE(rd.status.is_ok());
  EXPECT_EQ(rd.data, Bytes(64, 0));
}

TEST(VirtualDisk, PartialOverlapReads) {
  VirtualDisk d(DiskId{1}, 128, 64);
  (void)d.execute(write_req(NodeId{1}, 3, 1, 0x11));
  auto rd = d.execute(read_req(NodeId{1}, 2, 3));  // blocks 2,3,4 — only 3 written
  ASSERT_TRUE(rd.status.is_ok());
  EXPECT_EQ(rd.data[0], 0);
  EXPECT_EQ(rd.data[64], 0x11);
  EXPECT_EQ(rd.data[128], 0);
}

TEST(VirtualDisk, BoundsChecked) {
  VirtualDisk d(DiskId{1}, 16, 64);
  EXPECT_EQ(d.execute(read_req(NodeId{1}, 15, 2)).status.error(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(d.execute(read_req(NodeId{1}, 16, 1)).status.error(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(d.execute(read_req(NodeId{1}, 0, 0)).status.error(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(d.execute(read_req(NodeId{1}, 15, 1)).status.is_ok());
}

TEST(VirtualDisk, WrongSizedWriteRejected) {
  VirtualDisk d(DiskId{1}, 16, 64);
  IoRequest r = write_req(NodeId{1}, 0, 2, 0xFF);
  r.data.resize(100);  // not 2 * 64
  EXPECT_EQ(d.execute(r).status.error(), ErrorCode::kInvalidArgument);
}

TEST(VirtualDisk, FencingRejectsOnlyTheFencedInitiator) {
  VirtualDisk d(DiskId{1}, 16, 64);
  d.fence(NodeId{7});
  EXPECT_TRUE(d.is_fenced(NodeId{7}));
  EXPECT_EQ(d.execute(write_req(NodeId{7}, 0, 1, 0x01)).status.error(), ErrorCode::kFenced);
  EXPECT_EQ(d.execute(read_req(NodeId{7}, 0, 1)).status.error(), ErrorCode::kFenced);
  EXPECT_TRUE(d.execute(write_req(NodeId{8}, 0, 1, 0x02)).status.is_ok());
  EXPECT_EQ(d.fenced_rejections(), 2u);
}

TEST(VirtualDisk, UnfenceRestoresAccess) {
  VirtualDisk d(DiskId{1}, 16, 64);
  d.fence(NodeId{7});
  d.unfence(NodeId{7});
  EXPECT_FALSE(d.is_fenced(NodeId{7}));
  EXPECT_TRUE(d.execute(write_req(NodeId{7}, 0, 1, 0x01)).status.is_ok());
}

TEST(VirtualDisk, KeyedUnfenceLocksOutOldRegistrations) {
  VirtualDisk d(DiskId{1}, 16, 64);
  // Commands under the initial registration (key 1).
  IoRequest w = write_req(NodeId{7}, 0, 1, 0x01);
  w.io_key = 1;
  EXPECT_TRUE(d.execute(w).status.is_ok());

  d.fence(NodeId{7});
  EXPECT_EQ(d.execute(w).status.error(), ErrorCode::kFenced);

  // Re-registration installs key 2: only key-2 commands are honored.
  d.unfence(NodeId{7}, 2);
  EXPECT_FALSE(d.is_fenced(NodeId{7}));
  EXPECT_EQ(d.execute(w).status.error(), ErrorCode::kFenced);  // late pre-fence command
  IoRequest w2 = write_req(NodeId{7}, 1, 1, 0x02);
  w2.io_key = 2;
  EXPECT_TRUE(d.execute(w2).status.is_ok());
}

TEST(VirtualDisk, UnkeyedUnfenceRestoresAcceptAny) {
  VirtualDisk d(DiskId{1}, 16, 64);
  d.fence(NodeId{7});
  d.unfence(NodeId{7});  // key 0: accept anything again
  IoRequest w = write_req(NodeId{7}, 0, 1, 0x01);
  w.io_key = 42;
  EXPECT_TRUE(d.execute(w).status.is_ok());
}

TEST(VirtualDisk, KeysArePerInitiator) {
  VirtualDisk d(DiskId{1}, 16, 64);
  d.fence(NodeId{7});
  d.unfence(NodeId{7}, 5);
  // Another initiator is unaffected.
  IoRequest w = write_req(NodeId{8}, 0, 1, 0x01);
  w.io_key = 0;
  EXPECT_TRUE(d.execute(w).status.is_ok());
}

TEST(VirtualDisk, PeekSeesLatestContentWithoutCountingAsRead) {
  VirtualDisk d(DiskId{1}, 16, 64);
  (void)d.execute(write_req(NodeId{1}, 4, 1, 0x55));
  const auto reads_before = d.reads_served();
  EXPECT_EQ(d.peek(4), Bytes(64, 0x55));
  EXPECT_TRUE(d.peek(5).empty());
  EXPECT_TRUE(d.ever_written(4));
  EXPECT_FALSE(d.ever_written(5));
  EXPECT_EQ(d.reads_served(), reads_before);
}

TEST(VirtualDisk, CountsServedOps) {
  VirtualDisk d(DiskId{1}, 16, 64);
  (void)d.execute(write_req(NodeId{1}, 0, 1, 1));
  (void)d.execute(read_req(NodeId{1}, 0, 1));
  (void)d.execute(read_req(NodeId{1}, 0, 1));
  EXPECT_EQ(d.writes_served(), 1u);
  EXPECT_EQ(d.reads_served(), 2u);
}

}  // namespace
}  // namespace stank::storage
