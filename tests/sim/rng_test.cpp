#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace stank::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::map<std::int64_t, int> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    ++seen[v];
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  for (const auto& [v, n] : seen) {
    EXPECT_GT(n, 1500) << "value " << v << " badly underrepresented";
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.uniform_int(7, 7), 7);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng r(17);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.zipf(4, 0.0)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng r(19);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[r.zipf(16, 1.0)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 4 * counts[15]);
}

TEST(Rng, ZipfAlwaysInRange) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.zipf(7, 0.9), 7u);
  }
  // Interleave with another (n, s) to exercise the cache invalidation.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.zipf(3, 0.1), 3u);
    EXPECT_LT(r.zipf(7, 0.9), 7u);
  }
}

TEST(Rng, ZipfTableMatchesMemberZipfDrawForDraw) {
  // The shared table exists so a million per-member Rngs don't each cache
  // their own n-entry CDF; swapping zipf(n, s) for table.pick(uniform())
  // must not move the RNG stream or change a single draw.
  const ZipfTable table(512, 0.9);
  Rng a(31);
  Rng b(31);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.zipf(512, 0.9), table.pick(b.uniform()));
  }
  EXPECT_EQ(a.next_u64(), b.next_u64());  // streams still aligned
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

}  // namespace
}  // namespace stank::sim
