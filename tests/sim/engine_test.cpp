#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace stank::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime{30}, [&]() { order.push_back(3); });
  e.schedule_at(SimTime{10}, [&]() { order.push_back(1); });
  e.schedule_at(SimTime{20}, [&]() { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now().ns, 30);
}

TEST(Engine, SameTimeFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(SimTime{100}, [&, i]() { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, EventsMayScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      e.schedule_after(Duration{1}, recurse);
    }
  };
  e.schedule_at(SimTime{0}, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now().ns, 4);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  TimerId id = e.schedule_at(SimTime{10}, [&]() { ran = true; });
  EXPECT_TRUE(e.pending(id));
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.pending(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilStopsAtHorizonInclusive) {
  Engine e;
  std::vector<int> hits;
  e.schedule_at(SimTime{10}, [&]() { hits.push_back(10); });
  e.schedule_at(SimTime{20}, [&]() { hits.push_back(20); });
  e.schedule_at(SimTime{21}, [&]() { hits.push_back(21); });
  e.run_until(SimTime{20});
  EXPECT_EQ(hits, (std::vector<int>{10, 20}));
  EXPECT_EQ(e.now().ns, 20);
  e.run_until(SimTime{30});
  EXPECT_EQ(hits, (std::vector<int>{10, 20, 21}));
  EXPECT_EQ(e.now().ns, 30);  // advances to the horizon even when idle
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(SimTime{i}, [&]() {
      if (++count == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(SimTime{1}, []() {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsExecutedAndPending) {
  Engine e;
  e.schedule_at(SimTime{1}, []() {});
  e.schedule_at(SimTime{2}, []() {});
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(e.events_executed(), 2u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, CancelledEventsDoNotBlockRunUntil) {
  Engine e;
  TimerId id = e.schedule_at(SimTime{5}, []() {});
  e.cancel(id);
  e.run_until(SimTime{10});
  EXPECT_EQ(e.now().ns, 10);
}

TEST(Engine, StopDuringRunUntilLeavesClockAtLastEvent) {
  // A stopped run must NOT advance the clock to the horizon: the caller is
  // abandoning the run mid-way, and jumping time forward would let later
  // schedule_at() calls observe a future they never simulated.
  Engine e;
  e.schedule_at(SimTime{10}, [&]() { e.stop(); });
  e.schedule_at(SimTime{20}, []() {});
  e.run_until(SimTime{100});
  EXPECT_EQ(e.now().ns, 10);
  EXPECT_EQ(e.events_pending(), 1u);
  // Resuming runs the rest and only then advances to the horizon.
  e.run_until(SimTime{100});
  EXPECT_EQ(e.now().ns, 100);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, CancelChurnKeepsQueueMemoryBounded) {
  // The lease keep-alive pattern: a fixed population of timers, each
  // cancelled and re-armed long before it fires. Tombstone compaction must
  // keep the heap O(live timers) no matter how many cancels pass through.
  constexpr std::size_t kLive = 1'000;
  constexpr std::uint64_t kIters = 200'000;
  Engine e;
  std::vector<TimerId> ids(kLive);
  std::int64_t t = 1'000'000;
  for (std::size_t i = 0; i < kLive; ++i) {
    ids[i] = e.schedule_at(SimTime{t + static_cast<std::int64_t>(i)}, []() {});
  }
  std::uint64_t x = 0x243f6a8885a308d3ull;  // deterministic xorshift
  std::size_t max_depth = 0;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto k = static_cast<std::size_t>(x % kLive);
    EXPECT_TRUE(e.cancel(ids[k]));
    ++t;
    ids[k] = e.schedule_at(SimTime{t + 1'000'000}, []() {});
    max_depth = std::max(max_depth, e.queue_depth());
  }
  // Compaction fires when tombstones exceed half the heap, so the heap can
  // hold at most ~2x the live timers (plus the small no-compact floor).
  EXPECT_EQ(e.events_pending(), kLive);
  EXPECT_LE(max_depth, 2 * kLive + 65);
  // The queue still drains correctly after heavy churn.
  for (std::size_t i = 0; i < kLive; ++i) {
    EXPECT_TRUE(e.pending(ids[i]));
  }
  e.run();
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_EQ(e.queue_depth(), 0u);
  EXPECT_EQ(e.events_executed(), kLive);
}

TEST(Engine, CancelReturnsFalseForStaleIdAfterSlotReuse) {
  Engine e;
  TimerId a = e.schedule_at(SimTime{1}, []() {});
  ASSERT_TRUE(e.cancel(a));
  // The slot is recycled with a new generation; the old id must stay dead.
  TimerId b = e.schedule_at(SimTime{2}, []() {});
  EXPECT_FALSE(e.cancel(a));
  EXPECT_FALSE(e.pending(a));
  EXPECT_TRUE(e.pending(b));
  e.run();
  EXPECT_EQ(e.events_executed(), 1u);
}

TEST(EngineDeathTest, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_at(SimTime{10}, []() {});
  e.run();
  EXPECT_DEATH(e.schedule_at(SimTime{5}, []() {}), "past");
}

TEST(Engine, SelfCancellationInsideEventIsSafe) {
  Engine e;
  // An event cancelling a later event that was already popped as a tombstone.
  TimerId victim{};
  victim = e.schedule_at(SimTime{10}, []() { FAIL() << "should have been cancelled"; });
  e.schedule_at(SimTime{5}, [&]() { e.cancel(victim); });
  e.run();
}

}  // namespace
}  // namespace stank::sim
