#include "sim/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stank::sim {
namespace {

TEST(LocalClock, UnitRateIsIdentity) {
  LocalClock c(1.0);
  EXPECT_EQ(c.local_now(SimTime{1'000'000}).ns, 1'000'000);
  EXPECT_EQ(c.to_global(LocalDuration{500}).ns, 500);
}

TEST(LocalClock, FastClockCountsMore) {
  LocalClock c(1.01);  // runs 1% fast
  EXPECT_EQ(c.local_now(SimTime{1'000'000}).ns, 1'010'000);
  // A local duration elapses in less global time on a fast clock.
  EXPECT_EQ(c.to_global(LocalDuration{1'010'000}).ns, 1'000'000);
}

TEST(LocalClock, SlowClockCountsLess) {
  LocalClock c(0.99);
  EXPECT_EQ(c.local_now(SimTime{1'000'000}).ns, 990'000);
  EXPECT_GT(c.to_global(LocalDuration{1'000'000}).ns, 1'000'000);
}

TEST(LocalClock, EpochOffsetApplies) {
  LocalClock c(1.0, LocalTime{12345});
  EXPECT_EQ(c.local_now(SimTime{0}).ns, 12345);
}

TEST(LocalClock, RoundTripConversionIsNearIdentity) {
  LocalClock c(1.0001);
  for (std::int64_t d : {1'000LL, 777'777LL, 123'456'789LL}) {
    const auto back = c.to_local(c.to_global(LocalDuration{d}));
    EXPECT_NEAR(static_cast<double>(back.ns), static_cast<double>(d), 1.0);
  }
}

TEST(LocalClock, RateSynchronizationBound) {
  const double eps = 0.01;
  LocalClock a(1.004);
  LocalClock b(0.996);
  EXPECT_TRUE(a.rate_synchronized_with(b, eps));
  EXPECT_TRUE(b.rate_synchronized_with(a, eps));

  LocalClock fast(1.02);
  EXPECT_FALSE(fast.rate_synchronized_with(b, eps));
}

TEST(NodeClock, SchedulesInLocalUnits) {
  Engine e;
  // A clock running at half speed: local 1s == global 2s.
  NodeClock nc(e, LocalClock(0.5));
  std::int64_t fired_at = -1;
  nc.schedule_after(local_seconds(1), [&]() { fired_at = e.now().ns; });
  e.run();
  EXPECT_EQ(fired_at, 2'000'000'000);
}

TEST(NodeClock, NowTracksEngine) {
  Engine e;
  NodeClock nc(e, LocalClock(2.0));
  e.schedule_at(SimTime{1'000}, []() {});
  e.run();
  EXPECT_EQ(nc.now().ns, 2'000);
}

TEST(NodeClock, CancelWorks) {
  Engine e;
  NodeClock nc(e, LocalClock(1.0));
  bool ran = false;
  TimerId id = nc.schedule_after(local_millis(5), [&]() { ran = true; });
  EXPECT_TRUE(nc.pending(id));
  nc.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(SkewedRate, AdversarialExtremes) {
  const double eps = 0.02;
  EXPECT_DOUBLE_EQ(skewed_rate(eps, 0.5, +1), 1.02);
  EXPECT_DOUBLE_EQ(skewed_rate(eps, 0.5, -1), 1.0 / 1.02);
}

TEST(SkewedRate, RandomDrawStaysInBand) {
  const double eps = 0.05;
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double r = skewed_rate(eps, u);
    EXPECT_GE(r, 1.0 / (1.0 + eps) - 1e-12);
    EXPECT_LE(r, 1.0 + eps + 1e-12);
  }
}

TEST(LocalClockDeathTest, NonPositiveRateAborts) {
  EXPECT_DEATH(LocalClock(0.0), "advance");
}

}  // namespace
}  // namespace stank::sim
