// ShardedEngine: K independent event queues advanced in conservative time
// windows. These tests pin the determinism contract — K=1 reproduces the
// serial engine exactly, and a fixed (schedule, K) executes identically at
// every worker-thread count — plus the window mechanics (exchange callbacks
// at barriers, idle-gap skipping, resumable horizons).
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "obs/sampler.hpp"
#include "sim/engine.hpp"

namespace stank::sim {
namespace {

using Log = std::vector<std::pair<std::int64_t, int>>;  // (time ns, tag)

// Builds the same moderately tangled schedule on any engine: co-timed
// events, nested scheduling from callbacks, and a cancelled timer.
void build_schedule(Engine& eng, Log& log) {
  Engine* e = &eng;  // callbacks outlive this function's parameters
  e->schedule_at(SimTime{100}, [&log, e]() {
    log.emplace_back(e->now().ns, 1);
    e->schedule_after(Duration{50}, [&log, e]() { log.emplace_back(e->now().ns, 2); });
  });
  e->schedule_at(SimTime{100}, [&log, e]() { log.emplace_back(e->now().ns, 3); });
  const TimerId doomed = e->schedule_at(SimTime{120}, [&log, e]() {
    log.emplace_back(e->now().ns, 99);  // must never run
  });
  e->schedule_at(SimTime{110}, [&log, e, doomed]() {
    log.emplace_back(e->now().ns, 4);
    e->cancel(doomed);
  });
  e->schedule_at(SimTime{5'000'000}, [&log, e]() { log.emplace_back(e->now().ns, 5); });
}

TEST(ShardedEngine, K1MatchesSerialEngine) {
  Log serial_log;
  Engine serial;
  build_schedule(serial, serial_log);
  serial.run_until(SimTime{10'000'000});

  Log sharded_log;
  ShardedEngine::Config cfg;
  cfg.shards = 1;
  ShardedEngine sharded(cfg);
  build_schedule(sharded.shard(0), sharded_log);
  sharded.run_until(SimTime{10'000'000});

  EXPECT_EQ(serial_log, sharded_log);
  EXPECT_EQ(serial.events_executed(), sharded.events_executed());
  EXPECT_EQ(sharded.now().ns, 10'000'000);
  EXPECT_EQ(sharded.shard(0).now().ns, 10'000'000);
}

TEST(ShardedEngine, ThreadCountDoesNotChangeExecution) {
  // The same 4-shard schedule must produce identical per-shard logs whether
  // the windows run on 1, 2, or 8 worker threads.
  std::vector<std::vector<Log>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    ShardedEngine::Config cfg;
    cfg.shards = 4;
    cfg.threads = threads;
    ShardedEngine eng(cfg);
    std::vector<Log> logs(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
      build_schedule(eng.shard(s), logs[s]);
      // Skew each shard a little so windows are not all in lockstep.
      eng.shard(s).schedule_at(SimTime{200 + s * 7}, [&log = logs[s], &e = eng.shard(s)]() {
        log.emplace_back(e.now().ns, 6);
      });
    }
    eng.run_until(SimTime{10'000'000});
    EXPECT_EQ(eng.events_executed(), 6u * cfg.shards);
    runs.push_back(std::move(logs));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ShardedEngine, IdleGapsAreSkippedWithoutLosingEvents) {
  // Two events five simulated seconds apart on different shards: without the
  // deterministic idle-skip this is 500,000 ten-microsecond windows of pure
  // barrier traffic; with it, a handful. Correctness check: both fire, at
  // their exact times, and every shard clock reaches the horizon.
  ShardedEngine::Config cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  ShardedEngine eng(cfg);
  Log log0;
  Log log1;
  eng.shard(0).schedule_at(SimTime{1'000}, [&]() { log0.emplace_back(eng.shard(0).now().ns, 1); });
  eng.shard(1).schedule_at(SimTime{5'000'000'000}, [&]() {
    log1.emplace_back(eng.shard(1).now().ns, 2);
  });
  eng.run_until(SimTime{6'000'000'000});
  ASSERT_EQ(log0.size(), 1u);
  ASSERT_EQ(log1.size(), 1u);
  EXPECT_EQ(log0[0].first, 1'000);
  EXPECT_EQ(log1[0].first, 5'000'000'000);
  EXPECT_EQ(eng.shard(0).now().ns, 6'000'000'000);
  EXPECT_EQ(eng.shard(1).now().ns, 6'000'000'000);
}

TEST(ShardedEngine, RunUntilIsResumable) {
  ShardedEngine::Config cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  ShardedEngine eng(cfg);
  int early = 0;
  int late = 0;
  eng.shard(0).schedule_at(SimTime{500}, [&]() { ++early; });
  eng.shard(1).schedule_at(SimTime{2'000'000}, [&]() { ++late; });
  eng.run_until(SimTime{1'000'000});
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(eng.now().ns, 1'000'000);
  eng.run_until(SimTime{3'000'000});
  EXPECT_EQ(late, 1);
  EXPECT_EQ(eng.now().ns, 3'000'000);
  // A horizon at or behind the frontier is a no-op.
  eng.run_until(SimTime{1'000'000});
  EXPECT_EQ(eng.now().ns, 3'000'000);
}

// Exchange double: records every (dst_shard, window_end) delivery callback.
class CountingExchange final : public ShardExchange {
 public:
  explicit CountingExchange(unsigned shards) : per_shard_(shards) {}
  void deliver(unsigned dst_shard, SimTime window_end) override {
    // Called from the worker that owns dst_shard; per-shard vectors make
    // the recording race-free by construction, like the engine's own state.
    per_shard_[dst_shard].push_back(window_end.ns);
  }
  [[nodiscard]] const std::vector<std::int64_t>& calls(unsigned s) const {
    return per_shard_[s];
  }

 private:
  std::vector<std::vector<std::int64_t>> per_shard_;
};

TEST(ShardedEngine, ExchangeRunsOncePerShardPerWindowInOrder) {
  ShardedEngine::Config cfg;
  cfg.shards = 3;
  cfg.threads = 2;
  ShardedEngine eng(cfg);
  CountingExchange ex(cfg.shards);
  eng.set_exchange(&ex);
  // Keep one shard busy so windows actually execute.
  for (int i = 0; i < 50; ++i) {
    eng.shard(0).schedule_at(SimTime{i * 1'000}, []() {});
  }
  eng.run_until(SimTime{100'000});
  for (unsigned s = 0; s < cfg.shards; ++s) {
    const auto& calls = ex.calls(s);
    ASSERT_FALSE(calls.empty());
    for (std::size_t i = 1; i < calls.size(); ++i) {
      EXPECT_LT(calls[i - 1], calls[i]) << "window ends must be strictly increasing";
    }
    // Every shard sees the same barrier schedule.
    EXPECT_EQ(calls, ex.calls(0));
  }
  eng.set_exchange(nullptr);
}

// Armed telemetry books every executed event against the shard that ran it:
// merged "engine.events" must equal events_executed() exactly, per-shard
// values must sum to it, and the snapshot hook must fire on worker 0 with
// all shards barrier-parked (we can only observe that it fires with a
// consistent counter view).
TEST(ShardedEngine, TelemetryCountersMatchEventsExecuted) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ShardedEngine::Config cfg;
    cfg.shards = 4;
    cfg.threads = threads;
    ShardedEngine eng(cfg);

    obs::Counters ctr;
    int snapshots = 0;
    ShardedEngine::Telemetry tel;
    tel.counters = &ctr;
    tel.snapshot_every_windows = 8;
    tel.on_snapshot = [&snapshots](SimTime) { ++snapshots; };
    eng.set_telemetry(std::move(tel));
    ctr.freeze(cfg.shards);

    // Uneven load: shard 0 runs a self-rescheduling chain, others get one
    // event each, so per-shard attribution is distinguishable.
    struct Chain {
      Engine* e;
      int left{200};
      void tick() {
        if (left-- <= 0) return;
        e->schedule_after(Duration{5'000}, [this]() { tick(); });
      }
    };
    Chain chain{&eng.shard(0)};
    eng.shard(0).schedule_at(SimTime{1}, [&chain]() { chain.tick(); });
    for (unsigned s = 1; s < cfg.shards; ++s) {
      eng.shard(s).schedule_at(SimTime{10 + s}, []() {});
    }
    eng.run_until(SimTime{5'000'000});

    const obs::Counters::Id ev = ctr.find("engine.events");
    ASSERT_TRUE(ev.valid());
    EXPECT_EQ(ctr.merged(ev), eng.events_executed()) << "threads=" << threads;
    std::uint64_t per_shard_sum = 0;
    for (unsigned s = 0; s < cfg.shards; ++s) per_shard_sum += ctr.value(s, ev);
    EXPECT_EQ(per_shard_sum, eng.events_executed());
    EXPECT_GT(ctr.value(0, ev), ctr.value(1, ev)) << "chain shard must dominate";
    EXPECT_GT(snapshots, 0) << "snapshot hook should fire on the 8-window cadence";

    const obs::Counters::Id win = ctr.find("engine.windows");
    ASSERT_TRUE(win.valid());
    EXPECT_GT(ctr.merged(win), 0u);
  }
}

// Per-shard time-series sampling on the sharded stack: each shard gets its
// own Sampler + Recorder (shard-private, like all shard state), driven by
// attach_periodic on that shard's engine; at save time the per-shard series
// merge into one recorder via absorb_series_from. This is the sampling path
// for sharded runs — note it schedules engine events (bright mode), unlike
// the counter registry.
TEST(ShardedEngine, PerShardSamplersMergeOnSave) {
  ShardedEngine::Config cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  ShardedEngine eng(cfg);

  std::vector<std::unique_ptr<obs::Recorder>> recs;
  std::vector<std::unique_ptr<obs::Sampler>> samplers;
  std::vector<std::uint64_t> work(cfg.shards, 0);
  for (unsigned s = 0; s < cfg.shards; ++s) {
    recs.push_back(std::make_unique<obs::Recorder>());
    samplers.push_back(std::make_unique<obs::Sampler>(*recs[s]));
    samplers[s]->add_probe("work/s" + std::to_string(s),
                           [&work, s] { return static_cast<double>(work[s]); });
    obs::attach_periodic(eng.shard(s), *samplers[s], Duration{1'000'000}, /*until_s=*/0.009);
  }
  // Distinguishable per-shard load.
  for (int i = 0; i < 10; ++i) {
    eng.shard(0).schedule_at(SimTime{i * 1'000'000 + 1}, [&work]() { work[0] += 1; });
    eng.shard(1).schedule_at(SimTime{i * 1'000'000 + 1}, [&work]() { work[1] += 2; });
  }
  eng.run_until(SimTime{10'000'000});

  // Save-time merge: fold every shard's series into shard 0's recorder.
  for (unsigned s = 1; s < cfg.shards; ++s) recs[0]->absorb_series_from(*recs[s]);

  const obs::Series* s0 = nullptr;
  const obs::Series* s1 = nullptr;
  for (const obs::Series& se : recs[0]->series()) {
    if (se.name == "work/s0") s0 = &se;
    if (se.name == "work/s1") s1 = &se;
  }
  ASSERT_NE(s0, nullptr) << "shard 0's own series present";
  ASSERT_NE(s1, nullptr) << "shard 1's series absorbed into the merged recorder";
  ASSERT_GE(s0->points.size(), 5u);
  EXPECT_EQ(s0->points.size(), s1->points.size()) << "same cadence on both shards";
  for (std::size_t i = 1; i < s1->points.size(); ++i) {
    EXPECT_LE(s1->points[i - 1].t_s, s1->points[i].t_s) << "merged series stay time-sorted";
  }
  // Shard 1 accumulated twice the work at each sample point.
  EXPECT_DOUBLE_EQ(s1->points.back().value, 2.0 * s0->points.back().value);
}

TEST(ShardedEngine, CountsAggregateAcrossShards) {
  ShardedEngine::Config cfg;
  cfg.shards = 4;
  cfg.threads = 1;
  ShardedEngine eng(cfg);
  for (unsigned s = 0; s < cfg.shards; ++s) {
    eng.shard(s).schedule_at(SimTime{10 + s}, []() {});
    eng.shard(s).schedule_at(SimTime{20'000'000 + s}, []() {});
  }
  EXPECT_EQ(eng.events_pending(), 8u);
  eng.run_until(SimTime{1'000'000});
  EXPECT_EQ(eng.events_executed(), 4u);
  EXPECT_EQ(eng.events_pending(), 4u);
}

}  // namespace
}  // namespace stank::sim
