#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

namespace stank::sim {
namespace {

TEST(EventFn, DefaultIsNull) {
  EventFn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
}

TEST(EventFn, InvokesSmallLambdaInline) {
  int hits = 0;
  EventFn f([&hits]() { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveTransfersOwnership) {
  int hits = 0;
  EventFn a([&hits]() { ++hits; });
  EventFn b(std::move(a));
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, SupportsMoveOnlyCaptures) {
  auto p = std::make_unique<int>(41);
  EventFn f([q = std::move(p)]() { ++*q; });
  f();  // must not crash; the unique_ptr lives in the callable
}

TEST(EventFn, LargeCallableFallsBackToHeap) {
  // Larger than the inline buffer: exercises the heap path end to end.
  std::array<std::uint64_t, 16> payload{};
  payload[0] = 7;
  payload[15] = 9;
  std::uint64_t sum = 0;
  static_assert(sizeof(payload) > EventFn::kInlineSize);
  EventFn f([payload, &sum]() { sum = payload[0] + payload[15]; });
  EventFn g(std::move(f));  // heap callables relocate by pointer swap
  g();
  EXPECT_EQ(sum, 16u);
}

TEST(EventFn, DestructorRunsCaptureDestructors) {
  auto counter = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> c;
    ~Bump() {
      if (c) ++*c;
    }
    explicit Bump(std::shared_ptr<int> counter) : c(std::move(counter)) {}
    Bump(Bump&& o) noexcept = default;
    void operator()() {}
  };
  {
    EventFn f(Bump{counter});
    // The moved-from temporary holds a null pointer and does not count;
    // reset() must destroy the stored capture exactly once.
    f.reset();
    EXPECT_TRUE(f == nullptr);
    EXPECT_EQ(*counter, 1);
  }
  EXPECT_EQ(*counter, 1);
}

TEST(EventFn, AssignReplacesExistingCallable) {
  int first = 0, second = 0;
  EventFn f([&first]() { ++first; });
  f = EventFn([&second]() { ++second; });
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace stank::sim
