#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stank::sim {
namespace {

TEST(TraceLog, RecordsInOrder) {
  TraceLog log;
  log.record(SimTime{1}, NodeId{1}, "a", "first");
  log.record(SimTime{2}, NodeId{2}, "b", "second");
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].detail, "first");
  EXPECT_EQ(log.events()[1].detail, "second");
}

TEST(TraceLog, FiltersByCategory) {
  TraceLog log;
  log.record(SimTime{1}, NodeId{1}, "lease", "x");
  log.record(SimTime{2}, NodeId{1}, "lock", "y");
  log.record(SimTime{3}, NodeId{1}, "lease", "z");
  auto lease = log.by_category("lease");
  ASSERT_EQ(lease.size(), 2u);
  EXPECT_EQ(lease[0].detail, "x");
  EXPECT_EQ(lease[1].detail, "z");
}

TEST(TraceLog, FiltersByNode) {
  TraceLog log;
  log.record(SimTime{1}, NodeId{1}, "a", "x");
  log.record(SimTime{2}, NodeId{2}, "a", "y");
  EXPECT_EQ(log.by_node(NodeId{2}).size(), 1u);
}

TEST(TraceLog, FindSubstring) {
  TraceLog log;
  log.record(SimTime{5}, NodeId{1}, "lock", "stole 3 locks from client n7");
  EXPECT_NE(log.find("lock", "stole"), nullptr);
  EXPECT_EQ(log.find("lock", "granted"), nullptr);
  EXPECT_EQ(log.find("lease", "stole"), nullptr);
  EXPECT_EQ(log.find("lock", "stole")->at.ns, 5);
}

TEST(TraceLog, CountMatches) {
  TraceLog log;
  log.record(SimTime{1}, NodeId{1}, "lease", "NACK received");
  log.record(SimTime{2}, NodeId{1}, "lease", "NACK received");
  log.record(SimTime{3}, NodeId{1}, "lease", "expired");
  EXPECT_EQ(log.count("lease", "NACK"), 2u);
}

TEST(TraceLog, ClearEmpties) {
  TraceLog log;
  log.record(SimTime{1}, NodeId{1}, "a", "x");
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(TraceLog, PrintContainsFields) {
  TraceLog log;
  log.record(SimTime{1'500'000'000}, NodeId{9}, "fence", "fencing client 9");
  std::ostringstream os;
  log.print(os);
  EXPECT_NE(os.str().find("n9"), std::string::npos);
  EXPECT_NE(os.str().find("[fence]"), std::string::npos);
  EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace stank::sim
