#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace stank::sim {
namespace {

TEST(Time, DurationArithmetic) {
  EXPECT_EQ((millis(3) + micros(500)).ns, 3'500'000);
  EXPECT_EQ((seconds(1) - millis(1)).ns, 999'000'000);
  EXPECT_EQ((millis(2) * std::int64_t{3}).ns, 6'000'000);
  EXPECT_EQ((millis(9) / std::int64_t{3}).ns, 3'000'000);
}

TEST(Time, DurationScalingByDouble) {
  EXPECT_EQ((seconds(10) * 1.5).ns, 15'000'000'000);
  EXPECT_EQ((seconds(10) / 2.0).ns, 5'000'000'000);
  // Rounding, not truncation.
  EXPECT_EQ((Duration{3} * 0.5).ns, 2);  // 1.5 rounds to 2
}

TEST(Time, TimePointArithmetic) {
  SimTime t{1'000};
  EXPECT_EQ((t + Duration{500}).ns, 1'500);
  EXPECT_EQ((t - Duration{500}).ns, 500);
  EXPECT_EQ((SimTime{900} - SimTime{400}).ns, 500);
}

TEST(Time, SecondsConversion) {
  EXPECT_DOUBLE_EQ(seconds(2).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(millis(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(millis(2).millis(), 2.0);
  EXPECT_DOUBLE_EQ(seconds_d(0.25).seconds(), 0.25);
}

TEST(Time, Ordering) {
  EXPECT_LT(SimTime{1}, SimTime{2});
  EXPECT_LE(millis(1), millis(1));
  EXPECT_GT(local_seconds(1), local_millis(999));
}

TEST(Time, LocalAndGlobalAreDistinctTypes) {
  static_assert(!std::is_same_v<Duration, LocalDuration>);
  static_assert(!std::is_same_v<SimTime, LocalTime>);
  // The following must not compile (frames cannot mix); verified by design:
  // SimTime{} + LocalDuration{};
}

TEST(Time, LiteralHelpers) {
  EXPECT_EQ(nanos(5).ns, 5);
  EXPECT_EQ(micros(5).ns, 5'000);
  EXPECT_EQ(local_nanos(5).ns, 5);
  EXPECT_EQ(local_micros(5).ns, 5'000);
  EXPECT_EQ(local_seconds(1).ns, 1'000'000'000);
  EXPECT_EQ(local_seconds_d(0.5).ns, 500'000'000);
}

TEST(Time, CompoundAdd) {
  Duration d = millis(1);
  d += millis(2);
  EXPECT_EQ(d.ns, 3'000'000);
}

}  // namespace
}  // namespace stank::sim
