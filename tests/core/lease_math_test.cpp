#include "core/lease_math.hpp"

#include <gtest/gtest.h>

namespace stank::core {
namespace {

TEST(LeaseMath, ServerWaitScalesByEpsilon) {
  EXPECT_EQ(server_wait(sim::local_seconds(10), 0.0).ns, 10'000'000'000);
  EXPECT_EQ(server_wait(sim::local_seconds(10), 0.01).ns, 10'100'000'000);
  EXPECT_GT(server_wait(sim::local_seconds(10), 1e-6).ns, 10'000'000'000);
}

TEST(LeaseMath, ClientExpiry) {
  EXPECT_EQ(client_expiry(sim::LocalTime{5'000}, sim::LocalDuration{100}).ns, 5'100);
}

TEST(LeaseMath, RatesWithinBound) {
  EXPECT_TRUE(rates_within_bound(1.0, 1.0, 0.0001));
  EXPECT_TRUE(rates_within_bound(1.004, 0.996, 0.01));
  EXPECT_FALSE(rates_within_bound(1.02, 1.0, 0.01));
  EXPECT_FALSE(rates_within_bound(1.0, 1.02, 0.01));
}

TEST(LeaseMath, LeaseGlobalSpan) {
  // A fast clock counts tau off quicker in true time.
  EXPECT_LT(lease_global_span(sim::local_seconds(10), 1.01).ns,
            lease_global_span(sim::local_seconds(10), 1.0).ns);
  EXPECT_EQ(lease_global_span(sim::local_seconds(10), 1.0).ns, 10'000'000'000);
}

TEST(LeaseMath, WorstCaseStealDelayBound) {
  // tau(1+eps)^2 in true time.
  const auto d = worst_case_steal_delay(sim::local_seconds(10), 0.01);
  EXPECT_EQ(d.ns, static_cast<std::int64_t>(10e9 * 1.01 * 1.01));
}

// Theorem 3.1's core inequality: with rates within the bound, the server
// wait, measured in true time, always exceeds the client lease span.
TEST(LeaseMath, TheoremInequalityHolds) {
  const sim::LocalDuration tau = sim::local_seconds(10);
  for (double eps : {1e-6, 1e-4, 1e-2, 0.1}) {
    const double hi = std::sqrt(1 + eps);
    const double lo = 1.0 / hi;
    for (double rc : {lo, 1.0, hi}) {
      for (double rs : {lo, 1.0, hi}) {
        ASSERT_TRUE(rates_within_bound(rc, rs, eps + 1e-12));
        const auto client_span = lease_global_span(tau, rc);
        const auto server_span = lease_global_span(server_wait(tau, eps), rs);
        EXPECT_GE(server_span.ns, client_span.ns - 2)  // rounding slop
            << "eps=" << eps << " rc=" << rc << " rs=" << rs;
      }
    }
  }
}

}  // namespace
}  // namespace stank::core
