#include "core/server_lease_authority.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stank::core {
namespace {

LeaseConfig cfg(std::int64_t tau_s = 10, double eps = 0.01, bool early = false) {
  LeaseConfig c;
  c.tau = sim::local_seconds(tau_s);
  c.epsilon = eps;
  c.allow_early_reregister = early;
  return c;
}

struct Fixture {
  sim::Engine engine;
  sim::NodeClock clock;
  metrics::Counters counters;
  std::vector<NodeId> stolen;
  ServerLeaseAuthority authority;

  explicit Fixture(LeaseConfig c = cfg(), double rate = 1.0)
      : clock(engine, sim::LocalClock(rate)), authority(clock, c, counters, hooks()) {}

  ServerLeaseAuthority::Hooks hooks() {
    ServerLeaseAuthority::Hooks h;
    h.steal_locks = [this](NodeId n) { stolen.push_back(n); };
    return h;
  }

  void run_to(double t_s) { engine.run_until(sim::SimTime{} + sim::seconds_d(t_s)); }
};

TEST(LeaseAuthority, PassiveByDefault) {
  Fixture f;
  // No state, no ops, everyone may be ACKed: the paper's core claim.
  EXPECT_TRUE(f.authority.may_ack(NodeId{100}));
  EXPECT_EQ(f.authority.standing(NodeId{100}), ClientStanding::kGood);
  EXPECT_EQ(f.authority.state_bytes(), 0u);
  EXPECT_EQ(f.counters.lease_ops, 0u);
  f.run_to(1000.0);
  EXPECT_EQ(f.counters.lease_ops, 0u);
}

TEST(LeaseAuthority, DeliveryFailureStartsTimer) {
  Fixture f;
  f.authority.on_delivery_failure(NodeId{100});
  EXPECT_TRUE(f.authority.is_suspect(NodeId{100}));
  EXPECT_FALSE(f.authority.may_ack(NodeId{100}));
  EXPECT_GT(f.authority.state_bytes(), 0u);
  EXPECT_EQ(f.authority.suspect_count(), 1u);
  // Other clients unaffected.
  EXPECT_TRUE(f.authority.may_ack(NodeId{101}));
}

TEST(LeaseAuthority, StealsExactlyAfterTauTimesOnePlusEps) {
  Fixture f(cfg(10, 0.01));
  f.engine.schedule_at(sim::SimTime{} + sim::seconds_d(5.0),
                       [&]() { f.authority.on_delivery_failure(NodeId{100}); });
  f.run_to(5.0 + 10.0 * 1.01 - 0.01);
  EXPECT_TRUE(f.stolen.empty());
  f.run_to(5.0 + 10.0 * 1.01 + 0.01);
  ASSERT_EQ(f.stolen.size(), 1u);
  EXPECT_EQ(f.stolen[0], NodeId{100});
  EXPECT_TRUE(f.authority.is_failed(NodeId{100}));
  EXPECT_FALSE(f.authority.may_ack(NodeId{100}));  // still barred until re-register
}

TEST(LeaseAuthority, TimerMeasuredOnOwnClock) {
  // Server clock runs at half speed: local tau(1+eps) takes twice as long in
  // true time.
  Fixture f(cfg(10, 0.0), 0.5);
  f.authority.on_delivery_failure(NodeId{100});
  f.run_to(19.9);
  EXPECT_TRUE(f.stolen.empty());
  f.run_to(20.1);
  EXPECT_EQ(f.stolen.size(), 1u);
}

TEST(LeaseAuthority, DuplicateFailuresIdempotent) {
  Fixture f;
  f.authority.on_delivery_failure(NodeId{100});
  f.authority.on_delivery_failure(NodeId{100});
  f.authority.on_delivery_failure(NodeId{100});
  f.run_to(100.0);
  EXPECT_EQ(f.stolen.size(), 1u);
}

TEST(LeaseAuthority, IndependentClientsIndependentTimers) {
  Fixture f(cfg(10, 0.0));
  f.authority.on_delivery_failure(NodeId{100});
  f.engine.schedule_at(sim::SimTime{} + sim::seconds_d(3.0),
                       [&]() { f.authority.on_delivery_failure(NodeId{101}); });
  f.run_to(10.5);
  ASSERT_EQ(f.stolen.size(), 1u);
  EXPECT_EQ(f.stolen[0], NodeId{100});
  f.run_to(13.5);
  ASSERT_EQ(f.stolen.size(), 2u);
  EXPECT_EQ(f.stolen[1], NodeId{101});
}

TEST(LeaseAuthority, ConservativeReregisterRefusedWhileSuspect) {
  Fixture f;
  f.authority.on_delivery_failure(NodeId{100});
  EXPECT_FALSE(f.authority.try_reregister(NodeId{100}));
  EXPECT_TRUE(f.authority.is_suspect(NodeId{100}));
  f.run_to(100.0);  // timer fires
  EXPECT_TRUE(f.authority.try_reregister(NodeId{100}));
  EXPECT_EQ(f.authority.standing(NodeId{100}), ClientStanding::kGood);
  EXPECT_EQ(f.authority.state_bytes(), 0u);  // back to zero state
}

TEST(LeaseAuthority, EarlyReregisterStealsImmediately) {
  Fixture f(cfg(10, 0.01, /*early=*/true));
  f.authority.on_delivery_failure(NodeId{100});
  EXPECT_TRUE(f.authority.try_reregister(NodeId{100}));
  EXPECT_EQ(f.stolen.size(), 1u);  // stolen at re-register, not at timer
  EXPECT_EQ(f.authority.standing(NodeId{100}), ClientStanding::kGood);
  f.run_to(100.0);
  EXPECT_EQ(f.stolen.size(), 1u);  // timer was cancelled
}

TEST(LeaseAuthority, ReregisterOfGoodClientIsNoop) {
  Fixture f;
  EXPECT_TRUE(f.authority.try_reregister(NodeId{100}));
  EXPECT_EQ(f.counters.lease_ops, 0u);
}

TEST(LeaseAuthority, LeaseOpsCountedOnlyOnFailures) {
  Fixture f;
  f.authority.on_delivery_failure(NodeId{100});
  f.run_to(100.0);
  EXPECT_TRUE(f.authority.try_reregister(NodeId{100}));
  // mark-suspect + timer-fire + reregister = 3 ops, all failure-driven.
  EXPECT_EQ(f.counters.lease_ops, 3u);
}

TEST(LeaseAuthority, StateBytesScaleWithSuspects) {
  Fixture f;
  EXPECT_EQ(f.authority.state_bytes(), 0u);
  f.authority.on_delivery_failure(NodeId{100});
  const auto one = f.authority.state_bytes();
  f.authority.on_delivery_failure(NodeId{101});
  EXPECT_EQ(f.authority.state_bytes(), 2 * one);
}

TEST(LeaseAuthority, CountsByStanding) {
  Fixture f(cfg(1, 0.0));
  f.authority.on_delivery_failure(NodeId{100});
  f.authority.on_delivery_failure(NodeId{101});
  EXPECT_EQ(f.authority.suspect_count(), 2u);
  EXPECT_EQ(f.authority.failed_count(), 0u);
  f.run_to(2.0);
  EXPECT_EQ(f.authority.suspect_count(), 0u);
  EXPECT_EQ(f.authority.failed_count(), 2u);
}

TEST(LeaseAuthority, StandingChangeHookFires) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  metrics::Counters counters;
  std::vector<ClientStanding> seq;
  ServerLeaseAuthority::Hooks h;
  h.steal_locks = [](NodeId) {};
  h.standing_changed = [&](NodeId, ClientStanding s) { seq.push_back(s); };
  LeaseConfig c = cfg(1, 0.0);
  ServerLeaseAuthority a(clock, c, counters, std::move(h));
  a.on_delivery_failure(NodeId{100});
  engine.run_until(sim::SimTime{} + sim::seconds_d(2.0));
  ASSERT_TRUE(a.try_reregister(NodeId{100}));
  EXPECT_EQ(seq, (std::vector<ClientStanding>{ClientStanding::kSuspect, ClientStanding::kFailed,
                                              ClientStanding::kGood}));
}

}  // namespace
}  // namespace stank::core
