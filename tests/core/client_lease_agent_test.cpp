#include "core/client_lease_agent.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stank::core {
namespace {

// Default config: tau = 10s, phases at 5s / 7.5s / 8.5s.
LeaseConfig cfg(std::int64_t tau_s = 10) {
  LeaseConfig c;
  c.tau = sim::local_seconds(tau_s);
  c.epsilon = 1e-4;
  c.keepalive_retry = sim::local_millis(500);
  return c;
}

struct Fixture {
  sim::Engine engine;
  sim::NodeClock clock;
  int keepalives{0};
  int quiesces{0};
  int flushes{0};
  int expirations{0};
  std::vector<std::pair<LeasePhase, LeasePhase>> transitions;
  ClientLeaseAgent agent;

  explicit Fixture(LeaseConfig c = cfg(), double rate = 1.0)
      : clock(engine, sim::LocalClock(rate)), agent(clock, c, hooks()) {}

  ClientLeaseAgent::Hooks hooks() {
    ClientLeaseAgent::Hooks h;
    h.send_keepalive = [this]() { ++keepalives; };
    h.quiesce = [this]() { ++quiesces; };
    h.flush = [this]() { ++flushes; };
    h.expired = [this]() { ++expirations; };
    h.phase_changed = [this](LeasePhase from, LeasePhase to) {
      transitions.emplace_back(from, to);
    };
    return h;
  }

  void run_to(double t_s) { engine.run_until(sim::SimTime{} + sim::seconds_d(t_s)); }
};

TEST(LeaseAgent, StartsWithoutLease) {
  Fixture f;
  EXPECT_EQ(f.agent.phase(), LeasePhase::kNoLease);
  EXPECT_FALSE(f.agent.fs_ops_allowed());
  EXPECT_FALSE(f.agent.lease_valid());
}

TEST(LeaseAgent, WalksAllFourPhasesWithoutRenewal) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_TRUE(f.agent.fs_ops_allowed());

  f.run_to(4.99);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  f.run_to(5.01);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kRenewal);
  EXPECT_TRUE(f.agent.fs_ops_allowed());  // still serving in phase 2
  f.run_to(7.51);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kSuspect);
  EXPECT_FALSE(f.agent.fs_ops_allowed());  // quiesced
  EXPECT_EQ(f.quiesces, 1);
  f.run_to(8.51);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kFlush);
  EXPECT_EQ(f.flushes, 1);
  EXPECT_TRUE(f.agent.lease_valid());  // valid until the very end
  f.run_to(10.01);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
  EXPECT_EQ(f.expirations, 1);
  EXPECT_FALSE(f.agent.lease_valid());
}

TEST(LeaseAgent, KeepAlivesRepeatDuringPhase2) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(7.4);  // phase 2 spans [5.0, 7.5): ticks at 5.0, 5.5, ... 7.0
  EXPECT_EQ(f.keepalives, 5);
  EXPECT_EQ(f.agent.keepalives_sent(), 5u);
}

TEST(LeaseAgent, RenewalResetsToPhase1) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(6.0);  // in phase 2
  EXPECT_EQ(f.agent.phase(), LeasePhase::kRenewal);
  f.agent.renew(f.clock.now());  // fresh lease starting now
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_EQ(f.agent.renewals(), 1u);
  // New phase-2 boundary is 6.0 + 5.0.
  f.run_to(10.9);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  f.run_to(11.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kRenewal);
}

TEST(LeaseAgent, ActiveClientNeverLeavesPhase1) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  // Renew every second — like a busy client's regular traffic.
  for (int i = 1; i <= 30; ++i) {
    f.engine.schedule_at(sim::SimTime{} + sim::seconds_d(i), [&]() { f.agent.renew(f.clock.now()); });
  }
  f.run_to(30.5);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_EQ(f.keepalives, 0);  // opportunistic renewal: zero extra messages
  EXPECT_EQ(f.expirations, 0);
}

TEST(LeaseAgent, StaleRenewalIgnored) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(2.0);
  f.agent.renew(f.clock.now());  // lease now starts at 2.0
  f.agent.renew(sim::LocalTime{1'000'000'000});  // older t_C1: no extension
  EXPECT_EQ(f.agent.renewals(), 1u);
  EXPECT_EQ(f.agent.lease_start().ns, 2'000'000'000);
}

TEST(LeaseAgent, RenewalCarriesSendTimeNotReceiptTime) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(4.0);
  // ACK received at 4.0 for a message first sent at 3.0: lease is
  // [3.0, 13.0), NOT [4.0, 14.0).
  f.agent.renew(sim::LocalTime{3'000'000'000});
  EXPECT_EQ(f.agent.lease_expiry().ns, 13'000'000'000);
}

TEST(LeaseAgent, LateAckLandsDirectlyInLaterPhase) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(3.0);
  // An ACK for a message sent at 0.5 extends the lease only to 10.5; at
  // t=9.0 that lease is already inside phase 4 (>= 0.5 + 8.5).
  f.agent.renew(sim::LocalTime{500'000'000});
  f.run_to(9.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kFlush);
}

TEST(LeaseAgent, NackJumpsToPhase3) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(1.0);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  f.agent.on_nack();
  EXPECT_EQ(f.agent.phase(), LeasePhase::kSuspect);
  EXPECT_EQ(f.quiesces, 1);
  EXPECT_EQ(f.agent.nacks_seen(), 1u);
  // Rides the remaining phases of the current lease normally.
  f.run_to(8.6);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kFlush);
  f.run_to(10.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
}

TEST(LeaseAgent, NackDisablesRenewal) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(1.0);
  f.agent.on_nack();
  f.agent.renew(f.clock.now());  // must be ignored: cache is known-invalid
  EXPECT_EQ(f.agent.renewals(), 0u);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kSuspect);
}

// Suspect entered on local timeout alone (no NACK) is NOT latched: a late
// ACK proves the server heard us at t_c1 and rescues the lease. Only a NACK
// pins the ride-down (see NackDisablesRenewal).
TEST(LeaseAgent, TimeoutSuspectRescuedByRenewal) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(7.6);  // phase 3 by timeout (no NACK)
  EXPECT_EQ(f.agent.phase(), LeasePhase::kSuspect);
  f.agent.renew(f.clock.now());
  EXPECT_EQ(f.agent.renewals(), 1u);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_TRUE(f.agent.fs_ops_allowed());
}

TEST(LeaseAgent, TimeoutFlushRescuedByRenewal) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(8.6);  // phase 4 by timeout (no NACK)
  EXPECT_EQ(f.agent.phase(), LeasePhase::kFlush);
  f.agent.renew(f.clock.now());
  EXPECT_EQ(f.agent.renewals(), 1u);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
}

// The rescue has teeth only if the client keeps probing: keep-alives must
// continue through an un-latched ride-down and stop the moment a NACK lands.
TEST(LeaseAgent, KeepalivesContinueThroughUnlatchedRideDown) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(7.6);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kSuspect);
  const int at_suspect = f.keepalives;
  f.run_to(8.0);
  EXPECT_GT(f.keepalives, at_suspect);  // still probing
  f.agent.on_nack();
  const int at_nack = f.keepalives;
  f.run_to(8.4);
  EXPECT_EQ(f.keepalives, at_nack);  // latched: probing stopped
  f.agent.renew(f.clock.now());
  EXPECT_EQ(f.agent.renewals(), 0u);  // and renewal refused
}

TEST(LeaseAgent, RestartAfterExpiryStartsFreshLease) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(10.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
  f.agent.restart(f.clock.now());
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_TRUE(f.agent.fs_ops_allowed());
  // And the new lease walks phases again.
  f.run_to(15.2);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kRenewal);
}

TEST(LeaseAgent, RestartClearsNackLatch) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.agent.on_nack();
  f.run_to(10.1);
  f.agent.restart(f.clock.now());
  f.agent.renew(f.clock.now() + sim::LocalDuration{1});
  EXPECT_EQ(f.agent.renewals(), 1u);
}

TEST(LeaseAgent, DeactivateStopsEverything) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.agent.deactivate();
  EXPECT_EQ(f.agent.phase(), LeasePhase::kNoLease);
  f.run_to(30.0);
  EXPECT_EQ(f.expirations, 0);
  EXPECT_EQ(f.keepalives, 0);
}

TEST(LeaseAgent, PhaseTransitionsObserved) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(10.1);
  std::vector<std::pair<LeasePhase, LeasePhase>> expected = {
      {LeasePhase::kNoLease, LeasePhase::kActive},
      {LeasePhase::kActive, LeasePhase::kRenewal},
      {LeasePhase::kRenewal, LeasePhase::kSuspect},
      {LeasePhase::kSuspect, LeasePhase::kFlush},
      {LeasePhase::kFlush, LeasePhase::kExpired},
  };
  EXPECT_EQ(f.transitions, expected);
}

TEST(LeaseAgent, SkewedClockMeasuresPhasesOnItsOwnTime) {
  // A clock running 2x fast reaches its local 10s lease end at global 5s.
  Fixture f(cfg(), 2.0);
  f.agent.restart(f.clock.now());
  f.run_to(4.9);
  EXPECT_NE(f.agent.phase(), LeasePhase::kExpired);
  f.run_to(5.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
}

TEST(LeaseAgent, RenewalAtExactBoundary) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  // Renew with t_C1 exactly at the phase-2 boundary instant.
  f.run_to(5.0);
  f.agent.renew(sim::LocalTime{5'000'000'000});
  EXPECT_EQ(f.agent.renewals(), 1u);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  EXPECT_EQ(f.agent.lease_expiry().ns, 15'000'000'000);
}

TEST(LeaseAgent, NackDuringFlushChangesNothing) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(9.0);  // phase 4
  ASSERT_EQ(f.agent.phase(), LeasePhase::kFlush);
  f.agent.on_nack();
  EXPECT_EQ(f.agent.phase(), LeasePhase::kFlush);
  EXPECT_EQ(f.quiesces, 1);  // not re-quiesced
  f.run_to(10.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
}

TEST(LeaseAgent, NackBeforeAnyLeaseIsCountedOnly) {
  Fixture f;
  f.agent.on_nack();
  EXPECT_EQ(f.agent.phase(), LeasePhase::kNoLease);
  EXPECT_EQ(f.agent.nacks_seen(), 1u);
  EXPECT_EQ(f.quiesces, 0);
}

TEST(LeaseAgent, RestartMidLeaseReplacesIt) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(3.0);
  f.agent.restart(f.clock.now());  // e.g. a fresh registration epoch
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  f.run_to(7.9);  // old lease would be in phase 3 by now; new one is not
  EXPECT_EQ(f.agent.phase(), LeasePhase::kActive);
  f.run_to(8.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kRenewal);
}

TEST(LeaseAgent, ZeroEpsilonConfigValid) {
  LeaseConfig c = cfg();
  c.epsilon = 0.0;
  Fixture f(c);
  f.agent.restart(sim::LocalTime{0});
  f.run_to(10.1);
  EXPECT_EQ(f.agent.phase(), LeasePhase::kExpired);
}

TEST(LeaseAgent, ExpiryCountsAccumulate) {
  Fixture f;
  f.agent.restart(sim::LocalTime{0});
  f.run_to(10.1);
  f.agent.restart(f.clock.now());
  f.run_to(21.0);
  EXPECT_EQ(f.agent.expiries(), 2u);
}

}  // namespace
}  // namespace stank::core
