#include "baselines/v_lease.hpp"

#include <gtest/gtest.h>

namespace stank::baselines {
namespace {

const NodeId kC{100};
const FileId kF{1}, kG{2};

TEST(VLeaseTable, RenewAndValidity) {
  metrics::Counters counters;
  VLeaseTable t(sim::local_seconds(10), counters);
  t.renew(kC, kF, sim::LocalTime{0});
  EXPECT_TRUE(t.valid(kC, kF, sim::LocalTime{9'999'999'999}));
  EXPECT_FALSE(t.valid(kC, kF, sim::LocalTime{10'000'000'000}));
  EXPECT_FALSE(t.valid(kC, kG, sim::LocalTime{0}));  // unknown object
  EXPECT_EQ(counters.lease_ops, 1u);
}

TEST(VLeaseTable, StateScalesWithObjects) {
  metrics::Counters counters;
  VLeaseTable t(sim::local_seconds(10), counters);
  EXPECT_EQ(t.state_bytes(), 0u);
  t.renew(kC, kF, sim::LocalTime{0});
  const auto one = t.state_bytes();
  t.renew(kC, kG, sim::LocalTime{0});
  t.renew(NodeId{101}, kF, sim::LocalTime{0});
  EXPECT_EQ(t.state_bytes(), 3 * one);
  EXPECT_EQ(t.entries(), 3u);
}

TEST(VLeaseTable, DropAndDropClient) {
  metrics::Counters counters;
  VLeaseTable t(sim::local_seconds(10), counters);
  t.renew(kC, kF, sim::LocalTime{0});
  t.renew(kC, kG, sim::LocalTime{0});
  t.renew(NodeId{101}, kF, sim::LocalTime{0});
  t.drop(kC, kF);
  EXPECT_EQ(t.entries(), 2u);
  t.drop_client(kC);
  EXPECT_EQ(t.entries(), 1u);
  EXPECT_TRUE(t.valid(NodeId{101}, kF, sim::LocalTime{1}));
}

TEST(VLeaseTable, StealTimeScalesRemainingByEps) {
  metrics::Counters counters;
  VLeaseTable t(sim::local_seconds(10), counters);
  t.renew(kC, kF, sim::LocalTime{0});
  // At t=0 the full lease remains: wait 10 * 1.01.
  EXPECT_EQ(t.steal_time(kC, kF, sim::LocalTime{0}, 0.01).ns, 10'100'000'000);
  // Unknown object: steal immediately.
  EXPECT_EQ(t.steal_time(kC, kG, sim::LocalTime{55}, 0.01).ns, 55);
}

TEST(VLeaseScheduler, RenewsEachObjectIndependently) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  std::vector<FileId> renewed;
  VLeaseClientScheduler::Hooks h;
  h.send_renew = [&](FileId f) { renewed.push_back(f); };
  h.object_expired = [](FileId) { FAIL() << "should not expire while renewing"; };
  VLeaseClientScheduler sched(clock, sim::local_seconds(10), 0.5, std::move(h));
  sched.object_acquired(kF);
  sched.object_acquired(kG);
  // Acknowledge every renewal promptly.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&, wpump = std::weak_ptr(pump)]() {
    for (FileId f : renewed) {
      sched.renewed(f, clock.now());
    }
    renewed.clear();
    engine.schedule_after(sim::millis(100), [p = wpump.lock()]() { if (p) (*p)(); });
  };
  (*pump)();
  engine.run_until(sim::SimTime{} + sim::seconds(30));
  EXPECT_EQ(sched.tracked_objects(), 2u);
  // Roughly one renewal per object per 5s (0.5 * tau): ~6 each over 30s.
  EXPECT_GE(sched.renewals_sent(), 8u);
}

TEST(VLeaseScheduler, ExpiresObjectWhenRenewalsUnanswered) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  std::vector<FileId> expired;
  VLeaseClientScheduler::Hooks h;
  h.send_renew = [](FileId) {};  // black hole
  h.object_expired = [&](FileId f) { expired.push_back(f); };
  VLeaseClientScheduler sched(clock, sim::local_seconds(10), 0.5, std::move(h));
  sched.object_acquired(kF);
  engine.run_until(sim::SimTime{} + sim::seconds(11));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], kF);
  EXPECT_EQ(sched.tracked_objects(), 0u);
}

TEST(VLeaseScheduler, ReleaseStopsRenewals) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  int renewals = 0;
  VLeaseClientScheduler::Hooks h;
  h.send_renew = [&](FileId) { ++renewals; };
  h.object_expired = [](FileId) {};
  VLeaseClientScheduler sched(clock, sim::local_seconds(10), 0.5, std::move(h));
  sched.object_acquired(kF);
  sched.object_released(kF);
  engine.run_until(sim::SimTime{} + sim::seconds(30));
  EXPECT_EQ(renewals, 0);
}

}  // namespace
}  // namespace stank::baselines
