#include "baselines/heartbeat.hpp"

#include <gtest/gtest.h>

namespace stank::baselines {
namespace {

const NodeId kC{100};

TEST(HeartbeatTable, RenewAndValidity) {
  metrics::Counters counters;
  HeartbeatTable t(sim::local_seconds(10), counters);
  EXPECT_FALSE(t.valid(kC, sim::LocalTime{0}));
  t.renew(kC, sim::LocalTime{0});
  EXPECT_TRUE(t.valid(kC, sim::LocalTime{9'999'999'999}));
  EXPECT_FALSE(t.valid(kC, sim::LocalTime{10'000'000'000}));
  EXPECT_EQ(counters.lease_ops, 1u);
}

TEST(HeartbeatTable, EveryHeartbeatIsServerWork) {
  metrics::Counters counters;
  HeartbeatTable t(sim::local_seconds(10), counters);
  for (int i = 0; i < 100; ++i) {
    t.renew(kC, sim::LocalTime{i});
  }
  EXPECT_EQ(counters.lease_ops, 100u);  // contrast: Storage Tank stays at 0
}

TEST(HeartbeatTable, StateScalesWithClients) {
  metrics::Counters counters;
  HeartbeatTable t(sim::local_seconds(10), counters);
  EXPECT_EQ(t.state_bytes(), 0u);
  t.renew(NodeId{100}, sim::LocalTime{0});
  const auto one = t.state_bytes();
  t.renew(NodeId{101}, sim::LocalTime{0});
  EXPECT_EQ(t.state_bytes(), 2 * one);
  t.drop(NodeId{100});
  EXPECT_EQ(t.state_bytes(), one);
}

TEST(HeartbeatTable, StealTimeFromRecordedExpiry) {
  metrics::Counters counters;
  HeartbeatTable t(sim::local_seconds(10), counters);
  t.renew(kC, sim::LocalTime{0});
  EXPECT_EQ(t.steal_time(kC, sim::LocalTime{4'000'000'000}, 0.0).ns, 10'000'000'000);
  EXPECT_EQ(t.steal_time(NodeId{9}, sim::LocalTime{123}, 0.0).ns, 123);
}

TEST(HeartbeatScheduler, BeatsUnconditionally) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  int beats = 0;
  HeartbeatClientScheduler::Hooks h;
  h.send_heartbeat = [&]() { ++beats; };
  h.expired = []() { FAIL() << "no expiry expected while ACKed"; };
  HeartbeatClientScheduler sched(clock, sim::local_seconds(9), 1.0 / 3.0, std::move(h));
  sched.start();
  // ACK each beat immediately.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&, wpump = std::weak_ptr(pump)]() {
    sched.on_ack(clock.now());
    engine.schedule_after(sim::millis(100), [p = wpump.lock()]() { if (p) (*p)(); });
  };
  (*pump)();
  engine.run_until(sim::SimTime{} + sim::seconds(30));
  // One beat every 3s: about 10 over 30s. That is the Frangipani cost: the
  // messages flow even though the client performed zero file operations.
  EXPECT_GE(beats, 9);
  EXPECT_LE(beats, 12);
}

TEST(HeartbeatScheduler, ExpiresWithoutAcks) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  bool expired = false;
  HeartbeatClientScheduler::Hooks h;
  h.send_heartbeat = []() {};  // black hole
  h.expired = [&]() { expired = true; };
  HeartbeatClientScheduler sched(clock, sim::local_seconds(9), 1.0 / 3.0, std::move(h));
  sched.start();
  engine.run_until(sim::SimTime{} + sim::seconds(8));
  EXPECT_FALSE(expired);
  engine.run_until(sim::SimTime{} + sim::seconds(10));
  EXPECT_TRUE(expired);
  EXPECT_FALSE(sched.running());
}

TEST(HeartbeatScheduler, StopCancelsBeats) {
  sim::Engine engine;
  sim::NodeClock clock(engine, sim::LocalClock(1.0));
  int beats = 0;
  HeartbeatClientScheduler::Hooks h;
  h.send_heartbeat = [&]() { ++beats; };
  h.expired = []() {};
  HeartbeatClientScheduler sched(clock, sim::local_seconds(9), 1.0 / 3.0, std::move(h));
  sched.start();
  sched.stop();
  engine.run_until(sim::SimTime{} + sim::seconds(30));
  EXPECT_EQ(beats, 1);  // only the immediate first beat
}

}  // namespace
}  // namespace stank::baselines
