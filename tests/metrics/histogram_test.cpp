#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

namespace stank::metrics {
namespace {

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 90.0);
}

TEST(Histogram, UnsortedInsertOrderIrrelevant) {
  Histogram a, b;
  for (double v : {5.0, 1.0, 3.0}) a.add(v);
  for (double v : {1.0, 3.0, 5.0}) b.add(v);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Histogram, AddAfterQuantileInvalidatesCache) {
  Histogram h;
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, Stddev) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.add(v);
  EXPECT_NEAR(h.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Histogram, MergeAndClear) {
  Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramDeathTest, QuantileOutOfRangeAborts) {
  Histogram h;
  h.add(1.0);
  EXPECT_DEATH((void)h.quantile(1.5), "");
}

}  // namespace
}  // namespace stank::metrics
