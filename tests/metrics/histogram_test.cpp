#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

namespace stank::metrics {
namespace {

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 90.0);
}

TEST(Histogram, UnsortedInsertOrderIrrelevant) {
  Histogram a, b;
  for (double v : {5.0, 1.0, 3.0}) a.add(v);
  for (double v : {1.0, 3.0, 5.0}) b.add(v);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Histogram, AddAfterQuantileInvalidatesCache) {
  Histogram h;
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, Stddev) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.add(v);
  EXPECT_NEAR(h.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Histogram, MergeAndClear) {
  Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, KnownDistributionQuantiles) {
  // Constant distribution: every quantile is the constant.
  Histogram c;
  for (int i = 0; i < 50; ++i) c.add(7.0);
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(c.quantile(q), 7.0) << "q=" << q;
  }

  // Two-point distribution, 90% low / 10% high: the p50..p90 plateau sits
  // on the low mode and the tail percentiles jump to the high one.
  Histogram two;
  for (int i = 0; i < 90; ++i) two.add(1.0);
  for (int i = 0; i < 10; ++i) two.add(100.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.90), 1.0);   // nearest rank: exactly the 90th
  EXPECT_DOUBLE_EQ(two.quantile(0.91), 100.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.99), 100.0);

  // Uniform 1..1000: nearest-rank percentiles land on exact values.
  Histogram u;
  for (int i = 1; i <= 1000; ++i) u.add(i);
  EXPECT_DOUBLE_EQ(u.quantile(0.50), 500.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.95), 950.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.99), 990.0);
}

TEST(Histogram, MergeIsAssociativeAndOrderIndependent) {
  auto fill = [](Histogram& h, std::initializer_list<double> vs) {
    for (double v : vs) h.add(v);
  };
  Histogram a1, b1, c1, a2, b2, c2;
  fill(a1, {1.0, 9.0});
  fill(b1, {5.0});
  fill(c1, {3.0, 7.0, 11.0});
  fill(a2, {1.0, 9.0});
  fill(b2, {5.0});
  fill(c2, {3.0, 7.0, 11.0});

  // (a ∪ b) ∪ c
  a1.merge(b1);
  a1.merge(c1);
  // a ∪ (b ∪ c)
  b2.merge(c2);
  a2.merge(b2);

  ASSERT_EQ(a1.count(), a2.count());
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(a1.quantile(q), a2.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(a1.mean(), a2.mean());
  EXPECT_DOUBLE_EQ(a1.stddev(), a2.stddev());
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a, empty;
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 2.0);
}

TEST(Histogram, OverflowBucketEdges) {
  // q=1.0 must clamp to the last rank, not index one past the end.
  Histogram one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 42.0);

  Histogram h;
  for (int i = 1; i <= 4; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // A quantile just under 1.0 still rounds up into the top rank.
  EXPECT_DOUBLE_EQ(h.quantile(0.9999), 4.0);
  // And q=0.0 pins to the minimum.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(Histogram, SamplesExposeInsertionOrder) {
  Histogram h;
  h.add(3.0);
  h.add(1.0);
  h.add(2.0);
  const auto& s = h.samples();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
  // Reading quantiles (which sorts a shadow copy) must not disturb the raw
  // sample order serialization depends on.
  (void)h.quantile(0.5);
  EXPECT_DOUBLE_EQ(h.samples()[0], 3.0);
}

TEST(HistogramDeathTest, QuantileOutOfRangeAborts) {
  Histogram h;
  h.add(1.0);
  EXPECT_DEATH((void)h.quantile(1.5), "");
}

}  // namespace
}  // namespace stank::metrics
