#include "metrics/counters.hpp"

#include <gtest/gtest.h>

namespace stank::metrics {
namespace {

TEST(Counters, DefaultZero) {
  Counters c;
  EXPECT_EQ(c.total_frames(), 0u);
  EXPECT_EQ(c.lease_ops, 0u);
  EXPECT_EQ(c.lease_only_msgs, 0u);
}

TEST(Counters, TotalFramesSumsAllKinds) {
  Counters c;
  c.requests_sent = 1;
  c.acks_sent = 2;
  c.nacks_sent = 3;
  c.server_msgs_sent = 4;
  c.client_acks_sent = 5;
  c.retransmissions = 100;  // not a frame kind of its own
  EXPECT_EQ(c.total_frames(), 15u);
}

TEST(Counters, AccumulateAddsFieldwise) {
  Counters a, b;
  a.requests_sent = 1;
  a.lease_ops = 2;
  a.lock_steals = 3;
  b.requests_sent = 10;
  b.lease_ops = 20;
  b.server_data_bytes = 99;
  a += b;
  EXPECT_EQ(a.requests_sent, 11u);
  EXPECT_EQ(a.lease_ops, 22u);
  EXPECT_EQ(a.lock_steals, 3u);
  EXPECT_EQ(a.server_data_bytes, 99u);
}

}  // namespace
}  // namespace stank::metrics
