// Both transports driven end-to-end over an aggressively misbehaving
// ControlNet: duplication, FIFO-violating reorder spikes and Gilbert–Elliott
// burst loss all at once. The properties under test are the exactly-once
// guarantees the dedup/epoch machinery provides and the conservative
// (first-send) renewal anchor — the invariants the safety argument leans on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "protocol/client_transport.hpp"
#include "protocol/codec.hpp"
#include "protocol/server_transport.hpp"

namespace stank::protocol {
namespace {

net::NetConfig aggressive_net() {
  net::NetConfig nc;
  nc.latency = sim::micros(300);
  nc.jitter = sim::micros(200);
  nc.drop_probability = 0.05;
  nc.dup_probability = 0.30;
  nc.reorder_probability = 0.40;
  nc.reorder_spike = sim::millis(30);
  nc.ge_good_to_bad = 0.02;
  nc.ge_bad_to_good = 0.30;
  nc.burst_loss = 0.9;
  return nc;
}

// Client transport against a raw echo server: every request handler fires
// exactly once, every ACK renews with its own first-send time, and msg-level
// duplication never double-completes a request.
struct ClientSide {
  sim::Engine engine;
  net::ControlNet net;
  sim::NodeClock clock;
  metrics::Counters counters;
  ClientTransport transport;

  ClientSide(unsigned seed)
      : net(engine, sim::Rng(seed), aggressive_net()),
        clock(engine, sim::LocalClock(1.0)),
        transport(net, clock, NodeId{100}, NodeId{1}, counters,
                  TransportConfig{sim::local_millis(50), 6, 16}) {
    net.attach(NodeId{1}, [this](NodeId from, const Bytes& dg) {
      auto f = decode(dg);
      ASSERT_TRUE(f.has_value());
      if (f->kind != FrameKind::kRequest) return;
      Frame reply;
      reply.kind = FrameKind::kAck;
      reply.sender = NodeId{1};
      reply.msg_id = f->msg_id;
      reply.epoch = f->epoch;
      reply.body = ReplyBody{OkReply{}};
      net.send(NodeId{1}, from, encode(reply));
    });
    transport.start();
  }
};

TEST(AdversarialNet, ClientRequestsCompleteExactlyOnce) {
  for (unsigned seed : {11u, 12u, 13u}) {
    ClientSide f(seed);
    const int kRequests = 150;
    int completions = 0;
    int acks = 0;
    std::vector<sim::LocalTime> renew_anchors;
    f.transport.on_ack = [&](sim::LocalTime t) { renew_anchors.push_back(t); };
    for (int i = 0; i < kRequests; ++i) {
      f.engine.schedule_after(sim::millis(2 * i), [&]() {
        const sim::LocalTime sent = f.clock.now();
        f.transport.send_request(KeepAliveReq{}, [&, sent](const ReplyEvent& ev) {
          ++completions;
          if (ev.outcome == ReplyOutcome::kAck) ++acks;
          // The first-send anchor is when THIS request left, never later.
          EXPECT_EQ(ev.first_send.ns, sent.ns);
        });
      });
    }
    f.engine.run();
    // Exactly-once completion despite duplicated ACKs and retransmissions.
    EXPECT_EQ(completions, kRequests);
    // The retry budget rides out most bursts; a long one may still exhaust
    // it, and reporting kTimeout then is the correct behaviour.
    EXPECT_GE(acks, kRequests * 9 / 10);
    // Every renewal observed anchors at a request's first send; with dup
    // suppression there can be at most one renewal per request.
    EXPECT_LE(renew_anchors.size(), static_cast<std::size_t>(kRequests));
    EXPECT_GT(f.net.stats().duplicated, 0u);
    EXPECT_GT(f.net.stats().reordered, 0u);
  }
}

// Server transport under the same weather: duplicated client requests
// execute once (reply cache) and replies are re-sent from the cache; server
// push messages are delivered to the fake client exactly once per msg id.
struct ServerSide {
  sim::Engine engine;
  net::ControlNet net;
  sim::NodeClock clock;
  metrics::Counters counters;
  ServerTransport transport;
  int executed{0};
  std::set<std::uint64_t> delivered_push_ids;
  int push_deliveries{0};

  ServerSide(unsigned seed)
      : net(engine, sim::Rng(seed), aggressive_net()),
        clock(engine, sim::LocalClock(1.0)),
        transport(net, clock, NodeId{1}, counters,
                  TransportConfig{sim::local_millis(50), 6, 16}) {
    net.attach(NodeId{100}, [this](NodeId from, const Bytes& dg) {
      auto f = decode(dg);
      ASSERT_TRUE(f.has_value());
      if (f->kind != FrameKind::kServerMsg) return;
      if (delivered_push_ids.insert(f->msg_id.value()).second) {
        ++push_deliveries;  // a real client transport dedups exactly like this
      }
      Frame ack;
      ack.kind = FrameKind::kClientAck;
      ack.sender = NodeId{100};
      ack.msg_id = f->msg_id;
      ack.epoch = f->epoch;
      net.send(NodeId{100}, from, encode(ack));
    });
    transport.on_request = [this](NodeId, std::uint32_t, const RequestBody&,
                                  ServerTransport::Responder r) {
      ++executed;
      r.ack(ReplyBody{OkReply{}});
    };
    transport.start();
  }

  void client_send(std::uint64_t msg_id) {
    Frame f;
    f.kind = FrameKind::kRequest;
    f.sender = NodeId{100};
    f.msg_id = MsgId{msg_id};
    f.epoch = 1;
    f.body = RequestBody{KeepAliveReq{}};
    net.send(NodeId{100}, NodeId{1}, encode(f));
  }
};

TEST(AdversarialNet, ServerExecutesDuplicatedRequestsOnce) {
  for (unsigned seed : {21u, 22u, 23u}) {
    ServerSide f(seed);
    const int kRequests = 100;
    for (int i = 0; i < kRequests; ++i) {
      // The fake client is crude: it blasts every request three times, on
      // top of whatever duplication the net itself injects.
      f.engine.schedule_after(sim::millis(2 * i), [&f, i]() {
        for (int copy = 0; copy < 3; ++copy) {
          f.client_send(static_cast<std::uint64_t>(i + 1));
        }
      });
    }
    f.engine.run();
    // Bursts can eat all three copies of a request, so execution count is
    // bounded by, not equal to, the request count — but a duplicate must
    // NEVER execute twice.
    EXPECT_LE(f.executed, kRequests);
    EXPECT_GT(f.executed, kRequests / 2);  // the net is rough, not absurd
  }
}

TEST(AdversarialNet, ServerPushMessagesDeliveredExactlyOncePerId) {
  for (unsigned seed : {31u, 32u, 33u}) {
    ServerSide f(seed);
    const int kMsgs = 60;
    int done_calls = 0;
    int done_ok = 0;
    for (int i = 0; i < kMsgs; ++i) {
      f.engine.schedule_after(sim::millis(5 * i), [&f, &done_calls, &done_ok]() {
        f.transport.send_server_msg(NodeId{100}, 1,
                                    ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}},
                                    [&](bool ok) {
                                      ++done_calls;
                                      if (ok) ++done_ok;
                                    });
      });
    }
    f.engine.run();
    // done() fires exactly once per message regardless of duplication.
    EXPECT_EQ(done_calls, kMsgs);
    // Every message the fake client saw was deduped to one delivery per id.
    EXPECT_EQ(f.push_deliveries, static_cast<int>(f.delivered_push_ids.size()));
    EXPECT_LE(f.push_deliveries, kMsgs);
    // Delivery confirmations imply the client really saw those ids.
    EXPECT_LE(done_ok, f.push_deliveries + 0);
    EXPECT_GT(done_ok, 0);
  }
}

}  // namespace
}  // namespace stank::protocol
