#include "protocol/layout.hpp"

#include <gtest/gtest.h>

namespace stank::protocol {
namespace {

const std::vector<Extent> kTwoExtents = {
    Extent{DiskId{1}, 100, 4},  // file blocks 0..3 -> disk 1 blocks 100..103
    Extent{DiskId{2}, 50, 2},   // file blocks 4..5 -> disk 2 blocks 50..51
};

TEST(Layout, LocateWithinFirstExtent) {
  DiskId d;
  storage::BlockAddr a;
  ASSERT_TRUE(locate_block(kTwoExtents, 2, d, a));
  EXPECT_EQ(d, DiskId{1});
  EXPECT_EQ(a, 102u);
}

TEST(Layout, LocateCrossesExtentBoundary) {
  DiskId d;
  storage::BlockAddr a;
  ASSERT_TRUE(locate_block(kTwoExtents, 4, d, a));
  EXPECT_EQ(d, DiskId{2});
  EXPECT_EQ(a, 50u);
  ASSERT_TRUE(locate_block(kTwoExtents, 5, d, a));
  EXPECT_EQ(a, 51u);
}

TEST(Layout, LocateBeyondEndFails) {
  DiskId d;
  storage::BlockAddr a;
  EXPECT_FALSE(locate_block(kTwoExtents, 6, d, a));
  EXPECT_FALSE(locate_block({}, 0, d, a));
}

TEST(Layout, SliceAlignedSingleBlock) {
  bool ok = false;
  auto slices = slice_range(kTwoExtents, 64, 64, 64, ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].file_block, 1u);
  EXPECT_EQ(slices[0].addr, 101u);
  EXPECT_EQ(slices[0].offset_in_block, 0u);
  EXPECT_EQ(slices[0].len, 64u);
  EXPECT_EQ(slices[0].buf_offset, 0u);
}

TEST(Layout, SliceUnalignedSpanningBlocks) {
  bool ok = false;
  // 100 bytes starting at offset 30 with 64-byte blocks: 34 + 64 + 2.
  auto slices = slice_range(kTwoExtents, 64, 30, 100, ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].offset_in_block, 30u);
  EXPECT_EQ(slices[0].len, 34u);
  EXPECT_EQ(slices[1].len, 64u);
  EXPECT_EQ(slices[1].buf_offset, 34u);
  EXPECT_EQ(slices[2].len, 2u);
  EXPECT_EQ(slices[2].buf_offset, 98u);
}

TEST(Layout, SliceAcrossDisks) {
  bool ok = false;
  // Blocks 3 and 4 live on different disks.
  auto slices = slice_range(kTwoExtents, 64, 3 * 64, 128, ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].disk, DiskId{1});
  EXPECT_EQ(slices[1].disk, DiskId{2});
}

TEST(Layout, SlicePastEndReportsFailure) {
  bool ok = true;
  auto slices = slice_range(kTwoExtents, 64, 5 * 64, 128, ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(slices.empty());
}

TEST(Layout, SliceLengthsSum) {
  bool ok = false;
  auto slices = slice_range(kTwoExtents, 64, 17, 300, ok);
  ASSERT_TRUE(ok);
  std::uint64_t sum = 0;
  std::uint64_t expected_buf = 0;
  for (const auto& s : slices) {
    EXPECT_EQ(s.buf_offset, expected_buf);
    expected_buf += s.len;
    sum += s.len;
  }
  EXPECT_EQ(sum, 300u);
}

TEST(Layout, ZeroLengthRangeYieldsNothing) {
  bool ok = false;
  auto slices = slice_range(kTwoExtents, 64, 10, 0, ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(slices.empty());
}

}  // namespace
}  // namespace stank::protocol
