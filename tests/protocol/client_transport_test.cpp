#include "protocol/client_transport.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "protocol/codec.hpp"

namespace stank::protocol {
namespace {

// A hand-rolled fake server on the raw datagram layer, so the client
// transport's retransmission/ACK/NACK behaviour is observable precisely.
struct Fixture {
  sim::Engine engine;
  net::ControlNet net;
  sim::NodeClock client_clock;
  metrics::Counters counters;
  ClientTransport transport;
  std::vector<Frame> server_rx;
  bool auto_ack{false};
  bool auto_nack{false};

  Fixture()
      : net(engine, sim::Rng(1), net::NetConfig{sim::micros(100), sim::Duration{0}, 0.0}),
        client_clock(engine, sim::LocalClock(1.0)),
        transport(net, client_clock, NodeId{100}, NodeId{1}, counters,
                  TransportConfig{sim::local_millis(100), 2, 16}) {
    net.attach(NodeId{1}, [this](NodeId from, const Bytes& dg) {
      auto f = decode(dg);
      ASSERT_TRUE(f.has_value());
      server_rx.push_back(*f);
      if (f->kind == FrameKind::kRequest && (auto_ack || auto_nack)) {
        Frame reply;
        reply.kind = auto_ack ? FrameKind::kAck : FrameKind::kNack;
        reply.sender = NodeId{1};
        reply.msg_id = f->msg_id;
        reply.epoch = f->epoch;
        if (auto_ack) reply.body = ReplyBody{OkReply{}};
        net.send(NodeId{1}, from, encode(reply));
      }
    });
    transport.start();
  }

  void send_server_msg_frame(ServerBody body, std::uint64_t msg_id, std::uint32_t epoch = 0) {
    Frame f;
    f.kind = FrameKind::kServerMsg;
    f.sender = NodeId{1};
    f.msg_id = MsgId{msg_id};
    f.epoch = epoch;
    f.body = std::move(body);
    net.send(NodeId{1}, NodeId{100}, encode(f));
  }
};

TEST(ClientTransport, AckCompletesRequestAndRenews) {
  Fixture f;
  f.auto_ack = true;
  std::optional<ReplyEvent> got;
  sim::LocalTime renewed_at{-1};
  f.transport.on_ack = [&](sim::LocalTime t) { renewed_at = t; };
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) { got = ev; });
  f.engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->outcome, ReplyOutcome::kAck);
  EXPECT_TRUE(std::holds_alternative<OkReply>(got->body));
  // The renewal carries the FIRST transmission time (t=0 here).
  EXPECT_EQ(renewed_at.ns, 0);
  EXPECT_EQ(got->first_send.ns, 0);
}

TEST(ClientTransport, RetransmitsUntilAnswered) {
  Fixture f;  // server never replies
  bool done = false;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) {
    done = true;
    EXPECT_EQ(ev.outcome, ReplyOutcome::kTimeout);
  });
  f.engine.run();
  EXPECT_TRUE(done);
  // 1 initial + 2 retries.
  EXPECT_EQ(f.server_rx.size(), 3u);
  EXPECT_EQ(f.counters.requests_sent, 3u);
  EXPECT_EQ(f.counters.retransmissions, 2u);
}

TEST(ClientTransport, RetransmissionsShareMsgId) {
  Fixture f;
  f.transport.send_request(KeepAliveReq{}, [](const ReplyEvent&) {});
  f.engine.run();
  ASSERT_GE(f.server_rx.size(), 2u);
  EXPECT_EQ(f.server_rx[0].msg_id, f.server_rx[1].msg_id);
}

TEST(ClientTransport, NackTriggersHookAndCompletes) {
  Fixture f;
  f.auto_nack = true;
  int nacks = 0;
  f.transport.on_nack = [&]() { ++nacks; };
  std::optional<ReplyEvent> got;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) { got = ev; });
  f.engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->outcome, ReplyOutcome::kNack);
  EXPECT_EQ(nacks, 1);
}

TEST(ClientTransport, DuplicateAckIgnored) {
  Fixture f;
  int completions = 0;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent&) { ++completions; });
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  // Server ACKs the same request twice.
  for (int i = 0; i < 2; ++i) {
    Frame reply;
    reply.kind = FrameKind::kAck;
    reply.sender = NodeId{1};
    reply.msg_id = f.server_rx[0].msg_id;
    reply.epoch = 0;
    reply.body = ReplyBody{OkReply{}};
    f.net.send(NodeId{1}, NodeId{100}, encode(reply));
  }
  f.engine.run();
  EXPECT_EQ(completions, 1);
}

TEST(ClientTransport, StaleEpochReplyDropped) {
  Fixture f;
  f.transport.set_epoch(5);
  int completions = 0;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) {
    ++completions;
    EXPECT_EQ(ev.outcome, ReplyOutcome::kTimeout);  // only the timeout fires
  });
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  Frame reply;
  reply.kind = FrameKind::kAck;
  reply.sender = NodeId{1};
  reply.msg_id = f.server_rx[0].msg_id;
  reply.epoch = 4;  // wrong epoch
  reply.body = ReplyBody{OkReply{}};
  f.net.send(NodeId{1}, NodeId{100}, encode(reply));
  f.engine.run();
  EXPECT_EQ(completions, 1);
}

TEST(ClientTransport, ServerMsgsAckedAndDelivered) {
  Fixture f;
  std::vector<ServerBody> delivered;
  f.transport.on_server_msg = [&](const ServerBody& b) { delivered.push_back(b); };
  f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, 7);
  f.engine.run();
  ASSERT_EQ(delivered.size(), 1u);
  // A ClientAck went back.
  ASSERT_EQ(f.server_rx.size(), 1u);
  EXPECT_EQ(f.server_rx[0].kind, FrameKind::kClientAck);
  EXPECT_EQ(f.server_rx[0].msg_id, MsgId{7});
  EXPECT_EQ(f.counters.client_acks_sent, 1u);
}

TEST(ClientTransport, DuplicateServerMsgReAckedNotRedelivered) {
  Fixture f;
  int deliveries = 0;
  f.transport.on_server_msg = [&](const ServerBody&) { ++deliveries; };
  f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, 7);
  f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, 7);
  f.engine.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(f.counters.client_acks_sent, 2u);  // both copies ACKed
}

TEST(ClientTransport, RejectedServerMsgGetsNoAck) {
  Fixture f;
  f.transport.accept_server_msg = [](std::uint32_t) { return false; };
  int deliveries = 0;
  f.transport.on_server_msg = [&](const ServerBody&) { ++deliveries; };
  f.send_server_msg_frame(ServerBody{LockGrant{FileId{1}, LockMode::kShared, 1}}, 9);
  f.engine.run();
  EXPECT_EQ(deliveries, 0);
  EXPECT_TRUE(f.server_rx.empty());
}

TEST(ClientTransport, AbandonPendingFiresNoCallbacks) {
  Fixture f;
  bool fired = false;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent&) { fired = true; });
  f.transport.abandon_pending();
  EXPECT_EQ(f.transport.pending_requests(), 0u);
  f.engine.run();
  EXPECT_FALSE(fired);
}

TEST(ClientTransport, StopDropsEverything) {
  Fixture f;
  bool fired = false;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent&) { fired = true; });
  f.transport.stop();
  f.engine.run();
  EXPECT_FALSE(fired);
}

TEST(ClientTransport, LeaseOnlyCounted) {
  Fixture f;
  f.auto_ack = true;
  f.transport.send_request(KeepAliveReq{}, [](const ReplyEvent&) {}, /*lease_only=*/true);
  f.transport.send_request(GetAttrReq{FileId{1}}, [](const ReplyEvent&) {});
  f.engine.run();
  EXPECT_EQ(f.counters.lease_only_msgs, 1u);
}

TEST(ClientTransport, FirstSendPreservedAcrossRetransmissions) {
  Fixture f;
  // Drop the first two copies by detaching the server handler briefly.
  f.net.detach(NodeId{1});
  std::optional<ReplyEvent> got;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) { got = ev; });
  // Re-attach after 150ms so the second retransmission gets through.
  f.engine.schedule_after(sim::millis(150), [&]() {
    f.auto_ack = true;
    f.net.attach(NodeId{1}, [&](NodeId from, const Bytes& dg) {
      auto fr = decode(dg);
      ASSERT_TRUE(fr);
      if (fr->kind == FrameKind::kRequest) {
        Frame reply;
        reply.kind = FrameKind::kAck;
        reply.sender = NodeId{1};
        reply.msg_id = fr->msg_id;
        reply.epoch = fr->epoch;
        reply.body = ReplyBody{OkReply{}};
        f.net.send(NodeId{1}, from, encode(reply));
      }
    });
  });
  f.engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->outcome, ReplyOutcome::kAck);
  // t_C1 is the FIRST transmission (t=0), not the retransmission that got
  // through — the conservative lease start.
  EXPECT_EQ(got->first_send.ns, 0);
}

// Regression: a duplicated or delayed NACK whose msg_id matches no pending
// request must not fire on_nack. Acting on it would re-latch a freshly
// re-registered client into phase 3.
TEST(ClientTransport, NackForUnknownRequestIgnored) {
  Fixture f;
  int nacks = 0;
  f.transport.on_nack = [&]() { ++nacks; };
  Frame nack;
  nack.kind = FrameKind::kNack;
  nack.sender = NodeId{1};
  nack.msg_id = MsgId{999};  // never sent
  nack.epoch = 0;
  f.net.send(NodeId{1}, NodeId{100}, encode(nack));
  f.engine.run();
  EXPECT_EQ(nacks, 0);
}

// Regression: a NACK carrying a stale epoch (pre-recovery session) must be
// dropped exactly like a stale ACK; the request resolves via retransmission
// or timeout, and the lease agent is not poked.
TEST(ClientTransport, StaleEpochNackIgnored) {
  Fixture f;
  f.transport.set_epoch(5);
  int nacks = 0;
  f.transport.on_nack = [&]() { ++nacks; };
  std::optional<ReplyEvent> got;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) { got = ev; });
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  Frame nack;
  nack.kind = FrameKind::kNack;
  nack.sender = NodeId{1};
  nack.msg_id = f.server_rx[0].msg_id;
  nack.epoch = 4;  // stale session
  f.net.send(NodeId{1}, NodeId{100}, encode(nack));
  f.engine.run();
  EXPECT_EQ(nacks, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->outcome, ReplyOutcome::kTimeout);
}

// Regression: an ErrReply{kStaleSession} is an ACK at the frame level but
// must NOT renew the lease — the answering server holds no session (and no
// locks) for us. It fires the stale-session hook instead, and the handler
// still sees the reply.
TEST(ClientTransport, StaleSessionReplyDoesNotRenew) {
  Fixture f;
  int renews = 0;
  int stale = 0;
  f.transport.on_ack = [&](sim::LocalTime) { ++renews; };
  f.transport.on_stale_session = [&]() { ++stale; };
  std::optional<ReplyEvent> got;
  f.transport.send_request(KeepAliveReq{}, [&](const ReplyEvent& ev) { got = ev; });
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  Frame reply;
  reply.kind = FrameKind::kAck;
  reply.sender = NodeId{1};
  reply.msg_id = f.server_rx[0].msg_id;
  reply.epoch = 0;
  reply.body = ReplyBody{ErrReply{ErrorCode::kStaleSession}};
  f.net.send(NodeId{1}, NodeId{100}, encode(reply));
  f.engine.run();
  EXPECT_EQ(renews, 0);
  EXPECT_EQ(stale, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->outcome, ReplyOutcome::kAck);
}

// Regression: epoch NUMBERS repeat across server incarnations (each numbers
// from 1), so a numeric epoch match is not proof a reply belongs to the
// current registration. A stale-session reply to a request sent under an
// EARLIER session must not tear the fresh session down again.
TEST(ClientTransport, StaleSessionFromPriorSessionIgnored) {
  Fixture f;
  f.transport.set_epoch(1);  // first registration
  int stale = 0;
  f.transport.on_stale_session = [&]() { ++stale; };
  f.transport.send_request(KeepAliveReq{}, [](const ReplyEvent&) {});
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  // Re-registration with a new incarnation that happens to hand out the
  // same epoch number.
  f.transport.set_epoch(1);
  Frame reply;
  reply.kind = FrameKind::kAck;
  reply.sender = NodeId{1};
  reply.msg_id = f.server_rx[0].msg_id;
  reply.epoch = 1;  // numerically current, but the request predates the session
  reply.body = ReplyBody{ErrReply{ErrorCode::kStaleSession}};
  f.net.send(NodeId{1}, NodeId{100}, encode(reply));
  f.engine.run();
  EXPECT_EQ(stale, 0);
}

// Same collision for NACKs: one aimed at a prior-session request must not
// latch the rebuilt lease into ride-down.
TEST(ClientTransport, NackFromPriorSessionIgnored) {
  Fixture f;
  f.transport.set_epoch(1);
  int nacks = 0;
  f.transport.on_nack = [&]() { ++nacks; };
  f.transport.send_request(KeepAliveReq{}, [](const ReplyEvent&) {});
  f.engine.run_until(sim::SimTime{} + sim::micros(150));
  ASSERT_EQ(f.server_rx.size(), 1u);
  f.transport.set_epoch(1);  // new session, colliding epoch number
  Frame nack;
  nack.kind = FrameKind::kNack;
  nack.sender = NodeId{1};
  nack.msg_id = f.server_rx[0].msg_id;
  nack.epoch = 1;
  f.net.send(NodeId{1}, NodeId{100}, encode(nack));
  f.engine.run();
  EXPECT_EQ(nacks, 0);
}

// Regression: the dedup window is bounded (reply_cache_size = 16 here), so a
// duplicate older than the window would be re-delivered without the monotone
// low-water mark. Push enough fresh server msgs to evict the first ones,
// then replay an evicted id: it must be re-ACKed but NOT re-delivered.
TEST(ClientTransport, DedupLowWaterSurvivesCacheEviction) {
  Fixture f;
  int deliveries = 0;
  f.transport.on_server_msg = [&](const ServerBody&) { ++deliveries; };
  for (std::uint64_t id = 1; id <= 20; ++id) {
    f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, id);
  }
  f.engine.run();
  EXPECT_EQ(deliveries, 20);
  // Ids 1..4 have been evicted from the window; the low-water mark covers them.
  f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, 3);
  f.engine.run();
  EXPECT_EQ(deliveries, 20);                    // not re-delivered
  EXPECT_EQ(f.counters.client_acks_sent, 21u);  // but re-ACKed
}

// And the low-water mark resets per epoch: the new incarnation's id sequence
// starts over, so id 3 under a NEW epoch is fresh, not a duplicate.
TEST(ClientTransport, DedupLowWaterResetsOnNewEpoch) {
  Fixture f;
  int deliveries = 0;
  f.transport.on_server_msg = [&](const ServerBody&) { ++deliveries; };
  for (std::uint64_t id = 1; id <= 20; ++id) {
    f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, id);
  }
  f.engine.run();
  EXPECT_EQ(deliveries, 20);
  f.transport.set_epoch(2);
  f.send_server_msg_frame(ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}}, 3,
                          /*epoch=*/2);
  f.engine.run();
  EXPECT_EQ(deliveries, 21);
}

// Regression for the cross-incarnation replay hole found by fuzz_safety
// --byzantine (replay-old-session): epoch numbers restart at 1 in every
// server incarnation, so a replayed server msg from a PREVIOUS incarnation
// can collide with the live (epoch, msg_id) pair exactly. The incarnation
// stamp on the frame is the only thing that unmasks it.
TEST(ClientTransport, ServerMsgFromDeadIncarnationDropped) {
  Fixture f;
  f.transport.set_session(/*epoch=*/1, /*incarnation=*/2);
  int deliveries = 0;
  f.transport.on_server_msg = [&](const ServerBody&) { ++deliveries; };

  Frame stale;
  stale.kind = FrameKind::kServerMsg;
  stale.sender = NodeId{1};
  stale.msg_id = MsgId{1};
  stale.epoch = 1;  // numerically identical to the live session's epoch
  stale.incarnation = 1;  // ...but minted by the dead incarnation
  stale.body = ServerBody{LockDemand{FileId{1}, LockMode::kNone, 1}};
  f.net.send(NodeId{1}, NodeId{100}, encode(stale));
  f.engine.run();
  EXPECT_EQ(deliveries, 0);

  Frame live = stale;
  live.incarnation = 2;
  f.net.send(NodeId{1}, NodeId{100}, encode(live));
  f.engine.run();
  EXPECT_EQ(deliveries, 1);
}

}  // namespace
}  // namespace stank::protocol
